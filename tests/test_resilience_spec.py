"""Property-style round-trip tests for resilience-policy parsing.

Satellite of the self-healing PR: every policy must survive
``dict -> RetryPolicy/HealthPolicy/ResiliencePolicy -> to_dict ->
from_dict`` losslessly, and malformed specs must be rejected with
:class:`ConfigurationError` (exit code 2), never a bare
TypeError/ValueError.  Mirrors ``test_fault_plan_roundtrip.py``: uses
hypothesis when available (CI installs it).
"""

import json

import pytest

from repro.errors import ConfigurationError, exit_code_for
from repro.sched import HealthPolicy, ResiliencePolicy, RetryPolicy
from repro.sched.spec import (
    _parse_job_deadline,
    _parse_job_retry,
    _parse_resilience,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

attempts = st.integers(min_value=1, max_value=9)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
bases = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
factors = st.floats(min_value=1.0, max_value=16.0, allow_nan=False, width=64)
jitters = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
thresholds = st.integers(min_value=1, max_value=12)
probations = st.floats(
    min_value=1e-6, max_value=10.0, allow_nan=False, width=64, exclude_min=False
)
budgets = st.integers(min_value=0, max_value=999)

retry_dicts = st.builds(
    lambda m, b, f, j, s: {
        "max_attempts": m, "backoff_base": b, "backoff_factor": f,
        "jitter": j, "seed": s,
    },
    attempts, bases, factors, jitters, seeds,
)
health_dicts = st.builds(
    lambda t, p: {"fault_threshold": t, "probation": p}, thresholds, probations
)
resilience_dicts = st.builds(
    lambda r, h, b: {"retry": r, "health": h, "retry_budget": b},
    retry_dicts, health_dicts, budgets,
)


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


@RELAXED
@given(raw=retry_dicts)
def test_retry_policy_round_trip(raw):
    policy = RetryPolicy.from_dict(raw)
    again = RetryPolicy.from_dict(policy.to_dict())
    assert again == policy
    # idempotent: a second round trip is value-identical
    assert again.to_dict() == policy.to_dict()


@RELAXED
@given(raw=health_dicts)
def test_health_policy_round_trip(raw):
    policy = HealthPolicy.from_dict(raw)
    assert HealthPolicy.from_dict(policy.to_dict()) == policy


@RELAXED
@given(raw=resilience_dicts)
def test_resilience_policy_round_trip(raw):
    policy = ResiliencePolicy.from_dict(raw)
    again = ResiliencePolicy.from_dict(policy.to_dict())
    assert again == policy
    # to_dict is strict JSON (the spec file is a JSON document)
    json.loads(json.dumps(policy.to_dict()))


@RELAXED
@given(raw=st.one_of(retry_dicts, health_dicts))
def test_partial_dicts_fill_defaults(raw):
    # any strict subset of keys parses: missing keys take the defaults
    partial = {k: v for i, (k, v) in enumerate(sorted(raw.items())) if i % 2 == 0}
    if set(partial) <= set(RetryPolicy._KEYS) and "fault_threshold" not in partial:
        policy = RetryPolicy.from_dict(partial)
        for key, value in partial.items():
            assert getattr(policy, key) == pytest.approx(value)


@RELAXED
@given(raw=retry_dicts, job_id=st.integers(0, 99), attempt=st.integers(1, 6))
def test_backoff_deterministic_and_bounded(raw, job_id, attempt):
    policy = RetryPolicy.from_dict(raw)
    d1 = policy.delay(job_id, attempt)
    d2 = policy.delay(job_id, attempt)
    assert d1 == d2  # same (seed, job, attempt) -> same delay, always
    lo = policy.backoff_base * policy.backoff_factor ** (attempt - 1)
    assert lo <= d1 <= lo * (1.0 + policy.jitter) + 1e-12


# ---------------------------------------------------------------------------
# rejection: malformed policies raise ConfigurationError (exit code 2)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "raw, fragment",
    [
        ({"max_attempts": 0}, "max_attempts"),
        ({"max_attempts": 2.5}, "max_attempts"),
        ({"max_attempts": True}, "max_attempts"),
        ({"backoff_base": -0.1}, "backoff_base"),
        ({"backoff_base": "fast"}, "backoff_base"),
        ({"backoff_factor": 0.5}, "backoff_factor"),
        ({"jitter": 1.5}, "jitter"),
        ({"jitter": -0.1}, "jitter"),
        ({"seed": -1}, "seed"),
        ({"seed": "zero"}, "seed"),
        ({"attempts": 3}, "unknown retry policy keys"),
    ],
)
def test_malformed_retry_rejected(raw, fragment):
    with pytest.raises(ConfigurationError, match=fragment):
        RetryPolicy.from_dict(raw)


@pytest.mark.parametrize(
    "raw, fragment",
    [
        ({"fault_threshold": 0}, "fault_threshold"),
        ({"fault_threshold": 1.5}, "fault_threshold"),
        ({"fault_threshold": False}, "fault_threshold"),
        ({"probation": 0}, "probation"),
        ({"probation": -1.0}, "probation"),
        ({"probation": "soon"}, "probation"),
        ({"window": 0.1}, "unknown health policy keys"),
    ],
)
def test_malformed_health_rejected(raw, fragment):
    with pytest.raises(ConfigurationError, match=fragment):
        HealthPolicy.from_dict(raw)


@pytest.mark.parametrize(
    "raw, fragment",
    [
        ({"retry_budget": -1}, "retry_budget"),
        ({"retry_budget": 3.5}, "retry_budget"),
        ({"retry": []}, "retry policy must be an object"),
        ({"health": "strict"}, "health policy must be an object"),
        ({"retries": {}}, "unknown resilience policy keys"),
        ({"retry": {"max_attempts": 0}}, "max_attempts"),
    ],
)
def test_malformed_resilience_rejected(raw, fragment):
    with pytest.raises(ConfigurationError, match=fragment):
        ResiliencePolicy.from_dict(raw)


def test_rejections_carry_the_spec_exit_code():
    try:
        RetryPolicy.from_dict({"max_attempts": 0})
    except ConfigurationError as exc:
        assert exit_code_for(exc) == 2
    else:  # pragma: no cover
        pytest.fail("expected ConfigurationError")


# ---------------------------------------------------------------------------
# job-mix spec plumbing (run_job_mix vocabulary)
# ---------------------------------------------------------------------------


def test_parse_resilience_values():
    assert _parse_resilience(None) is None
    assert _parse_resilience(False) is None
    assert _parse_resilience(True) == ResiliencePolicy()
    policy = _parse_resilience({"retry_budget": 7})
    assert policy.retry_budget == 7
    with pytest.raises(ConfigurationError, match="'resilience' must be"):
        _parse_resilience("on")
    with pytest.raises(ConfigurationError, match="'resilience' must be"):
        _parse_resilience(1)


def test_parse_job_retry_values():
    assert _parse_job_retry(None, "job #0") is None
    assert _parse_job_retry({"max_attempts": 2}, "job #0").max_attempts == 2
    with pytest.raises(ConfigurationError, match="job #3.*'retry' must be an object"):
        _parse_job_retry([1, 2], "job #3 (tenantC)")


@pytest.mark.parametrize("bad", [0, -1.5, True, False, "soon", [0.1]])
def test_parse_job_deadline_rejects(bad):
    with pytest.raises(ConfigurationError, match="'deadline' must be a number > 0"):
        _parse_job_deadline(bad, "job #0 (tenantA)")


def test_parse_job_deadline_values():
    assert _parse_job_deadline(None, "job #0") is None
    assert _parse_job_deadline(2, "job #0") == 2.0
    assert isinstance(_parse_job_deadline(2, "job #0"), float)


def test_run_job_mix_accepts_resilience(tmp_path):
    from repro.sched import run_job_mix

    spec = {
        "machine": "summit",
        "n_nodes": 2,
        "resilience": {"retry": {"max_attempts": 2}, "retry_budget": 4},
        "jobs": [
            {
                "name": "tenantA",
                "graph": {"kind": "uniform_random_dense", "n": 20, "seed": 0},
                "retry": {"max_attempts": 3},
                "deadline": 5.0,
                "config": {"variant": "baseline", "block_size": 5,
                           "n_nodes": 1, "ranks_per_node": 2},
            }
        ],
    }
    scheduler, reports = run_job_mix(spec)
    assert scheduler.resilience is not None
    assert scheduler.resilience.policy.retry_budget == 4
    assert [r.status for r in reports] == ["done"]


def test_run_job_mix_rejects_retry_without_resilience():
    from repro.sched import run_job_mix

    spec = {
        "n_nodes": 1,
        "jobs": [
            {
                "graph": {"kind": "uniform_random_dense", "n": 20, "seed": 0},
                "retry": {"max_attempts": 2},
                "config": {"variant": "baseline", "block_size": 5,
                           "n_nodes": 1, "ranks_per_node": 2},
            }
        ],
    }
    with pytest.raises(ConfigurationError, match="resilience"):
        run_job_mix(spec)
