"""Fleet self-healing: retry determinism, quarantine, deadlines.

Four contracts pinned here:

1. **Retry determinism** - a job felled by any injected fault class and
   re-admitted by the resilience layer produces a distance matrix
   bit-identical to its clean solo solve, whether it resumed from a
   mid-run CRC-valid checkpoint or restarted from scratch.
2. **Resilience-off exactness** - with the layer disarmed (the
   default), every PR-8 recording stays bit- and makespan-exact: the
   scheduler takes zero extra simulated events.
3. **Self-healing** - a faulty device is quarantined after the
   configured threshold, jobs re-place around it (node remap) or
   re-plan onto the shrunken healthy fleet, and the device is
   reinstated after probation with a clean scoreboard.
4. **Bounded recovery** - deadlines kill (exit 16, never retried),
   ``max_attempts`` poisons, and the fleet-wide retry budget caps total
   recovery spend.
"""

import hashlib

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError, DeadlineExceeded, exit_code_for
from repro.faults import resolve_fault_plan
from repro.graphs import uniform_random_dense
from repro.sched import (
    ClusterScheduler,
    HealthPolicy,
    JobStatus,
    ResiliencePolicy,
    RetryPolicy,
)

# Same recorded ground truth as tests/test_sched.py: the resilience-off
# scheduler (and the armed-but-unfaulted one) must hit these exactly.
REAL_KW = dict(block_size=5, n_nodes=2, ranks_per_node=3)
RECORDED_ELAPSED = {
    "baseline": 0.0002740077794117649,
    "pipelined": 0.000346252455882353,
    "reordering": 0.000346252455882353,
    "async": 0.00034372901838235296,
    "offload": 0.0003222435441176473,
}
RECORDED_DIST_SHA = {
    0: "a212b9afbc9074bd6042ae010bbbd2b369c9014a7246079a921f1247fc8c7c3a",
    1: "b95b93ea5d1ab404adbfde5466cb4fa02b32771a864e3d75b8cf76d431a720f2",
    2: "9f4b377f89436d306998b3acf3f0b58d9dbfef734a721084d009ff05f4866906",
}
ALL_VARIANTS = ["baseline", "pipelined", "reordering", "async", "offload",
                "offload-pipelined"]


def dist_sha(dist: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(dist).tobytes()).hexdigest()


def _fatal(plan_spec: str, ckpt):
    """A fault plan whose first strike is terminal for the attempt: no
    in-run restarts, no OOM degrade - recovery is the scheduler's job."""
    plan = resolve_fault_plan(plan_spec, seed=0)
    return plan.replace(max_restarts=0, oom_degrade=False, checkpoint_interval=ckpt)


def _solo(seed: int):
    return repro.solve(uniform_random_dense(30, seed=seed), variant="async", **REAL_KW)


# ---------------------------------------------------------------------------
# 1. Retry determinism: crash-storm matrix
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("ckpt", [2, None], ids=["ckpt-resume", "from-scratch"])
@pytest.mark.parametrize("fault", ["crash:rank=1,at=0.00005", "oom:rank=0,k=2"],
                         ids=["crash", "oom"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_retried_job_is_bit_identical(seed, fault, ckpt):
    """Every (fault class x seed x resume mode) cell: the retried job's
    distance matrix equals its clean solo solve, bit for bit."""
    w = uniform_random_dense(30, seed=seed)
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    handle = sched.submit(w, variant="async", fault_plan=_fatal(fault, ckpt),
                          **REAL_KW)
    report = handle.wait()
    assert report.status == "done" and report.attempts >= 2
    assert dist_sha(handle.result().dist) == RECORDED_DIST_SHA[seed]
    flat = sched.fleet_metrics().flat()
    assert flat["fleet.resilience.retries"] >= 1
    assert flat["fleet.resilience.mttr.count"] >= 1


def test_retry_from_scratch_when_store_is_corrupt():
    """A corrupted k=0 checkpoint leaves no consistent cut: the retry
    falls back to a pristine re-scatter and still lands bit-exact."""
    w = uniform_random_dense(30, seed=0)
    plan = _fatal("crash:rank=1,at=0.00005", 2).replace(
        memory_faults=resolve_fault_plan(
            "memflip:rank=0,k=0,target=checkpoint", seed=0
        ).memory_faults,
    )
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    handle = sched.submit(w, variant="async", fault_plan=plan, **REAL_KW)
    report = handle.wait()
    assert report.status == "done" and report.attempts >= 2
    assert dist_sha(handle.result().dist) == RECORDED_DIST_SHA[0]


def test_retry_timing_is_deterministic():
    """Two identical armed fleets back off and finish at the exact same
    simulated times (seeded backoff, no wall-clock anywhere)."""
    def run():
        sched = ClusterScheduler(n_nodes=2, resilience=True)
        h = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                         fault_plan=_fatal("crash:rank=1,at=0.00005", 2),
                         **REAL_KW)
        rep = h.wait()
        return rep.finished_at, sched.fleet_metrics().flat()["fleet.makespan"]

    assert run() == run()


# ---------------------------------------------------------------------------
# 2. Resilience-off exactness (the PR-8 recordings)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_resilience_off_recordings_exact(variant):
    w = uniform_random_dense(30, seed=0)
    sched = ClusterScheduler(n_nodes=2)  # disarmed default
    assert sched.resilience is None
    result = sched.submit(w, variant=variant, **REAL_KW).result()
    if variant in RECORDED_ELAPSED:
        assert result.report.elapsed == RECORDED_ELAPSED[variant]
        assert dist_sha(result.dist) == RECORDED_DIST_SHA[0]


def test_armed_but_unfaulted_is_still_exact():
    """Arming the layer costs nothing when nothing fails: same bits,
    same makespan as the recordings."""
    w = uniform_random_dense(30, seed=0)
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    result = sched.submit(w, variant="async", **REAL_KW).result()
    assert result.report.elapsed == RECORDED_ELAPSED["async"]
    assert dist_sha(result.dist) == RECORDED_DIST_SHA[0]


def test_disarmed_submit_rejects_resilience_kwargs():
    sched = ClusterScheduler(n_nodes=2)
    w = uniform_random_dense(30, seed=0)
    with pytest.raises(ConfigurationError, match="resilience"):
        sched.submit(w, variant="async", retry=RetryPolicy(), **REAL_KW)
    with pytest.raises(ConfigurationError, match="resilience"):
        sched.submit(w, variant="async", deadline=1.0, **REAL_KW)


# ---------------------------------------------------------------------------
# 3. Self-healing: quarantine, remap, re-plan, reinstatement
# ---------------------------------------------------------------------------


def test_quarantine_remaps_onto_healthy_nodes():
    """A 3-node fleet with node 0's GPU quarantined re-places the
    2-node retry onto physical nodes [1, 2] - and stays bit-exact."""
    policy = ResiliencePolicy(health=HealthPolicy(fault_threshold=1, probation=0.5))
    sched = ClusterScheduler(n_nodes=3, resilience=policy)
    handle = sched.submit(uniform_random_dense(30, seed=1), variant="async",
                          fault_plan=_fatal("crash:rank=0,at=0.00005", 2),
                          **REAL_KW)
    report = handle.wait()
    assert report.status == "done"
    assert handle._job.node_map == [1, 2]
    assert dist_sha(handle.result().dist) == RECORDED_DIST_SHA[1]


def test_quarantine_replans_onto_shrunken_fleet():
    """When quarantine leaves fewer healthy nodes than the job planned
    for, the feasibility ladder re-plans it smaller instead of
    rejecting - still bit-exact."""
    policy = ResiliencePolicy(health=HealthPolicy(fault_threshold=1, probation=0.01))
    sched = ClusterScheduler(n_nodes=2, resilience=policy)
    handle = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                          fault_plan=_fatal("crash:rank=1,at=0.00005", 2),
                          **REAL_KW)
    report = handle.wait()
    flat = sched.fleet_metrics().flat()
    assert report.status == "done"
    assert flat["fleet.resilience.replans"] >= 1
    assert flat["fleet.resilience.quarantines"] >= 1
    assert dist_sha(handle.result().dist) == RECORDED_DIST_SHA[0]


def test_probation_reinstates_with_clean_scoreboard():
    policy = ResiliencePolicy(health=HealthPolicy(fault_threshold=1, probation=0.01))
    sched = ClusterScheduler(n_nodes=2, resilience=policy)
    handle = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                          fault_plan=_fatal("crash:rank=1,at=0.00005", 2),
                          **REAL_KW)
    handle.wait()
    flat = sched.fleet_metrics().flat()
    assert flat["fleet.resilience.reinstated"] >= 1
    monitor = sched.resilience.monitor
    assert not monitor.quarantined and not monitor.faults


def test_chaos_fleet_acceptance():
    """The ISSUE's acceptance run: an 8-job mixed-priority fleet under a
    GPU-crash storm - every job DONE bit-exact within max_attempts, the
    faulty device quarantined then reinstated, MTTR observed."""
    policy = ResiliencePolicy(
        retry=RetryPolicy(max_attempts=3),
        health=HealthPolicy(fault_threshold=2, probation=0.02),
        retry_budget=16,
    )
    sched = ClusterScheduler(n_nodes=2, resilience=policy, trace=True)
    handles = {}
    for i in range(8):
        seed = i % 3
        arrival = 0.00002 * i
        faulty = i % 2 == 0  # 4 of 8 jobs struck by the storm
        # crash times are absolute simulated seconds: strike each faulty
        # job shortly after its own arrival, always rank 1 -> the storm
        # concentrates on one GPU until it trips the quarantine threshold
        plan = _fatal(f"crash:rank=1,at={arrival + 0.00005!r}", 2) if faulty else None
        handles[i] = sched.submit(
            uniform_random_dense(30, seed=seed), variant="async",
            fault_plan=plan, name=f"tenant{i}", priority=i % 3,
            arrival=arrival, **REAL_KW,
        )
    reports = sched.run()
    assert [r.status for r in reports] == ["done"] * 8
    assert all(r.attempts <= policy.retry.max_attempts for r in reports)
    for i, handle in handles.items():
        assert dist_sha(handle.result().dist) == RECORDED_DIST_SHA[i % 3]
    flat = sched.fleet_metrics().flat()
    assert flat["fleet.resilience.retries"] > 0
    assert flat["fleet.resilience.quarantines"] >= 1
    assert flat["fleet.resilience.reinstated"] >= 1
    assert flat["fleet.resilience.mttr.count"] >= 1
    assert flat["fleet.resilience.retry_budget_remaining"] >= 0
    # retry-attempt span lanes show up in the fleet trace
    names = {ev.get("name", "") for ev in sched.chrome_trace()["traceEvents"]}
    assert any("attempt" in n for n in names)


# ---------------------------------------------------------------------------
# 4. Bounded recovery: deadlines, poison, budget
# ---------------------------------------------------------------------------


def test_deadline_kills_with_exit_16():
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    handle = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                          deadline=1e-5, **REAL_KW)
    report = handle.wait()
    assert report.status == "failed"
    assert report.exit_code == 16
    assert report.attempts == 1  # deadline kills are never retried
    assert "deadline" in report.error
    flat = sched.fleet_metrics().flat()
    assert flat["fleet.resilience.deadline_kills"] == 1


def test_deadline_met_is_harmless():
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    handle = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                          deadline=10.0, **REAL_KW)
    report = handle.wait()
    assert report.status == "done"
    # a met deadline must not stretch the fleet's simulated makespan
    assert sched.fleet_metrics().flat()["fleet.makespan"] < 1.0


def test_deadline_exceeded_exit_code_registered():
    assert exit_code_for(DeadlineExceeded("j", 0.5)) == 16


def test_poison_after_max_attempts():
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    handle = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                          fault_plan=_fatal("crash:rank=0,at=0.00005", None),
                          retry=RetryPolicy(max_attempts=1), **REAL_KW)
    report = handle.wait()
    assert report.status == "failed" and report.poisoned
    assert report.exit_code == 8  # keeps the last failure's class
    flat = sched.fleet_metrics().flat()
    assert flat.get("fleet.resilience.retries", 0) == 0
    assert flat["fleet.resilience.poisoned"] == 1


def test_retry_budget_exhaustion_stops_retries():
    policy = ResiliencePolicy(retry_budget=0)
    sched = ClusterScheduler(n_nodes=2, resilience=policy)
    handle = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                          fault_plan=_fatal("crash:rank=0,at=0.00005", None),
                          **REAL_KW)
    report = handle.wait()
    assert report.status == "failed" and report.attempts == 1
    assert "retry budget" in handle._job.reason


def test_failed_job_does_not_poison_neighbours():
    """One poisoned tenant; a concurrent clean tenant finishes exact."""
    sched = ClusterScheduler(n_nodes=2, resilience=True)
    bad = sched.submit(uniform_random_dense(30, seed=0), variant="async",
                       fault_plan=_fatal("crash:rank=0,at=0.00005", None),
                       retry=RetryPolicy(max_attempts=1), name="bad", **REAL_KW)
    good = sched.submit(uniform_random_dense(30, seed=1), variant="async",
                        name="good", **REAL_KW)
    sched.run()
    assert bad.status is JobStatus.FAILED
    assert good.status is JobStatus.DONE
    assert dist_sha(good.result().dist) == RECORDED_DIST_SHA[1]
