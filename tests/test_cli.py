"""Tests for the repro-apsp command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import load_matrix, save_matrix, uniform_random_dense


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.variant == "async"
        assert args.n == 128
        assert args.nodes == 1

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--variant", "bogus"])


class TestCommands:
    def test_variants_lists_all(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        for v in ("baseline", "pipelined", "reordering", "async", "offload"):
            assert v in out

    def test_placement_diagram(self, capsys):
        assert main(["placement", "--pr", "4", "--pc", "6", "--qr", "2", "--qc", "3"]) == 0
        out = capsys.readouterr().out
        assert "K=2x2" in out

    def test_solve_small_with_validation(self, capsys):
        rc = main(
            [
                "solve", "--n", "24", "--block", "4", "--nodes", "2",
                "--ranks-per-node", "2", "--variant", "async", "--validate",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation: OK" in out
        assert "simulated time" in out

    def test_solve_with_density_and_trace(self, capsys):
        rc = main(
            [
                "solve", "--n", "20", "--block", "4", "--density", "0.4",
                "--nodes", "1", "--ranks-per-node", "2", "--trace",
            ]
        )
        assert rc == 0
        assert "per-category busy time" in capsys.readouterr().out

    def test_solve_io_roundtrip(self, tmp_path, capsys):
        w = uniform_random_dense(16, seed=1)
        inp = tmp_path / "in.npz"
        outp = tmp_path / "out.npz"
        save_matrix(inp, w)
        rc = main(
            [
                "solve", "--input", str(inp), "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--output", str(outp),
            ]
        )
        assert rc == 0
        dist = load_matrix(outp)
        from repro.graphs import scipy_floyd_warshall

        assert np.allclose(dist, scipy_floyd_warshall(w))

    def test_tune(self, capsys):
        rc = main(["tune", "--n", "300000", "--nodes", "64", "--ranks-per-node", "12"])
        assert rc == 0
        assert "predicted" in capsys.readouterr().out

    def test_tune_offload_shows_eq5(self, capsys):
        rc = main(
            ["tune", "--n", "300000", "--nodes", "64", "--ranks-per-node", "12",
             "--offload"]
        )
        assert rc == 0
        assert "Eq. 5" in capsys.readouterr().out

    def test_offload_variant_cli(self, capsys):
        rc = main(
            [
                "solve", "--n", "16", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--variant", "offload", "--validate",
            ]
        )
        assert rc == 0

    def test_analyze(self, tmp_path, capsys):
        rc = main(
            [
                "solve", "--n", "24", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--output", str(tmp_path / "d.npz"),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["analyze", str(tmp_path / "d.npz"), "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diameter" in out and "top closeness" in out

    def test_machine_preset(self, capsys):
        rc = main(
            [
                "solve", "--n", "16", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--machine", "frontier-like", "--validate",
            ]
        )
        assert rc == 0

    def test_paths_and_sparse_flags(self, capsys):
        rc = main(
            [
                "solve", "--n", "16", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--density", "0.3", "--paths",
                "--sparse", "--validate",
            ]
        )
        assert rc == 0
