"""Tests for the repro-apsp command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import load_matrix, save_matrix, uniform_random_dense


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.variant == "async"
        assert args.n == 128
        assert args.nodes == 1

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--variant", "bogus"])


class TestCommands:
    def test_variants_lists_all(self, capsys):
        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        for v in ("baseline", "pipelined", "reordering", "async", "offload"):
            assert v in out

    def test_placement_diagram(self, capsys):
        assert main(["placement", "--pr", "4", "--pc", "6", "--qr", "2", "--qc", "3"]) == 0
        out = capsys.readouterr().out
        assert "K=2x2" in out

    def test_solve_small_with_validation(self, capsys):
        rc = main(
            [
                "solve", "--n", "24", "--block", "4", "--nodes", "2",
                "--ranks-per-node", "2", "--variant", "async", "--validate",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "validation: OK" in out
        assert "simulated time" in out

    def test_solve_with_density_and_trace(self, capsys):
        rc = main(
            [
                "solve", "--n", "20", "--block", "4", "--density", "0.4",
                "--nodes", "1", "--ranks-per-node", "2", "--trace",
            ]
        )
        assert rc == 0
        assert "per-category busy time" in capsys.readouterr().out

    def test_solve_io_roundtrip(self, tmp_path, capsys):
        w = uniform_random_dense(16, seed=1)
        inp = tmp_path / "in.npz"
        outp = tmp_path / "out.npz"
        save_matrix(inp, w)
        rc = main(
            [
                "solve", "--input", str(inp), "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--output", str(outp),
            ]
        )
        assert rc == 0
        dist = load_matrix(outp)
        from repro.graphs import scipy_floyd_warshall

        assert np.allclose(dist, scipy_floyd_warshall(w))

    def test_tune(self, capsys):
        rc = main(["tune", "--n", "300000", "--nodes", "64", "--ranks-per-node", "12"])
        assert rc == 0
        assert "predicted" in capsys.readouterr().out

    def test_tune_offload_shows_eq5(self, capsys):
        rc = main(
            ["tune", "--n", "300000", "--nodes", "64", "--ranks-per-node", "12",
             "--offload"]
        )
        assert rc == 0
        assert "Eq. 5" in capsys.readouterr().out

    def test_offload_variant_cli(self, capsys):
        rc = main(
            [
                "solve", "--n", "16", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--variant", "offload", "--validate",
            ]
        )
        assert rc == 0

    def test_analyze(self, tmp_path, capsys):
        rc = main(
            [
                "solve", "--n", "24", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--output", str(tmp_path / "d.npz"),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        rc = main(["analyze", str(tmp_path / "d.npz"), "--top", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "diameter" in out and "top closeness" in out

    def test_machine_preset(self, capsys):
        rc = main(
            [
                "solve", "--n", "16", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--machine", "frontier-like", "--validate",
            ]
        )
        assert rc == 0

    def test_paths_and_sparse_flags(self, capsys):
        rc = main(
            [
                "solve", "--n", "16", "--block", "4", "--nodes", "1",
                "--ranks-per-node", "2", "--density", "0.3", "--paths",
                "--sparse", "--validate",
            ]
        )
        assert rc == 0


class TestFaultFlags:
    ARGS = ["solve", "--n", "48", "--block", "8", "--nodes", "2", "--ranks-per-node", "2"]

    def test_faults_flag_prints_counters(self, capsys):
        rc = main(
            self.ARGS
            + ["--faults", "drop:src=0,dst=1,nth=1", "--recv-timeout", "5e-4", "--validate"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault injection / recovery:" in out
        assert "faults.dropped" in out and "faults.retransmits" in out

    def test_chaos_run_validates(self, capsys):
        rc = main(
            self.ARGS
            + [
                "--faults", "crash:rank=1,at=1.5e-4",
                "--faults", "nic:node=0,factor=4,t0=0,t1=2e-4",
                "--recv-timeout", "5e-4", "--checkpoint-interval", "2", "--validate",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "faults.restarts" in out
        assert "validation: OK" in out

    def test_fault_plan_env_var(self, capsys, monkeypatch):
        from repro.faults import FAULT_PLAN_ENV, FaultPlan

        plan = FaultPlan.from_specs(["dup:src=0,dst=1,nth=1"])
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        rc = main(self.ARGS + ["--validate"])
        assert rc == 0
        assert "faults.duplicates_suppressed" in capsys.readouterr().out


class TestExitCodes:
    """Each error class maps to a distinct, stable exit code."""

    def test_bad_fault_spec_is_fault_plan_error(self, capsys):
        rc = main(
            ["solve", "--n", "16", "--block", "4", "--nodes", "1",
             "--ranks-per-node", "2", "--faults", "explode:rank=0"]
        )
        assert rc == 13
        assert "error:" in capsys.readouterr().err

    def test_invalid_weights_is_validation_error(self, tmp_path, capsys):
        w = uniform_random_dense(16, seed=0)
        w[3, 4] = np.nan
        path = tmp_path / "bad.npz"
        save_matrix(path, w)
        rc = main(
            ["solve", "--input", str(path), "--block", "4", "--nodes", "1",
             "--ranks-per-node", "2"]
        )
        assert rc == 3
        assert "NaN" in capsys.readouterr().err

    def test_unrecovered_crash_is_rank_failure(self, capsys):
        rc = main(
            ["solve", "--n", "48", "--block", "8", "--nodes", "2",
             "--ranks-per-node", "2", "--faults", "crash:rank=1,at=1.5e-4",
             "--faults", "policy:restarts=0"]
        )
        assert rc == 8
        assert "rank" in capsys.readouterr().err

    def test_mapping_is_ordered_most_specific_first(self):
        from repro.cli import _exit_code_for
        from repro.errors import (
            BackendUnavailableError,
            CheckpointError,
            CommTimeoutError,
            ConfigurationError,
            GpuOutOfMemory,
            NegativeCycleError,
            RankFailure,
            ReproError,
            ValidationError,
        )

        assert _exit_code_for(ConfigurationError("x")) == 2
        assert _exit_code_for(ValidationError("x")) == 3
        assert _exit_code_for(NegativeCycleError(0, -1.0)) == 4
        assert _exit_code_for(GpuOutOfMemory(100, 10, 50)) == 5
        # BackendUnavailableError subclasses ConfigurationError but keeps
        # its own code.
        assert _exit_code_for(BackendUnavailableError("cupy", "not installed")) == 6
        assert _exit_code_for(CommTimeoutError("x", rank=0, src=1, tag=2)) == 7
        assert _exit_code_for(RankFailure("x")) == 8
        assert _exit_code_for(CheckpointError("x")) == 9
        assert _exit_code_for(ReproError("x")) == 1
        # FaultPlanError subclasses ConfigurationError but keeps its own
        # code, and InternalError marks unexpected (non-Repro) bugs.
        from repro.errors import FaultPlanError, InternalError

        assert _exit_code_for(FaultPlanError("x")) == 13
        assert _exit_code_for(InternalError(ValueError("boom"))) == 14
        # The serving layer's failure classes (docs/SERVING.md).
        from repro.errors import ArtifactError, QueryError

        assert _exit_code_for(ArtifactError("p", "bad")) == 17
        assert _exit_code_for(QueryError("x")) == 18


class TestServeQueryCLI:
    @pytest.fixture()
    def artifact(self, tmp_path):
        path = tmp_path / "art"
        rc = main(
            ["serve", "build", str(path), "--n", "32", "--block", "8",
             "--artifact-block", "8", "--nodes", "2", "--ranks-per-node", "2",
             "--density", "0.4"]
        )
        assert rc == 0
        return path

    def test_build_and_info(self, artifact, capsys):
        assert main(["serve", "info", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "n=32" in out
        assert "graph payload: yes" in out

    def test_query_pairs_nearest_submatrix(self, artifact, capsys):
        rc = main(
            ["query", str(artifact), "--pair", "0,31", "--pair", "5,7",
             "--nearest", "0,3", "--submatrix", "0,1:2,3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "d(0, 31) =" in out
        assert "nearest to 0" in out
        assert "cache:" in out

    def test_query_metrics_out(self, artifact, tmp_path, capsys):
        sink = tmp_path / "m.json"
        rc = main(["query", str(artifact), "--pair", "1,2",
                   "--metrics-out", str(sink)])
        assert rc == 0
        import json

        payload = json.loads(sink.read_text())
        # --pair goes through the batch path; counters are lazy, so the
        # untouched point counter is simply absent.
        assert "serve.queries.point" not in payload["metrics"]
        assert payload["metrics"]["serve.queries.batch"]["value"] == 1
        assert payload["serve"]["cache"]["misses"] == 1

    def test_update_edges(self, artifact, capsys):
        rc = main(["serve", "update", str(artifact), "--edge", "0,9,0.0001"])
        assert rc == 0
        assert "1 fast" in capsys.readouterr().out
        rc = main(["query", str(artifact), "--pair", "0,9"])
        assert rc == 0
        assert "d(0, 9) = 0.0001" in capsys.readouterr().out

    def test_missing_artifact_exits_17(self, tmp_path, capsys):
        rc = main(["query", str(tmp_path / "nope"), "--pair", "0,1"])
        assert rc == 17
        assert "artifact" in capsys.readouterr().err

    def test_bad_query_exits_18(self, artifact, capsys):
        assert main(["query", str(artifact), "--pair", "0,999"]) == 18
        assert main(["query", str(artifact), "--pair", "zero,one"]) == 18
        assert main(["query", str(artifact), "--submatrix", "0,1"]) == 18
        assert main(["query", str(artifact), "--submatrix", "0-2:3,4"]) == 18
        assert main(["serve", "update", str(artifact), "--edge", "1,2"]) == 18

    def test_corrupt_artifact_exits_17(self, artifact, capsys):
        blk = sorted((artifact / "blocks").glob("*.blk"))[0]
        raw = bytearray(blk.read_bytes())
        raw[-1] ^= 0xFF
        blk.write_bytes(bytes(raw))
        rc = main(["query", str(artifact), "--submatrix",
                   ",".join(map(str, range(32))) + ":" + ",".join(map(str, range(32)))])
        assert rc == 17
        assert "CRC32" in capsys.readouterr().err
