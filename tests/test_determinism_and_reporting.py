"""Cross-cutting invariants: full-run determinism (identical schedules
for identical inputs) and the reporting surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp
from repro.graphs import uniform_random_dense


def run(variant="async", trace=False, **kw):
    w = uniform_random_dense(32, seed=9)
    return apsp(
        w,
        variant=variant,
        block_size=kw.pop("block_size", 4),
        n_nodes=kw.pop("n_nodes", 2),
        ranks_per_node=kw.pop("ranks_per_node", 4),
        trace=trace,
        **kw,
    )


class TestDeterminism:
    @pytest.mark.parametrize("variant",
                             ["baseline", "pipelined", "async", "offload"])
    def test_identical_runs_identical_schedules(self, variant):
        a = run(variant, dim_scale=512.0)
        b = run(variant, dim_scale=512.0)
        assert a.report.elapsed == b.report.elapsed  # bit-exact, not approx
        assert a.report.messages == b.report.messages
        assert a.report.internode_bytes == b.report.internode_bytes
        assert np.array_equal(a.dist, b.dist)

    def test_trace_does_not_change_schedule(self):
        plain = run("async", dim_scale=512.0)
        traced = run("async", trace=True, dim_scale=512.0)
        assert traced.report.elapsed == plain.report.elapsed

    def test_path_tracking_same_distances(self):
        plain = run("async")
        tracked = run("async", track_paths=True)
        assert np.array_equal(plain.dist, tracked.dist)

    def test_trace_span_times_within_run(self):
        res = run("pipelined", trace=True, dim_scale=512.0)
        for span in res.tracer.spans:
            assert 0.0 <= span.start <= span.end <= res.report.elapsed + 1e-12


class TestReporting:
    def test_breakdown_with_trace(self):
        res = run("pipelined", trace=True, dim_scale=512.0)
        text = res.report.breakdown(res.tracer)
        assert "SrGemm" in text
        assert "overlap" in text

    def test_breakdown_without_trace(self):
        res = run("pipelined")
        assert "no trace" in res.report.breakdown(res.tracer)

    def test_counters_match_spans(self):
        res = run("baseline", trace=True, dim_scale=512.0)
        n_srgemm_spans = len(res.tracer.spans_by_category("SrGemm"))
        assert res.report.counters["SrGemm.count"] == n_srgemm_spans

    def test_busy_never_exceeds_makespan(self):
        res = run("async", trace=True, dim_scale=512.0)
        for actor in res.tracer.actors():
            assert res.tracer.busy_time(actor) <= res.report.elapsed + 1e-12
