"""Tests for the out-of-GPU SrGemm pipeline (paper §4.3-4.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import oog_srgemm_plan, run_oog_pipeline
from repro.core.oog_srgemm import TileTask
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.perfmodel import oog_pipeline_cost, oog_stage_costs
from repro.semiring import INF, srgemm
from repro.sim import Environment, Tracer


def setup(dim_scale=1.0, trace=False):
    env = Environment()
    tr = Tracer() if trace else None
    cost = CostModel(SUMMIT, dim_scale=dim_scale)
    cluster = SimCluster(env, SUMMIT, 1, cost, tr)
    return env, cluster.nodes[0].gpus[0], cluster.nodes[0].host, tr


def run_plan(a, b, c, mx, nx, streams, dim_scale=1.0, trace=False):
    env, gpu, host, tr = setup(dim_scale, trace)
    tiles = oog_srgemm_plan(a, b, c, mx, nx)
    stats = env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, streams)))
    return stats, tr


class TestNumericalCorrectness:
    @pytest.mark.parametrize("mx,nx", [(4, 4), (3, 5), (16, 16), (5, 16)])
    @pytest.mark.parametrize("streams", [1, 2, 3])
    def test_matches_direct_srgemm(self, rng, mx, nx, streams):
        m = n = 16
        k = 6
        a = rng.uniform(0, 10, (m, k))
        b = rng.uniform(0, 10, (k, n))
        c = rng.uniform(0, 10, (m, n))
        expected = np.minimum(c, srgemm(a, b))
        got = c.copy()
        run_plan(a, b, got, mx, nx, streams)
        assert np.allclose(got, expected)

    def test_uneven_tiles(self, rng):
        a = rng.uniform(0, 10, (17, 3))
        b = rng.uniform(0, 10, (3, 13))
        c = np.full((17, 13), INF)
        expected = srgemm(a, b)
        run_plan(a, b, c, 5, 4, 3)
        assert np.allclose(c, expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            oog_srgemm_plan(np.zeros((4, 2)), np.zeros((3, 4)), np.zeros((4, 4)), 2, 2)

    def test_empty_tile_list(self):
        env, gpu, host, _ = setup()
        stats = env.run(env.process(run_oog_pipeline(env, gpu, host, [], 3)))
        assert stats.tiles == 0 and stats.elapsed == 0

    def test_stream_count_validated(self):
        env, gpu, host, _ = setup()
        with pytest.raises(ValueError):
            env.run(env.process(run_oog_pipeline(env, gpu, host, [], 0)))


class TestPipelineTiming:
    def make_tiles(self, count, m=4, n=4, k=4):
        return [TileTask(m=m, n=n, k=k, label=f"t{i}") for i in range(count)]

    def test_one_stream_is_sum_of_stages(self):
        """§4.5: single stream -> t0 + t1 + t2 per tile."""
        env, gpu, host, _ = setup(dim_scale=1024.0)
        tiles = self.make_tiles(4)
        env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, 1)))
        cost = gpu.cost
        per_tile = (
            cost.srgemm_time(4, 4, 4) + cost.d2h_time(4, 4) + cost.host_update_time(4, 4)
        )
        assert env.now == pytest.approx(4 * per_tile, rel=1e-6)

    def test_three_streams_hit_max_stage_bound(self):
        """§4.5: with >= 3 streams the steady-state cost per tile is
        max(t0, t1, t2)."""
        env, gpu, host, _ = setup(dim_scale=1024.0)
        n_tiles = 32
        tiles = self.make_tiles(n_tiles)
        env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, 3)))
        cost = gpu.cost
        bottleneck = max(
            cost.srgemm_time(4, 4, 4), cost.d2h_time(4, 4), cost.host_update_time(4, 4)
        )
        # Steady state + pipeline fill; allow the fill margin.
        assert env.now >= n_tiles * bottleneck * 0.99
        assert env.now <= n_tiles * bottleneck + 3 * (
            cost.srgemm_time(4, 4, 4) + cost.d2h_time(4, 4) + cost.host_update_time(4, 4)
        )

    def test_more_streams_never_slower(self):
        times = {}
        for s in (1, 2, 3):
            env, gpu, host, _ = setup(dim_scale=1024.0)
            tiles = self.make_tiles(16)
            env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, s)))
            times[s] = env.now
        assert times[2] <= times[1]
        assert times[3] <= times[2] * 1.001

    def test_matches_analytic_pipeline_model(self, rng):
        """Simulated end-to-end time tracks the §4.5 formulas for a
        full C ← C ⊕ A ⊗ B (panel h2d included in t1)."""
        scale = 1024.0
        m_phys, k_phys, mx_phys = 32, 2, 8
        cost = CostModel(SUMMIT, dim_scale=scale)
        stages = oog_stage_costs(
            cost, m_phys * scale, m_phys * scale, k_phys * scale
        )
        a = rng.uniform(0, 1, (m_phys, k_phys))
        b = rng.uniform(0, 1, (k_phys, m_phys))
        for s in (1, 3):
            env, gpu, host, _ = setup(dim_scale=scale)
            c = np.full((m_phys, m_phys), INF)
            tiles = oog_srgemm_plan(a, b, c, mx_phys, mx_phys)
            env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, s)))
            predicted = oog_pipeline_cost(stages, s)
            # Launch overheads and pipeline fill/drain make the sim a
            # bit slower than the ideal model; never below 0.9x.
            assert 0.9 * predicted <= env.now <= 1.5 * predicted

    def test_overlap_visible_in_trace(self):
        """With 3 streams, SrGemm of tile t+1 overlaps d2hXfer of tile
        t (the paper's Figure 2)."""
        env, gpu, host, tr = setup(dim_scale=2048.0, trace=True)
        tiles = self.make_tiles(12)
        env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, 3)))
        assert tr.overlap_time("SrGemm", "d2hXfer") > 0
        assert tr.overlap_time("SrGemm", "hostUpdate") > 0

    def test_no_overlap_with_one_stream(self):
        env, gpu, host, tr = setup(dim_scale=2048.0, trace=True)
        tiles = self.make_tiles(8)
        env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, 1)))
        assert tr.overlap_time("SrGemm", "d2hXfer") == pytest.approx(0.0, abs=1e-12)

    def test_h2d_deduplicated(self, rng):
        """Each panel chunk crosses NVLink exactly once (§4.4)."""
        a = rng.uniform(0, 1, (8, 2))
        b = rng.uniform(0, 1, (2, 8))
        c = np.full((8, 8), INF)
        env, gpu, host, tr = setup(trace=True)
        tiles = oog_srgemm_plan(a, b, c, 4, 4)
        stats = env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, 3)))
        # 2 A-chunks + 2 B-chunks = 4 h2d transfers for 4 tiles.
        h2d_spans = tr.spans_by_category("h2dXfer")
        assert len(h2d_spans) == 4
        assert stats.h2d_bytes_virtual == pytest.approx((8 * 2 + 2 * 8) * 4)

    def test_stats_accounting(self, rng):
        a = rng.uniform(0, 1, (6, 3))
        b = rng.uniform(0, 1, (3, 6))
        c = np.full((6, 6), INF)
        stats, _ = run_plan(a, b, c, 3, 3, 2)
        assert stats.tiles == 4
        assert stats.flops_virtual == pytest.approx(2 * 6 * 6 * 3)
        assert stats.d2h_bytes_virtual == pytest.approx(6 * 6 * 4)
        assert stats.elapsed > 0
        assert stats.flop_rate() > 0
