"""Tests for the 2-D process grid and rank placement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ProcessGrid,
    contiguous_placement,
    enumerate_placements,
    factor_pairs,
    near_square_factors,
    optimal_placement,
    tiled_placement,
)
from repro.errors import ConfigurationError


class TestFactorizations:
    def test_factor_pairs(self):
        assert set(factor_pairs(12)) == {(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)}
        assert factor_pairs(1) == [(1, 1)]
        assert factor_pairs(7) == [(1, 7), (7, 1)]

    def test_factor_pairs_invalid(self):
        with pytest.raises(ValueError):
            factor_pairs(0)

    @pytest.mark.parametrize("p,expect", [(1, (1, 1)), (12, (3, 4)), (16, (4, 4)),
                                          (7, (1, 7)), (48, (6, 8)), (768, (24, 32))])
    def test_near_square(self, p, expect):
        assert near_square_factors(p) == expect

    @given(st.integers(1, 5000))
    @settings(max_examples=50, deadline=None)
    def test_near_square_property(self, p):
        a, b = near_square_factors(p)
        assert a * b == p and a <= b


class TestProcessGrid:
    def test_shape_and_size(self):
        g = ProcessGrid(3, 4)
        assert g.size == 12
        assert str(g) == "3x4 grid (12 ranks)"

    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            ProcessGrid(0, 4)

    def test_coords_roundtrip(self):
        g = ProcessGrid(3, 4)
        for r in range(12):
            row, col = g.coords(r)
            assert g.rank_of(row, col) == r

    def test_coords_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ProcessGrid(2, 2).coords(4)

    def test_rank_of_wraps(self):
        g = ProcessGrid(2, 3)
        assert g.rank_of(2, 3) == g.rank_of(0, 0)

    def test_block_cyclic_ownership(self):
        g = ProcessGrid(2, 3)
        assert g.owner_coords(0, 0) == (0, 0)
        assert g.owner_coords(5, 7) == (1, 1)
        assert g.owner(2, 4) == g.rank_of(0, 1)
        assert g.owns(g.rank_of(1, 2), 3, 5)

    def test_row_col_ranks(self):
        g = ProcessGrid(2, 3)
        assert g.row_ranks(0) == (0, 1, 2)
        assert g.row_ranks(1) == (3, 4, 5)
        assert g.row_ranks(2) == (0, 1, 2)  # wraps (P_r(k) = k mod P_r)
        assert g.col_ranks(1) == (1, 4)

    def test_local_blocks_partition(self):
        """Every block is owned by exactly one rank."""
        g = ProcessGrid(2, 3)
        nb = 7
        seen = set()
        for r in range(g.size):
            blocks = g.local_blocks(r, nb)
            assert not (seen & set(blocks))
            seen.update(blocks)
        assert len(seen) == nb * nb

    def test_local_rows_cyclic(self):
        g = ProcessGrid(2, 3)
        assert g.local_block_rows(0, 5) == [0, 2, 4]
        assert g.local_block_rows(3, 5) == [1, 3]


class TestPlacements:
    def test_tiled_matches_paper_figure1(self):
        """K=4, Q=6: 24 ranks on 4 nodes, 2x3 tile per node."""
        p = tiled_placement(ProcessGrid(4, 6), 2, 3)
        assert p.kr == 2 and p.kc == 2
        assert p.n_nodes == 4
        assert p.ranks_per_node == 6
        # Top-left 2x3 block of coordinates on node 0.
        g = p.grid
        for row in range(2):
            for col in range(3):
                assert p.node_of(g.rank_of(row, col)) == 0
        assert p.node_of(g.rank_of(0, 3)) == 1
        assert p.node_of(g.rank_of(2, 0)) == 2
        assert p.node_of(g.rank_of(3, 5)) == 3

    def test_tiled_indivisible_rejected(self):
        with pytest.raises(ConfigurationError):
            tiled_placement(ProcessGrid(4, 6), 3, 3)

    def test_contiguous_is_row_tile(self):
        p = contiguous_placement(ProcessGrid(4, 6), 6)
        assert (p.qr, p.qc) == (1, 6)
        assert p.node_of(0) == 0 and p.node_of(5) == 0 and p.node_of(6) == 1

    def test_contiguous_multirow(self):
        p = contiguous_placement(ProcessGrid(4, 4), 8)
        assert (p.qr, p.qc) == (2, 4)

    def test_contiguous_indivisible(self):
        with pytest.raises(ConfigurationError):
            contiguous_placement(ProcessGrid(4, 6), 5)

    def test_contiguous_wrapping_rejected(self):
        with pytest.raises(ConfigurationError):
            contiguous_placement(ProcessGrid(4, 6), 4)

    def test_optimal_prefers_square_tile(self):
        p = optimal_placement(ProcessGrid(4, 6), 6)
        assert (p.qr, p.qc) == (2, 3)

    def test_optimal_minimizes_volume_factor(self):
        """The chosen tile minimizes Q_r/P_r + Q_c/P_c over divisors."""
        grid = ProcessGrid(8, 8)
        p = optimal_placement(grid, 4)
        assert (p.qr, p.qc) == (2, 2)

    def test_optimal_no_valid_tile(self):
        with pytest.raises(ConfigurationError):
            optimal_placement(ProcessGrid(5, 5), 4)

    def test_enumerate_placements_fig3_sweep(self):
        ps = enumerate_placements(24, 6)
        descs = {p.describe() for p in ps}
        assert len(ps) == len(descs)  # all distinct
        assert any(p.kr == p.kc == 2 for p in ps)  # the optimum exists
        for p in ps:
            assert p.grid.size == 24
            assert p.ranks_per_node == 6
            assert p.n_nodes == 4

    def test_local_index_stable(self):
        p = tiled_placement(ProcessGrid(4, 6), 2, 3)
        # Each node's local indices are 0..5 with no repeats.
        by_node: dict[int, list[int]] = {}
        for r in range(24):
            by_node.setdefault(p.node_of(r), []).append(p.local_index(r))
        for node, idxs in by_node.items():
            assert sorted(idxs) == list(range(6))

    def test_ascii_diagram(self):
        p = tiled_placement(ProcessGrid(2, 2), 1, 1)
        dia = p.ascii_diagram()
        assert dia.splitlines()[0].split() == ["0", "1"]
        assert dia.splitlines()[1].split() == ["2", "3"]

    def test_describe_format(self):
        p = tiled_placement(ProcessGrid(4, 6), 2, 3)
        assert p.describe() == "P=4x6 K=2x2 Q=2x3"

    def test_mismatched_mapping_rejected(self):
        from repro.core.placement import RankPlacement

        with pytest.raises(ConfigurationError):
            RankPlacement(ProcessGrid(2, 2), 1, 1, (0, 0))  # wrong length
        with pytest.raises(ConfigurationError):
            RankPlacement(ProcessGrid(2, 2), 2, 3, (0,) * 4)  # tile mismatch

    @given(st.sampled_from([(2, 2), (2, 3), (4, 4), (4, 6), (3, 3)]),
           st.sampled_from([1, 2, 3, 4, 6]))
    @settings(max_examples=30, deadline=None)
    def test_tiled_partition_property(self, dims, q):
        """Tiled placements partition ranks into equal-size nodes."""
        pr, pc = dims
        grid = ProcessGrid(pr, pc)
        for qr, qc in [(a, q // a) for a in range(1, q + 1) if q % a == 0]:
            if pr % qr or pc % qc:
                continue
            p = tiled_placement(grid, qr, qc)
            counts: dict[int, int] = {}
            for r in range(grid.size):
                counts[p.node_of(r)] = counts.get(p.node_of(r), 0) + 1
            assert all(c == qr * qc for c in counts.values())
            assert len(counts) == p.n_nodes
