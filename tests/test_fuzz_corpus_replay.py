"""Tier-1 replay of the checked-in fuzz regression corpus.

``tests/data/fuzz_regressions.jsonl`` holds scenarios for real bugs the
fuzzer found (see each record's ``note``): the OOM-degrade
schedule-shape mismatch that broke bit-exact restart under look-ahead
schedules, and the injector crash on memory flips targeting ranks that
own no blocks.  Each record stores the full scenario tuple and the
outcome digest of the *fixed* tree; this test re-runs every scenario
and byte-compares, so any regression shows up as digest drift (or a
fresh oracle violation) in the ordinary test suite - no fuzzing budget
required.

Grow the corpus by appending the minimized repro of any future finding:

    repro-apsp fuzz corpus minimize --corpus <session.jsonl> \\
        --output tests/data/fuzz_regressions.jsonl
"""

import os

import pytest

from repro.fuzz import Corpus, OracleSuite

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "data", "fuzz_regressions.jsonl")


def records():
    return Corpus(CORPUS_PATH).records()


def test_regression_corpus_is_loadable_and_nonempty():
    recs = records()
    assert len(recs) >= 4
    for rec in recs:
        assert rec.outcome is not None, rec.scenario_id
        assert rec.note, f"{rec.scenario_id} lacks a triage note"


@pytest.mark.parametrize("rec", records(), ids=lambda r: r.scenario_id)
def test_regression_scenario_replays_bit_exact(rec):
    report = Corpus(CORPUS_PATH).replay(rec.scenario_id)
    assert report.bit_exact, (
        f"{rec.scenario_id} ({rec.note}) regressed: {report.detail}"
    )


def test_regression_corpus_passes_all_oracles():
    suite = OracleSuite()
    for rec in records():
        violations = suite.check(rec.scenario, rec.outcome)
        assert not violations, (
            f"{rec.scenario_id} ({rec.note}): "
            f"{[v.detail for v in violations]}"
        )


def test_oom_degrade_regressions_exercise_the_degrade_path():
    # The stored counters prove the scenarios still reach the code the
    # bugs lived in; if a refactor reroutes them, the corpus needs
    # refreshing rather than silently testing nothing.
    hits = {"faults.oom_degraded": 0, "faults.memflips_missed": 0}
    for rec in records():
        for key in hits:
            hits[key] += (rec.outcome.fault_counters or {}).get(key, 0)
    assert hits["faults.oom_degraded"] >= 2
    assert hits["faults.memflips_missed"] >= 2


def test_fleet_regressions_exercise_scheduler_retry():
    # The fleet records pin checkpoint-carrying and from-scratch
    # re-admission; their stored counters must show the scheduler's
    # retry layer actually fired (not the in-run restart loop, which
    # the records disarm with policy:restarts=0).
    retries = sum(
        (rec.outcome.fault_counters or {}).get("fleet.resilience.retries", 0)
        for rec in records()
    )
    assert retries >= 2
    assert any(rec.scenario.is_fleet and rec.scenario.jobs > 1 for rec in records())
