"""Property-style round-trip tests for fault-plan parsing.

Satellite of the fuzzer PR: every fault class must survive
``spec string -> FaultPlan -> to_json -> from_json`` losslessly, and
malformed specs must be rejected with :class:`FaultPlanError` (exit
code 13), never a bare TypeError/ValueError.  Uses hypothesis when
available (CI installs it) and falls back to the deterministic
examples otherwise.
"""

import dataclasses
import json
import math

import pytest

from repro.errors import FaultPlanError, exit_code_for
from repro.faults.plan import (
    ComputeStraggler,
    FaultPlan,
    MemoryFault,
    MessageFault,
    NicWindow,
    OomFault,
    RankCrash,
    _coerce,
    _parse_kv,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ranks = st.integers(min_value=0, max_value=63)
rounds = st.integers(min_value=0, max_value=40)
probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)
times = st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=64)
factors = st.floats(min_value=0.5, max_value=16.0, allow_nan=False, width=64).map(
    lambda f: max(f, 0.5)
)
bits = st.integers(min_value=1, max_value=8)


def fmt(x) -> str:
    """Format a float the way a user would type it in a spec string -
    repr round-trips float64 exactly."""
    return repr(x) if isinstance(x, float) else str(x)


# ---------------------------------------------------------------------------
# spec-string strategies per fault class
# ---------------------------------------------------------------------------

# A message fault needs a selector: nth= (1-based) or p= (> 0).
selectors = st.one_of(
    st.integers(min_value=1, max_value=9).map(lambda n: f"nth={n}"),
    st.floats(min_value=0.001, max_value=1.0, allow_nan=False, width=64).map(
        lambda p: f"p={fmt(p)}"
    ),
)
message_specs = st.builds(
    lambda kind, sel, src, b: (
        f"{kind}:"
        + ",".join(
            s
            for s in (
                sel,
                f"src={src}" if src is not None else "",
                f"bits={b}" if (b is not None and kind == "corrupt") else "",
            )
            if s
        )
    ),
    st.sampled_from(["drop", "dup", "corrupt"]),
    selectors,
    st.none() | ranks,
    st.none() | bits,
)
nic_specs = st.builds(
    lambda node, f, t0, dt: f"nic:node={node},factor={fmt(f)},t0={fmt(t0)},t1={fmt(t0 + dt)}",
    ranks, factors, times, times,
)
straggler_specs = st.builds(
    lambda r, f: f"straggler:rank={r},factor={fmt(f)}", ranks, factors
)
crash_specs = st.builds(lambda r, t: f"crash:rank={r},at={fmt(t)}", ranks, times)
oom_specs = st.builds(lambda r, k: f"oom:rank={r},k={k}", ranks, rounds)
memflip_specs = st.builds(
    lambda r, k, target, b: f"memflip:rank={r},k={k},target={target},bits={b}",
    ranks, rounds, st.sampled_from(["block", "checkpoint", "oog"]), bits,
)
policy_specs = st.builds(
    lambda t, retries, ckpt, restarts: (
        "policy:"
        + ",".join(
            s
            for s in (
                f"timeout={fmt(t)}" if t is not None else "",
                f"retries={retries}" if retries is not None else "",
                f"ckpt={ckpt}" if ckpt is not None else "",
                f"restarts={restarts}" if restarts is not None else "",
            )
            if s
        )
    ),
    st.none() | st.floats(min_value=1e-6, max_value=1.0, allow_nan=False, width=64),
    st.none() | st.integers(min_value=0, max_value=9),
    st.none() | st.integers(min_value=1, max_value=8),
    st.none() | st.integers(min_value=0, max_value=5),
).filter(lambda s: s != "policy:")

any_spec = st.one_of(
    message_specs, nic_specs, straggler_specs, crash_specs, oom_specs,
    memflip_specs, policy_specs,
)


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


@RELAXED
@given(specs=st.lists(any_spec, max_size=6), seed=st.integers(0, 2**31 - 1))
def test_from_specs_to_json_round_trip(specs, seed):
    plan = FaultPlan.from_specs(specs, seed=seed)
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    # idempotent: a second round trip is byte-identical JSON
    assert again.to_json() == plan.to_json()


@RELAXED
@given(specs=st.lists(any_spec, min_size=1, max_size=4))
def test_parsed_specs_populate_matching_class(specs):
    plan = FaultPlan.from_specs(specs)
    kinds = {s.partition(":")[0] for s in specs}
    if kinds & {"drop", "dup", "corrupt"}:
        assert plan.message_faults
    if "nic" in kinds:
        assert plan.nic_windows
    if "straggler" in kinds:
        assert plan.stragglers
    if "crash" in kinds:
        assert plan.crashes
    if "oom" in kinds:
        assert plan.ooms
    if "memflip" in kinds:
        assert plan.memory_faults


@RELAXED
@given(
    n=st.integers(-(2**31), 2**31 - 1)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.booleans()
)
def test_coerce_round_trips_scalar_reprs(n):
    text = repr(n) if isinstance(n, float) else str(n)
    got = _coerce(text.lower() if isinstance(n, bool) else text)
    assert got == n and type(got) is type(n)


def test_coerce_special_values():
    assert _coerce("inf") == float("inf")
    assert _coerce("+inf") == float("inf")
    assert _coerce("true") is True
    assert _coerce("False") is False
    assert _coerce("hello") == "hello"


@RELAXED
@given(
    kv=st.dictionaries(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=6),
        st.integers(0, 99) | st.floats(0, 9, allow_nan=False, width=64),
        min_size=1,
        max_size=5,
    )
)
def test_parse_kv_round_trip(kv):
    body = ",".join(f"{k}={fmt(v)}" for k, v in kv.items())
    assert _parse_kv(body, f"x:{body}") == kv


def test_parse_kv_rejects_bare_tokens():
    with pytest.raises(FaultPlanError, match="key=value"):
        _parse_kv("rank", "straggler:rank")


# ---------------------------------------------------------------------------
# every fault class constructed directly round-trips through JSON
# ---------------------------------------------------------------------------


def test_full_plan_json_round_trip_lossless():
    plan = FaultPlan(
        message_faults=(
            MessageFault(kind="drop", src=1, nth=2),
            MessageFault(kind="corrupt", p=0.25, bits=3),
            MessageFault(kind="dup", dst=0, tag=7, nth=1),
        ),
        nic_windows=(NicWindow(node=0, factor=4.0, t0=0.1, t1=float("inf")),),
        stragglers=(ComputeStraggler(rank=2, factor=3.5),),
        crashes=(RankCrash(rank=1, at=0.001),),
        ooms=(OomFault(rank=0, k=3),),
        memory_faults=(
            MemoryFault(rank=0, k=1, target="block", bits=2, block=(1, 2)),
            MemoryFault(rank=1, k=0, target="checkpoint"),
        ),
        seed=42,
        recv_timeout=0.5,
        max_retries=6,
        backoff=2.0,
        checkpoint_interval=2,
        max_restarts=3,
        oom_degrade=False,
    )
    again = FaultPlan.from_json(plan.to_json())
    assert again == plan
    # the infinite window survives the JSON null encoding
    assert math.isinf(again.nic_windows[0].t1)
    # the block tuple survives the JSON list encoding
    assert again.memory_faults[0].block == (1, 2)


# ---------------------------------------------------------------------------
# rejection: malformed input raises FaultPlanError (exit code 13)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "spec, fragment",
    [
        ("drp:p=0.1", "unknown fault kind"),
        ("drop:pp=0.1", "unknown keys"),
        ("drop:p=1.5", "p"),
        ("corrupt:p=0.1,bits=0", "bits"),
        ("nic:node=0", "missing"),
        ("nic:node=-1,factor=2", "node"),
        ("nic:node=0,factor=0", "factor"),
        ("nic:node=0,factor=2,t0=0.5,t1=0.1", "empty nic window"),
        ("straggler:rank=0,factor=hot", "factor"),
        ("crash:rank=-2,at=0", "rank"),
        ("oom:rank=0,k=-1", "k"),
        ("memflip:rank=0,k=0,target=cache", "target"),
        ("memflip:rank=0,k=0,i=1", "both i= and j="),
        ("policy:tmeout=0.1", "unknown policy key"),
        ("policy:retries=-1", "max_retries"),
        ("policy:backoff=0.5", "backoff"),
        ("straggler:rank", "key=value"),
    ],
)
def test_malformed_specs_raise_fault_plan_error(spec, fragment):
    with pytest.raises(FaultPlanError, match=fragment):
        FaultPlan.from_specs([spec])


def test_fault_plan_error_exit_code_is_13():
    try:
        FaultPlan.from_specs(["drop:p=2"])
    except FaultPlanError as exc:
        assert exit_code_for(exc) == 13
    else:  # pragma: no cover
        pytest.fail("expected FaultPlanError")


@pytest.mark.parametrize(
    "mutate, fragment",
    [
        (lambda d: d.update(bogus=1), "unknown fault-plan keys"),
        (lambda d: d["message_faults"].append({"kind": "drop", "qq": 1}), "unknown keys"),
        (lambda d: d["ooms"].append([1, 2]), "must be a JSON object"),
        (lambda d: d["crashes"].append({"rank": 0, "at": -1}), "crash time"),
        (lambda d: d["memory_faults"].append(
            {"rank": 0, "k": 0, "block": [1, 2, 3]}), "block"),
    ],
)
def test_malformed_json_raises_fault_plan_error(mutate, fragment):
    base = json.loads(FaultPlan(crashes=(RankCrash(rank=0, at=0.1),)).to_json())
    mutate(base)
    with pytest.raises(FaultPlanError, match=fragment):
        FaultPlan.from_json(json.dumps(base))


def test_from_json_rejects_non_object():
    with pytest.raises(FaultPlanError, match="must be an object"):
        FaultPlan.from_json("[1, 2]")
    with pytest.raises(FaultPlanError, match="invalid fault-plan JSON"):
        FaultPlan.from_json("{nope")


@RELAXED
@given(specs=st.lists(any_spec, max_size=4))
def test_asdict_json_is_strict_json(specs):
    # to_json must always be loadable by a strict parser (no NaN/inf
    # literals leak through the None encoding of open windows).
    payload = FaultPlan.from_specs(specs).to_json()
    json.loads(payload)
    assert "Infinity" not in payload


def test_every_field_validated():
    # spot-check the direct-constructor validation added with the parser
    # hardening: types, not just ranges
    with pytest.raises(FaultPlanError, match="seed"):
        FaultPlan(seed="zero")
    with pytest.raises(FaultPlanError, match="oom_degrade"):
        FaultPlan(oom_degrade="yes")
    with pytest.raises(FaultPlanError, match="nth"):
        MessageFault(kind="drop", nth=True)
    with pytest.raises(FaultPlanError, match="factor"):
        ComputeStraggler(rank=0, factor="fast")
    for field in ("message_faults", "nic_windows", "stragglers", "crashes",
                  "ooms", "memory_faults"):
        assert field in {f.name for f in dataclasses.fields(FaultPlan)}
