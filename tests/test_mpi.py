"""Tests for the simulated MPI layer: point-to-point and collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.mpi import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    SimMPI,
    barrier,
    bcast_ring,
    bcast_tree,
    gather,
    virtual_nbytes,
)
from repro.sim import Environment


def make_world(env, n_ranks=4, n_nodes=2, dim_scale=1.0):
    cost = CostModel(SUMMIT, dim_scale=dim_scale)
    cluster = SimCluster(env, SUMMIT, n_nodes, cost)
    per = n_ranks // n_nodes
    mpi = SimMPI(env, cluster, [r // per for r in range(n_ranks)])
    return mpi, cluster


class TestPointToPoint:
    def test_send_recv_value(self, env):
        mpi, _ = make_world(env)
        world = mpi.world()
        out = {}

        def sender():
            comm = world.localize(0)
            yield from comm.send(1, {"x": 1}, tag=5)

        def receiver():
            comm = world.localize(1)
            got = yield from comm.recv(src=0, tag=5)
            out["got"] = got

        env.process(sender())
        env.process(receiver())
        env.run()
        assert out["got"] == {"x": 1}

    def test_tag_matching_out_of_order(self, env):
        mpi, _ = make_world(env)
        world = mpi.world()
        out = []

        def sender():
            comm = world.localize(0)
            yield from comm.send(1, "first", tag=1)
            yield from comm.send(1, "second", tag=2)

        def receiver():
            comm = world.localize(1)
            b = yield from comm.recv(src=0, tag=2)
            a = yield from comm.recv(src=0, tag=1)
            out.extend([b, a])

        env.process(sender())
        env.process(receiver())
        env.run()
        assert out == ["second", "first"]

    def test_any_source_any_tag(self, env):
        mpi, _ = make_world(env)
        world = mpi.world()
        got = []

        def sender(rank, msg):
            comm = world.localize(rank)
            yield from comm.send(3, msg, tag=rank)

        def receiver():
            comm = world.localize(3)
            for _ in range(2):
                m = yield from comm.recv(src=ANY_SOURCE, tag=ANY_TAG)
                got.append(m)

        env.process(sender(0, "from0"))
        env.process(sender(1, "from1"))
        env.process(receiver())
        env.run()
        assert sorted(got) == ["from0", "from1"]

    def test_payload_copied_at_send(self, env):
        """Mutating the sender's array after isend must not corrupt the
        message (eager buffering)."""
        mpi, _ = make_world(env)
        world = mpi.world()
        payload = np.ones((4, 4))
        result = {}

        def sender():
            comm = world.localize(0)
            ev = comm.isend(1, payload, tag=0)
            yield env.timeout(0)
            payload[:] = 999.0  # mutate after the send is in flight
            yield ev

        def receiver():
            comm = world.localize(1)
            got = yield from comm.recv(src=0)
            result["sum"] = got.sum()

        env.process(sender())
        env.process(receiver())
        env.run()
        assert result["sum"] == 16.0

    def test_recv_message_metadata(self, env):
        mpi, _ = make_world(env)
        world = mpi.world()
        out = {}

        def sender():
            comm = world.localize(2)
            yield from comm.send(0, "hello", tag=9)

        def receiver():
            comm = world.localize(0)
            msg = yield from comm.recv_message(tag=9)
            out["msg"] = msg

        env.process(sender())
        env.process(receiver())
        env.run()
        assert out["msg"].src == 2
        assert out["msg"].tag == 9
        assert out["msg"].delivered_at >= out["msg"].sent_at

    def test_intranode_vs_internode_accounting(self, env):
        mpi, cluster = make_world(env, n_ranks=4, n_nodes=2)
        world = mpi.world()

        def prog():
            c0 = world.localize(0)
            yield from c0.send(1, np.ones((10, 10)))  # same node (ranks 0,1)
            yield from c0.send(2, np.ones((10, 10)))  # other node

        def sink(rank):
            comm = world.localize(rank)
            yield from comm.recv(src=0)

        env.process(prog())
        env.process(sink(1))
        env.process(sink(2))
        env.run()
        assert mpi.bytes_intranode == pytest.approx(400)
        assert mpi.bytes_internode == pytest.approx(400)
        assert mpi.message_count == 2

    def test_virtual_nbytes_scaling(self, env):
        cost = CostModel(SUMMIT, dim_scale=3.0)
        assert virtual_nbytes(np.ones((2, 2)), cost) == pytest.approx(2 * 3 * 2 * 3 * 4)
        assert virtual_nbytes(np.ones(4), cost) == pytest.approx(12 * 4)
        assert virtual_nbytes([np.ones((1, 1)), np.ones((1, 1))], cost) == pytest.approx(72)
        assert virtual_nbytes({"a": np.ones((1, 1))}, cost) == pytest.approx(36)
        assert virtual_nbytes(None, cost) == 8.0


class TestCommunicators:
    def test_duplicate_ranks_rejected(self, env):
        mpi, _ = make_world(env)
        with pytest.raises(ConfigurationError):
            Comm(mpi, (0, 0, 1), me=None)

    def test_localize_membership(self, env):
        mpi, _ = make_world(env)
        sub = Comm(mpi, (1, 3), me=None)
        assert sub.localize(3).rank == 1
        with pytest.raises(ConfigurationError):
            sub.localize(0)

    def test_unlocalized_rank_raises(self, env):
        mpi, _ = make_world(env)
        with pytest.raises(ConfigurationError):
            _ = Comm(mpi, (0, 1), me=None).rank

    def test_subgroup(self, env):
        mpi, _ = make_world(env)
        world = mpi.world()
        sub = world.subgroup([0, 2])
        assert sub.world_ranks == (0, 2)
        assert sub.to_world(1) == 2

    def test_invalid_node_mapping(self, env):
        cost = CostModel(SUMMIT)
        cluster = SimCluster(env, SUMMIT, 1, cost)
        with pytest.raises(ConfigurationError):
            SimMPI(env, cluster, [0, 5])


@pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 8])
class TestBroadcasts:
    def run_collective(self, env, size, fn):
        mpi, _ = make_world(env, n_ranks=size, n_nodes=1)
        world = mpi.world()
        results = {}

        def prog(rank):
            comm = world.localize(rank)
            got = yield from fn(comm, rank)
            results[rank] = got

        for r in range(size):
            env.process(prog(r))
        env.run()
        return results

    def test_tree_bcast_delivers_everywhere(self, env, size):
        root = size // 2

        def fn(comm, rank):
            payload = np.full((3, 3), 7.0) if rank == root else None
            got = yield from bcast_tree(comm, root, payload, tag=1)
            return got

        results = self.run_collective(env, size, fn)
        assert all(np.all(results[r] == 7.0) for r in range(size))

    def test_ring_bcast_delivers_everywhere(self, env, size):
        root = 0

        def fn(comm, rank):
            payload = "token" if rank == root else None
            got, relay = yield from bcast_ring(comm, root, payload, tag=2)
            yield relay
            return got

        results = self.run_collective(env, size, fn)
        assert all(results[r] == "token" for r in range(size))

    def test_ring_bcast_sync_relay(self, env, size):
        def fn(comm, rank):
            payload = [1, 2, 3] if rank == 0 else None
            got, relay = yield from bcast_ring(comm, 0, payload, tag=3, async_relay=False)
            assert relay.triggered
            return got

        results = self.run_collective(env, size, fn)
        assert all(results[r] == [1, 2, 3] for r in range(size))

    def test_barrier_synchronizes(self, env, size):
        reach = {}

        def fn(comm, rank):
            yield env.timeout(rank * 1.0)  # stagger arrivals
            yield from barrier(comm)
            reach[rank] = env.now
            return None

        self.run_collective(env, size, fn)
        # Nobody leaves the barrier before the last arrival (t = size-1).
        assert all(t >= size - 1 for t in reach.values())

    def test_gather(self, env, size):
        root = size - 1

        def fn(comm, rank):
            out = yield from gather(comm, root, rank * 11)
            return out

        results = self.run_collective(env, size, fn)
        assert results[root] == [r * 11 for r in range(size)]
        for r in range(size):
            if r != root:
                assert results[r] is None


class TestRingProperties:
    def test_neighbor_receives_before_ring_completes(self, env):
        """The paper's §3.3 point: with the ring, root+1 has the panel
        long before the farthest member - enabling the look-ahead."""
        size = 8
        mpi, _ = make_world(env, n_ranks=size, n_nodes=size // 2, dim_scale=2000.0)
        world = mpi.world()
        arrival = {}

        def prog(rank):
            comm = world.localize(rank)
            payload = np.ones((8, 8)) if rank == 0 else None
            got, relay = yield from bcast_ring(comm, 0, payload, tag=1)
            arrival[rank] = env.now
            yield relay

        for r in range(size):
            env.process(prog(r))
        env.run()
        assert arrival[1] < arrival[size - 1]
        # Arrival times increase along the ring.
        times = [arrival[r] for r in range(1, size)]
        assert times == sorted(times)

    def test_tree_shallower_than_ring_for_latency(self, env):
        """With tiny messages the tree (log depth) beats the ring
        (linear depth) - why DiagBcast stays on the tree."""

        def run(kind):
            e = Environment()
            mpi, _ = make_world(e, n_ranks=16, n_nodes=8)
            world = mpi.world()

            def prog(rank):
                comm = world.localize(rank)
                payload = b"x" if rank == 0 else None
                if kind == "tree":
                    yield from bcast_tree(comm, 0, payload, tag=1, nbytes=8)
                else:
                    _, relay = yield from bcast_ring(comm, 0, payload, tag=1, nbytes=8)
                    yield relay

            for r in range(16):
                e.process(prog(r))
            e.run()
            return e.now

        assert run("tree") < run("ring")

    def test_ring_minimizes_pernode_nic_occupancy(self, env):
        """§3.3's bandwidth argument: in the ring every process sends
        and receives exactly one message, so the busiest NIC carries
        one message's worth; the binomial tree's root sends log2(P)
        messages through a single NIC.  (The *makespan* of a single
        unsegmented broadcast favors the tree; the ring pays off
        because panel broadcasts overlap compute and each other.)"""

        def run(kind):
            e = Environment()
            # One rank per node so every hop crosses a NIC.
            mpi, cluster = make_world(e, n_ranks=8, n_nodes=8, dim_scale=1.0)
            world = mpi.world()
            big = np.ones((2000, 2000))  # 16 MB

            def prog(rank):
                comm = world.localize(rank)
                payload = big if rank == 0 else None
                if kind == "tree":
                    yield from bcast_tree(comm, 0, payload, tag=1)
                else:
                    _, relay = yield from bcast_ring(comm, 0, payload, tag=1)
                    yield relay

            for r in range(8):
                e.process(prog(r))
            e.run()
            return cluster.max_nic_bytes(), e.now

        ring_max, _ = run("ring")
        tree_max, _ = run("tree")
        # Tree root forwards to 3 children (log2 8); ring nodes relay once.
        assert tree_max == pytest.approx(3 * ring_max)


class TestReservedTags:
    """Collective control traffic lives on negative reserved tags, so a
    user tag can never collide with (or spoof) it."""

    def test_reserved_tag_constants(self):
        from repro.mpi.collectives import BARRIER_TAG, GATHER_TAG

        assert BARRIER_TAG == -7
        assert GATHER_TAG == -9
        assert BARRIER_TAG != GATHER_TAG

    @pytest.mark.parametrize("bad_tag", [-1, -7, -9])
    def test_bcast_rejects_negative_user_tag(self, env, bad_tag):
        mpi, _ = make_world(env)
        world = mpi.world()

        def prog():
            yield from bcast_tree(world.localize(0), 0, "x", tag=bad_tag)

        env.process(prog())
        with pytest.raises(ConfigurationError, match="non-negative"):
            env.run()

    def test_ring_rejects_negative_user_tag(self, env):
        mpi, _ = make_world(env)
        world = mpi.world()

        def prog():
            yield from bcast_ring(world.localize(0), 0, "x", tag=-3)

        env.process(prog())
        with pytest.raises(ConfigurationError):
            env.run()

    def test_barrier_and_gather_use_reserved_tags(self, env):
        """Collectives work even while user traffic occupies tag 0 -
        the reserved tags keep them in separate mailboxes."""
        from repro.mpi.collectives import BARRIER_TAG, GATHER_TAG

        mpi, _ = make_world(env, n_ranks=2, n_nodes=1)
        world = mpi.world()
        out = {}

        def rank0():
            comm = world.localize(0)
            yield from comm.send(1, "user payload", tag=0)
            yield from barrier(comm)
            out["gathered"] = yield from gather(comm, 0, "from-0")

        def rank1():
            comm = world.localize(1)
            yield from barrier(comm)
            yield from gather(comm, 0, "from-1")  # non-root contributes
            out["user"] = yield from comm.recv(src=0, tag=0)

        env.process(rank0())
        env.process(rank1())
        env.run()
        assert out["user"] == "user payload"
        assert out["gathered"] == ["from-0", "from-1"]
        assert BARRIER_TAG < 0 and GATHER_TAG < 0
