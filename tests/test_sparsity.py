"""Tests for block-sparsity exploitation (structured-sparse future
work): correctness under fill-in, and the compute/communication
savings on structured graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apsp
from repro.errors import ConfigurationError
from repro.graphs import (
    banded_graph,
    erdos_renyi,
    grid_road_network,
    ring_of_cliques,
    scipy_floyd_warshall,
)
from repro.semiring import INF

VARIANTS = ("baseline", "pipelined", "reordering", "async")


def run(w, variant="baseline", sparse=True, **kw):
    return apsp(
        w,
        variant=variant,
        block_size=kw.pop("block_size", 5),
        n_nodes=kw.pop("n_nodes", 2),
        ranks_per_node=kw.pop("ranks_per_node", 4),
        exploit_sparsity=sparse,
        **kw,
    )


def assert_correct(res, w):
    ref = scipy_floyd_warshall(w)
    assert np.allclose(
        np.where(np.isinf(res.dist), -1, res.dist), np.where(np.isinf(ref), -1, ref)
    )


class TestCorrectness:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_banded(self, variant):
        w = banded_graph(40, 2, seed=1)
        assert_correct(run(w, variant), w)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_ring_of_cliques(self, variant):
        w = ring_of_cliques(5, 8)
        assert_correct(run(w, variant), w)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_road_network(self, variant):
        w = grid_road_network(6, 7, seed=3)
        assert_correct(run(w, variant), w)

    def test_dense_unaffected(self, dense24):
        assert_correct(run(dense24, "async", block_size=4), dense24)

    def test_fully_disconnected(self):
        w = np.full((20, 20), INF)
        np.fill_diagonal(w, 0.0)
        res = run(w, "async", block_size=4)
        assert np.array_equal(np.isinf(res.dist), ~np.eye(20, dtype=bool))

    def test_two_components(self):
        w = np.full((24, 24), INF)
        np.fill_diagonal(w, 0.0)
        w[:12, :12] = banded_graph(12, 2, seed=4)
        w[12:, 12:] = banded_graph(12, 2, seed=5)
        assert_correct(run(w, "pipelined", block_size=4), w)

    def test_fill_in_handled(self):
        """A graph whose closure is dense despite a sparse start:
        emptiness must be re-evaluated as fill-in spreads."""
        n = 30
        w = np.full((n, n), INF)
        np.fill_diagonal(w, 0.0)
        for i in range(n - 1):  # a single path through all vertices
            w[i, i + 1] = 1.0
        res = run(w, "async", block_size=5)
        ref = scipy_floyd_warshall(w)
        assert np.allclose(np.where(np.isinf(res.dist), -1, res.dist),
                           np.where(np.isinf(ref), -1, ref))
        # Upper triangle fully filled in.
        assert np.all(np.isfinite(res.dist[np.triu_indices(n, 1)]))

    def test_with_path_tracking(self):
        from repro.extensions import path_length, reconstruct_path

        w = banded_graph(30, 2, seed=9)
        res = run(w, "baseline", track_paths=True)
        assert_correct(res, w)
        p = reconstruct_path(res.next_hops, 0, 29)
        assert path_length(w, p) == pytest.approx(res.dist[0, 29])

    @given(st.integers(8, 24), st.integers(1, 3), st.integers(0, 10**5))
    @settings(max_examples=15, deadline=None)
    def test_property_sparse_equals_dense_run(self, n, band, seed):
        w = banded_graph(n, band, seed=seed)
        a = run(w, "async", sparse=False, block_size=4, ranks_per_node=2)
        b = run(w, "async", sparse=True, block_size=4, ranks_per_node=2)
        assert np.allclose(np.where(np.isinf(a.dist), -1, a.dist),
                           np.where(np.isinf(b.dist), -1, b.dist))


class TestSavings:
    def test_structured_graph_saves_time_and_comm(self):
        w = banded_graph(40, 2, seed=1)
        dense_run = run(w, "baseline", sparse=False, dim_scale=100.0)
        sparse_run = run(w, "baseline", sparse=True, dim_scale=100.0)
        assert sparse_run.report.elapsed < 0.92 * dense_run.report.elapsed
        total_d = dense_run.report.internode_bytes + dense_run.report.intranode_bytes
        total_s = sparse_run.report.internode_bytes + sparse_run.report.intranode_bytes
        assert total_s < 0.8 * total_d

    def test_dense_graph_costs_nothing(self, dense24):
        dense_run = run(dense24, "baseline", sparse=False, block_size=4, dim_scale=100.0)
        sparse_run = run(dense24, "baseline", sparse=True, block_size=4, dim_scale=100.0)
        assert sparse_run.report.elapsed == pytest.approx(dense_run.report.elapsed, rel=1e-6)

    def test_unstructured_sparsity_does_not_help_blocks(self):
        """The supernodal-paper motivation: random sparsity leaves few
        all-empty blocks, so the block method saves ~nothing - it is
        *structure* that pays."""
        w = erdos_renyi(40, 0.08, seed=2)
        dense_run = run(w, "baseline", sparse=False, dim_scale=100.0)
        sparse_run = run(w, "baseline", sparse=True, dim_scale=100.0)
        assert sparse_run.report.elapsed >= 0.95 * dense_run.report.elapsed


class TestValidation:
    def test_hollow_rejected(self, dense24):
        with pytest.raises(ConfigurationError):
            apsp(dense24, variant="baseline", block_size=4, n_nodes=1,
                 ranks_per_node=2, exploit_sparsity=True,
                 compute_numerics=False, collect_result=False)

    def test_offload_rejected(self, dense24):
        with pytest.raises(ConfigurationError):
            apsp(dense24, variant="offload", block_size=4, n_nodes=1,
                 ranks_per_node=2, exploit_sparsity=True)
