"""All optional features at once: the flags must compose.

One run with path tracking + sparsity exploitation + segmented ring +
stragglers on a structured graph, against the oracle - the kind of
configuration a downstream user will eventually construct.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apsp
from repro.extensions import path_length, reconstruct_path
from repro.graphs import banded_graph, ring_of_cliques, scipy_floyd_warshall


def everything_on(w, variant="async", **kw):
    return apsp(
        w,
        variant=variant,
        block_size=5,
        n_nodes=2,
        ranks_per_node=4,
        track_paths=True,
        exploit_sparsity=True,
        ring_segments=3,
        stragglers={1: 2.5},
        trace=True,
        **kw,
    )


class TestAllFlagsTogether:
    @pytest.mark.parametrize("variant", ["baseline", "pipelined", "reordering", "async"])
    def test_correct_distances(self, variant):
        w = banded_graph(30, 3, seed=4)
        res = everything_on(w, variant)
        ref = scipy_floyd_warshall(w)
        assert np.allclose(
            np.where(np.isinf(res.dist), -1, res.dist),
            np.where(np.isinf(ref), -1, ref),
        )

    def test_paths_still_valid(self):
        w = ring_of_cliques(4, 7)
        res = everything_on(w)
        for i in (0, 9, 27):
            for j in (3, 15, 20):
                if i == j:
                    continue
                p = reconstruct_path(res.next_hops, i, j)
                assert p is not None
                assert path_length(w, p) == pytest.approx(res.dist[i, j])

    def test_report_and_trace_populated(self):
        w = banded_graph(24, 2, seed=8)
        res = everything_on(w)
        assert res.report.messages > 0
        assert res.tracer.spans
        assert res.report.breakdown(res.tracer)

    @given(st.integers(0, 10**5), st.integers(10, 26))
    @settings(max_examples=10, deadline=None)
    def test_property_all_flags_match_oracle(self, seed, n):
        w = banded_graph(n, 2, seed=seed)
        res = everything_on(w)
        ref = scipy_floyd_warshall(w)
        assert np.allclose(
            np.where(np.isinf(res.dist), -1, res.dist),
            np.where(np.isinf(ref), -1, ref),
        )
