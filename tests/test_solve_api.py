"""Tests for the public entry point (:mod:`repro.api`).

Covers the facade's contract: ``solve()`` equals the engine, the
frozen ``SolveConfig``, each ``from_env`` precedence rule (explicit >
environment > default) for the two environment knobs, sink validation
before solving (exit code 12), and the legacy ``repro.apsp``
deprecation shim.
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

import repro
from repro.api import ObsSinks, SolveConfig, resolve_machine, solve
from repro.core import apsp
from repro.errors import ConfigurationError, SinkError
from repro.graphs import uniform_random_dense


@pytest.fixture(scope="module")
def graph():
    return uniform_random_dense(24, seed=7)


CLUSTER = dict(block_size=4, n_nodes=2, ranks_per_node=3)


class TestSolveFacade:
    def test_matches_engine(self, graph):
        via_engine = apsp(graph, variant="async", **CLUSTER)
        via_facade = solve(graph, SolveConfig(variant="async", **CLUSTER))
        assert via_facade.report.elapsed == via_engine.report.elapsed
        np.testing.assert_array_equal(via_facade.dist, via_engine.dist)

    def test_overrides_on_top_of_config(self, graph):
        base = SolveConfig(variant="baseline", **CLUSTER)
        result = solve(graph, base, variant="offload")
        assert result.report.variant == "offload"

    def test_default_config(self, graph):
        result = solve(graph)
        assert result.report.variant == "async"
        assert result.dist is not None

    def test_result_vocabulary(self, graph):
        result = solve(graph, SolveConfig(**CLUSTER, obs=ObsSinks(metrics=True)))
        assert result.makespan == result.report.elapsed
        assert result.certificate is None  # verify off
        assert result.faults is None  # no plan armed
        assert result.metrics is not None
        assert result.report.makespan == result.report.elapsed

    def test_grid_tuple(self, graph):
        result = solve(graph, SolveConfig(**CLUSTER, grid=(3, 2)))
        assert (result.report.grid_pr, result.report.grid_pc) == (3, 2)

    def test_rejects_non_config(self, graph):
        with pytest.raises(ConfigurationError):
            solve(graph, config={"variant": "async"})

    def test_unknown_override_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            solve(graph, SolveConfig(), block_sze=4)

    def test_config_is_frozen(self):
        cfg = SolveConfig()
        with pytest.raises(Exception):
            cfg.variant = "offload"

    def test_replace_derives(self):
        cfg = SolveConfig(variant="baseline").replace(variant="offload")
        assert cfg.variant == "offload"
        assert SolveConfig().replace() == SolveConfig()

    def test_resolve_machine(self):
        from repro.machine import MACHINES

        spec = resolve_machine("summit")
        assert spec is MACHINES["summit"]
        assert resolve_machine(spec) is spec
        with pytest.raises(ConfigurationError):
            resolve_machine("not-a-machine")
        with pytest.raises(ConfigurationError):
            resolve_machine(42)


class TestFromEnvPrecedence:
    """One test per precedence rule, per knob (explicit > env > default)."""

    def test_backend_explicit_beats_env(self):
        env = {"REPRO_SRGEMM_BACKEND": "tiled"}
        cfg = SolveConfig.from_env(environ=env, kernel_backend="reference")
        assert cfg.kernel_backend == "reference"

    def test_backend_env_beats_default(self):
        cfg = SolveConfig.from_env(environ={"REPRO_SRGEMM_BACKEND": "tiled"})
        assert cfg.kernel_backend == "tiled"

    def test_backend_default_when_unset(self):
        cfg = SolveConfig.from_env(environ={})
        assert cfg.kernel_backend is None  # engine resolves "reference"

    ENV_PLAN = json.dumps(
        {"message_faults": [{"kind": "drop", "src": 0, "dst": 1, "nth": 1}]}
    )

    def test_fault_plan_explicit_beats_env(self):
        cfg = SolveConfig.from_env(
            environ={"REPRO_FAULT_PLAN": self.ENV_PLAN},
            fault_plan="drop:src=1,dst=0,nth=2",
        )
        assert cfg.fault_plan == "drop:src=1,dst=0,nth=2"

    def test_fault_plan_env_beats_default(self):
        cfg = SolveConfig.from_env(environ={"REPRO_FAULT_PLAN": self.ENV_PLAN})
        from repro.faults import FaultPlan

        assert isinstance(cfg.fault_plan, FaultPlan)
        assert len(cfg.fault_plan.message_faults) == 1
        assert cfg.fault_plan.message_faults[0].kind == "drop"

    def test_fault_plan_default_when_unset(self):
        cfg = SolveConfig.from_env(environ={})
        assert cfg.fault_plan is None

    def test_reads_process_env_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SRGEMM_BACKEND", "tiled")
        assert SolveConfig.from_env().kernel_backend == "tiled"


class TestSinkValidation:
    def test_unwritable_dir_raises_before_solve(self, graph, tmp_path):
        cfg = SolveConfig(obs=ObsSinks(metrics_out=str(tmp_path / "no" / "m.json")))
        with pytest.raises(SinkError) as ei:
            solve(graph, cfg)
        assert "does not exist" in str(ei.value)

    def test_directory_target_rejected(self, tmp_path):
        with pytest.raises(SinkError):
            ObsSinks(trace_out=str(tmp_path)).validate()

    def test_good_paths_pass(self, tmp_path):
        ObsSinks(metrics_out=str(tmp_path / "m.json"), trace_out=str(tmp_path / "t.json")).validate()

    def test_enabled_property(self):
        assert not ObsSinks().enabled
        assert ObsSinks(metrics=True).enabled
        assert ObsSinks(trace_out="x.json").enabled

    def test_cli_exit_code_12(self, tmp_path):
        from repro.cli import main

        code = main(["solve", "--n", "8", "--metrics-out", str(tmp_path / "no" / "m.json")])
        assert code == 12

    def test_cli_profile_validates_derived_sinks_first(self, tmp_path):
        from repro.cli import main

        code = main(["profile", "--n", "8", "--trace-out", str(tmp_path / "no" / "t.json")])
        assert code == 12

    def test_sinks_written_by_solve(self, graph, tmp_path):
        mpath, tpath = tmp_path / "m.json", tmp_path / "t.json"
        solve(graph, SolveConfig(**CLUSTER, obs=ObsSinks(metrics_out=str(mpath), trace_out=str(tpath))))
        metrics = json.loads(mpath.read_text())
        assert metrics["run"]["variant"] == "async"
        assert metrics["metrics"]["comm.internode.bytes"]["value"] > 0
        from repro.obs import validate_chrome_trace

        assert validate_chrome_trace(json.loads(tpath.read_text())) > 0


class TestDeprecatedEntryPoint:
    def test_repro_apsp_warns_and_works(self, graph):
        with pytest.warns(DeprecationWarning, match="repro.solve"):
            result = repro.apsp(graph, variant="baseline", **CLUSTER)
        reference = apsp(graph, variant="baseline", **CLUSTER)
        assert result.report.elapsed == reference.report.elapsed

    def test_engine_path_does_not_warn(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            apsp(graph, variant="baseline", **CLUSTER)

    def test_public_all_exports(self):
        for name in ("solve", "SolveConfig", "ObsSinks", "ApspResult", "Variant",
                     "FaultPlan", "SinkError", "apsp"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
