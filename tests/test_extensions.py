"""Tests for the future-work extensions: path generation and
incremental Floyd-Warshall."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apsp
from repro.errors import NegativeCycleError, ValidationError
from repro.extensions import (
    NO_HOP,
    IncrementalApsp,
    floyd_warshall_with_paths,
    next_hop_from_distances,
    path_length,
    reconstruct_path,
)
from repro.graphs import erdos_renyi, grid_road_network
from repro.semiring import INF, floyd_warshall


class TestPathsFromFw:
    def test_distances_match_plain_fw(self, sparse30):
        dist, _ = floyd_warshall_with_paths(sparse30)
        assert np.allclose(dist, floyd_warshall(sparse30), equal_nan=True)

    def test_paths_are_valid_and_optimal(self, sparse30):
        dist, nxt = floyd_warshall_with_paths(sparse30)
        n = sparse30.shape[0]
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                path = reconstruct_path(nxt, i, j)
                if np.isinf(dist[i, j]):
                    assert path is None
                else:
                    assert path[0] == i and path[-1] == j
                    assert path_length(sparse30, path) == pytest.approx(dist[i, j])

    def test_trivial_path(self, dense24):
        _, nxt = floyd_warshall_with_paths(dense24)
        assert reconstruct_path(nxt, 3, 3) == [3]

    def test_unreachable_is_none(self):
        w = np.full((3, 3), INF)
        np.fill_diagonal(w, 0)
        w[0, 1] = 1.0
        _, nxt = floyd_warshall_with_paths(w)
        assert reconstruct_path(nxt, 1, 2) is None
        assert nxt[1, 2] == NO_HOP

    def test_path_length_rejects_missing_edge(self):
        w = np.full((3, 3), INF)
        np.fill_diagonal(w, 0)
        with pytest.raises(ValidationError):
            path_length(w, [0, 1])

    def test_malformed_next_hop_detected(self):
        # next-hop claims 0 -> 1 starts by going to 0: an infinite loop.
        bad = np.array([[NO_HOP, 0], [1, NO_HOP]])
        with pytest.raises(ValidationError):
            reconstruct_path(bad, 0, 1)


class TestNextHopFromDistances:
    def test_composes_with_distributed_solver(self):
        """The 'distributed shortest path generation' flow: distances
        from the simulated cluster, paths recovered locally."""
        w = grid_road_network(4, 4, seed=8)
        dist = apsp(w, variant="async", block_size=4, n_nodes=2, ranks_per_node=2).dist
        nxt = next_hop_from_distances(w, dist)
        for i in (0, 5, 15):
            for j in (0, 3, 12):
                path = reconstruct_path(nxt, i, j)
                assert path is not None
                assert path_length(w, path) == pytest.approx(dist[i, j])

    def test_matches_carried_pointers(self, sparse30):
        dist, _ = floyd_warshall_with_paths(sparse30)
        nxt = next_hop_from_distances(sparse30, dist)
        n = sparse30.shape[0]
        for i in range(n):
            for j in range(n):
                if i != j and np.isfinite(dist[i, j]):
                    path = reconstruct_path(nxt, i, j)
                    assert path_length(sparse30, path) == pytest.approx(dist[i, j])


class TestIncrementalApsp:
    def test_initial_solution(self, dense24):
        inc = IncrementalApsp(dense24)
        assert np.allclose(inc.dist, floyd_warshall(dense24))

    def test_decrease_fast_path(self, dense24):
        inc = IncrementalApsp(dense24)
        assert inc.update_edge(2, 7, 0.01) is True
        fresh = inc.weights.copy()
        assert np.allclose(inc.dist, floyd_warshall(fresh))
        assert inc.fast_updates == 1 and inc.recomputes == 0

    def test_insert_edge(self):
        w = np.full((5, 5), INF)
        np.fill_diagonal(w, 0)
        w[0, 1] = w[1, 2] = w[2, 3] = w[3, 4] = 1.0
        inc = IncrementalApsp(w)
        assert inc.distance(0, 4) == 4.0
        inc.insert_edge(0, 4, 1.5)
        assert inc.distance(0, 4) == 1.5

    def test_increase_off_path_is_fast(self, dense24):
        inc = IncrementalApsp(dense24)
        # Find an edge strictly longer than the shortest path (unused).
        base = floyd_warshall(dense24)
        ij = np.argwhere(dense24 > base + 0.5)
        u, v = map(int, ij[0])
        assert inc.update_edge(u, v, dense24[u, v] + 1.0) is True
        assert np.allclose(inc.dist, floyd_warshall(inc.weights))

    def test_increase_on_path_recomputes(self):
        w = np.full((4, 4), INF)
        np.fill_diagonal(w, 0)
        w[0, 1] = w[1, 2] = w[2, 3] = 1.0
        w[0, 3] = 10.0
        inc = IncrementalApsp(w)
        assert inc.distance(0, 3) == 3.0
        assert inc.update_edge(1, 2, 100.0) is False  # on the 0->3 path
        assert inc.distance(0, 3) == 10.0
        assert inc.recomputes == 1

    def test_remove_edge(self):
        w = np.full((3, 3), INF)
        np.fill_diagonal(w, 0)
        w[0, 1] = w[1, 2] = 1.0
        w[0, 2] = 5.0
        inc = IncrementalApsp(w)
        assert inc.distance(0, 2) == 2.0
        inc.remove_edge(1, 2)
        assert inc.distance(0, 2) == 5.0

    def test_negative_cycle_detected(self):
        w = np.array([[0.0, 1.0], [2.0, 0.0]])
        inc = IncrementalApsp(w)
        with pytest.raises(NegativeCycleError):
            inc.update_edge(1, 0, -5.0)

    def test_negative_self_loop_rejected(self, dense24):
        inc = IncrementalApsp(dense24)
        with pytest.raises(NegativeCycleError):
            inc.update_edge(3, 3, -1.0)

    def test_out_of_range(self, dense24):
        inc = IncrementalApsp(dense24)
        with pytest.raises(ValueError):
            inc.update_edge(0, 99, 1.0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            IncrementalApsp(np.zeros((2, 3)))

    @given(st.integers(0, 10**6), st.integers(5, 12), st.integers(3, 12))
    @settings(max_examples=20, deadline=None)
    def test_batch_update_property(self, seed, n, n_updates):
        """batch_update coalesces to at most one recompute and matches
        a from-scratch solve."""
        rng = np.random.default_rng(seed)
        w = erdos_renyi(n, 0.5, seed=seed)
        inc = IncrementalApsp(w)
        ups = []
        for _ in range(n_updates):
            u, v = rng.integers(0, n, 2)
            if u != v:
                ups.append((int(u), int(v), float(rng.uniform(0.1, 15))))
        before = inc.recomputes
        inc.batch_update(ups)
        assert inc.recomputes - before <= 1
        assert np.allclose(
            inc.dist, floyd_warshall(inc.weights, check_negative_cycles=False),
            equal_nan=True,
        )

    @given(st.integers(0, 10**6), st.integers(5, 12), st.integers(3, 10))
    @settings(max_examples=20, deadline=None)
    def test_random_update_sequence_property(self, seed, n, n_updates):
        """After any mixed sequence of updates, the maintained solution
        equals a from-scratch recompute."""
        rng = np.random.default_rng(seed)
        w = erdos_renyi(n, 0.5, seed=seed)
        inc = IncrementalApsp(w)
        for _ in range(n_updates):
            u, v = rng.integers(0, n, 2)
            if u == v:
                continue
            op = rng.integers(0, 3)
            if op == 0:
                inc.update_edge(int(u), int(v), float(rng.uniform(0.1, 10)))
            elif op == 1:
                inc.insert_edge(int(u), int(v), float(rng.uniform(0.1, 10)))
            else:
                inc.remove_edge(int(u), int(v))
        assert np.allclose(
            inc.dist, floyd_warshall(inc.weights, check_negative_cycles=False),
            equal_nan=True,
        )
