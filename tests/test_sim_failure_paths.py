"""Failure-path tests for the simulation kernel.

The fault framework leans on exactly these behaviours: a crashed rank
must not leak resource slots, a failed event must propagate through
condition events (or stay quiet once defused), and a rank's pending
async sends must drain cleanly after an aborted iteration.
"""

from __future__ import annotations

import pytest

from repro.core import (
    FwContext,
    ProcessGrid,
    RankState,
    SolverConfig,
    placement_for_variant,
    Variant,
)
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.mpi import SimMPI
from repro.sim import Environment, Interrupt, Resource, SimulationError, Store


class TestInterruptInResourceWait:
    def test_interrupt_while_queued_releases_no_slot(self, env):
        """A process interrupted while *waiting* for a resource must
        leave the queue; the slot it never got goes to the next waiter."""
        res = Resource(env, capacity=1)
        order = []

        def holder():
            yield from res.use(2.0)
            order.append(("holder-done", env.now))

        def victim():
            try:
                yield from res.use(1.0)
            except Interrupt:
                order.append(("victim-interrupted", env.now))

        def bystander():
            yield env.timeout(0.5)  # queue behind the victim
            yield from res.use(1.0)
            order.append(("bystander-done", env.now))

        env.process(holder())
        v = env.process(victim())
        env.process(bystander())

        def killer():
            yield env.timeout(1.0)
            v.interrupt("rank lost")

        env.process(killer())
        env.run()
        assert order == [
            ("victim-interrupted", 1.0),
            ("holder-done", 2.0),
            ("bystander-done", 3.0),
        ]
        assert res.count == 0 and res.queue_len == 0

    def test_interrupt_while_holding_releases_slot(self, env):
        res = Resource(env, capacity=1)
        got = []

        def holder():
            with pytest.raises(Interrupt):
                yield from res.use(10.0)

        def waiter():
            yield from res.use(1.0)
            got.append(env.now)

        h = env.process(holder())
        env.process(waiter())

        def killer():
            yield env.timeout(2.0)
            h.interrupt()

        env.process(killer())
        env.run()
        assert got == [3.0]  # granted at t=2 on the interrupt, held 1s
        assert res.count == 0

    def test_interrupt_cause_carried(self, env):
        res = Resource(env, capacity=1)
        seen = {}

        def holder():
            yield from res.use(5.0)

        def victim():
            try:
                yield from res.use(1.0)
            except Interrupt as exc:
                seen["cause"] = exc.cause

        env.process(holder())
        v = env.process(victim())

        def killer():
            yield env.timeout(1.0)
            v.interrupt({"rank": 3})

        env.process(killer())
        env.run()
        assert seen["cause"] == {"rank": 3}


class TestEventFailThroughConditions:
    def test_fail_through_all_of(self, env):
        ok, bad = env.timeout(1.0), env.event()
        caught = {}

        def waiter():
            try:
                yield env.all_of([ok, bad])
            except RuntimeError as exc:
                caught["exc"] = exc

        env.process(waiter())

        def failer():
            yield env.timeout(0.5)
            bad.fail(RuntimeError("transfer aborted"))

        env.process(failer())
        env.run()
        assert str(caught["exc"]) == "transfer aborted"

    def test_fail_through_any_of(self, env):
        slow, bad = env.timeout(2.0), env.event()
        caught = {}

        def waiter():
            try:
                yield env.any_of([slow, bad])
            except RuntimeError as exc:
                caught["exc"] = exc

        env.process(waiter())

        def failer():
            yield env.timeout(0.5)
            bad.fail(RuntimeError("nic died"))

        env.process(failer())
        env.run()
        assert str(caught["exc"]) == "nic died"
        env.run()  # the slow timeout still drains without raising

    def test_any_of_winner_beats_later_failure(self, env):
        """A failure *after* the condition already fired must not
        abort the simulation (the condition defuses the stragglers)."""
        fast, bad = env.timeout(0.5, "fast"), env.event()
        got = {}

        def waiter():
            got["v"] = yield env.any_of([fast, bad])

        env.process(waiter())

        def failer():
            yield env.timeout(1.0)
            bad.fail(RuntimeError("too late to matter"))

        env.process(failer())
        env.run()
        assert got["v"] == ["fast"]

    def test_unwaited_failure_aborts_unless_defused(self, env):
        bad = env.event()
        bad.fail(RuntimeError("orphaned failure"))
        with pytest.raises(RuntimeError, match="orphaned failure"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        bad = env.event()
        bad.fail(RuntimeError("handled elsewhere"))
        bad.defuse()
        env.run()  # no raise


class TestStoreFailurePaths:
    def test_cancel_pending_getter(self, env):
        store = Store(env)
        getter = store.get()
        store.cancel(getter)
        store.put("late")
        env.run()
        assert not getter.triggered  # withdrawn, not matched
        assert len(store) == 1  # item stays for a real receiver

    def test_cancel_is_idempotent_and_ignores_matched(self, env):
        store = Store(env)
        store.put("x")
        getter = store.get()
        store.cancel(getter)  # already matched: ignored
        store.cancel(getter)
        assert getter.ok and getter.value == "x"

    def test_reset_drops_items_and_getters(self, env):
        store = Store(env)
        stuck = store.get()  # pending: the store is empty
        store.reset()  # crash recovery wipes the mailbox
        store.put("fresh")
        env.run()
        assert not stuck.triggered  # the abandoned receive never fires
        assert len(store) == 1  # "fresh" waits for a real receiver

    def test_reset_drops_stale_items(self, env):
        store = Store(env)
        store.put("stale")
        store.put("staler")
        store.reset()
        assert len(store) == 0
        assert not store.get().triggered  # nothing left to match


class TestDrainAfterAbortedIteration:
    @pytest.fixture
    def rank_state(self, env):
        cost = CostModel(SUMMIT)
        cluster = SimCluster(env, SUMMIT, 2, cost)
        mpi = SimMPI(env, cluster, [0, 0, 1, 1])
        grid = ProcessGrid(2, 2)
        placement = placement_for_variant(Variant.BASELINE, grid, 2)
        ctx = FwContext(env, cluster, mpi, grid, placement,
                        SolverConfig(block_size=4), nb=2)
        return RankState(ctx, 0, {})

    def test_drain_waits_for_pending_sends(self, env, rank_state):
        rank_state.pending.append(env.timeout(1.0))
        rank_state.pending.append(env.timeout(3.0))

        def prog():
            yield from rank_state.drain()
            return env.now

        proc = env.process(prog())
        assert env.run(proc) == 3.0
        assert rank_state.pending == []

    def test_drain_after_aborted_iteration(self, env, rank_state):
        """An iteration aborted by a crash leaves failed relays in
        ``pending``; once recovery defuses them, drain() of the *next*
        epoch's state never sees them, and draining the aborted state
        itself surfaces the failure exactly once."""
        dead = env.event()
        dead.fail(SimulationError("relay aborted by crash"))
        rank_state.pending.append(dead)
        rank_state.pending.append(env.timeout(1.0))
        caught = []

        def prog():
            try:
                yield from rank_state.drain()
            except SimulationError as exc:
                caught.append(exc)
            # a second drain is a no-op: pending was already swapped out
            yield from rank_state.drain()

        env.process(prog())
        env.run()
        assert len(caught) == 1
        assert rank_state.pending == []

    def test_drain_of_interrupted_rank_is_resumable(self, env, rank_state):
        """Interrupting a rank mid-drain leaves the remaining events
        harmless (the recovery path then rebuilds the state)."""
        rank_state.pending.append(env.timeout(5.0))
        seen = {}

        def prog():
            try:
                yield from rank_state.drain()
            except Interrupt as exc:
                seen["cause"] = exc.cause

        proc = env.process(prog())

        def killer():
            yield env.timeout(1.0)
            proc.interrupt("epoch aborted")

        env.process(killer())
        env.run()
        assert seen["cause"] == "epoch aborted"
