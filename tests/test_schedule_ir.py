"""Schedule-IR refactor acceptance tests.

Pins the exactness contract of the single executor
(:mod:`repro.core.executor`): every pre-refactor variant must come out
*bit-identical* (distance hashes) and *cost-identical* (simulated
makespans) to runs recorded on the commit before the refactor, the new
``offload-pipelined`` variant must be correct and actually overlap,
``start_k`` must be validated and resumable at {0, mid, nb} for every
variant, and a crash + checkpoint restart must recover bit-exactly
under the new executor (the CI schedule-equivalence job runs this
module).
"""

from __future__ import annotations

import copy
import hashlib

import numpy as np
import pytest

from repro.core import (
    ProcessGrid,
    RankState,
    apsp,
    baseline_program,
    collect,
    distribute,
    offload_pipelined_program,
    offload_program,
    pad_to_blocks,
    pipelined_program,
    placement_for_variant,
    program_for_config,
    variant_config,
)
from repro.core.context import FwContext, SolverConfig
from repro.core.schedule import (
    BULK_SYNC,
    LOOKAHEAD,
    Checkpoint,
    DiagBcast,
    DiagUpdate,
    OuterUpdate,
    PanelBcast,
    PanelUpdate,
    WaitOuter,
)
from repro.core.variants import VARIANT_DESCRIPTIONS, Variant
from repro.errors import ConfigurationError
from repro.extensions.paths import path_length, reconstruct_path
from repro.faults import CheckpointStore, FaultPlan
from repro.faults.injector import FaultInjector, FaultRuntime
from repro.graphs import scipy_floyd_warshall, uniform_random_dense
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.mpi.comm import SimMPI
from repro.semiring.path_kernels import NO_HOP
from repro.sim import Environment

# ---------------------------------------------------------------------------
# Recorded pre-refactor runs (captured on commit b5009eb, before the
# schedule IR existed).  The executor must reproduce them exactly.
# ---------------------------------------------------------------------------

#: Real workload: uniform_random_dense(30, seed), b=5, 2 nodes x 3 ranks.
REAL_KW = dict(block_size=5, n_nodes=2, ranks_per_node=3)
RECORDED_ELAPSED = {
    "baseline": 0.0002740077794117649,
    "pipelined": 0.000346252455882353,
    "reordering": 0.000346252455882353,
    "async": 0.00034372901838235296,
    "offload": 0.0003222435441176473,
}
#: SHA-256 of the distance matrix bytes - identical across variants.
RECORDED_DIST_SHA = {
    0: "a212b9afbc9074bd6042ae010bbbd2b369c9014a7246079a921f1247fc8c7c3a",
    1: "b95b93ea5d1ab404adbfde5466cb4fa02b32771a864e3d75b8cf76d431a720f2",
    2: "9f4b377f89436d306998b3acf3f0b58d9dbfef734a721084d009ff05f4866906",
}
#: Hollow paper-scale workload: nb=24 blocks of b=1 scaled by 768
#: (B_VIRT), 4 nodes x 4 ranks, no numerics.
HOLLOW_KW = dict(
    block_size=1, n_nodes=4, ranks_per_node=4, dim_scale=768.0,
    compute_numerics=False, collect_result=False, check_negative_cycles=False,
)
RECORDED_HOLLOW_ELAPSED = {
    "baseline": 0.2967301259294111,
    "pipelined": 0.18224039364705866,
    "reordering": 0.17412427538823486,
    "async": 0.14802366061176453,
    "offload": 0.33496098522352896,
}

ALL_VARIANTS = ["baseline", "pipelined", "reordering", "async", "offload",
                "offload-pipelined"]
PAPER_VARIANTS = sorted(RECORDED_ELAPSED)


def dist_sha(dist: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(dist).tobytes()).hexdigest()


# ---------------------------------------------------------------------------
# Variant x policy matrix: correctness + bit/cost exactness
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestVariantMatrix:
    def test_matches_reference_and_recorded_bits(self, variant, seed):
        w = uniform_random_dense(30, seed=seed)
        result = apsp(w, variant=variant, **REAL_KW)
        ref = scipy_floyd_warshall(w)
        assert np.allclose(result.dist, ref)
        # Bit-exact across all six variants and vs the pre-refactor runs.
        assert dist_sha(result.dist) == RECORDED_DIST_SHA[seed]


@pytest.mark.parametrize("variant", PAPER_VARIANTS)
def test_recorded_makespans_real(variant):
    w = uniform_random_dense(30, seed=0)
    result = apsp(w, variant=variant, **REAL_KW)
    assert result.report.elapsed == RECORDED_ELAPSED[variant]


@pytest.mark.parametrize("variant", PAPER_VARIANTS)
def test_recorded_makespans_hollow(variant):
    w = np.zeros((24, 24), dtype=np.float32)
    result = apsp(w, variant=variant, **HOLLOW_KW)
    assert result.report.elapsed == RECORDED_HOLLOW_ELAPSED[variant]


def test_offload_pipelined_overlaps_hollow():
    """The new sixth variant: look-ahead Me-ParallelFw beats the
    bulk-synchronous offload at paper scale because PanelBcast(k+1)
    rides under the ooGSrGemm tile pipeline."""
    w = np.zeros((24, 24), dtype=np.float32)
    plain = apsp(w, variant="offload", **HOLLOW_KW)
    piped = apsp(w, variant="offload-pipelined", **HOLLOW_KW)
    assert piped.report.elapsed < plain.report.elapsed


@pytest.mark.parametrize("variant", ["baseline", "pipelined", "reordering", "async"])
def test_next_matrix_matches_reference(variant):
    """Next-hop matrices through the executor: every finite pair's
    traced path exists and realizes the reference distance."""
    w = uniform_random_dense(18, seed=4)
    result = apsp(w, variant=variant, block_size=3, n_nodes=2,
                  ranks_per_node=2, track_paths=True)
    ref = scipy_floyd_warshall(w)
    assert np.allclose(result.dist, ref)
    nxt = result.next_hops
    n = w.shape[0]
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if np.isfinite(ref[i, j]):
                p = reconstruct_path(nxt, i, j)
                assert p is not None and p[0] == i and p[-1] == j
                assert path_length(w, p) == pytest.approx(ref[i, j])
            else:
                assert nxt[i, j] == NO_HOP


def test_offload_pipelined_is_selectable_everywhere():
    assert Variant.parse("offload-pipelined") is Variant.OFFLOAD_PIPELINED
    assert Variant.parse("offload_pipelined") is Variant.OFFLOAD_PIPELINED
    assert Variant.OFFLOAD_PIPELINED in VARIANT_DESCRIPTIONS
    cfg = variant_config(Variant.OFFLOAD_PIPELINED, SolverConfig(block_size=4))
    assert cfg.pipelined and cfg.offload
    program = program_for_config(cfg)
    assert program.schedule is LOOKAHEAD
    assert program.residency.name == "host"


# ---------------------------------------------------------------------------
# Schedule IR structure
# ---------------------------------------------------------------------------


class TestScheduleStructure:
    def test_bulk_sync_iteration_shape(self):
        ops = BULK_SYNC.iteration(2, 6)
        assert ops == [
            Checkpoint(2),
            DiagUpdate(2),
            DiagBcast(2),
            PanelUpdate(2, "row", wait=True),
            PanelUpdate(2, "col", wait=True),
            PanelBcast(2),
            OuterUpdate(2, wait=True),
        ]
        assert BULK_SYNC.prologue(0, 6) == []

    def test_lookahead_overlap_structure(self):
        """PanelBcast(k+1) sits between the async OuterUpdate(k) launch
        and its join - the comm/compute overlap, visible as data."""
        ops = LOOKAHEAD.iteration(2, 6)
        launch = ops.index(OuterUpdate(2, wait=False))
        bcast = ops.index(PanelBcast(3))
        join = ops.index(WaitOuter())
        assert launch < bcast < join

    def test_lookahead_last_iteration_degenerates(self):
        """No k+1 to look ahead to: the final iteration is just
        checkpoint, launch, join."""
        assert LOOKAHEAD.iteration(5, 6) == [
            Checkpoint(5),
            OuterUpdate(5, wait=False),
            WaitOuter(),
        ]

    def test_lookahead_resume_prologue_skips_updates(self):
        """Resume carries already-updated start_k panels: only the
        broadcast is replayed (and nothing at all at start_k == nb)."""
        assert LOOKAHEAD.prologue(3, 6) == [PanelBcast(3)]
        assert LOOKAHEAD.prologue(6, 6) == []
        assert LOOKAHEAD.prologue(0, 6)[:1] == [DiagUpdate(0)]

    def test_full_op_stream_covers_all_iterations(self):
        ks = [op.k for op in BULK_SYNC.ops(0, 4) if isinstance(op, OuterUpdate)]
        assert ks == [0, 1, 2, 3]


# ---------------------------------------------------------------------------
# start_k validation + resume equivalence (manual worlds mirroring the
# driver's internals, so start_k can be driven directly)
# ---------------------------------------------------------------------------

N, B = 30, 5
NODES, RPN = 2, 3


class World:
    """A hand-assembled run (the driver without its frontend), exposing
    program/start_k directly."""

    def __init__(self, variant: str, blocks_by_rank=None, fault_plan=None):
        var = Variant.parse(variant)
        self.w = uniform_random_dense(N, seed=0)
        padded, self.n_orig = pad_to_blocks(self.w, B, SolverConfig(block_size=B).semiring)
        self.nb = padded.shape[0] // B
        n_ranks = NODES * RPN
        pr_pc = ProcessGrid(2, 3)
        self.grid = pr_pc
        placement = placement_for_variant(var, self.grid, RPN)
        env = Environment()
        cost = CostModel(SUMMIT)
        cluster = SimCluster(env, SUMMIT, NODES, cost, None)
        mpi = SimMPI(env, cluster, [placement.node_of(r) for r in range(n_ranks)], None)
        config = variant_config(var, SolverConfig(block_size=B))
        self.ctx = FwContext(env, cluster, mpi, self.grid, placement, config, self.nb, None)
        if fault_plan is not None:
            injector = FaultInjector(fault_plan, None)
            injector.attach(mpi)
            mpi.injector = injector
            cluster.injector = injector
            self.ctx.faults = FaultRuntime(injector, CheckpointStore())
        if blocks_by_rank is None:
            blocks_by_rank = distribute(padded, B, self.grid)
        self.states = [
            RankState(self.ctx, r, blocks_by_rank[r]) for r in range(n_ranks)
        ]
        self.program = program_for_config(config)

    def run(self, start_k: int = 0) -> np.ndarray:
        env = self.ctx.env
        procs = [
            env.process(self.program(state, start_k=start_k), name=f"rank{state.me}")
            for state in self.states
        ]
        env.run()
        assert all(p.processed and p.ok for p in procs)
        return collect([s.blocks for s in self.states], self.n_orig, B, self.grid)


@pytest.mark.parametrize("variant", ALL_VARIANTS)
class TestStartK:
    def test_rejects_out_of_range(self, variant):
        world = World(variant)
        state = world.states[0]
        for bad in (-1, world.nb + 1):
            # Must raise at build time, not on first resume of the
            # generator (a silent empty program would corrupt recovery).
            with pytest.raises(ConfigurationError):
                world.program(state, start_k=bad)

    def test_resume_from_mid(self, variant):
        """start_k = mid: restore every rank from a checkpoint taken at
        the top of iteration mid and replay; bit-identical result."""
        full = World(variant).run(start_k=0)
        mid = 3
        ckpt = World(variant, fault_plan=FaultPlan(checkpoint_interval=mid))
        ckpt.run(start_k=0)
        store = ckpt.ctx.faults.store
        assert mid in store.checkpoints()
        n_ranks = NODES * RPN
        resumed = World(
            variant, blocks_by_rank=[store.restore(mid, r) for r in range(n_ranks)]
        ).run(start_k=mid)
        assert resumed.tobytes() == full.tobytes()

    def test_resume_from_nb_is_noop(self, variant):
        """start_k = nb: a completed sweep; the program only drains."""
        world = World(variant)
        full = world.run(start_k=0)
        done = World(
            variant,
            blocks_by_rank=[copy.deepcopy(s.blocks) for s in world.states],
        ).run(start_k=world.nb)
        assert done.tobytes() == full.tobytes()

    def test_start_zero_matches_driver(self, variant):
        """The manual world is faithful: start_k=0 equals apsp()."""
        via_driver = apsp(uniform_random_dense(N, seed=0), variant=variant, **REAL_KW)
        assert World(variant).run(start_k=0).tobytes() == via_driver.dist.tobytes()


# ---------------------------------------------------------------------------
# Fault smoke under the new executor: one crash + checkpoint resume per
# variant, bit-compared to the fault-free run
# ---------------------------------------------------------------------------

SMOKE_PLAN = ("crash:rank=1,at=1.5e-4", "policy:timeout=5e-4,ckpt=2")


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_crash_checkpoint_resume_smoke(variant):
    w = uniform_random_dense(48, seed=1)
    kw = dict(block_size=8, n_nodes=2, ranks_per_node=2)
    clean = apsp(w, variant=variant, **kw)
    faulty = apsp(w, variant=variant, fault_plan=SMOKE_PLAN, **kw)
    assert faulty.fault_counters["faults.crashes"] >= 1
    assert faulty.fault_counters["faults.restarts"] >= 1
    assert faulty.dist.tobytes() == clean.dist.tobytes()
