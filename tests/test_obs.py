"""Tests for the observability layer (:mod:`repro.obs`).

The load-bearing guarantee is *zero cost when off*: a run without
metrics/tracing must be event-for-event identical to the pre-obs
engine.  The recorded constants below were captured from the engine
before the obs layer existed; if any of them moves, the None-slot
hooks leaked cost into the simulation.
"""

from __future__ import annotations

import hashlib
import json
import math

import numpy as np
import pytest

from repro.core import apsp
from repro.graphs import uniform_random_dense
from repro.obs import (
    MeteredBackend,
    MetricsRegistry,
    chrome_trace,
    text_timeline,
    validate_chrome_trace,
)
from repro.semiring.backends import get_backend

#: (makespan, sha256(dist)) recorded from the pre-obs engine for
#: uniform_random_dense(30, seed=3), b=5, 2 nodes x 3 ranks.
RECORDED = {
    "baseline": (0.0002740077794117649, "c1f95e788147ac98e0d9dd9a049b115a5252b438ca87c18962c158d9a0788f9c"),
    "pipelined": (0.000346252455882353, "c1f95e788147ac98e0d9dd9a049b115a5252b438ca87c18962c158d9a0788f9c"),
    "reordering": (0.000346252455882353, "c1f95e788147ac98e0d9dd9a049b115a5252b438ca87c18962c158d9a0788f9c"),
    "async": (0.00034372901838235296, "c1f95e788147ac98e0d9dd9a049b115a5252b438ca87c18962c158d9a0788f9c"),
    "offload": (0.0003222435441176473, "c1f95e788147ac98e0d9dd9a049b115a5252b438ca87c18962c158d9a0788f9c"),
    "offload-pipelined": (0.00034917284558823536, "c1f95e788147ac98e0d9dd9a049b115a5252b438ca87c18962c158d9a0788f9c"),
}


@pytest.fixture(scope="module")
def graph():
    return uniform_random_dense(30, seed=3)


def _run(graph, variant, **kw):
    return apsp(graph, variant=variant, block_size=5, n_nodes=2, ranks_per_node=3, **kw)


class TestZeroCostWhenOff:
    @pytest.mark.parametrize("variant", sorted(RECORDED))
    def test_metrics_off_matches_pre_obs_recording(self, graph, variant):
        expected_makespan, expected_digest = RECORDED[variant]
        result = _run(graph, variant)
        assert result.report.elapsed == expected_makespan
        assert hashlib.sha256(result.dist.tobytes()).hexdigest() == expected_digest
        assert result.metrics is None
        assert result.report.metrics is None

    @pytest.mark.parametrize("variant", sorted(RECORDED))
    def test_metrics_on_is_makespan_bit_identical(self, graph, variant):
        expected_makespan, expected_digest = RECORDED[variant]
        result = _run(graph, variant, metrics=True)
        assert result.report.elapsed == expected_makespan
        assert hashlib.sha256(result.dist.tobytes()).hexdigest() == expected_digest

    def test_trace_plus_metrics_still_bit_identical(self, graph):
        result = _run(graph, "async", metrics=True, trace=True)
        assert result.report.elapsed == RECORDED["async"][0]


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.5)
        reg.gauge("g").set(7.0)
        for x in (1.0, 3.0):
            reg.histogram("h").observe(x)
        assert reg.value("c") == 3.5
        assert reg.value("g") == 7.0
        h = reg.get("h")
        assert h.count == 2 and h.sum == 4.0 and h.min == 1.0 and h.max == 3.0
        assert h.mean == 2.0

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_flat_and_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.histogram("h").observe(5.0)
        reg.label("backend", "reference")
        flat = reg.flat()
        assert flat["a"] == 2.0
        assert flat["h.count"] == 1.0 and flat["h.sum"] == 5.0
        parsed = json.loads(reg.to_json())
        assert parsed["labels"]["backend"] == "reference"
        assert parsed["metrics"]["a"]["kind"] == "counter"


class TestMeteredBackend:
    def test_counts_flops_and_is_numerically_transparent(self):
        inner = get_backend("reference")
        reg = MetricsRegistry()
        metered = MeteredBackend(reg, inner)
        assert metered.name == inner.name
        assert metered.modeled_cost_scale == inner.modeled_cost_scale
        rng = np.random.default_rng(0)
        a, b = rng.random((4, 6)), rng.random((6, 5))
        c = np.full((4, 5), np.inf)
        expect = np.min(a[:, :, None] + b[None, :, :], axis=1)
        metered.srgemm_accumulate(c, a, b)
        np.testing.assert_allclose(c, expect)
        assert reg.value("kernel.srgemm.calls") == 1
        assert reg.value("kernel.srgemm.flops") == 2 * 4 * 5 * 6
        assert reg.value("kernel.flops") == 2 * 4 * 5 * 6
        assert reg.labels["kernel.backend"] == inner.name


class TestRunMetricsContent:
    def test_comm_kernel_and_phase_metrics(self, graph):
        result = _run(graph, "async", metrics=True)
        reg = result.metrics
        flat = reg.flat()
        # transport: per-scope totals match the MPI world's accounting
        assert flat["comm.internode.bytes"] > 0
        assert flat["comm.internode.bytes"] + flat["comm.intranode.bytes"] == (
            pytest.approx(result.report.internode_bytes + result.report.intranode_bytes)
        )
        # per-class counters cover the four broadcast classes
        for cls in ("diag_row", "diag_col", "panel_row", "panel_col"):
            assert flat[f"comm.{cls}.messages"] > 0
        # kernel flops flow through the metered backend
        assert flat["kernel.flops"] > 0
        assert flat["kernel.srgemm.calls"] > 0
        # executor phase histograms exist for the min-plus outer product
        assert any(k.startswith("phase.") for k in flat)
        # finalize: run gauges mirror the report
        assert reg.value("run.makespan") == result.report.elapsed
        assert reg.labels["run.variant"] == "async"

    def test_offload_oog_counters(self, graph):
        result = _run(graph, "offload", metrics=True)
        flat = result.metrics.flat()
        assert flat["oog.tiles"] > 0
        assert flat["oog.h2d_bytes_virtual"] > 0

    def test_verify_counters_flow_through(self, graph):
        result = _run(graph, "async", metrics=True, verify="checksum")
        flat = result.metrics.flat()
        assert flat["verify.ops_checked"] > 0
        assert result.report.elapsed > 0


class TestChromeTraceExport:
    def test_schema_round_trip(self, graph):
        result = _run(graph, "pipelined", trace=True)
        obj = chrome_trace(result.tracer)
        # serialize -> parse -> validate, as a consumer would
        parsed = json.loads(json.dumps(obj))
        n_events = validate_chrome_trace(parsed)
        assert n_events == sum(1 for e in parsed["traceEvents"] if e["ph"] == "X")
        assert n_events > 0
        # every span of the tracer made it across, in microseconds
        assert n_events == len(result.tracer.spans)
        xs = [e for e in parsed["traceEvents"] if e["ph"] == "X"]
        span0 = result.tracer.spans[0]
        match = [e for e in xs if e["name"] == span0.label and e["ts"] == pytest.approx(span0.start * 1e6)]
        assert match and match[0]["dur"] == pytest.approx(span0.duration * 1e6)
        # thread metadata names every actor
        names = {e["args"]["name"] for e in parsed["traceEvents"] if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {s.actor for s in result.tracer.spans} <= names

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"no": "traceEvents"})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -1.0, "dur": 1.0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q", "name": "x", "pid": 1, "tid": 1}]})

    def test_text_timeline(self, graph):
        result = _run(graph, "baseline", trace=True)
        text = text_timeline(result.tracer)
        actor = result.tracer.spans[0].actor
        assert actor in text
        one = text_timeline(result.tracer, actor=actor)
        assert actor in one and len(one) <= len(text)


class TestPerfModelValidation:
    @pytest.fixture(scope="class")
    def profile(self):
        from repro.obs.validation import run_profile

        w = uniform_random_dense(36, seed=1)
        return run_profile(w, block_size=6, n_nodes=2, ranks_per_node=3)

    def test_fitted_rel_error_is_finite_and_small(self, profile):
        rows = profile.report.eq1_fitted
        assert len(rows) == 3
        for row in rows:
            assert math.isfinite(row.rel_err)
            assert abs(row.rel_err) < 0.5  # fitted constants track the sim
        # machine-spec rows exist too (huge error expected at toy n)
        assert all(math.isfinite(r.rel_err) for r in profile.report.eq1)

    def test_constants_fitted_from_signal(self, profile):
        c = profile.report.constants
        assert c.t_f > 0 and c.t_w > 0 and c.t_l >= 0
        assert "t_f" in c.fitted and "t_w" in c.fitted

    def test_eq5_row_for_offload(self, profile):
        assert profile.report.eq5_k_min > 0
        offload_rows = [r for r in profile.report.eq5 if "offload" in r["variant"]]
        assert offload_rows and "satisfied" in offload_rows[0]

    def test_report_serializes(self, profile):
        d = json.loads(json.dumps(profile.report.to_dict()))
        assert d["machine"] == "summit"
        assert len(d["eq1_fitted"]) == 3
        assert d["constants"]["t_f"] > 0

    def test_summary_mentions_each_model(self, profile):
        s = profile.report.summary()
        assert "Eq. 1" in s and "3.4.1" in s and "Eq. 5" in s
