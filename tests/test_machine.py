"""Tests for the machine model: specs, cost model, GPU, host, cluster."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError, GpuOutOfMemory
from repro.machine import (
    SUMMIT,
    CostModel,
    SimCluster,
    SimGPU,
    scaled_down,
)
from repro.sim import Tracer


class TestSpecs:
    def test_summit_constants(self):
        assert SUMMIT.node.gpus_per_node == 6
        assert SUMMIT.node.gpu.hbm_bytes == 16 * 1024**3
        assert SUMMIT.node.gpu.srgemm_flops == pytest.approx(6.8e12)
        assert SUMMIT.node.nic_bw == pytest.approx(25e9)
        assert SUMMIT.max_nodes == 4608

    def test_peak_flops(self):
        # 6 GPUs x 7.85 TF/s no-FMA peak per node.
        assert SUMMIT.node_peak_flops() == pytest.approx(6 * 7.85e12)
        assert SUMMIT.peak_flops(256) == pytest.approx(256 * 6 * 7.85e12)
        # Paper: theoretical peak on 256 nodes ~ 12 PF no-FMA; their
        # 8.1 PF/s at 70% of peak is consistent with this scale.
        assert 1.1e16 < SUMMIT.peak_flops(256) < 1.3e16

    def test_srgemm_aggregate(self):
        assert SUMMIT.srgemm_flops(64) == pytest.approx(64 * 6 * 6.8e12)

    def test_scaled_down(self):
        small = scaled_down(SUMMIT, hbm_bytes=1024, gpus_per_node=2, name="tiny")
        assert small.node.gpu.hbm_bytes == 1024
        assert small.node.gpus_per_node == 2
        assert small.name == "tiny"
        assert SUMMIT.node.gpu.hbm_bytes == 16 * 1024**3  # original untouched

    def test_specs_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SUMMIT.node.gpu.hbm_bytes = 0  # type: ignore[misc]


class TestCostModel:
    def test_virtual_scaling_linear(self):
        c = CostModel(SUMMIT, dim_scale=10.0)
        assert c.v(5) == 50.0

    def test_bytes_quadratic_in_scale(self):
        c1 = CostModel(SUMMIT, dim_scale=1.0)
        c10 = CostModel(SUMMIT, dim_scale=10.0)
        assert c10.bytes_of(4, 4) == pytest.approx(100 * c1.bytes_of(4, 4))

    def test_srgemm_time_cubic_in_scale(self):
        c1 = CostModel(SUMMIT, dim_scale=1.0)
        c2 = CostModel(SUMMIT, dim_scale=2.0)
        # Remove the constant launch overhead before comparing; use a
        # size where kernel efficiency is saturated so the ratio is
        # the pure flop-count factor of 8.
        t1 = c1.srgemm_time(8192, 8192, 8192) - c1.kernel_launch_overhead
        t2 = c2.srgemm_time(8192, 8192, 8192) - c2.kernel_launch_overhead
        assert t2 / t1 == pytest.approx(8.0, rel=0.01)

    def test_kernel_efficiency_monotone(self, cost):
        effs = [cost.kernel_efficiency(b) for b in (64, 128, 256, 512, 768, 2048)]
        assert all(a < b for a, b in zip(effs, effs[1:]))
        assert effs[-1] > 0.95
        assert cost.kernel_efficiency(128) < 0.35

    def test_figure5_rate_calibration(self, cost):
        """Rates at the paper's Figure 5 block sizes."""
        assert cost.srgemm_rate(768) > 6.0e12  # "very close to peak"
        assert cost.srgemm_rate(128) < 2.5e12  # far below peak

    def test_transfer_times(self, cost):
        # 1000x1000 float32 tile over 50 GB/s NVLink.
        expected = 1000 * 1000 * 4 / 50e9
        assert cost.h2d_time(1000, 1000) == pytest.approx(expected)
        assert cost.d2h_time(1000, 1000) == pytest.approx(expected)

    def test_host_update_3x_traffic(self, cost):
        t = cost.host_update_time(1000, 1000)
        assert t == pytest.approx(3 * 1000 * 1000 * 4 / SUMMIT.node.dram_bw)

    def test_diag_update_gpu_time(self, cost):
        one = cost.srgemm_time(768, 768, 768)
        assert cost.diag_update_gpu_time(768, 10) == pytest.approx(10 * one)

    def test_rate_properties(self, cost):
        assert cost.t_f == pytest.approx(1 / 6.8e12)
        assert cost.t_w_internode == pytest.approx(1 / 25e9)
        assert cost.t_hd == pytest.approx(1 / 50e9)
        assert cost.t_m == pytest.approx(1 / SUMMIT.node.dram_bw)

    def test_network_times(self, cost):
        assert cost.internode_transfer_time(25e9) == pytest.approx(1.0)
        assert cost.intranode_transfer_time(SUMMIT.node.intranode_bw) == pytest.approx(1.0)
        assert cost.internode_latency == SUMMIT.node.nic_latency


class TestSimGPU:
    def test_alloc_and_free(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        gpu.alloc(1000)
        assert gpu.allocated == 1000
        gpu.dealloc(400)
        assert gpu.allocated == 600
        assert gpu.peak_allocated == 1000

    def test_oom_raises(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        with pytest.raises(GpuOutOfMemory) as exc:
            gpu.alloc(SUMMIT.node.gpu.hbm_bytes + 1)
        assert exc.value.requested == SUMMIT.node.gpu.hbm_bytes + 1
        assert "offload" in str(exc.value)

    def test_exact_fit_ok(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        gpu.alloc(SUMMIT.node.gpu.hbm_bytes)
        assert gpu.free_bytes == 0

    def test_negative_and_over_free_rejected(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        with pytest.raises(ValueError):
            gpu.alloc(-5)
        with pytest.raises(ValueError):
            gpu.dealloc(1)

    def test_kernels_serialize_on_engine(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        s1, s2 = gpu.stream(), gpu.stream()
        done = {}

        def prog():
            e1 = s1.kernel(768, 768, 768, "k1")
            e2 = s2.kernel(768, 768, 768, "k2")
            yield env.all_of([e1, e2])
            done["t"] = env.now

        env.process(prog())
        env.run()
        # Two kernels on different streams share one kernel engine.
        assert done["t"] == pytest.approx(2 * cost.srgemm_time(768, 768, 768))

    def test_kernel_overlaps_copies(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        s1, s2 = gpu.stream(), gpu.stream()

        def prog():
            k = s1.kernel(2048, 2048, 2048, "k")
            c = s2.d2h(2048, 2048, "c")
            yield env.all_of([k, c])
            return env.now

        proc = env.process(prog())
        env.run()
        t_k = cost.srgemm_time(2048, 2048, 2048)
        t_c = cost.d2h_time(2048, 2048)
        # Full overlap: makespan is the max, not the sum.
        assert proc.value == pytest.approx(max(t_k, t_c))

    def test_stream_is_in_order(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        s = gpu.stream()
        order = []

        def prog():
            s.kernel(512, 512, 512, "a", fn=lambda: order.append("a"))
            s.h2d(512, 512, "b", fn=lambda: order.append("b"))
            last = s.kernel(512, 512, 512, "c", fn=lambda: order.append("c"))
            yield last

        env.process(prog())
        env.run()
        assert order == ["a", "b", "c"]

    def test_cross_stream_dependency(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        s1, s2 = gpu.stream(), gpu.stream()
        times = {}

        def prog():
            h = s1.h2d(4096, 4096, "panel")
            k = s2.kernel(64, 64, 64, "dependent", after=[h],
                          fn=lambda: times.setdefault("k", env.now))
            yield k

        env.process(prog())
        env.run()
        # The kernel could not start before the h2d completed.
        assert env.now >= cost.h2d_time(4096, 4096)

    def test_synchronize(self, env, cost):
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        s = gpu.stream()

        def prog():
            s.kernel(512, 512, 512, "a")
            s.kernel(512, 512, 512, "b")
            yield s.synchronize()
            return env.now

        proc = env.process(prog())
        env.run()
        assert proc.value == pytest.approx(2 * cost.srgemm_time(512, 512, 512))

    def test_tracer_spans(self, env, cost):
        tr = Tracer()
        gpu = SimGPU(env, SUMMIT.node.gpu, cost, tracer=tr)
        s = gpu.stream()

        def prog():
            yield s.kernel(512, 512, 512, "traced")

        env.process(prog())
        env.run()
        spans = tr.spans_by_category("SrGemm")
        assert len(spans) == 1
        assert spans[0].label == "traced"
        assert tr.counters["SrGemm.count"] == 1


class TestHostAndCluster:
    def test_host_update_timing(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 1, cost)
        host = cluster.nodes[0].host
        applied = []

        def prog():
            yield from host.host_update(1000, 1000, fn=lambda: applied.append(True))
            return env.now

        proc = env.process(prog())
        env.run()
        assert proc.value == pytest.approx(cost.host_update_time(1000, 1000))
        assert applied == [True]

    def test_host_dram_accounting(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 1, cost)
        host = cluster.nodes[0].host
        host.alloc(10**9)
        with pytest.raises(MemoryError):
            host.alloc(SUMMIT.node.dram_bytes)

    def test_dram_shared_between_users(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 1, cost)
        host = cluster.nodes[0].host

        def prog():
            yield from host.host_update(10000, 10000)

        env.process(prog())
        env.process(prog())
        env.run()
        # Serialized on the DRAM channel: twice the single-update time.
        assert env.now == pytest.approx(2 * cost.host_update_time(10000, 10000))

    def test_cluster_validation(self, env, cost):
        with pytest.raises(ConfigurationError):
            SimCluster(env, SUMMIT, 0, cost)
        with pytest.raises(ConfigurationError):
            SimCluster(env, SUMMIT, SUMMIT.max_nodes + 1, cost)

    def test_internode_charges_nic(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 2, cost)

        def prog():
            yield from cluster.transfer(0, 1, 25e9)

        env.process(prog())
        env.run()
        assert env.now == pytest.approx(1.0 + cost.internode_latency)
        assert cluster.nodes[0].nic_bytes_sent == 25e9
        assert cluster.nodes[1].nic_bytes_sent == 0

    def test_intranode_does_not_touch_nic(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 2, cost)

        def prog():
            yield from cluster.transfer(0, 0, 1e9)

        env.process(prog())
        env.run()
        assert cluster.nodes[0].nic_bytes_sent == 0
        assert cluster.nodes[0].intra_bytes_sent == 1e9
        # Intranode is faster than the NIC for the same bytes.
        assert env.now < 1e9 / SUMMIT.node.nic_bw

    def test_nic_sharing_serializes(self, env, cost):
        """Two simultaneous sends from one node take twice as long -
        the physical effect behind the paper's §3.4.1 model."""
        cluster = SimCluster(env, SUMMIT, 2, cost)

        def prog():
            yield from cluster.transfer(0, 1, 25e9)

        env.process(prog())
        env.process(prog())
        env.run()
        assert env.now == pytest.approx(2.0 + cost.internode_latency, rel=1e-6)

    def test_different_nodes_send_in_parallel(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 3, cost)

        def prog(src):
            yield from cluster.transfer(src, 2, 25e9)

        env.process(prog(0))
        env.process(prog(1))
        env.run()
        # Different NICs: fully parallel.
        assert env.now == pytest.approx(1.0 + cost.internode_latency, rel=1e-6)

    def test_cluster_stats(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 2, cost)

        def prog():
            yield from cluster.transfer(0, 1, 100.0)
            yield from cluster.transfer(1, 0, 50.0)

        env.process(prog())
        env.run()
        assert cluster.total_nic_bytes() == 150.0
        assert cluster.max_nic_bytes() == 100.0
