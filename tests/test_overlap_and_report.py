"""Tests that the *scheduling* claims of the paper hold in simulation:
pipelining hides communication, the async ring decouples iterations,
and the report metrics are computed as defined in §5.1.3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp
from repro.core.report import min_pernode_volume_bytes


def hollow_run(variant, nb=48, nodes=8, rpn=4, scale=768.0, trace=False, **kw):
    w = np.zeros((nb, nb), dtype=np.float32)
    return apsp(
        w,
        variant=variant,
        block_size=1,
        n_nodes=nodes,
        ranks_per_node=rpn,
        dim_scale=scale,
        compute_numerics=False,
        collect_result=False,
        trace=trace,
        **kw,
    )


class TestSchedulingClaims:
    def test_variant_ordering_comm_bound(self):
        """In the communication-bound regime the paper's Figure 4
        ordering holds: baseline < pipelined <= reordering <= async."""
        t = {v: hollow_run(v, nodes=16).report.elapsed for v in
             ("baseline", "pipelined", "reordering", "async")}
        assert t["pipelined"] < t["baseline"]
        assert t["reordering"] <= t["pipelined"] * 1.02
        assert t["async"] <= t["reordering"] * 1.02
        assert t["async"] < t["baseline"] * 0.8

    def test_pipelined_overlaps_comm_with_compute(self):
        """Tracer evidence of Algorithm 4: SrGemm time concurrent with
        NIC transfers is much higher for the pipelined schedule."""
        base = hollow_run("baseline", trace=True).tracer
        pipe = hollow_run("pipelined", trace=True).tracer
        base_ov = base.overlap_time("SrGemm", "nic_xfer")
        pipe_ov = pipe.overlap_time("SrGemm", "nic_xfer")
        assert pipe_ov > base_ov * 1.5

    def test_variants_converge_when_compute_bound(self):
        """Figure 4/7: beyond the crossover the optimizations stop
        mattering."""
        t = {v: hollow_run(v, nb=192, nodes=4, rpn=4).report.elapsed
             for v in ("baseline", "async")}
        # Compute-bound: baseline within 20% of async.
        assert t["baseline"] < t["async"] * 1.25

    def test_async_advantage_grows_with_nodes(self):
        """Strong-scaling behaviour behind Figure 8: 1.6x at small
        node counts growing with scale (paper: 4.6x at 256 nodes)."""
        def speedup(nodes):
            b = hollow_run("baseline", nodes=nodes).report.elapsed
            a = hollow_run("async", nodes=nodes).report.elapsed
            return b / a

        assert speedup(16) > speedup(4)

    def test_reordering_reduces_nic_traffic_under_ring(self):
        """§3.4: the K_r ≈ K_c placement lowers internode volume and
        the busiest NIC's share.  (With rotating-root binomial trees
        the summed volume is placement-invariant; the ring broadcast -
        one send per rank - is where placement shows up as volume,
        which is why the paper stacks +Async on +Reordering.)"""
        from repro.core import ProcessGrid, tiled_placement
        from repro.core.placement import contiguous_placement

        g = ProcessGrid(8, 8)
        contig = hollow_run("async", nodes=16,
                            placement=contiguous_placement(g, 4)).report
        tiled = hollow_run("async", nodes=16,
                           placement=tiled_placement(g, 2, 2)).report
        assert tiled.internode_bytes < 0.9 * contig.internode_bytes
        assert tiled.max_node_nic_bytes < 0.9 * contig.max_node_nic_bytes

    def test_reordering_improves_pipelined_runtime(self):
        """Even with the tree broadcast, the square node grid shortens
        the run (Fig. 4's +Reordering over Pipelined)."""
        contig = hollow_run("pipelined", nodes=16).report.elapsed
        tiled = hollow_run("reordering", nodes=16).report.elapsed
        assert tiled < contig

    def test_offload_close_to_baseline(self):
        """Me-ParallelFw pays a bounded premium over the in-GPU
        baseline (paper: ~20% end to end, 80% of Co-ParallelFw)."""
        base = hollow_run("baseline", nb=96, nodes=4).report.elapsed
        off = hollow_run("offload", nb=96, nodes=4,
                         mx_blocks=8, nx_blocks=8).report.elapsed
        assert off < base * 1.6
        assert off > base * 0.8


class TestReportMetrics:
    def test_min_pernode_volume(self):
        # 4 nodes -> K = 2x2 -> n^2 * 4 bytes * (1/2 + 1/2).
        assert min_pernode_volume_bytes(1000, 4, 4) == pytest.approx(4e6)
        # Prime node count: best split is 1 x p.
        assert min_pernode_volume_bytes(1000, 7, 4) == pytest.approx(
            1e6 * 4 * (1 + 1 / 7)
        )

    def test_effective_bandwidth_definition(self):
        res = hollow_run("async")
        r = res.report
        expected = min_pernode_volume_bytes(r.n_virtual, r.n_nodes, 4) / r.elapsed
        assert r.effective_bandwidth() == pytest.approx(expected)

    def test_flops_and_peak(self):
        from repro.machine import SUMMIT

        res = hollow_run("async")
        r = res.report
        assert r.flops == pytest.approx(2 * r.n_virtual**3)
        pct = r.percent_of_peak(SUMMIT)
        assert 0 < pct < 100

    def test_summary_contains_key_numbers(self):
        r = hollow_run("async").report
        s = r.summary()
        assert "GB/s" in s and "PF/s" in s and "async" in s

    def test_counters_exposed_with_trace(self):
        res = hollow_run("async", trace=True)
        assert res.report.counters  # SrGemm.count etc.
        assert res.report.counters.get("SrGemm.count", 0) > 0
