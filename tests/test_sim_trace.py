"""Unit tests for the tracing layer."""

from __future__ import annotations

import pytest

from repro.sim import Span, Tracer, render_gantt


def make_tracer() -> Tracer:
    t = Tracer()
    t.record("gpu0", "SrGemm", "k0", 0.0, 2.0)
    t.record("gpu0", "SrGemm", "k1", 3.0, 5.0)
    t.record("gpu0.d2h", "d2hXfer", "x0", 1.5, 3.5)
    t.record("host", "hostUpdate", "u0", 3.5, 4.5)
    return t


class TestSpan:
    def test_duration(self):
        assert Span("a", "c", "l", 1.0, 3.5).duration == 2.5

    def test_overlaps(self):
        a = Span("x", "c", "l", 0, 2)
        b = Span("y", "c", "l", 1, 3)
        c = Span("z", "c", "l", 2, 4)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # touching endpoints do not overlap


class TestTracer:
    def test_record_and_query(self):
        t = make_tracer()
        assert len(t.spans) == 4
        assert len(t.spans_by_category("SrGemm")) == 2
        assert len(t.spans_by_actor("gpu0")) == 2
        assert t.actors() == ["gpu0", "gpu0.d2h", "host"]

    def test_invalid_span_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            t.record("a", "c", "l", 2.0, 1.0)

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        t.record("a", "c", "l", 0, 1)
        t.add("counter", 5)
        assert t.spans == []
        assert dict(t.counters) == {}

    def test_counters(self):
        t = Tracer()
        t.add("msgs")
        t.add("msgs")
        t.add("bytes", 100)
        assert t.counters["msgs"] == 2
        assert t.counters["bytes"] == 100

    def test_total_time(self):
        t = make_tracer()
        assert t.total_time("SrGemm") == pytest.approx(4.0)
        assert t.total_time("SrGemm", actor="gpu0") == pytest.approx(4.0)
        assert t.total_time("hostUpdate") == pytest.approx(1.0)

    def test_busy_time_merges_overlaps(self):
        t = Tracer()
        t.record("a", "c", "l1", 0, 2)
        t.record("a", "c", "l2", 1, 3)  # overlapping
        t.record("a", "c", "l3", 5, 6)  # disjoint
        assert t.busy_time("a") == pytest.approx(4.0)

    def test_busy_time_category_filter(self):
        t = make_tracer()
        assert t.busy_time("gpu0", categories=["SrGemm"]) == pytest.approx(4.0)
        assert t.busy_time("gpu0", categories=["other"]) == 0.0

    def test_overlap_time(self):
        t = make_tracer()
        # SrGemm busy [0,2] u [3,5]; d2h busy [1.5,3.5]
        # overlap = [1.5,2] + [3,3.5] = 1.0
        assert t.overlap_time("SrGemm", "d2hXfer") == pytest.approx(1.0)

    def test_overlap_time_no_overlap(self):
        t = Tracer()
        t.record("a", "x", "l", 0, 1)
        t.record("b", "y", "l", 2, 3)
        assert t.overlap_time("x", "y") == 0.0

    def test_makespan(self):
        t = make_tracer()
        assert t.makespan() == pytest.approx(5.0)
        assert Tracer().makespan() == 0.0


class TestGantt:
    def test_empty(self):
        assert render_gantt(Tracer()) == "(empty trace)"

    def test_rows_and_legend(self):
        out = render_gantt(make_tracer(), width=40)
        lines = out.splitlines()
        assert any(line.startswith("gpu0 ") for line in lines)
        assert any(line.startswith("host") for line in lines)
        assert "legend" in lines[-1]
        assert "S=SrGemm" in lines[-1]

    def test_glyph_override(self):
        out = render_gantt(make_tracer(), width=40, glyphs={"SrGemm": "*"})
        assert "*" in out

    def test_actor_filter(self):
        out = render_gantt(make_tracer(), width=40, actors=["host"])
        assert "gpu0 " not in out
        assert "host" in out
