"""Tests for graph generators, IO and the reference algorithms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NegativeCycleError, ValidationError
from repro.graphs import (
    apsp_dijkstra,
    assert_matches_oracle,
    banded_graph,
    bellman_ford,
    check_apsp_invariants,
    dijkstra,
    erdos_renyi,
    estimated_fw_ops,
    estimated_johnson_ops,
    from_edge_list,
    grid_road_network,
    johnson,
    load_edge_list,
    load_matrix,
    power_law_graph,
    ring_of_cliques,
    save_edge_list,
    save_matrix,
    scipy_floyd_warshall,
    uniform_random_dense,
    validate_weights,
)
from repro.semiring import INF, floyd_warshall


class TestGenerators:
    def test_uniform_dense_properties(self):
        w = uniform_random_dense(20, seed=0, low=2, high=5)
        assert w.shape == (20, 20)
        assert np.allclose(np.diagonal(w), 0)
        off = w[~np.eye(20, dtype=bool)]
        assert np.all((off >= 2) & (off <= 5))

    def test_uniform_dense_deterministic(self):
        assert np.array_equal(
            uniform_random_dense(10, seed=42), uniform_random_dense(10, seed=42)
        )

    def test_symmetric_option(self):
        w = uniform_random_dense(15, seed=1, symmetric=True)
        assert np.allclose(w, w.T)

    def test_erdos_renyi_density(self):
        w = erdos_renyi(200, 0.3, seed=0)
        density = np.isfinite(w[~np.eye(200, dtype=bool)]).mean()
        assert 0.25 < density < 0.35

    def test_erdos_renyi_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_grid_road_network_connected(self):
        w = grid_road_network(4, 5, seed=0)
        assert w.shape == (20, 20)
        dist = floyd_warshall(w)
        assert np.all(np.isfinite(dist))  # grid is connected

    def test_grid_road_adjacency(self):
        w = grid_road_network(3, 3, seed=0, diagonal_prob=0.0)
        # Vertex 4 (center) connects to 1, 3, 5, 7 only.
        nbrs = set(np.flatnonzero(np.isfinite(w[4])) .tolist()) - {4}
        assert nbrs == {1, 3, 5, 7}

    def test_ring_of_cliques(self):
        w = ring_of_cliques(3, 4, intra=1.0, inter=9.0)
        assert w.shape == (12, 12)
        assert w[0, 1] == 1.0  # intra-clique
        assert w[0, 4] == 9.0  # bridge 0 -> next clique
        dist = floyd_warshall(w)
        assert np.all(np.isfinite(dist))

    def test_power_law_has_hubs(self):
        w = power_law_graph(300, seed=0, mean_degree=6.0)
        degrees = np.isfinite(w).sum(axis=1) - 1
        assert degrees.max() > 4 * max(1, int(np.median(degrees)))

    def test_banded_structure(self):
        w = banded_graph(20, 3, seed=0)
        assert np.isinf(w[0, 4])
        assert np.isfinite(w[0, 3])
        dist = floyd_warshall(w)
        assert np.all(np.isfinite(dist))

    def test_from_edge_list(self):
        w = from_edge_list(4, [(0, 1, 2.0), (1, 2, 3.0), (0, 1, 1.0)])
        assert w[0, 1] == 1.0  # parallel edges keep the min
        assert np.isinf(w[1, 0])
        sym = from_edge_list(3, [(0, 2, 5.0)], symmetric=True)
        assert sym[2, 0] == 5.0

    def test_from_edge_list_range_check(self):
        with pytest.raises(ValueError):
            from_edge_list(3, [(0, 7, 1.0)])


class TestIO:
    def test_matrix_roundtrip(self, tmp_path):
        w = erdos_renyi(12, 0.4, seed=3)
        path = tmp_path / "g.npz"
        save_matrix(path, w, n=12)
        assert np.array_equal(load_matrix(path), w)

    def test_edge_list_roundtrip(self, tmp_path):
        w = erdos_renyi(10, 0.3, seed=4)
        path = tmp_path / "g.txt"
        save_edge_list(path, w, comment="test graph\nsecond line")
        back = load_edge_list(path)
        assert back.shape == w.shape
        finite = np.isfinite(w) & ~np.eye(10, dtype=bool)
        assert np.allclose(back[finite], w[finite])
        assert np.array_equal(np.isinf(back), np.isinf(w))

    def test_edge_list_isolated_vertices_preserved(self, tmp_path):
        w = np.full((5, 5), INF)
        np.fill_diagonal(w, 0)
        w[0, 1] = 1.0
        path = tmp_path / "sparse.txt"
        save_edge_list(path, w)
        assert load_edge_list(path).shape == (5, 5)


class TestReferenceAlgorithms:
    def test_dijkstra_matches_scipy(self, sparse30):
        ref = scipy_floyd_warshall(sparse30)
        for s in (0, 7, 29):
            got = dijkstra(sparse30, s)
            assert np.allclose(
                got[np.isfinite(ref[s])], ref[s][np.isfinite(ref[s])]
            )

    def test_dijkstra_source_validation(self, sparse30):
        with pytest.raises(ValueError):
            dijkstra(sparse30, 99)

    def test_dijkstra_rejects_negative(self):
        w = np.array([[0.0, -1.0], [INF, 0.0]])
        with pytest.raises(ValueError):
            dijkstra(w, 0)

    def test_bellman_ford_matches_dijkstra(self, sparse30):
        for s in (0, 15):
            assert np.allclose(bellman_ford(sparse30, s), dijkstra(sparse30, s))

    def test_bellman_ford_negative_edges(self):
        w = np.array(
            [[0.0, 4.0, INF], [INF, 0.0, -2.0], [INF, INF, 0.0]]
        )
        d = bellman_ford(w, 0)
        assert d[2] == 2.0

    def test_bellman_ford_negative_cycle(self):
        w = np.array([[0.0, 1.0], [-3.0, 0.0]])
        with pytest.raises(NegativeCycleError):
            bellman_ford(w, 0)

    def test_johnson_matches_fw(self, sparse30):
        assert np.allclose(johnson(sparse30), scipy_floyd_warshall(sparse30))

    def test_johnson_with_negative_edges(self):
        w = np.array(
            [
                [0.0, 3.0, INF, INF],
                [INF, 0.0, -2.0, INF],
                [INF, INF, 0.0, 1.0],
                [2.0, INF, INF, 0.0],
            ]
        )
        assert np.allclose(johnson(w), floyd_warshall(w))

    def test_apsp_dijkstra_matches(self, sparse30):
        assert np.allclose(apsp_dijkstra(sparse30), scipy_floyd_warshall(sparse30))

    def test_ops_estimates_crossover(self):
        """Johnson wins on sparse graphs, FW on dense - the paper's §6
        trade-off."""
        n = 1000
        sparse_m, dense_m = 4 * n, n * n // 2
        assert estimated_johnson_ops(n, sparse_m) < estimated_fw_ops(n)
        assert estimated_johnson_ops(n, dense_m) < estimated_fw_ops(n)  # ops, not speed
        # FW's regular structure is the GPU argument, not raw op count.

    @given(st.integers(4, 16), st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_johnson_equals_fw_property(self, n, seed):
        w = erdos_renyi(n, 0.5, seed=seed)
        assert np.allclose(johnson(w), floyd_warshall(w), equal_nan=True)


class TestValidationHelpers:
    def test_assert_matches_oracle_passes(self, dense24):
        d = floyd_warshall(dense24)
        assert_matches_oracle(d, scipy_floyd_warshall(dense24))

    def test_assert_matches_oracle_fails(self, dense24):
        d = floyd_warshall(dense24)
        bad = d.copy()
        bad[3, 5] += 1.0
        with pytest.raises(ValidationError, match=r"\(3, 5\)"):
            assert_matches_oracle(bad, d)

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            assert_matches_oracle(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_invariants_pass(self, sparse30):
        check_apsp_invariants(sparse30, scipy_floyd_warshall(sparse30))

    def test_invariants_catch_violation(self, dense24):
        d = floyd_warshall(dense24)
        bad = d.copy()
        bad[0, 1] = d[0, 1] + 100  # exceeds the direct edge
        with pytest.raises(ValidationError):
            check_apsp_invariants(dense24, bad)

    def test_invariants_catch_nonzero_diagonal(self, dense24):
        d = floyd_warshall(dense24)
        bad = d.copy()
        np.fill_diagonal(bad, -0.5)
        with pytest.raises(ValidationError):
            check_apsp_invariants(dense24, bad)


class TestWeightValidation:
    """NaN / -inf weights are rejected at load and generation time."""

    def test_valid_weights_pass_through(self, dense24):
        assert validate_weights(dense24) is dense24

    def test_plus_inf_is_fine(self, sparse30):
        assert validate_weights(sparse30) is sparse30

    def test_nan_rejected_with_location(self):
        w = uniform_random_dense(6, seed=1)
        w[2, 4] = np.nan
        with pytest.raises(ValidationError, match=r"NaN.*\(2, 4\)"):
            validate_weights(w)

    def test_neg_inf_rejected_with_location(self):
        w = uniform_random_dense(6, seed=1)
        w[5, 0] = -INF
        with pytest.raises(ValidationError, match=r"-inf.*\(5, 0\)"):
            validate_weights(w)

    def test_load_matrix_rejects_nan(self, tmp_path):
        w = uniform_random_dense(8, seed=2)
        w[1, 3] = np.nan
        path = tmp_path / "corrupt.npz"
        save_matrix(path, w)
        with pytest.raises(ValidationError, match="NaN"):
            load_matrix(path)

    def test_load_matrix_rejects_neg_inf(self, tmp_path):
        w = uniform_random_dense(8, seed=2)
        w[0, 7] = -INF
        path = tmp_path / "corrupt.npz"
        save_matrix(path, w)
        with pytest.raises(ValidationError, match="-inf"):
            load_matrix(path)

    def test_from_edge_list_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            from_edge_list(4, [(0, 1, 2.0), (1, 2, float("nan"))])

    def test_from_edge_list_rejects_neg_inf(self):
        with pytest.raises(ValidationError, match="-inf"):
            from_edge_list(4, [(0, 1, 2.0), (2, 3, -INF)])

    def test_load_edge_list_rejects_nan(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# vertices 3\n0 1 2.5\n1 2 nan\n")
        with pytest.raises(ValidationError, match="NaN"):
            load_edge_list(path)
