"""Unit tests for the discrete-event simulation kernel."""

from __future__ import annotations

import pytest

from repro.sim import Environment, Interrupt, SimulationError


class TestClockAndTimeout:
    def test_time_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_timeout_advances_clock(self, env):
        def prog():
            yield env.timeout(2.5)
            return env.now

        proc = env.process(prog())
        assert env.run(proc) == 2.5
        assert env.now == 2.5

    def test_timeouts_accumulate(self, env):
        def prog():
            yield env.timeout(1.0)
            yield env.timeout(0.5)
            yield env.timeout(0.25)

        env.process(prog())
        env.run()
        assert env.now == pytest.approx(1.75)

    def test_negative_timeout_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_timeout_allowed(self, env):
        def prog():
            yield env.timeout(0)
            return "done"

        assert env.run(env.process(prog())) == "done"

    def test_timeout_carries_value(self, env):
        def prog():
            got = yield env.timeout(1, value="payload")
            return got

        assert env.run(env.process(prog())) == "payload"

    def test_run_until_time(self, env):
        log = []

        def prog():
            for i in range(5):
                yield env.timeout(1.0)
                log.append(i)

        env.process(prog())
        env.run(until=2.5)
        assert log == [0, 1]
        assert env.now == 2.5

    def test_run_until_past_raises(self, env):
        def prog():
            yield env.timeout(10)

        env.process(prog())
        env.run(until=5)
        with pytest.raises(ValueError):
            env.run(until=1)

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")

    def test_step_on_empty_raises(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestEvents:
    def test_succeed_delivers_value(self, env):
        ev = env.event()

        def waiter():
            got = yield ev
            return got

        proc = env.process(waiter())
        ev.succeed(42)
        assert env.run(proc) == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError("x"))

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_failure_propagates_into_waiter(self, env):
        ev = env.event()

        def waiter():
            try:
                yield ev
            except RuntimeError as exc:
                return f"caught {exc}"

        proc = env.process(waiter())
        ev.fail(RuntimeError("boom"))
        assert env.run(proc) == "caught boom"

    def test_unhandled_failure_aborts_run(self, env):
        ev = env.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_waiting_on_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()  # processes ev with no waiters

        def late():
            got = yield ev
            return got

        assert env.run(env.process(late())) == "early"


class TestProcesses:
    def test_return_value(self, env):
        def prog():
            yield env.timeout(1)
            return "result"

        assert env.run(env.process(prog())) == "result"

    def test_exception_propagates_to_run(self, env):
        def prog():
            yield env.timeout(1)
            raise ValueError("inside process")

        proc = env.process(prog())
        with pytest.raises(ValueError, match="inside process"):
            env.run(proc)

    def test_process_waits_on_process(self, env):
        def inner():
            yield env.timeout(3)
            return "inner-done"

        def outer():
            got = yield env.process(inner())
            return (got, env.now)

        assert env.run(env.process(outer())) == ("inner-done", 3)

    def test_yield_from_subroutine(self, env):
        def sub(n):
            yield env.timeout(n)
            return n * 2

        def prog():
            a = yield from sub(1)
            b = yield from sub(2)
            return a + b

        assert env.run(env.process(prog())) == 6
        assert env.now == 3

    def test_yield_non_event_raises(self, env):
        def prog():
            yield 42

        env.process(prog())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_is_alive(self, env):
        def prog():
            yield env.timeout(1)

        proc = env.process(prog())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_interrupt(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        def attacker(v):
            yield env.timeout(2)
            v.interrupt(cause="stop now")

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(v) == ("interrupted", "stop now", 2)

    def test_interrupt_dead_process_raises(self, env):
        def prog():
            yield env.timeout(1)

        proc = env.process(prog())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_active_process_visible(self, env):
        seen = []

        def prog():
            seen.append(env.active_process)
            yield env.timeout(1)

        proc = env.process(prog())
        env.run()
        assert seen == [proc]
        assert env.active_process is None


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def prog():
            evs = [env.timeout(t, value=t) for t in (3, 1, 2)]
            yield env.all_of(evs)
            return env.now

        assert env.run(env.process(prog())) == 3

    def test_any_of_fires_on_first(self, env):
        def prog():
            evs = [env.timeout(t, value=t) for t in (3, 1, 2)]
            yield env.any_of(evs)
            return env.now

        assert env.run(env.process(prog())) == 1

    def test_all_of_with_pretriggered(self, env):
        ev1 = env.event()
        ev1.succeed("a")

        def prog():
            yield env.all_of([ev1, env.timeout(1, value="b")])
            return env.now

        assert env.run(env.process(prog())) == 1

    def test_all_of_empty(self, env):
        def prog():
            yield env.all_of([])
            return "ok"

        assert env.run(env.process(prog())) == "ok"

    def test_all_of_failure_propagates(self, env):
        bad = env.event()

        def prog():
            try:
                yield env.all_of([bad, env.timeout(5)])
            except RuntimeError:
                return "failed"

        proc = env.process(prog())
        bad.fail(RuntimeError("part failed"))
        assert env.run(proc) == "failed"

    def test_cross_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            env.all_of([other.event()])


class TestDeterminism:
    def test_same_seed_same_order(self):
        def run_once():
            env = Environment()
            log = []

            def prog(name, delays):
                for d in delays:
                    yield env.timeout(d)
                    log.append((name, env.now))

            env.process(prog("a", [1, 1, 1]))
            env.process(prog("b", [1, 1, 1]))
            env.process(prog("c", [0.5, 1.5, 1]))
            env.run()
            return log

        assert run_once() == run_once()

    def test_fifo_among_simultaneous(self, env):
        """Processes scheduled at the same instant run in creation order."""
        log = []

        def prog(name):
            yield env.timeout(1)
            log.append(name)

        for name in "abcde":
            env.process(prog(name))
        env.run()
        assert log == list("abcde")

    def test_deadlock_detected_by_run_until_event(self, env):
        ev = env.event()  # never triggered

        def prog():
            yield ev

        proc = env.process(prog())
        with pytest.raises(SimulationError, match="never triggered"):
            env.run(proc)


class TestEngineFuzz:
    """Randomized program fuzz: arbitrary DAGs of timeouts, processes,
    resources and stores must run deterministically to completion."""

    def _random_program(self, seed: int):
        import numpy as np

        from repro.sim import Environment, Resource, Store

        rng = np.random.default_rng(seed)
        env = Environment()
        res = Resource(env, capacity=int(rng.integers(1, 4)))
        store = Store(env)
        log: list[tuple] = []
        n_procs = int(rng.integers(2, 8))

        def prog(pid: int):
            for step in range(int(rng.integers(1, 6))):
                action = rng.integers(0, 4)
                if action == 0:
                    yield env.timeout(float(rng.uniform(0, 2)))
                elif action == 1:
                    yield from res.use(float(rng.uniform(0, 1)))
                elif action == 2:
                    store.put((pid, step))
                else:
                    store.put((pid, "self"))
                    got = yield store.get()
                    log.append(("got", pid, got))
                log.append((pid, step, round(env.now, 12)))

        # rng decisions must be pre-drawn for determinism across the
        # two runs, so materialize each program's script first.
        procs = [env.process(prog(p), name=f"p{p}") for p in range(n_procs)]
        env.run()
        assert all(not p.is_alive for p in procs)
        return log, env.now

    @pytest.mark.parametrize("seed", range(12))
    def test_fuzz_terminates_and_is_deterministic(self, seed):
        # NOTE: each call draws its own rng stream; two calls with the
        # same seed replay the same schedule exactly.
        log1, t1 = self._random_program(seed)
        log2, t2 = self._random_program(seed)
        assert t1 == t2
        assert log1 == log2
