"""Tests for the analytics layer, oracle-checked against networkx."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    average_path_length,
    closeness_centrality,
    diameter,
    eccentricity,
    graph_center,
    graph_periphery,
    harmonic_centrality,
    hop_counts,
    radius,
    reachability_components,
    summarize,
)
from repro.core import apsp
from repro.errors import ValidationError
from repro.extensions import floyd_warshall_with_paths
from repro.graphs import erdos_renyi, grid_road_network
from repro.semiring import INF, floyd_warshall


def to_nx(weights: np.ndarray) -> nx.DiGraph:
    g = nx.DiGraph()
    n = weights.shape[0]
    g.add_nodes_from(range(n))
    for u in range(n):
        for v in np.flatnonzero(np.isfinite(weights[u])):
            if u != v:
                g.add_edge(u, int(v), weight=float(weights[u, v]))
    return g


@pytest.fixture
def connected_case():
    w = grid_road_network(4, 5, seed=2)
    return w, floyd_warshall(w), to_nx(w)


@pytest.fixture
def disconnected_case():
    w = erdos_renyi(25, 0.08, seed=3)
    return w, floyd_warshall(w), to_nx(w)


class TestAgainstNetworkx:
    def test_eccentricity(self, connected_case):
        w, dist, g = connected_case
        ref = nx.eccentricity(g, weight="weight")
        ecc = eccentricity(dist)
        for v, e in ref.items():
            assert ecc[v] == pytest.approx(e)

    def test_diameter_radius(self, connected_case):
        w, dist, g = connected_case
        assert diameter(dist) == pytest.approx(nx.diameter(g, weight="weight"))
        assert radius(dist) == pytest.approx(nx.radius(g, weight="weight"))

    def test_center_periphery(self, connected_case):
        w, dist, g = connected_case
        assert set(graph_center(dist).tolist()) == set(nx.center(g, weight="weight"))
        assert set(graph_periphery(dist).tolist()) == set(
            nx.periphery(g, weight="weight")
        )

    def test_closeness(self, connected_case):
        w, dist, g = connected_case
        ref = nx.closeness_centrality(g, distance="weight")
        got = closeness_centrality(dist)
        for v, c in ref.items():
            assert got[v] == pytest.approx(c)

    def test_closeness_disconnected(self, disconnected_case):
        w, dist, g = disconnected_case
        ref = nx.closeness_centrality(g, distance="weight")
        got = closeness_centrality(dist)
        for v, c in ref.items():
            assert got[v] == pytest.approx(c)

    def test_harmonic(self, disconnected_case):
        w, dist, g = disconnected_case
        ref = nx.harmonic_centrality(g, distance="weight")
        got = harmonic_centrality(dist)
        for v, c in ref.items():
            assert got[v] == pytest.approx(c)

    def test_average_path_length(self, connected_case):
        w, dist, g = connected_case
        ref = nx.average_shortest_path_length(g, weight="weight")
        assert average_path_length(dist) == pytest.approx(ref)

    def test_components_match_scc(self, disconnected_case):
        w, dist, g = disconnected_case
        labels = reachability_components(dist)
        sccs = list(nx.strongly_connected_components(g))
        assert labels.max() + 1 == len(sccs)
        for scc in sccs:
            members = sorted(scc)
            assert len({labels[v] for v in members}) == 1


class TestHopCounts:
    def test_hops_from_tracked_paths(self):
        w = grid_road_network(3, 4, seed=1)
        dist, nxt = floyd_warshall_with_paths(w)
        hops = hop_counts(nxt)
        g = to_nx(w)
        # Hop count along the weighted shortest path == its edge count.
        from repro.extensions import reconstruct_path

        for i in range(12):
            for j in range(12):
                if i == j:
                    assert hops[i, j] == 0
                else:
                    p = reconstruct_path(nxt, i, j)
                    assert hops[i, j] == len(p) - 1

    def test_unreachable_is_minus_one(self):
        w = np.full((4, 4), INF)
        np.fill_diagonal(w, 0)
        w[0, 1] = 1.0
        _, nxt = floyd_warshall_with_paths(w)
        hops = hop_counts(nxt)
        assert hops[0, 1] == 1
        assert hops[1, 0] == -1

    def test_distributed_flow(self):
        """apsp(track_paths=True) -> hop_counts composes."""
        w = grid_road_network(3, 3, seed=5)
        res = apsp(w, variant="async", block_size=3, n_nodes=1, ranks_per_node=2,
                   track_paths=True)
        hops = hop_counts(res.next_hops)
        assert hops[0, 8] >= 2  # opposite corners need at least 2 hops


class TestSummary:
    def test_summary_fields(self, connected_case):
        w, dist, g = connected_case
        s = summarize(dist)
        assert s.n == 20
        assert s.components == 1
        assert s.reachable_pairs == 20 * 19
        assert s.diameter == pytest.approx(nx.diameter(g, weight="weight"))
        assert set(s.center) == set(nx.center(g, weight="weight"))

    def test_summary_disconnected(self, disconnected_case):
        w, dist, g = disconnected_case
        s = summarize(dist)
        assert s.components == len(list(nx.strongly_connected_components(g)))
        assert s.reachable_pairs < 25 * 24

    def test_nonsquare_rejected(self):
        with pytest.raises(ValidationError):
            summarize(np.zeros((2, 3)))

    def test_empty_graph(self):
        w = np.full((5, 5), INF)
        np.fill_diagonal(w, 0)
        s = summarize(w)
        assert s.reachable_pairs == 0
        assert s.diameter == 0.0
        assert np.isinf(s.radius)
        assert s.components == 5

    @given(st.integers(3, 14), st.floats(0.1, 0.9), st.integers(0, 10**5))
    @settings(max_examples=15, deadline=None)
    def test_property_metrics_consistent(self, n, p, seed):
        w = erdos_renyi(n, p, seed=seed)
        dist = floyd_warshall(w)
        s = summarize(dist)
        assert s.radius <= s.diameter or np.isinf(s.radius)
        if np.isfinite(s.radius):
            assert s.average_distance <= s.diameter + 1e-9
        assert 1 <= s.components <= n
