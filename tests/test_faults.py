"""Tests for the fault-injection framework and fault-tolerant solvers.

Covers: plan parsing/serialization, the zero-overhead-when-unarmed
contract (makespans pinned bit-exactly against pre-feature recordings),
every injection primitive, the recovery paths (retransmit, checkpoint/
restart, OOM degradation), the chaos matrix (drop + NIC window + crash
with checkpoint/restart on every variant, bit-compared to the
fault-free oracle), and run-to-run determinism of armed runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp
from repro.errors import (
    CommTimeoutError,
    ConfigurationError,
    GpuOutOfMemory,
    RankFailure,
)
from repro.faults import (
    FAULT_PLAN_ENV,
    CheckpointStore,
    ComputeStraggler,
    FaultPlan,
    MessageFault,
    NicWindow,
    OomFault,
    RankCrash,
    resolve_fault_plan,
)
from repro.graphs import uniform_random_dense

#: Shared small workload: 48 vertices, b=8 (6x6 blocks), 4 ranks on 2
#: nodes - big enough for every broadcast path, small enough to chaos-
#: test repeatedly.
N, B, NODES, RPN = 48, 8, 2, 2

#: Makespans recorded on the commit *before* the fault framework
#: existed (same workload, same machine model).  Unarmed runs must
#: reproduce them bit-for-bit: arming hooks may cost literally nothing
#: when no plan is present.
PRE_FAULT_MAKESPANS = {
    "baseline": 0.00032133007058823555,
    "pipelined": 0.0003952467576470589,
    "async": 0.0003952467576470589,
    "offload": 0.0004660122352941178,
}

#: The acceptance-criteria chaos plan: >=1 drop, >=1 NIC degradation
#: window, >=1 rank crash recovered via checkpoint/restart.
CHAOS_PLAN = (
    "drop:src=0,dst=1,nth=1",
    "nic:node=0,factor=4,t0=0,t1=2e-4",
    "crash:rank=1,at=1.5e-4",
    "policy:timeout=5e-4,ckpt=2",
)


def run(w, variant, **kw):
    return apsp(w, variant=variant, block_size=B, n_nodes=NODES, ranks_per_node=RPN, **kw)


@pytest.fixture(scope="module")
def w48():
    return uniform_random_dense(N, seed=3)


@pytest.fixture(scope="module")
def oracle(w48):
    """Fault-free distance matrices per variant (the bit-exact targets)."""
    return {v: run(w48, v).dist for v in PRE_FAULT_MAKESPANS}


# ---------------------------------------------------------------------------
# FaultPlan construction / serialization
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_spec_grammar_all_kinds(self):
        plan = FaultPlan.from_specs(
            [
                "drop:src=0,dst=3,nth=1",
                "dup:tag=16,p=0.5",
                "corrupt:src=1,nth=2,bits=4",
                "nic:node=0,factor=4,t0=1e-4,t1=2e-4",
                "straggler:rank=2,factor=3",
                "crash:rank=1,at=1.5e-4",
                "oom:rank=0,k=3",
                "policy:timeout=1e-3,retries=2,backoff=1.5,ckpt=4,restarts=3,oom_degrade=false",
            ],
            seed=7,
        )
        assert plan.message_faults == (
            MessageFault("drop", src=0, dst=3, nth=1),
            MessageFault("dup", tag=16, p=0.5),
            MessageFault("corrupt", src=1, nth=2, bits=4),
        )
        assert plan.nic_windows == (NicWindow(0, 4, 1e-4, 2e-4),)
        assert plan.stragglers == (ComputeStraggler(2, 3),)
        assert plan.crashes == (RankCrash(1, 1.5e-4),)
        assert plan.ooms == (OomFault(0, 3),)
        assert plan.recv_timeout == 1e-3
        assert plan.max_retries == 2
        assert plan.backoff == 1.5
        assert plan.checkpoint_interval == 4
        assert plan.max_restarts == 3
        assert plan.oom_degrade is False
        assert plan.seed == 7
        assert plan.armed()

    @pytest.mark.parametrize(
        "spec",
        [
            "explode:rank=0",  # unknown kind
            "drop:src=0",  # needs nth or p
            "drop:src=0,nth=0",  # nth is 1-based
            "drop:src=0,p=1.5",  # p out of range
            "nic:node=0",  # missing factor
            "nic:node=0,factor=-1",  # bad factor
            "nic:node=0,factor=2,t0=3,t1=1",  # empty window
            "crash:rank=0,at=-1",  # negative time
            "crash:rank=0",  # missing at
            "drop:src=0,nth=1,bogus=2",  # unknown key
            "policy:frobnicate=1",  # unknown policy key
            "drop:src",  # not key=value
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_specs([spec])

    def test_json_round_trip(self):
        plan = FaultPlan.from_specs(list(CHAOS_PLAN) + ["nic:node=1,factor=2"], seed=9)
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan  # includes the inf-t1 window surviving JSON

    def test_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json('{"volcanoes": []}')

    def test_resolve_from_environment(self, monkeypatch):
        plan = FaultPlan.from_specs(["drop:src=0,dst=1,nth=1"])
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert resolve_fault_plan(None) == plan
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert resolve_fault_plan(None) is None

    def test_resolve_disarms_empty_plan(self):
        assert resolve_fault_plan(FaultPlan()) is None
        assert resolve_fault_plan("policy:restarts=2") is None  # still nothing armed
        assert resolve_fault_plan("policy:ckpt=4") is not None  # checkpointing arms

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(recv_timeout=0.0)
        with pytest.raises(ConfigurationError):
            FaultPlan(backoff=0.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(max_restarts=-1)


# ---------------------------------------------------------------------------
# Zero overhead when unarmed
# ---------------------------------------------------------------------------
class TestZeroOverhead:
    @pytest.mark.parametrize("variant", sorted(PRE_FAULT_MAKESPANS))
    def test_unarmed_makespan_unchanged(self, w48, variant):
        """Regression pin: the makespan of an unarmed run equals the
        value recorded before the fault framework existed, bit-for-bit."""
        result = run(w48, variant)
        assert result.report.elapsed == PRE_FAULT_MAKESPANS[variant]
        assert result.fault_counters is None

    def test_unarmed_trace_digest_matches_armed_hooks_absent(self, w48):
        """An explicit-but-empty plan disarms completely: identical
        event stream to a run that never heard of faults."""
        a = run(w48, "async", trace=True)
        b = run(w48, "async", trace=True, fault_plan=FaultPlan())
        assert b.fault_counters is None
        assert a.tracer.event_digest() == b.tracer.event_digest()


# ---------------------------------------------------------------------------
# Individual injection primitives
# ---------------------------------------------------------------------------
class TestInjectionPrimitives:
    def test_drop_detected_and_retransmitted(self, w48, oracle):
        r = run(w48, "baseline", fault_plan=["drop:src=0,dst=1,nth=1", "policy:timeout=5e-4"])
        assert r.fault_counters["faults.dropped"] == 1
        assert r.fault_counters["faults.retransmits"] >= 1
        assert r.fault_counters["faults.retries"] >= 1
        assert np.array_equal(r.dist, oracle["baseline"])

    def test_corruption_caught_by_checksum(self, w48, oracle):
        r = run(
            w48,
            "baseline",
            fault_plan=["corrupt:src=0,dst=1,nth=1,bits=8", "policy:timeout=5e-4"],
        )
        assert r.fault_counters["faults.corrupted"] == 1
        assert r.fault_counters["faults.checksum_mismatches"] == 1
        assert r.fault_counters["faults.retransmits"] == 1
        assert np.array_equal(r.dist, oracle["baseline"])

    def test_duplicate_suppressed(self, w48, oracle):
        r = run(w48, "async", fault_plan=["dup:src=0,dst=1,nth=1"])
        assert r.fault_counters["faults.duplicated"] == 1
        assert r.fault_counters["faults.duplicates_suppressed"] == 1
        assert np.array_equal(r.dist, oracle["async"])

    def test_nic_window_slows_only_inside_window(self, w48):
        base = run(w48, "baseline").report.elapsed
        windowed = run(
            w48, "baseline", fault_plan=["nic:node=0,factor=8,t0=0,t1=1e-4"]
        ).report.elapsed
        always = run(w48, "baseline", fault_plan=["nic:node=0,factor=8"]).report.elapsed
        assert base < windowed < always

    def test_nic_window_preserves_results(self, w48, oracle):
        r = run(w48, "async", fault_plan=["nic:node=1,factor=16,t0=0,t1=2e-4"])
        assert np.array_equal(r.dist, oracle["async"])

    def test_straggler_rank_slows_run(self, w48, oracle):
        base = run(w48, "async").report.elapsed
        r = run(w48, "async", fault_plan=["straggler:rank=1,factor=3"])
        assert r.report.elapsed > base
        assert np.array_equal(r.dist, oracle["async"])

    def test_straggler_slows_offload_pipeline(self, w48):
        """The multiplier lives on the GPU, so the offload pipeline's
        internally created streams are slowed too."""
        base = run(w48, "offload").report.elapsed
        r = run(w48, "offload", fault_plan=["straggler:rank=0,factor=4"])
        assert r.report.elapsed > base

    def test_probabilistic_faults_seeded(self, w48):
        a = run(w48, "async", fault_plan=["drop:p=0.05", "policy:timeout=5e-4"], fault_seed=1)
        b = run(w48, "async", fault_plan=["drop:p=0.05", "policy:timeout=5e-4"], fault_seed=1)
        c = run(w48, "async", fault_plan=["drop:p=0.05", "policy:timeout=5e-4"], fault_seed=2)
        assert a.fault_counters == b.fault_counters
        # different seed -> different (deterministic) fault pattern;
        # the *count* may coincide, the runs must still both be correct
        assert np.array_equal(a.dist, c.dist)

    def test_crash_rank_out_of_range_rejected(self, w48):
        with pytest.raises(ConfigurationError):
            run(w48, "baseline", fault_plan=["crash:rank=99,at=1e-4"])


# ---------------------------------------------------------------------------
# Receive timeouts
# ---------------------------------------------------------------------------
class TestRecvTimeout:
    def test_recv_timeout_raises(self):
        """A deadline receive from a silent peer raises CommTimeoutError
        with the envelope attached (no fault plan needed)."""
        from repro.machine import SUMMIT, CostModel, SimCluster
        from repro.mpi import SimMPI
        from repro.sim import Environment

        env = Environment()
        cluster = SimCluster(env, SUMMIT, 2, CostModel(SUMMIT))
        mpi = SimMPI(env, cluster, [0, 1])
        world = mpi.world()
        caught = {}

        def receiver():
            comm = world.localize(1)
            try:
                yield from comm.recv(src=0, tag=5, timeout=1e-3)
            except CommTimeoutError as exc:
                caught["exc"] = exc

        env.process(receiver())
        env.run()
        exc = caught["exc"]
        assert exc.rank == 1 and exc.src == 0 and exc.tag == 5
        assert env.now == pytest.approx(1e-3)

    def test_recv_timeout_not_triggered_by_arrival(self):
        from repro.machine import SUMMIT, CostModel, SimCluster
        from repro.mpi import SimMPI
        from repro.sim import Environment

        env = Environment()
        cluster = SimCluster(env, SUMMIT, 2, CostModel(SUMMIT))
        mpi = SimMPI(env, cluster, [0, 1])
        world = mpi.world()
        got = {}

        def sender():
            yield from world.localize(0).send(1, np.arange(4.0), tag=5)

        def receiver():
            got["payload"] = yield from world.localize(1).recv(src=0, tag=5, timeout=1.0)

        env.process(sender())
        env.process(receiver())
        env.run()
        np.testing.assert_array_equal(got["payload"], np.arange(4.0))

    def test_exhausted_retries_propagate(self, w48):
        """A crashed peer with no checkpointing and no restart budget:
        the receive gives up after max_retries and the error surfaces."""
        with pytest.raises((CommTimeoutError, RankFailure)):
            run(
                w48,
                "baseline",
                fault_plan=[
                    "crash:rank=1,at=1e-4",
                    "policy:timeout=2e-4,retries=1,restarts=0",
                ],
            )


# ---------------------------------------------------------------------------
# Checkpoint / restart
# ---------------------------------------------------------------------------
class TestCheckpointRestart:
    def test_store_consistent_cut(self):
        store = CheckpointStore()
        blocks = {(0, 0): np.eye(2)}
        store.save(0, 0, blocks)
        store.save(0, 1, blocks)
        store.save(4, 0, blocks)  # rank 1 never saved k=4
        assert store.consistent_k(2) == 0
        store.save(4, 1, blocks)
        assert store.consistent_k(2) == 4
        restored = store.restore(4, 0)
        restored[(0, 0)][0, 0] = 99.0  # the store's copy stays pristine
        assert store.restore(4, 0)[(0, 0)][0, 0] == 1.0

    def test_store_missing_checkpoint(self):
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            CheckpointStore().restore(2, 0)

    def test_store_corrupted_checkpoint_rejected(self):
        """In-place rot of a stored snapshot trips the save-time CRC32:
        restore refuses it instead of handing out garbage."""
        from repro.errors import CheckpointError

        store = CheckpointStore()
        store.save(2, 0, {(0, 0): np.full((2, 2), 3.0)})
        store._blocks[2][0][(0, 0)][1, 1] = -3.0  # silent bit-flip at rest
        with pytest.raises(CheckpointError, match="CRC32"):
            store.restore(2, 0)
        assert store.crc_rejections >= 1

    def test_consistent_k_skips_corrupted_epoch(self):
        """A corrupted epoch is treated like an incomplete one: the
        consistency scan falls back to the newest clean cut."""
        store = CheckpointStore()
        blocks = {(0, 0): np.eye(2)}
        for k in (0, 4):
            store.save(k, 0, blocks)
            store.save(k, 1, blocks)
        assert store.consistent_k(2) == 4
        store._blocks[4][1][(0, 0)][0, 0] = 7.0  # corrupt rank 1's newest
        assert store.consistent_k(2) == 0
        assert store.crc_rejections >= 1

    def test_checkpoint_flip_falls_back_to_older_epoch(self, w48, oracle):
        """End-to-end: a memflip targeting the checkpoint store corrupts
        the newest snapshot; a later crash then restarts from the older
        clean epoch and still lands bit-exact."""
        r = run(
            w48,
            "baseline",
            fault_plan=[
                "memflip:rank=0,k=4,target=checkpoint",
                "crash:rank=1,at=2.4e-4",
                "policy:ckpt=2",
            ],
        )
        c = r.fault_counters
        assert c["faults.ckpt_flips"] >= 1
        assert c["faults.crc_rejections"] >= 1
        assert c["faults.restarts"] == 1
        assert np.array_equal(r.dist, oracle["baseline"])

    def test_crash_recovers_from_checkpoint(self, w48, oracle):
        r = run(w48, "baseline", fault_plan=["crash:rank=1,at=1.5e-4", "policy:timeout=5e-4,ckpt=2"])
        c = r.fault_counters
        assert c["faults.crashes"] == 1
        assert c["faults.restarts"] == 1
        assert c["faults.checkpoints"] >= 1
        assert c["faults.checkpoint_time"] > 0
        assert np.array_equal(r.dist, oracle["baseline"])

    def test_crash_without_timeouts_detected_by_deadlock(self, w48, oracle):
        """No recv_timeout armed: the dead peer's partners simply block;
        the driver notices the drained-but-incomplete world and restarts."""
        r = run(w48, "baseline", fault_plan=["crash:rank=2,at=1.5e-4", "policy:ckpt=2"])
        assert r.fault_counters["faults.crashes"] == 1
        assert r.fault_counters["faults.restarts"] == 1
        assert np.array_equal(r.dist, oracle["baseline"])

    def test_larger_interval_replays_more(self, w48):
        replayed = {}
        for ckpt in (1, 4):
            r = run(
                w48,
                "baseline",
                fault_plan=[f"crash:rank=1,at=2.5e-4", f"policy:timeout=5e-4,ckpt={ckpt}"],
            )
            replayed[ckpt] = r.fault_counters["faults.replayed_iters"]
        assert replayed[1] <= replayed[4]

    def test_checkpoint_interval_kwarg_arms(self, w48, oracle):
        r = run(w48, "pipelined", checkpoint_interval=2)
        assert r.fault_counters["faults.checkpoints"] > 0
        assert np.array_equal(r.dist, oracle["pipelined"])

    def test_restart_budget_exhausted(self, w48):
        """More crashes than the restart budget allows gives up with a
        RankFailure (or the underlying timeout) instead of looping."""
        plan = ["crash:rank=1,at=1.5e-4", "policy:timeout=5e-4,ckpt=2,restarts=0"]
        with pytest.raises((RankFailure, CommTimeoutError)):
            run(w48, "baseline", fault_plan=plan)

    def test_simultaneous_crashes_one_restart(self, w48, oracle):
        """Two ranks lost in the same epoch are recovered by a single
        restart from the common consistent checkpoint."""
        r = run(
            w48,
            "baseline",
            fault_plan=[
                "crash:rank=1,at=1.5e-4",
                "crash:rank=2,at=1.6e-4",
                "policy:timeout=5e-4,ckpt=2",
            ],
        )
        assert r.fault_counters["faults.crashes"] == 2
        assert r.fault_counters["faults.restarts"] == 1
        assert np.array_equal(r.dist, oracle["baseline"])


# ---------------------------------------------------------------------------
# OOM degradation
# ---------------------------------------------------------------------------
class TestOomDegrade:
    def test_mid_solve_oom_degrades_to_offload(self, w48, oracle):
        r = run(w48, "baseline", fault_plan=["oom:rank=2,k=3", "policy:ckpt=2"])
        c = r.fault_counters
        assert c["faults.oom_injected"] == 1
        assert c["faults.oom_degraded"] == 1
        assert r.report.variant == "baseline->offload"
        # The offload epochs replay the baseline checkpoint bit-exactly:
        # top-of-loop state is schedule-independent for Alg. 3 flavors.
        assert np.array_equal(r.dist, oracle["offload"])
        assert np.array_equal(r.dist, oracle["baseline"])

    def test_oom_degrade_disabled_propagates(self, w48):
        with pytest.raises(GpuOutOfMemory):
            run(w48, "baseline", fault_plan=["oom:rank=2,k=3", "policy:ckpt=2,oom_degrade=false"])

    def test_oom_under_offload_restarts_in_place(self, w48, oracle):
        """Already offloaded: nothing left to degrade to, so the world
        restarts under the same config (the injected OOM fires once)."""
        r = run(w48, "offload", fault_plan=["oom:rank=1,k=2", "policy:ckpt=2"])
        assert r.fault_counters["faults.restarts"] == 1
        assert "faults.oom_degraded" not in r.fault_counters
        assert np.array_equal(r.dist, oracle["offload"])


# ---------------------------------------------------------------------------
# Chaos matrix: the acceptance plan on every variant, bit-compared
# ---------------------------------------------------------------------------
class TestChaosMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2], ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("variant", ["baseline", "pipelined", "async", "offload"])
    def test_chaos_bit_identical_to_fault_free(self, variant, seed):
        w = uniform_random_dense(N, seed=seed)
        clean = run(w, variant)
        chaotic = run(w, variant, fault_plan=list(CHAOS_PLAN), fault_seed=seed)
        c = chaotic.fault_counters
        assert c["faults.crashes"] == 1
        assert c["faults.restarts"] >= 1
        assert np.array_equal(chaotic.dist, clean.dist), (
            f"{variant} seed={seed}: chaos run diverged from fault-free oracle"
        )

    @pytest.mark.parametrize("variant", ["baseline", "pipelined", "async", "offload"])
    def test_chaos_deterministic(self, variant):
        """Two identical armed runs: same trace digest, same counters,
        same distances - the bit-reproducibility contract."""
        w = uniform_random_dense(N, seed=5)
        a = run(w, variant, fault_plan=list(CHAOS_PLAN), trace=True)
        b = run(w, variant, fault_plan=list(CHAOS_PLAN), trace=True)
        assert a.tracer.event_digest() == b.tracer.event_digest()
        assert a.fault_counters == b.fault_counters
        assert np.array_equal(a.dist, b.dist)

    def test_chaos_validates_against_sequential_oracle(self):
        """Belt and braces: the chaotic result also passes the driver's
        own oracle validation."""
        w = uniform_random_dense(N, seed=0)
        run(w, "async", fault_plan=list(CHAOS_PLAN), validate=True)
