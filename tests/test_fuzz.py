"""Tests for the coverage-driven scenario fuzzer (repro/fuzz/).

Covers the tentpole acceptance criteria:

* a planted corrupted kernel backend (registered only for the test) is
  found by a fixed-seed 200-scenario budget, shrunk to a minimal
  repro, and the repro replays bit-exact from the scenario database;
* the clean build passes the same fixed-seed 200-scenario budget with
  zero oracle violations;

plus unit coverage of the generator, sandboxed executor, oracle
families, delta-debugging shrinker, corpus, coverage map, and the
``fuzz`` CLI subcommand.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, InternalError
from repro.fuzz import (
    Corpus,
    CorpusRecord,
    CoverageMap,
    FuzzSession,
    GeneratorConfig,
    GraphSpec,
    OracleSuite,
    Outcome,
    Scenario,
    ScenarioExecutor,
    ScenarioGenerator,
    bit_exact_backends,
    run_scenario,
    shrink,
)
from repro.fuzz.executor import HARD_CRASH_EXIT_CODE, TIMEOUT_EXIT_CODE

# Deterministic budgets: CI smoke uses the same seeds.
CLEAN_SEED = 2026
PLANTED_SEED = 5


def small_scenario(**overrides):
    base = dict(
        graph=GraphSpec(kind="uniform", n=12, seed=3),
        variant="async",
        block_size=4,
        kernel_backend="reference",
        machine="workstation",
        n_nodes=1,
        ranks_per_node=2,
        verify="checksum",
    )
    base.update(overrides)
    return Scenario(**base)


# ---------------------------------------------------------------------------
# scenario identity
# ---------------------------------------------------------------------------


class TestScenario:
    def test_round_trip_and_content_addressed_id(self):
        sc = small_scenario(fault_specs=("straggler:rank=1,factor=2.5",))
        again = Scenario.from_dict(json.loads(json.dumps(sc.to_dict())))
        assert again == sc
        assert again.scenario_id == sc.scenario_id
        assert sc.replace(fault_seed=sc.fault_seed + 1).scenario_id != sc.scenario_id

    def test_from_dict_rejects_unknown_keys(self):
        raw = small_scenario().to_dict()
        raw["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            Scenario.from_dict(raw)
        raw = small_scenario().to_dict()
        raw["graph"]["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown graph keys"):
            Scenario.from_dict(raw)

    def test_graph_spec_validation(self):
        with pytest.raises(ConfigurationError, match="unknown graph kind"):
            GraphSpec(kind="mystery", n=8)
        with pytest.raises(ConfigurationError, match="rows"):
            GraphSpec(kind="grid-road", n=9, rows=2, cols=2)

    def test_fault_classes_exclude_policy(self):
        sc = small_scenario(
            fault_specs=("drop:nth=1", "crash:rank=0,at=0.1", "policy:timeout=0.001")
        )
        assert sc.fault_classes() == ("crash", "drop")
        assert small_scenario().fault_classes() == ("none",)

    def test_graph_builds_are_deterministic(self):
        g = GraphSpec(kind="erdos-renyi", n=16, seed=9, density=0.4)
        assert np.array_equal(g.build(), g.build())


# ---------------------------------------------------------------------------
# generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_same_seed_same_stream(self):
        gen = ScenarioGenerator(seed=4)
        a = [gen.draw() for _ in range(10)]
        b = ScenarioGenerator(seed=4)
        assert [s.scenario_id for s in a] == [b.draw().scenario_id for _ in range(10)]
        c = ScenarioGenerator(seed=5)
        assert [s.scenario_id for s in a] != [c.draw().scenario_id for _ in range(10)]

    def test_generated_scenarios_satisfy_invariants(self):
        gen = ScenarioGenerator(seed=1)
        pool = set(bit_exact_backends())
        for _ in range(80):
            sc = gen.draw()
            assert sc.kernel_backend in pool
            assert 2 <= sc.block_size <= sc.graph.n
            ranks = sc.n_nodes * sc.ranks_per_node
            kinds = [s.partition(":")[0] for s in sc.fault_specs]
            # message faults must arm a retransmit deadline, or the
            # run is a designed deadlock
            if {"drop", "dup", "corrupt"} & set(kinds):
                assert any(k == "policy" and "timeout=" in s
                           for k, s in zip(kinds, sc.fault_specs))
            # every spec parses through the hardened parser
            plan = sc.fault_plan()
            if plan is not None:
                for f in plan.stragglers + plan.crashes + plan.ooms:
                    assert 0 <= f.rank < ranks
                for w in plan.nic_windows:
                    assert 0 <= w.node < sc.n_nodes

    def test_bit_exact_pool_excludes_f32(self):
        assert "tiled-f32" not in bit_exact_backends()
        assert "reference" in bit_exact_backends()

    def test_coverage_bias_prefers_cold_cells(self):
        cov = CoverageMap()
        cfg = GeneratorConfig(
            variants=("baseline",), fault_classes=("none", "straggler"),
            verify_modes=("off", "full"), p_faulted=1.0,
        )
        # pre-heat every cell except (baseline, straggler, full)
        for f in ("none", "straggler"):
            for m in ("off", "full"):
                if (f, m) != ("straggler", "full"):
                    for _ in range(50):
                        cov.registry.counter(cov._cell("baseline", f, m)).inc()
        gen = ScenarioGenerator(seed=0, config=cfg, coverage=cov)
        hits = sum(
            1
            for _ in range(40)
            if (lambda s: "straggler" in s.fault_classes() and s.verify == "full")(
                gen.draw()
            )
        )
        assert hits > 20  # ~10 expected unbiased, ~37 biased

    def test_multi_class_scenarios_are_drawn_and_legal(self):
        """Some armed scenarios stack several fault classes; every
        stacked draw still parses, keeps per-class invariants (message
        faults arm a deadline even as companions), and emits exactly
        one merged policy spec."""
        cfg = GeneratorConfig(p_faulted=1.0, p_multi_fault=1.0)
        gen = ScenarioGenerator(seed=3, config=cfg)
        multi = 0
        for _ in range(60):
            sc = gen.draw()
            classes = [c for c in sc.fault_classes() if c != "none"]
            if len(classes) > 1:
                multi += 1
            n_policies = sum(1 for s in sc.fault_specs if s.startswith("policy:"))
            assert n_policies <= 1
            if {"drop", "dup", "corrupt"} & set(classes):
                assert any("timeout=" in s for s in sc.fault_specs
                           if s.startswith("policy:"))
            sc.fault_plan()  # parses through the hardened parser
        assert multi > 20  # p_multi_fault=1.0: every armed draw stacks

    def test_multi_fault_off_keeps_single_class(self):
        cfg = GeneratorConfig(p_faulted=1.0, p_multi_fault=0.0)
        gen = ScenarioGenerator(seed=3, config=cfg)
        for _ in range(30):
            classes = [c for c in gen.draw().fault_classes() if c != "none"]
            assert len(classes) == 1


# ---------------------------------------------------------------------------
# executor
# ---------------------------------------------------------------------------


class TestExecutor:
    def test_ok_outcome_carries_digests(self):
        out = run_scenario(small_scenario())
        assert out.ok and out.exit_code == 0
        assert out.dist_digest and out.makespan > 0
        assert out.certificate and out.certificate["mode"] == "checksum"
        assert out.measurement is not None
        again = Outcome.from_dict(json.loads(json.dumps(out.to_dict())))
        assert again.digest_key() == out.digest_key()

    def test_handled_error_keeps_table_exit_code(self):
        out = run_scenario(small_scenario(kernel_backend="no-such-backend"))
        assert out.status == "error"
        assert out.exit_code == 2  # ConfigurationError
        assert out.error_type == "ConfigurationError"
        assert out.traceback

    def test_unexpected_error_is_exit_14(self, monkeypatch):
        import repro.core.driver as driver

        def boom(*a, **k):
            raise ValueError("kaboom")

        monkeypatch.setattr(driver, "apsp", boom)
        out = run_scenario(small_scenario())
        assert out.status == "error" and out.exit_code == 14
        assert out.error_type == "InternalError"

    def test_isolated_run_matches_in_process(self):
        sc = small_scenario()
        inproc = run_scenario(sc)
        sandboxed = ScenarioExecutor(timeout=120.0, isolate=True).run(sc)
        assert sandboxed.digest_key() == inproc.digest_key()

    def test_isolated_timeout_is_exit_124(self):
        sc = small_scenario(
            graph=GraphSpec(kind="uniform", n=96, seed=0), block_size=4,
            machine="summit", n_nodes=2, ranks_per_node=4,
        )
        ex = ScenarioExecutor(timeout=0.01, isolate=True)
        out = ex.run(sc)
        assert out.status == "timeout" and out.exit_code == TIMEOUT_EXIT_CODE
        assert ex.kills == 1


# ---------------------------------------------------------------------------
# oracles
# ---------------------------------------------------------------------------


class TestOracles:
    def test_clean_scenario_has_no_violations(self):
        sc = small_scenario(check_determinism=True)
        assert OracleSuite().check(sc, run_scenario(sc)) == []

    def test_crash_family_flags_unexpected_exit_codes(self):
        suite = OracleSuite()
        sc = small_scenario()
        for code in (14, TIMEOUT_EXIT_CODE, HARD_CRASH_EXIT_CODE):
            v = suite.check(sc, Outcome(status="error", exit_code=code))
            assert [x.family for x in v] == ["crash"]
        # modeled failures (e.g. RankFailure exit 8) are not findings
        assert suite.check(sc, Outcome(status="error", exit_code=8)) == []

    def test_equivalence_catches_wrong_distances(self):
        sc = small_scenario()
        out = run_scenario(sc)
        forged = Outcome.from_dict({**out.to_dict(), "dist_digest": "0" * 24})
        v = OracleSuite().check(sc, forged)
        assert "equivalence" in [x.family for x in v]

    def test_certificate_consistency_rules(self):
        suite = OracleSuite()
        sc = small_scenario(verify="off")
        out = run_scenario(sc)
        assert out.certificate is None
        # verify=off with a certificate is a violation
        forged = Outcome.from_dict(
            {**out.to_dict(), "certificate": {"mode": "checksum", "passed": True}}
        )
        assert "certificate" in [x.family for x in suite.check(sc, forged)]
        # armed verify without a certificate is a violation
        sc2 = small_scenario(verify="checksum")
        out2 = run_scenario(sc2)
        forged2 = Outcome.from_dict({**out2.to_dict(), "certificate": None})
        assert "certificate" in [x.family for x in suite.check(sc2, forged2)]
        # detections on a run with no memory fault armed are a violation
        cert = dict(out2.certificate)
        cert["sdc_detected"] = 3
        forged3 = Outcome.from_dict({**out2.to_dict(), "certificate": cert})
        v = suite.check(sc2, forged3)
        assert any("no memory fault" in x.detail for x in v)

    def test_determinism_family_reruns(self):
        flip = {"n": 0}

        def flaky_runner(scenario):
            flip["n"] += 1
            out = run_scenario(scenario)
            out.dist_digest = f"run{flip['n']}"
            return out

        suite = OracleSuite(runner=flaky_runner)
        sc = small_scenario(check_determinism=True)
        out = flaky_runner(sc)
        v = suite.check(sc, out)
        assert "determinism" in [x.family for x in v]


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------


class TestShrinker:
    def test_minimization_preserves_the_failure_oracle(self):
        # Oracle: fails whenever a corrupt fault is armed.  The shrinker
        # must keep that property at every accepted step and in the
        # final minimal scenario.
        sc = small_scenario(
            graph=GraphSpec(kind="uniform", n=32, seed=1),
            block_size=8,
            n_nodes=2,
            ranks_per_node=2,
            variant="offload-pipelined",
            fault_specs=(
                "corrupt:nth=2,bits=2",
                "straggler:rank=1,factor=3",
                "nic:node=0,factor=2,t0=0,t1=0.1",
                "policy:timeout=0.001,retries=5",
            ),
            check_determinism=True,
        )
        seen = []

        def still_fails(candidate):
            seen.append(candidate)
            return any(s.startswith("corrupt") for s in candidate.fault_specs)

        result = shrink(sc, still_fails, max_evals=150)
        assert result.evals == len(seen) and result.steps
        minimal = result.scenario
        assert still_fails(minimal)
        # irrelevant faults dropped, the failing one kept
        kinds = {s.partition(":")[0] for s in minimal.fault_specs}
        assert "corrupt" in kinds
        assert "straggler" not in kinds and "nic" not in kinds
        # the retransmit policy survives while a message fault remains
        assert any(s.startswith("policy") and "timeout=" in s
                   for s in minimal.fault_specs)
        # strictly simpler execution
        assert minimal.graph.n < sc.graph.n
        assert minimal.n_nodes * minimal.ranks_per_node <= 2
        assert minimal.variant == "baseline"
        assert not minimal.check_determinism

    def test_shrinker_never_returns_a_passing_scenario(self):
        sc = small_scenario(fault_specs=("straggler:rank=0,factor=2",))
        result = shrink(sc, lambda c: "straggler" in c.fault_classes(), max_evals=60)
        assert "straggler" in result.scenario.fault_classes()

    def test_eval_budget_is_respected(self):
        sc = small_scenario(
            graph=GraphSpec(kind="uniform", n=40, seed=2), block_size=4
        )
        result = shrink(sc, lambda c: True, max_evals=7)
        assert result.evals <= 7


# ---------------------------------------------------------------------------
# corpus
# ---------------------------------------------------------------------------


class TestCorpus:
    def test_append_get_replay(self, tmp_path):
        path = str(tmp_path / "c.jsonl")
        corpus = Corpus(path)
        sc = small_scenario()
        corpus.append(CorpusRecord(scenario=sc, outcome=run_scenario(sc)))
        rec = corpus.get(sc.scenario_id[:6])  # prefix lookup
        assert rec.scenario == sc
        replay = corpus.replay(sc.scenario_id)
        assert replay.bit_exact
        with pytest.raises(ConfigurationError, match="no scenario"):
            corpus.get("ffffffffffff")

    def test_add_deduplicates(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c.jsonl"))
        rec = CorpusRecord(scenario=small_scenario())
        assert corpus.add(rec) is True
        assert corpus.add(rec) is False
        assert len(corpus.records()) == 1

    def test_replay_detects_digest_drift(self, tmp_path):
        corpus = Corpus(str(tmp_path / "c.jsonl"))
        sc = small_scenario()
        out = run_scenario(sc)
        out.dist_digest = "not-the-real-digest"
        corpus.append(CorpusRecord(scenario=sc, outcome=out))
        replay = corpus.replay(sc.scenario_id)
        assert not replay.bit_exact and "drift" in replay.detail

    def test_minimize_keeps_findings_only(self, tmp_path):
        from repro.fuzz import OracleViolation

        corpus = Corpus(str(tmp_path / "c.jsonl"))
        clean = CorpusRecord(scenario=small_scenario())
        finding = CorpusRecord(
            scenario=small_scenario(fault_seed=9),
            violations=[OracleViolation("equivalence", "boom")],
        )
        corpus.append(clean)
        corpus.append(finding)
        assert corpus.minimize() == 1
        kept = corpus.records()
        assert len(kept) == 1 and kept[0].is_finding


# ---------------------------------------------------------------------------
# coverage map + session
# ---------------------------------------------------------------------------


class TestSession:
    def test_coverage_map_counts_cells(self):
        cov = CoverageMap()
        cov.record(small_scenario(fault_specs=("straggler:rank=0,factor=2",)))
        cov.record(small_scenario(fault_specs=("straggler:rank=0,factor=2",)))
        assert cov.hits("async", "straggler", "checksum") == 2
        assert cov.summary()["cells_hit"] == 1

    def test_coverage_map_counts_class_pairs(self):
        cov = CoverageMap()
        cov.record(small_scenario(fault_specs=(
            "straggler:rank=0,factor=2", "crash:rank=0,at=1e-4",
            "policy:ckpt=1,restarts=2",
        )))
        # each class cell credited, plus the unordered pair cell
        assert cov.hits("async", "straggler", "checksum") == 1
        assert cov.hits("async", "crash", "checksum") == 1
        assert cov.pair_hits("async", "crash", "straggler", "checksum") == 1
        assert cov.pair_hits("async", "straggler", "crash", "checksum") == 1
        summary = cov.summary()
        assert summary["pair_cells_hit"] == 1 and summary["pair_hits"] == 1
        assert ("async", "crash+straggler", "checksum") in cov.pair_cells()
        # single-class records contribute no pair cells
        cov2 = CoverageMap()
        cov2.record(small_scenario(fault_specs=("straggler:rank=0,factor=2",)))
        assert cov2.summary()["pair_cells_hit"] == 0

    def test_small_session_is_clean_and_replayable(self, tmp_path):
        path = str(tmp_path / "corpus.jsonl")
        report = FuzzSession(budget=15, seed=8, corpus_path=path).run()
        assert report.executed == 15
        assert report.ok, report.summary()
        corpus = Corpus(path)
        assert len(corpus.records()) == 15
        for rep in corpus.replay_all():
            assert rep.bit_exact, rep.detail
        # metrics registry carries the session counters
        flat = report.coverage
        assert flat["hits"] >= 15

    def test_clean_build_passes_200_scenario_budget(self):
        # Tentpole acceptance: fixed-seed 200-scenario budget, zero
        # oracle violations on a clean tree.
        report = FuzzSession(budget=200, seed=CLEAN_SEED).run()
        assert report.executed == 200
        assert report.ok, report.summary()
        assert report.coverage["cells_hit"] > 80


# ---------------------------------------------------------------------------
# the planted corrupted backend (tentpole acceptance)
# ---------------------------------------------------------------------------


def make_planted_backend():
    """A kernel backend that silently corrupts the outer-product phase -
    the SDC the fuzzer must catch.  Registered only for the duration of
    the planted test.

    The corruption is *stateless* (same inputs -> same wrong output) so
    the minimal repro stays deterministic and replays bit-exact, and it
    *shrinks* an entry - a too-short distance survives every subsequent
    ``min`` accumulate, unlike an inflated one which a later relaxation
    can silently repair.
    """
    from repro.semiring.backends import ReferenceBackend

    class _Planted(ReferenceBackend):
        name = "planted-corrupt"
        rtol = 0.0

        def srgemm_outer(self, c, a, b, *args, **kwargs):
            out = super().srgemm_outer(c, a, b, *args, **kwargs)
            if np.isfinite(c[0, 0]) and c[0, 0] > 0:
                c[0, 0] *= 0.75  # silent SDC: path shorter than possible
            return out

    return _Planted()


@pytest.fixture
def planted_backend():
    from repro.semiring import backends as registry

    backend = make_planted_backend()
    registry.register_backend(backend, overwrite=True)
    try:
        yield backend
    finally:
        registry._REGISTRY.pop("planted-corrupt", None)


class TestPlantedBackend:
    def test_fuzzer_finds_shrinks_and_replays_the_plant(
        self, planted_backend, tmp_path
    ):
        path = str(tmp_path / "corpus.jsonl")
        config = GeneratorConfig(
            backends=tuple(bit_exact_backends())  # includes the plant now
        )
        assert "planted-corrupt" in config.backends
        session = FuzzSession(
            budget=200,
            seed=PLANTED_SEED,
            corpus_path=path,
            generator_config=config,
            max_findings=4,
            shrink_max_evals=80,
        )
        report = session.run()

        # 1. found within the fixed 200-scenario budget
        assert not report.ok, "planted corruption was not detected"
        planted = [
            f for f in report.findings
            if f.scenario.kernel_backend == "planted-corrupt"
        ]
        assert planted, report.summary()
        finding = next(f for f in planted if f.shrunk is not None)

        # 2. shrunk to a minimal repro that still uses the plant and
        #    still fails the same oracle
        minimal = finding.shrunk.scenario
        assert minimal.kernel_backend == "planted-corrupt"
        assert minimal.graph.n <= finding.scenario.graph.n

        # 3. the minimal repro replays bit-exact from the scenario DB
        corpus = Corpus(path)
        record = corpus.get(minimal.scenario_id)
        assert record.shrunk_from == finding.scenario.scenario_id
        replay = corpus.replay(minimal.scenario_id)
        assert replay.bit_exact, replay.detail
        assert record.violations, "minimal repro record lost its violations"

    def test_plant_is_invisible_once_unregistered(self):
        assert "planted-corrupt" not in bit_exact_backends()


# ---------------------------------------------------------------------------
# InternalError wrapping (satellite)
# ---------------------------------------------------------------------------


class TestInternalErrorWrapping:
    def test_unexpected_exception_dumps_replayable_scenario(self, monkeypatch):
        import repro.core.driver as driver
        from repro.api import SolveConfig, solve

        def boom(*a, **k):
            raise RuntimeError("wild pointer")

        monkeypatch.setattr(driver, "apsp", boom)
        graph = GraphSpec(kind="uniform", n=8, seed=0).build()
        config = SolveConfig(variant="async", block_size=4, fault_plan=())
        with pytest.raises(InternalError) as info:
            solve(graph, config)
        err = info.value
        assert err.original_type == "RuntimeError"
        assert isinstance(err.__cause__, RuntimeError)
        # the embedded scenario JSON parses and names the config
        payload = json.loads(err.scenario_json)
        assert payload["variant"] == "async" and payload["block_size"] == 4


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestFuzzCli:
    def test_run_replay_corpus_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "corpus.jsonl")
        rc = main(["fuzz", "run", "--budget", "6", "--seed", "8", "--corpus", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "6/6 scenarios" in out and "clean" in out

        rc = main(["fuzz", "corpus", "ls", "--corpus", path])
        assert rc == 0
        listing = capsys.readouterr().out
        assert "6 record(s)" in listing

        some_id = Corpus(path).records()[0].scenario_id
        rc = main(["fuzz", "replay", some_id, "--corpus", path])
        assert rc == 0
        assert "BIT-EXACT" in capsys.readouterr().out

    def test_run_report_json(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        rc = main(
            ["fuzz", "run", "--budget", "4", "--seed", "8",
             "--report-json", str(report_path)]
        )
        assert rc == 0
        capsys.readouterr()
        payload = json.loads(report_path.read_text())
        assert payload["executed"] == 4 and payload["ok"] is True

    def test_replay_unknown_id_exits_with_config_error(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "corpus.jsonl")
        Corpus(path).append(CorpusRecord(scenario=small_scenario()))
        rc = main(["fuzz", "replay", "ffffffffffff", "--corpus", path])
        assert rc == 2  # ConfigurationError
        capsys.readouterr()


# ---------------------------------------------------------------------------
# fleet scenarios (multi-job + resilience; PR 9)
# ---------------------------------------------------------------------------

RESILIENCE = {
    "retry": {"max_attempts": 3, "backoff_base": 0.002, "backoff_factor": 2.0,
              "jitter": 0.25, "seed": 99},
    "health": {"fault_threshold": 2, "probation": 0.02},
    "retry_budget": 16,
}


def fleet_scenario(**overrides):
    """A 3-job fleet where job 0/2 crash once (terminal for the attempt
    via policy:restarts=0) and re-admit from the ckpt=1 snapshot."""
    base = dict(
        fault_specs=("crash:rank=0,at=0.0001", "policy:restarts=0,ckpt=1"),
        fault_seed=21,
        jobs=3,
        resilience=dict(RESILIENCE),
    )
    base.update(overrides)
    return small_scenario(**base)


class TestFleetScenario:
    def test_fleet_round_trip_and_distinct_id(self):
        sc = fleet_scenario(deadline=2.0)
        again = Scenario.from_dict(json.loads(json.dumps(sc.to_dict())))
        assert again == sc and again.scenario_id == sc.scenario_id
        assert sc.is_fleet
        assert sc.replace(jobs=2).scenario_id != sc.scenario_id

    def test_pre_fleet_ids_are_stable(self):
        # Fleet fields must not leak into the canonical JSON at their
        # defaults, or every pre-fleet corpus id would shift.
        plain = small_scenario()
        raw = plain.to_dict()
        assert not {"jobs", "resilience", "deadline"} & set(raw)
        assert not plain.is_fleet

    def test_fleet_field_validation(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            small_scenario(jobs=0)
        with pytest.raises(ConfigurationError, match="deadline"):
            small_scenario(deadline=0.0, resilience=dict(RESILIENCE))
        # a deadline without the layer that enforces it is a config bug
        with pytest.raises(ConfigurationError, match="resilience"):
            small_scenario(deadline=1.0)
        # the policy dict is validated eagerly, not at run time
        with pytest.raises(Exception):
            small_scenario(resilience={"retry": {"max_attempts": "many"}})

    def test_job_graphs_are_distinct_but_deterministic(self):
        sc = fleet_scenario()
        assert sc.job_graph(0) == sc.graph
        g1, g2 = sc.job_graph(1), sc.job_graph(2)
        assert g1.seed == sc.graph.seed + 1 and g2.seed == sc.graph.seed + 2
        assert np.array_equal(g1.build(), g1.build())


class TestFleetGenerator:
    def test_fleet_draws_are_legal(self):
        from repro.api import resolve_machine

        gen = ScenarioGenerator(
            seed=13, config=GeneratorConfig(p_fleet=1.0, p_faulted=0.9)
        )
        fleets = 0
        for _ in range(60):
            sc = gen.draw()
            if not sc.is_fleet:
                continue
            fleets += 1
            # memflip scenarios never convert (the applied-flip escape
            # exemption would hollow out the retry-determinism oracle)
            assert "memflip" not in sc.fault_classes()
            # the shared fleet builds the real cluster: capacity-checked
            assert sc.n_nodes <= resolve_machine(sc.machine).max_nodes
            if sc.deadline is not None:
                assert sc.resilience is not None and sc.deadline >= 0.5
            # crash/OOM must be terminal for the attempt so recovery
            # goes through the scheduler's retry layer
            kinds = {s.partition(":")[0] for s in sc.fault_specs}
            if kinds & {"crash", "oom", "drop", "dup", "corrupt"}:
                policy = [s for s in sc.fault_specs if s.startswith("policy")]
                assert len(policy) == 1
                assert "restarts=0" in policy[0]
                assert "oom_degrade=false" in policy[0]
        assert fleets >= 30

    def test_fleet_draws_replay_in_stream(self):
        cfg = GeneratorConfig(p_fleet=0.5)
        a = ScenarioGenerator(seed=21, config=cfg)
        b = ScenarioGenerator(seed=21, config=cfg)
        ids = [a.draw().scenario_id for _ in range(12)]
        assert ids == [b.draw().scenario_id for _ in range(12)]


class TestFleetExecutor:
    def test_fleet_run_retries_and_stays_bit_exact(self):
        sc = fleet_scenario()
        out = run_scenario(sc)
        assert out.ok, out.error
        assert len(out.job_digests) == sc.jobs
        assert all(out.job_digests)
        assert out.fault_counters["fleet.resilience.retries"] >= 1
        # determinism: same scenario, same fleet, same bytes
        again = run_scenario(sc)
        assert again.digest_key() == out.digest_key()
        assert again.job_digests == out.job_digests
        # and the oracles agree the retried jobs match their references
        assert OracleSuite().check(sc, out) == []

    def test_exhausted_attempts_classify_as_fleet_failure(self):
        res = dict(RESILIENCE)
        res["retry"] = {**RESILIENCE["retry"], "max_attempts": 1}
        sc = fleet_scenario(resilience=res, jobs=2)
        out = run_scenario(sc)
        assert out.status == "error" and out.error_type == "FleetJobsFailed"
        assert out.exit_code > 0
        # the clean bystander still finished; the chaos tenant did not
        assert out.job_digests[0] is None and out.job_digests[1] is not None

    def test_single_armed_job_keeps_plain_digest(self):
        # jobs=1 + resilience runs on the scheduler but must produce the
        # same distance digest as the classic solve path
        armed = small_scenario(resilience=dict(RESILIENCE))
        plain = small_scenario()
        assert run_scenario(armed).dist_digest == run_scenario(plain).dist_digest


class TestResilienceOracle:
    def test_clean_fleet_has_no_violations(self):
        sc = fleet_scenario()
        assert OracleSuite().check(sc, run_scenario(sc)) == []

    def test_planted_job_divergence_is_flagged(self):
        sc = fleet_scenario()
        out = run_scenario(sc)
        forged = Outcome.from_dict(out.to_dict())
        forged.job_digests = [out.job_digests[0], "0" * 24, out.job_digests[2]]
        v = OracleSuite().check(sc, forged)
        assert "resilience" in [x.family for x in v]
        assert any("job 1" in x.detail for x in v)

    def test_retry_budget_overrun_is_flagged(self):
        sc = fleet_scenario()
        out = run_scenario(sc)
        forged = Outcome.from_dict(out.to_dict())
        forged.fault_counters = dict(
            out.fault_counters, **{"fleet.resilience.retries": 10_000}
        )
        v = OracleSuite().check(sc, forged)
        assert any("budget" in x.detail for x in v)

    def test_equivalence_family_defers_to_resilience_for_fleets(self):
        # the combined multi-job digest must not be compared against the
        # single-solve reference by the equivalence family
        sc = fleet_scenario()
        out = run_scenario(sc)
        families = [x.family for x in OracleSuite().check(sc, out)]
        assert "equivalence" not in families


class TestFleetShrinker:
    def test_fleet_passes_reduce_to_a_plain_scenario(self):
        # When the failure does not depend on the fleet fields, the
        # shrinker must strip them (jobs -> 1, deadline and resilience
        # gone), leaving a classic single-solve repro.
        sc = fleet_scenario(deadline=2.0)
        result = shrink(sc, lambda c: True, max_evals=120)
        assert result.scenario.jobs == 1
        assert result.scenario.resilience is None
        assert result.scenario.deadline is None
        assert not result.scenario.is_fleet
        names = {name for name, _ in result.steps}
        assert {"shrink-jobs", "no-resilience"} <= names

    def test_fleet_passes_preserve_retry_behaviour(self):
        # Predicate that needs the fleet: keep scenarios whose runs
        # still retry at least once.  The resilience policy must
        # survive minimization.
        sc = fleet_scenario()

        def still_retries(candidate):
            out = run_scenario(candidate)
            retries = (out.fault_counters or {}).get("fleet.resilience.retries", 0)
            return out.ok and retries >= 1

        result = shrink(sc, still_retries, max_evals=40)
        assert result.scenario.resilience is not None
        assert still_retries(result.scenario)
