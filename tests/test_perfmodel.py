"""Tests for the analytic performance models and tuning, including
agreement between the models and the simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp
from repro.machine import SUMMIT
from repro.perfmodel import (
    OffloadStageCosts,
    best_grid,
    best_node_grid,
    min_offload_block_size,
    oog_pipeline_cost,
    oog_stage_costs,
    parallel_fw_cost,
    predict_runtime,
    recommend_block_size,
    recommend_streams,
    refined_comm_cost,
    tune,
)


class TestEq1:
    def test_terms(self, cost):
        br = parallel_fw_cost(cost, n=100_000, b=768, p_r=24, p_c=32, gpus_share=2)
        # Compute: 2n^3 / (P/2 GPUs) / rate(768)
        expected_comp = 2 * 1e15 / (24 * 32 / 2) / cost.srgemm_rate(768)
        assert br.compute == pytest.approx(expected_comp)
        # Latency: 2 (n/b) t_l
        assert br.latency == pytest.approx(2 * (100_000 / 768) * cost.internode_latency)
        # Bandwidth: t_w n^2 (1/Pr + 1/Pc) bytes
        assert br.bandwidth == pytest.approx(
            1e10 * 4 * (1 / 24 + 1 / 32) / 25e9
        )
        assert br.total == pytest.approx(br.compute + br.latency + br.bandwidth)

    def test_compute_scales_inverse_with_ranks(self, cost):
        small = parallel_fw_cost(cost, 50_000, 768, 8, 8)
        big = parallel_fw_cost(cost, 50_000, 768, 16, 16)
        assert small.compute == pytest.approx(4 * big.compute)

    def test_larger_block_reduces_latency_term(self, cost):
        a = parallel_fw_cost(cost, 50_000, 256, 8, 8)
        b = parallel_fw_cost(cost, 50_000, 1024, 8, 8)
        assert b.latency < a.latency


class TestRefinedCommModel:
    def test_formula(self, cost):
        t = refined_comm_cost(cost, n=10_000, p_r=8, p_c=8, q_r=2, q_c=2)
        assert t == pytest.approx((1e8 * 4) * (2 / 8 + 2 / 8) / 25e9)

    def test_square_tile_beats_flat_tile(self, cost):
        """Q_r ≈ Q_c minimizes per-node volume (Eq. 2)."""
        flat = refined_comm_cost(cost, 10_000, 8, 8, 1, 4)
        square = refined_comm_cost(cost, 10_000, 8, 8, 2, 2)
        assert square < flat

    def test_one_rank_per_node_reduces_to_eq1(self, cost):
        base = parallel_fw_cost(cost, 10_000, 768, 8, 8).bandwidth
        refined = refined_comm_cost(cost, 10_000, 8, 8, 1, 1)
        assert refined == pytest.approx(base)


class TestOffloadModel:
    def test_stage_costs(self, cost):
        st = oog_stage_costs(cost, m=10_000, n=10_000, k=768)
        assert st.srgemm == pytest.approx(2 * 1e8 * 768 / cost.srgemm_rate(768))
        assert st.transfer == pytest.approx(
            (1e8 + 2 * 768 * 10_000) * 4 / 50e9
        )
        assert st.host_update == pytest.approx(3 * 1e8 * 4 / SUMMIT.node.dram_bw)

    def test_pipeline_composition(self):
        st = OffloadStageCosts(srgemm=5.0, transfer=3.0, host_update=1.0)
        assert oog_pipeline_cost(st, 1) == 9.0
        # Two streams: best pairing is max(5, 3+1) = 5.
        assert oog_pipeline_cost(st, 2) == 5.0
        assert oog_pipeline_cost(st, 3) == 5.0

    def test_two_streams_suboptimal_case(self):
        st = OffloadStageCosts(srgemm=3.0, transfer=3.0, host_update=3.0)
        assert oog_pipeline_cost(st, 2) == 6.0
        assert oog_pipeline_cost(st, 3) == 3.0

    def test_min_block_size_eq5(self, cost):
        """Eq. 5 with the paper's constants: a few hundred, below the
        practical 768 (its §5.3.1 discussion)."""
        k = min_offload_block_size(cost)
        assert 250 <= k <= 768
        # Per-rank NVLink share doubles the floor.
        assert min_offload_block_size(cost, link_share=4) == pytest.approx(2 * k)

    def test_big_block_is_compute_bound(self, cost):
        """Above the Eq. 5 floor, t0 dominates t1 and t2."""
        k = 2 * min_offload_block_size(cost)
        st = oog_stage_costs(cost, 50_000, 50_000, k)
        assert st.srgemm >= st.transfer
        assert st.srgemm >= st.host_update


class TestTuning:
    def test_best_grid(self):
        assert best_grid(768) == (24, 32)
        assert best_grid(64) == (8, 8)

    def test_best_node_grid_square(self, cost):
        q_r, q_c, t = best_node_grid(cost, 100_000, 24, 32, 12)
        assert (q_r, q_c) == (3, 4)
        assert t > 0

    def test_best_node_grid_invalid(self, cost):
        with pytest.raises(ValueError):
            best_node_grid(cost, 1000, 5, 5, 4)

    def test_recommended_block_in_plateau(self, cost):
        b = recommend_block_size(cost, 300_000, 24, 32)
        assert 512 <= b <= 2048

    def test_offload_floor_respected(self, cost):
        b = recommend_block_size(cost, 300_000, 24, 32, offload=True)
        assert b >= min_offload_block_size(cost)

    def test_recommend_streams(self, cost):
        # Compute-dominant tile: already saturated with 1 stream?  The
        # helper returns the smallest count hitting the 3-stream bound.
        s_small = recommend_streams(cost, 2048, 2048, 2048)
        s_typical = recommend_streams(cost, 20_000, 20_000, 768)
        assert 1 <= s_small <= 3
        assert 1 <= s_typical <= 3

    def test_predict_runtime_overlap_vs_not(self, cost):
        over = predict_runtime(cost, 50_000, 768, 16, 16, 2, 2, overlap=True)
        sync = predict_runtime(cost, 50_000, 768, 16, 16, 2, 2, overlap=False)
        assert over.total <= sync.total

    def test_tune_end_to_end(self, cost):
        rep = tune(cost, 300_000, 64, 12)
        assert rep.p_r * rep.p_c == 768
        assert rep.p_r % rep.q_r == 0 and rep.p_c % rep.q_c == 0
        assert rep.q_r * rep.q_c == 12
        assert rep.block_size >= 128
        assert rep.predicted.total > 0
        assert "grid" in rep.summary()


class TestModelAgainstSimulator:
    """The headline sanity check: simulated runs land near Eq. 1."""

    def run_sim(self, variant, nb=48, nodes=4, rpn=4, scale=768.0):
        w = np.zeros((nb, nb), dtype=np.float32)
        res = apsp(
            w,
            variant=variant,
            block_size=1,
            n_nodes=nodes,
            ranks_per_node=rpn,
            dim_scale=scale,
            compute_numerics=False,
            collect_result=False,
        )
        return res.report

    def test_async_close_to_overlap_model(self, cost):
        rep = self.run_sim("async")
        r = rep
        pred = predict_runtime(
            cost,
            n=r.n_virtual,
            b=768,
            p_r=r.grid_pr,
            p_c=r.grid_pc,
            q_r=2,
            q_c=2,
            gpus_share=1,
            overlap=True,
        )
        # Within 2x of the ideal overlap model (the sim pays real
        # pipeline fill, diagonal chains and stragglers).
        assert pred.total * 0.8 <= rep.elapsed <= pred.total * 2.2

    def test_baseline_close_to_sum_model(self, cost):
        rep = self.run_sim("baseline")
        pred = predict_runtime(
            cost,
            n=rep.n_virtual,
            b=768,
            p_r=rep.grid_pr,
            p_c=rep.grid_pc,
            q_r=1,
            q_c=4,
            gpus_share=1,
            overlap=False,
        )
        assert pred.total * 0.5 <= rep.elapsed <= pred.total * 2.5

    def test_baseline_slower_than_async(self):
        assert self.run_sim("baseline").elapsed > self.run_sim("async").elapsed


class TestComputeBoundThreshold:
    """§5.2.2: 'On 64 nodes, 120k is the theoretical estimate of the
    smallest problem size when Floyd-Warshall becomes compute-bound.'"""

    def test_paper_configuration_magnitude(self, cost):
        from repro.perfmodel import compute_bound_threshold

        # With the launcher-default (contiguous 1x12) placement the
        # estimate lands at ~82k; with the optimal placement ~49k -
        # both the same order as the paper's ~120k (their estimate
        # assumes an effective broadcast bandwidth below the raw NIC
        # line, which shifts the crossover up).
        n_star = compute_bound_threshold(cost, 64, 12, q_r=1, q_c=12)
        assert 40_000 < n_star < 250_000

    def test_threshold_scales_with_machine(self, cost):
        from repro.machine import FRONTIER_LIKE, CostModel
        from repro.perfmodel import compute_bound_threshold

        # Faster kernels + faster NIC: Frontier's crossover moves, and
        # in the direction the rate/bandwidth ratio says.
        summit = compute_bound_threshold(cost, 16, 8)
        frontier = compute_bound_threshold(CostModel(FRONTIER_LIKE), 16, 8)
        ratio_rates = (
            CostModel(FRONTIER_LIKE).srgemm_rate(768) / cost.srgemm_rate(768)
        )
        ratio_bw = FRONTIER_LIKE.node.nic_bw / 25e9
        # 8 ranks land on 8 GCDs on Frontier but share 6 GPUs on Summit.
        ratio_gpus = 8 / 6
        assert frontier == pytest.approx(
            summit * ratio_rates * ratio_gpus / ratio_bw, rel=0.05
        )

    def test_matches_simulated_crossover(self, cost):
        """Self-consistency: the async variant's advantage over the
        baseline peaks near the predicted n* and decays beyond it."""
        from repro.perfmodel import compute_bound_threshold

        n_star = compute_bound_threshold(cost, 16, 8)
        nbs = (16, 24, 32, 48, 64, 96)
        gaps = {}
        for nb in nbs:
            w = np.zeros((nb, nb), dtype=np.float32)
            t = {}
            for v in ("baseline", "async"):
                t[v] = apsp(
                    w, variant=v, block_size=1, n_nodes=16, ranks_per_node=8,
                    dim_scale=768.0, compute_numerics=False, collect_result=False,
                ).report.elapsed
            gaps[nb * 768] = t["baseline"] / t["async"]
        peak_n = max(gaps, key=gaps.get)
        assert 0.5 * n_star <= peak_n <= 2.5 * n_star
        # Beyond the threshold the gap decays.
        beyond = [n for n in gaps if n > 2 * n_star]
        if beyond:
            assert gaps[max(beyond)] < gaps[peak_n]
