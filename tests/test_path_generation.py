"""Tests for distributed shortest-path generation (track_paths): the
path-aware kernels, the sequential blocked oracle, and the full
distributed flow across variants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import apsp, blocked_fw_paths
from repro.errors import ConfigurationError
from repro.extensions import (
    floyd_warshall_with_paths,
    path_length,
    reconstruct_path,
)
from repro.graphs import erdos_renyi, grid_road_network, scipy_floyd_warshall
from repro.semiring import (
    INF,
    MAX_MIN,
    NO_HOP,
    fw_inplace_paths,
    init_next_hops,
    srgemm_accumulate_paths,
)


def assert_paths_valid(weights, dist, nxt, sample=None):
    """Every finite pair's traced path exists and has length dist."""
    n = weights.shape[0]
    pairs = sample or [(i, j) for i in range(n) for j in range(n)]
    for i, j in pairs:
        if i == j:
            continue
        if np.isfinite(dist[i, j]):
            p = reconstruct_path(nxt, i, j)
            assert p is not None and p[0] == i and p[-1] == j
            assert path_length(weights, p) == pytest.approx(dist[i, j])
        else:
            assert nxt[i, j] == NO_HOP


class TestPathKernels:
    def test_init_next_hops(self):
        w = np.array([[0.0, 2.0, INF], [INF, 0.0, 1.0], [3.0, INF, 0.0]])
        nxt = init_next_hops(w, col_offset=10)
        assert nxt[0, 1] == 11
        assert nxt[1, 2] == 12
        assert nxt[0, 2] == NO_HOP
        assert nxt.dtype == np.int64

    def test_srgemm_paths_matches_plain_minplus(self, rng):
        from repro.semiring import srgemm_accumulate

        a = rng.uniform(0, 10, (5, 7))
        b = rng.uniform(0, 10, (7, 6))
        c = rng.uniform(0, 10, (5, 6))
        a_nxt = rng.integers(0, 100, (5, 7)).astype(np.int64)
        c2, c_nxt = c.copy(), np.full((5, 6), NO_HOP, dtype=np.int64)
        srgemm_accumulate_paths(c2, c_nxt, a, a_nxt, b)
        expected = srgemm_accumulate(c.copy(), a, b)
        assert np.allclose(c2, expected)

    def test_pointer_follows_argmin(self):
        a = np.array([[1.0, 10.0]])
        a_nxt = np.array([[7, 8]], dtype=np.int64)
        b = np.array([[5.0], [1.0]])
        c = np.array([[100.0]])
        c_nxt = np.array([[NO_HOP]], dtype=np.int64)
        srgemm_accumulate_paths(c, c_nxt, a, a_nxt, b)
        assert c[0, 0] == 6.0  # via t=0
        assert c_nxt[0, 0] == 7

    def test_no_update_keeps_existing_pointer(self):
        a = np.array([[5.0]])
        a_nxt = np.array([[9]], dtype=np.int64)
        b = np.array([[5.0]])
        c = np.array([[3.0]])  # already better
        c_nxt = np.array([[4]], dtype=np.int64)
        srgemm_accumulate_paths(c, c_nxt, a, a_nxt, b)
        assert c[0, 0] == 3.0 and c_nxt[0, 0] == 4

    def test_chunking_invariant(self, rng):
        a = rng.uniform(0, 10, (4, 9))
        a_nxt = rng.integers(0, 50, (4, 9)).astype(np.int64)
        b = rng.uniform(0, 10, (9, 4))
        outs = []
        for chunk in (1, 3, 9, 64):
            c = np.full((4, 4), INF)
            c_nxt = np.full((4, 4), NO_HOP, dtype=np.int64)
            srgemm_accumulate_paths(c, c_nxt, a, a_nxt, b, k_chunk=chunk)
            outs.append((c, c_nxt))
        for c, c_nxt in outs[1:]:
            assert np.allclose(c, outs[0][0])
            assert np.array_equal(c_nxt, outs[0][1])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            srgemm_accumulate_paths(
                np.zeros((2, 2)),
                np.zeros((2, 3), dtype=np.int64),
                np.zeros((2, 2)),
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((2, 2)),
            )

    def test_fw_inplace_paths_matches_reference(self, sparse30):
        dist = sparse30.copy()
        nxt = init_next_hops(dist)
        np.fill_diagonal(nxt, NO_HOP)
        fw_inplace_paths(dist, nxt)
        ref_dist, _ = floyd_warshall_with_paths(sparse30)
        assert np.allclose(
            np.where(np.isinf(dist), -1, dist), np.where(np.isinf(ref_dist), -1, ref_dist)
        )
        assert_paths_valid(sparse30, dist, nxt,
                           sample=[(i, j) for i in range(0, 30, 5) for j in range(30)])


class TestBlockedFwPaths:
    @pytest.mark.parametrize("b", [3, 5, 10, 30])
    def test_distances_match_scipy(self, sparse30, b):
        dist, _ = blocked_fw_paths(sparse30, b)
        ref = scipy_floyd_warshall(sparse30)
        assert np.allclose(np.where(np.isinf(dist), -1, dist),
                           np.where(np.isinf(ref), -1, ref))

    @pytest.mark.parametrize("b", [4, 7])
    def test_paths_valid(self, sparse30, b):
        dist, nxt = blocked_fw_paths(sparse30, b)
        assert_paths_valid(sparse30, dist, nxt)

    def test_padding_path(self):
        w = erdos_renyi(23, 0.3, seed=6)
        dist, nxt = blocked_fw_paths(w, 5)
        assert dist.shape == (23, 23) and nxt.shape == (23, 23)
        assert_paths_valid(w, dist, nxt)

    @given(st.integers(3, 14), st.integers(1, 5), st.integers(0, 10**5))
    @settings(max_examples=20, deadline=None)
    def test_property_paths_always_valid(self, n, b, seed):
        w = erdos_renyi(n, 0.5, seed=seed)
        dist, nxt = blocked_fw_paths(w, min(b, n))
        assert_paths_valid(w, dist, nxt)


class TestDistributedPathGeneration:
    @pytest.mark.parametrize("variant", ["baseline", "pipelined", "reordering", "async"])
    def test_paths_across_variants(self, variant, sparse30):
        res = apsp(sparse30, variant=variant, block_size=5, n_nodes=2,
                   ranks_per_node=3, track_paths=True)
        assert res.next_hops is not None
        assert_paths_valid(sparse30, res.dist, res.next_hops,
                           sample=[(i, j) for i in range(0, 30, 3) for j in range(30)])

    def test_matches_sequential_blocked_paths(self, sparse30):
        res = apsp(sparse30, variant="async", block_size=5, n_nodes=2,
                   ranks_per_node=2, track_paths=True)
        seq_dist, _ = blocked_fw_paths(sparse30, 5)
        assert np.allclose(np.where(np.isinf(res.dist), -1, res.dist),
                           np.where(np.isinf(seq_dist), -1, seq_dist))

    def test_road_network_paths(self):
        w = grid_road_network(5, 5, seed=1)
        res = apsp(w, variant="pipelined", block_size=5, n_nodes=2,
                   ranks_per_node=2, track_paths=True)
        assert_paths_valid(w, res.dist, res.next_hops)

    def test_ring_segments_with_paths(self, sparse30):
        res = apsp(sparse30, variant="async", block_size=5, n_nodes=2,
                   ranks_per_node=2, track_paths=True, ring_segments=3)
        assert_paths_valid(sparse30, res.dist, res.next_hops,
                           sample=[(0, j) for j in range(30)])

    def test_pointer_blocks_increase_comm(self, sparse30):
        plain = apsp(sparse30, variant="baseline", block_size=5, n_nodes=2,
                     ranks_per_node=2, dim_scale=100.0)
        tracked = apsp(sparse30, variant="baseline", block_size=5, n_nodes=2,
                       ranks_per_node=2, dim_scale=100.0, track_paths=True)
        # Column panels + diagonal carry pointer blocks: more bytes.
        total_plain = plain.report.internode_bytes + plain.report.intranode_bytes
        total_tracked = tracked.report.internode_bytes + tracked.report.intranode_bytes
        assert total_tracked > 1.2 * total_plain

    def test_offload_rejects_tracking(self, sparse30):
        with pytest.raises(ConfigurationError):
            apsp(sparse30, variant="offload", block_size=5, n_nodes=1,
                 ranks_per_node=2, track_paths=True)

    def test_non_minplus_rejected(self, sparse30):
        with pytest.raises(ConfigurationError):
            apsp(np.isfinite(sparse30), variant="baseline", block_size=5,
                 n_nodes=1, ranks_per_node=2, semiring=MAX_MIN,
                 track_paths=True, check_negative_cycles=False)

    def test_hollow_rejected(self, sparse30):
        with pytest.raises(ConfigurationError):
            apsp(sparse30, variant="baseline", block_size=5, n_nodes=1,
                 ranks_per_node=2, track_paths=True, compute_numerics=False,
                 collect_result=False)

    def test_no_tracking_returns_none(self, sparse30):
        res = apsp(sparse30, variant="baseline", block_size=5, n_nodes=1,
                   ranks_per_node=2)
        assert res.next_hops is None

    def test_hbm_footprint_larger_when_tracking(self, sparse30):
        plain = apsp(sparse30, variant="baseline", block_size=5, n_nodes=2,
                     ranks_per_node=2, dim_scale=100.0)
        tracked = apsp(sparse30, variant="baseline", block_size=5, n_nodes=2,
                       ranks_per_node=2, dim_scale=100.0, track_paths=True)
        assert tracked.report.gpu_peak_bytes > 2 * plain.report.gpu_peak_bytes
