"""Every shipped example must run to completion.

Each example is a self-verifying script (they assert their own
results); running their ``main()`` in-process keeps this fast and
turns any regression in the public API surface into a test failure.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert len(EXAMPLES) >= 3, "the repo ships at least three examples"
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    assert hasattr(module, "main"), f"{name}.py must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name}.py should print something"


def test_capacity_planning_output(capsys):
    """The capacity-planning example speaks the admission-control
    vocabulary: feasibility verdicts for the paper's configurations,
    live admit/queue/reject decisions, and the model cross-check."""
    load_example("capacity_planning").main()
    out = capsys.readouterr().out
    # shape-level assessments of the paper's headline configurations
    assert "fits-hbm" in out
    assert "needs-offload" in out
    assert "Eq. 5 block-size floor applied" in out
    # the live scheduler's three verdicts
    assert "first:   running" in out
    assert "second:  queued" in out
    assert "too-big: rejected" in out
    assert "oversubscribed" in out
    assert "exceeds HBM capacity" in out
    assert "fleet GPU utilization" in out
    # prediction vs simulation
    assert "sim/model ratio" in out
