"""Tests for straggler injection (§3.3's motivation) and the
segmented-ring-broadcast extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp
from repro.errors import ConfigurationError
from repro.graphs import scipy_floyd_warshall, uniform_random_dense
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.mpi import SimMPI, bcast_ring_segmented
from repro.sim import Environment


def hollow(variant, nb=32, nodes=16, rpn=8, **kw):
    w = np.zeros((nb, nb), dtype=np.float32)
    return apsp(
        w,
        variant=variant,
        block_size=1,
        n_nodes=nodes,
        ranks_per_node=rpn,
        dim_scale=768.0,
        compute_numerics=False,
        collect_result=False,
        **kw,
    ).report


class TestStragglerInjection:
    def test_transfer_slowdown_applied(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 2, cost)
        cluster.set_stragglers({0: 3.0})

        def prog():
            yield from cluster.transfer(0, 1, 25e9)

        env.process(prog())
        env.run()
        assert env.now == pytest.approx(3.0 + cost.internode_latency, rel=1e-6)

    def test_only_marked_node_is_slow(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 2, cost)
        cluster.set_stragglers({0: 3.0})

        def prog():
            yield from cluster.transfer(1, 0, 25e9)

        env.process(prog())
        env.run()
        assert env.now == pytest.approx(1.0 + cost.internode_latency, rel=1e-6)

    def test_invalid_factor_rejected(self, env, cost):
        cluster = SimCluster(env, SUMMIT, 2, cost)
        with pytest.raises(ConfigurationError):
            cluster.set_stragglers({0: 0.0})

    def test_all_variants_degrade_under_straggler(self):
        for v in ("baseline", "pipelined", "async"):
            clean = hollow(v).elapsed
            slow = hollow(v, stragglers={5: 4.0}).elapsed
            assert slow > clean, v

    def test_async_still_fastest_under_straggler(self):
        """The paper's §3.3 concern: with the synchronizing library
        broadcast a straggler's impact propagates to all processes.
        Under a 4x-slow node, the async ring variant remains the
        fastest in absolute terms."""
        times = {v: hollow(v, stragglers={5: 4.0}).elapsed
                 for v in ("baseline", "pipelined", "async")}
        assert times["async"] < times["pipelined"]
        assert times["async"] < times["baseline"]

    def test_straggler_does_not_change_results(self, dense24):
        a = apsp(dense24, variant="async", block_size=4, n_nodes=2, ranks_per_node=2)
        b = apsp(dense24, variant="async", block_size=4, n_nodes=2, ranks_per_node=2,
                 stragglers={1: 5.0})
        assert np.allclose(a.dist, b.dist)
        assert b.report.elapsed > a.report.elapsed


class TestSegmentedRing:
    def run_bcast(self, n_ranks, payload_fn, segments, n_nodes=None):
        env = Environment()
        cost = CostModel(SUMMIT)
        cluster = SimCluster(env, SUMMIT, n_nodes or n_ranks, cost)
        mpi = SimMPI(env, cluster, list(range(n_ranks)) if n_nodes is None
                     else [r % n_nodes for r in range(n_ranks)])
        world = mpi.world()
        results = {}

        def prog(rank):
            comm = world.localize(rank)
            payload = payload_fn() if rank == 0 else None
            got, relay = yield from bcast_ring_segmented(
                comm, 0, payload, tag=3, segments=segments
            )
            results[rank] = got
            yield relay

        for r in range(n_ranks):
            env.process(prog(r))
        env.run()
        return results, env.now

    @pytest.mark.parametrize("segments", [1, 2, 3, 4, 8])
    def test_array_payload_reassembled(self, segments):
        results, _ = self.run_bcast(5, lambda: np.arange(64.0).reshape(16, 4), segments)
        for r in range(5):
            assert results[r].shape == (16, 4)
            assert np.array_equal(results[r], np.arange(64.0).reshape(16, 4))

    @pytest.mark.parametrize("segments", [2, 4])
    def test_dict_payload_reassembled(self, segments):
        payload = {j: np.full((3, 3), float(j)) for j in range(7)}
        results, _ = self.run_bcast(4, lambda: dict(payload), segments)
        for r in range(4):
            assert set(results[r]) == set(payload)
            for j in payload:
                assert np.array_equal(results[r][j], payload[j])

    def test_unsplittable_payload(self):
        results, _ = self.run_bcast(3, lambda: "just-a-token", 4)
        assert all(results[r] == "just-a-token" for r in range(3))

    def test_more_segments_than_items(self):
        payload = {0: np.ones((2, 2))}
        results, _ = self.run_bcast(3, lambda: dict(payload), 8)
        for r in range(3):
            assert np.array_equal(results[r][0], payload[0])

    def test_single_member(self):
        results, _ = self.run_bcast(1, lambda: np.ones((4, 4)), 4)
        assert np.array_equal(results[0], np.ones((4, 4)))

    def test_segmentation_cuts_makespan(self):
        """The HPL pipelining effect: (P-1+S)/S scaling for a big
        message around a one-rank-per-node ring."""
        big = lambda: np.ones((1500, 1500))
        _, t1 = self.run_bcast(8, big, 1)
        _, t8 = self.run_bcast(8, big, 8)
        assert t8 < 0.45 * t1

    def test_invalid_segments(self):
        with pytest.raises(ValueError):
            self.run_bcast(3, lambda: np.ones(4), 0)

    def test_end_to_end_variant_with_segments(self):
        w = uniform_random_dense(24, seed=5)
        ref = scipy_floyd_warshall(w)
        for seg in (2, 4):
            res = apsp(w, variant="async", block_size=4, n_nodes=2,
                       ranks_per_node=3, ring_segments=seg)
            assert np.allclose(res.dist, ref)

    def test_segments_config_validated(self, dense24):
        with pytest.raises(ConfigurationError):
            apsp(dense24, variant="async", block_size=4, n_nodes=1,
                 ranks_per_node=2, ring_segments=0)

    def test_segments_help_comm_bound_run(self):
        """End to end, segmentation should not hurt (and typically
        helps the latency of each panel hop) in a comm-bound run."""
        t1 = hollow("async", ring_segments=1).elapsed
        t4 = hollow("async", ring_segments=4).elapsed
        assert t4 < t1 * 1.1
