"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import erdos_renyi, uniform_random_dense
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.sim import Environment, Tracer


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer():
    return Tracer()


@pytest.fixture
def cost():
    return CostModel(SUMMIT)


@pytest.fixture
def cluster(env, cost, tracer):
    return SimCluster(env, SUMMIT, 4, cost, tracer)


@pytest.fixture
def dense24():
    """A 24-vertex dense uniform random graph (paper's input class)."""
    return uniform_random_dense(24, seed=7)


@pytest.fixture
def sparse30():
    """A 30-vertex sparse graph with unreachable pairs."""
    return erdos_renyi(30, 0.15, seed=11)
