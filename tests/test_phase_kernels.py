"""Phase-specialized kernel entry points and wrapper composition.

The blocked schedule dispatches three distinct product shapes —
DiagUpdate (``srgemm_diag``), PanelUpdate (``srgemm_panel``) and the
MinPlus outer product (``srgemm_outer``) — and every backend may
specialize each independently.  The numerical contract is unchanged:
for comparison-⊕ semirings every phase entry of every backend must be
bit-identical to the reference fused kernel, and the observability /
verification wrappers (:class:`MeteredBackend`,
:class:`ChecksummedBackend`) must compose over the phase entries
transparently, alone or stacked.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metered import MeteredBackend
from repro.obs.metrics import MetricsRegistry
from repro.semiring import MIN_PLUS, SEMIRINGS, srgemm_diag, srgemm_outer, srgemm_panel
from repro.semiring.backends import available_backends, get_backend
from repro.semiring.closure import closure_by_squaring, floyd_warshall
from repro.verify.backend import ChecksummedBackend
from repro.verify.runtime import VerifyRuntime

PHASES = ["srgemm_accumulate", "srgemm_diag", "srgemm_panel", "srgemm_outer"]

#: Comparison-⊕ semirings: exact under any association, so bit identity
#: is required from every backend whose rtol is 0.
EXACT_SEMIRINGS = sorted(name for name, sr in SEMIRINGS.items() if sr.idempotent_plus)


def _operands(m, n, k, semiring, seed=0):
    rng = np.random.default_rng(seed + 11 * m + 5 * n + k)
    a = rng.uniform(0.0, 10.0, (m, k))
    b = rng.uniform(0.0, 10.0, (k, n))
    c = rng.uniform(0.0, 10.0, (m, n))
    if semiring.dtype is not None and np.dtype(semiring.dtype).kind == "b":
        return a > 5, b > 5, c > 5
    return a, b, c


def _sparse_block(n, seed=0):
    """A weight block with inf entries — the shape real solves feed in."""
    rng = np.random.default_rng(seed)
    w = rng.uniform(1.0, 10.0, (n, n))
    w[rng.uniform(size=(n, n)) < 0.35] = np.inf
    np.fill_diagonal(w, 0.0)
    return w


class TestPhaseEquivalence:
    @pytest.mark.parametrize("phase", PHASES)
    @pytest.mark.parametrize("sr_name", EXACT_SEMIRINGS)
    def test_backend_phase_matrix_matches_reference(self, sr_name, phase):
        sr = SEMIRINGS[sr_name]
        a, b, c = _operands(17, 13, 9, sr)
        expected = get_backend("reference").srgemm_accumulate(c.copy(), a, b, semiring=sr)
        for name, backend in available_backends().items():
            got = getattr(backend, phase)(c.copy(), a, b, semiring=sr)
            if backend.rtol == 0.0:
                np.testing.assert_array_equal(got, expected, err_msg=f"{name}.{phase}")
            else:
                np.testing.assert_allclose(
                    got, expected, rtol=backend.rtol, err_msg=f"{name}.{phase}"
                )

    @pytest.mark.parametrize("phase", PHASES)
    def test_phase_entries_handle_inf(self, phase):
        # Tropical identity element: unreachable entries must survive
        # every specialized code path (no fast-math reassociation).
        w = _sparse_block(24, seed=3)
        expected = get_backend("reference").srgemm_accumulate(w.copy(), w, w)
        for name, backend in available_backends().items():
            if backend.rtol != 0.0:
                continue
            got = getattr(backend, phase)(w.copy(), w, w)
            np.testing.assert_array_equal(got, expected, err_msg=f"{name}.{phase}")

    @pytest.mark.parametrize("phase", PHASES)
    def test_phase_entries_honor_k_chunk(self, phase):
        a, b, c = _operands(9, 9, 9, MIN_PLUS)
        for name, backend in available_backends().items():
            full = getattr(backend, phase)(c.copy(), a, b)
            chunked = getattr(backend, phase)(c.copy(), a, b, k_chunk=2)
            np.testing.assert_array_equal(full, chunked, err_msg=f"{name}.{phase}")

    def test_module_facades_dispatch_backend(self):
        a, b, c = _operands(8, 8, 8, MIN_PLUS)
        want = get_backend("reference").srgemm_accumulate(c.copy(), a, b)
        for fn in (srgemm_diag, srgemm_panel, srgemm_outer):
            for name in available_backends():
                got = fn(c.copy(), a, b, backend=name)
                if get_backend(name).rtol == 0.0:
                    np.testing.assert_array_equal(got, want, err_msg=f"{fn.__name__}/{name}")

    def test_closure_by_squaring_backend_invariant(self):
        # The squaring chain dispatches srgemm_diag; every exact backend
        # must reproduce the reference chain bit-for-bit.  (FW itself
        # associates path sums differently, so it is only an allclose
        # oracle here.)
        w = _sparse_block(20, seed=7)
        expected = closure_by_squaring(w, backend="reference")
        np.testing.assert_allclose(expected, floyd_warshall(w), rtol=1e-12)
        for name, backend in available_backends().items():
            got = closure_by_squaring(w, backend=name)
            if backend.rtol == 0.0:
                np.testing.assert_array_equal(got, expected, err_msg=name)
            else:
                np.testing.assert_allclose(got, expected, rtol=backend.rtol, err_msg=name)


def _wrap(kind, inner):
    if kind == "checksummed":
        return ChecksummedBackend(VerifyRuntime("checksum", inner, semiring=MIN_PLUS))
    if kind == "metered":
        return MeteredBackend(MetricsRegistry(), inner)
    if kind == "stacked":
        # Metering outside, checksums inside: the composition every
        # `--verify checksum` run with metrics enabled actually builds.
        return MeteredBackend(
            MetricsRegistry(), ChecksummedBackend(VerifyRuntime("checksum", inner))
        )
    raise AssertionError(kind)


class TestWrapperComposition:
    @pytest.mark.parametrize("wrapper", ["checksummed", "metered", "stacked"])
    @pytest.mark.parametrize("phase", PHASES)
    def test_wrapped_backends_stay_bit_exact(self, wrapper, phase):
        w = _sparse_block(16, seed=1)
        a, b, c = _operands(16, 16, 16, MIN_PLUS, seed=2)
        expected_uv = get_backend("reference").srgemm_accumulate(c.copy(), a, b)
        expected_inf = get_backend("reference").srgemm_accumulate(w.copy(), w, w)
        for name, inner in available_backends().items():
            if inner.rtol != 0.0:
                continue  # f32 path: allclose-only contract, checked below
            wrapped = _wrap(wrapper, inner)
            got = getattr(wrapped, phase)(c.copy(), a, b)
            np.testing.assert_array_equal(got, expected_uv, err_msg=f"{wrapper}({name}).{phase}")
            got = getattr(wrapped, phase)(w.copy(), w, w)
            np.testing.assert_array_equal(got, expected_inf, err_msg=f"{wrapper}({name}).{phase}")

    @pytest.mark.parametrize("wrapper", ["checksummed", "metered", "stacked"])
    def test_wrapped_f32_stays_allclose(self, wrapper):
        inner = get_backend("tiled-f32")
        a, b, c = _operands(16, 16, 16, MIN_PLUS, seed=4)
        expected = get_backend("reference").srgemm_accumulate(c.copy(), a, b)
        wrapped = _wrap(wrapper, inner)
        for phase in PHASES:
            got = getattr(wrapped, phase)(c.copy(), a, b)
            np.testing.assert_allclose(got, expected, rtol=inner.rtol, err_msg=phase)

    def test_wrappers_preserve_identity_contract(self):
        inner = get_backend("tiled")
        metered = _wrap("metered", inner)
        checked = _wrap("checksummed", inner)
        assert metered.name == inner.name  # metering is transparent
        assert checked.name == f"checksummed({inner.name})"
        for wrapped in (metered, checked):
            assert wrapped.compute_dtype == inner.compute_dtype
            assert wrapped.rtol == inner.rtol
            assert wrapped.modeled_cost_scale == inner.modeled_cost_scale
            assert wrapped.byte_budget == inner.byte_budget

    def test_metered_phase_counter_families(self):
        reg = MetricsRegistry()
        metered = MeteredBackend(reg, get_backend("reference"))
        a, b, c = _operands(8, 8, 8, MIN_PLUS)
        metered.srgemm_accumulate(c.copy(), a, b)
        metered.srgemm_diag(c.copy(), a, b)
        metered.srgemm_panel(c.copy(), a, b)
        metered.srgemm_outer(c.copy(), a, b)
        metered.srgemm_outer(c.copy(), a, b)
        flat = reg.flat()
        # Aggregate family counts every product, fused or phased...
        assert flat["kernel.srgemm.calls"] == 5
        # ...phase families additionally split the dispatch.
        assert flat["kernel.srgemm_diag.calls"] == 1
        assert flat["kernel.srgemm_panel.calls"] == 1
        assert flat["kernel.srgemm_outer.calls"] == 2
        assert flat["kernel.flops"] == 5 * 2.0 * 8 * 8 * 8
        assert flat["kernel.srgemm_outer.flops"] == 2 * 2.0 * 8 * 8 * 8
        # Physical wall time accrues (the profile sweep's speed signal).
        assert flat["kernel.wall_seconds"] > 0.0

    def test_checksummed_phase_entries_verified(self):
        runtime = VerifyRuntime("checksum", get_backend("tiled"), semiring=MIN_PLUS)
        wrapped = ChecksummedBackend(runtime)
        a, b, c = _operands(12, 12, 12, MIN_PLUS, seed=9)
        for phase in PHASES:
            getattr(wrapped, phase)(c.copy(), a, b)
        assert runtime.counters["ops_checked"] == len(PHASES)
        assert runtime.counters.get("sdc_detected", 0) == 0
