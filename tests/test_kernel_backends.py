"""Tests for the pluggable SrGemm kernel backends: registry behavior,
cross-backend equivalence over every semiring, alias-safe panel
updates, the byte-budget auto-tuner, and the modeled-cost hook."""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.blocked import blocked_fw, blocked_fw_paths
from repro.errors import BackendUnavailableError, ConfigurationError
from repro.machine import SUMMIT, CostModel, SimGPU
from repro.semiring import MIN_PLUS, PLUS_TIMES, SEMIRINGS, srgemm, srgemm_accumulate
from repro.semiring.backends import (
    DEFAULT_KERNEL_BYTE_BUDGET,
    ENV_BACKEND,
    ENV_BYTE_BUDGET,
    CompiledBackend,
    HAVE_CUPY,
    HAVE_NUMBA,
    KernelBackend,
    ReferenceBackend,
    TiledBackend,
    available_backends,
    default_backend_name,
    get_backend,
    kernel_byte_budget,
    register_backend,
    registered_backends,
    set_default_backend,
    tune_kernel_tiling,
    use_backend,
)
from repro.sim.engine import Environment

#: Bit-identity holds for comparison-⊕ semirings (min/max are exact
#: under any association); plus_times accumulates float additions in a
#: different order, so only allclose.
EXACT_SEMIRINGS = [name for name, sr in SEMIRINGS.items() if sr.idempotent_plus]

SHAPES = [(1, 1, 1), (3, 5, 2), (8, 8, 8), (2, 7, 9), (4, 6, 0), (17, 3, 11)]


def _operands(m, n, k, semiring, seed=0):
    rng = np.random.default_rng(seed + 13 * m + 7 * n + k)
    a = rng.uniform(0.0, 10.0, (m, k))
    b = rng.uniform(0.0, 10.0, (k, n))
    c = rng.uniform(0.0, 10.0, (m, n))
    if semiring.dtype is not None and np.dtype(semiring.dtype).kind == "b":
        return a > 5, b > 5, c > 5
    return a, b, c


class TestRegistry:
    def test_builtin_registrations(self):
        names = set(registered_backends())
        assert {
            "reference",
            "tiled",
            "tiled-f32",
            "tensor",
            "cnative",
            "compiled",
            "compiled-ms",
            "cupy",
        } <= names

    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        assert default_backend_name() == "reference"
        assert get_backend().name == "reference"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "tiled")
        assert default_backend_name() == "tiled"
        assert get_backend().name == "tiled"

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "tiled")
        prev = set_default_backend("tiled-f32")
        try:
            assert get_backend().name == "tiled-f32"
        finally:
            set_default_backend(prev)

    def test_set_default_validates(self):
        with pytest.raises(ConfigurationError):
            set_default_backend("no-such-backend")

    def test_use_backend_restores(self, monkeypatch):
        monkeypatch.delenv(ENV_BACKEND, raising=False)
        with use_backend("tiled") as backend:
            assert backend.name == "tiled"
            assert get_backend().name == "tiled"
        assert get_backend().name == "reference"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError, match="reference"):
            get_backend("no-such-backend")

    def test_instance_passes_through(self):
        inst = TiledBackend(byte_budget=1 << 16, name="custom-budget")
        assert get_backend(inst) is inst

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend(ReferenceBackend())

    def test_unnamed_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend(KernelBackend())

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed; backend is usable")
    def test_compiled_unavailable_without_numba(self):
        backend = registered_backends()["compiled"]
        assert not backend.available
        assert "numba" in backend.unavailable_reason
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("compiled")
        assert "compiled" not in available_backends()

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    def test_compiled_available_with_numba(self):
        assert get_backend("compiled").name == "compiled"

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba installed; backend is usable")
    def test_multistage_unavailable_without_numba(self):
        backend = registered_backends()["compiled-ms"]
        assert not backend.available
        assert "numba" in backend.unavailable_reason
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("compiled-ms")

    @pytest.mark.skipif(HAVE_CUPY, reason="cupy installed; probe is device-dependent")
    def test_cupy_unavailable_without_cupy(self):
        backend = registered_backends()["cupy"]
        assert not backend.available
        assert "cupy" in backend.unavailable_reason
        with pytest.raises(BackendUnavailableError, match="cupy"):
            get_backend("cupy")

    def test_unavailable_backends_report_reasons(self):
        # Every registered-but-unavailable backend must say why, so the
        # `backends` CLI listing is actionable.
        for name, backend in registered_backends().items():
            if not backend.available:
                assert backend.unavailable_reason, name

    def test_kernels_module_honors_backend_argument(self):
        a, b, _ = _operands(4, 5, 3, MIN_PLUS)
        ref = srgemm(a, b, backend="reference")
        tld = srgemm(a, b, backend="tiled")
        np.testing.assert_array_equal(ref, tld)


class TestBackendEquivalence:
    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("sr_name", sorted(SEMIRINGS))
    def test_accumulate_matches_reference(self, sr_name, shape):
        sr = SEMIRINGS[sr_name]
        m, n, k = shape
        a, b, c = _operands(m, n, k, sr)
        reference = get_backend("reference")
        expected = reference.srgemm_accumulate(c.copy(), a, b, semiring=sr)
        for name, backend in available_backends().items():
            got = backend.srgemm_accumulate(c.copy(), a, b, semiring=sr)
            if backend.rtol == 0.0 and sr.idempotent_plus:
                np.testing.assert_array_equal(got, expected, err_msg=f"{name}/{sr_name}")
            else:
                rtol = max(backend.rtol, 1e-9)
                np.testing.assert_allclose(got, expected, rtol=rtol, err_msg=f"{name}/{sr_name}")

    @pytest.mark.parametrize("sr_name", sorted(SEMIRINGS))
    def test_srgemm_matches_reference(self, sr_name):
        sr = SEMIRINGS[sr_name]
        a, b, _ = _operands(6, 7, 5, sr)
        expected = get_backend("reference").srgemm(a, b, semiring=sr)
        for name, backend in available_backends().items():
            got = backend.srgemm(a, b, semiring=sr)
            rtol = max(backend.rtol, 1e-9)
            if backend.rtol == 0.0 and sr.idempotent_plus:
                np.testing.assert_array_equal(got, expected, err_msg=name)
            else:
                np.testing.assert_allclose(got, expected, rtol=rtol, err_msg=name)

    def test_plus_times_allclose_only(self):
        # Non-idempotent ⊕: association order differs between the
        # reduce-then-add reference and the per-rank-1 tiled updates,
        # so the contract is allclose, not bit identity.
        a, b, c = _operands(6, 6, 6, PLUS_TIMES)
        ref = get_backend("reference").srgemm_accumulate(c.copy(), a, b, semiring=PLUS_TIMES)
        tld = get_backend("tiled").srgemm_accumulate(c.copy(), a, b, semiring=PLUS_TIMES)
        np.testing.assert_allclose(tld, ref, rtol=1e-12)

    def test_f32_backend_casts_and_bounds_error(self):
        rng = np.random.default_rng(7)
        a = rng.uniform(0, 100, (32, 32))
        b = rng.uniform(0, 100, (32, 32))
        f32 = get_backend("tiled-f32")
        assert f32.compute_dtype == np.float32
        assert f32.rtol == 1e-5
        ref = get_backend("reference").srgemm(a, b)
        got = f32.srgemm(a, b)
        assert got.dtype == np.float64  # accumulator keeps operand dtype
        np.testing.assert_allclose(got, ref, rtol=f32.rtol)

    def test_f32_backend_leaves_bool_semirings_exact(self):
        a, b, c = _operands(5, 5, 5, SEMIRINGS["or_and"])
        ref = get_backend("reference").srgemm_accumulate(c.copy(), a, b, semiring=SEMIRINGS["or_and"])
        got = get_backend("tiled-f32").srgemm_accumulate(c.copy(), a, b, semiring=SEMIRINGS["or_and"])
        np.testing.assert_array_equal(got, ref)

    def test_explicit_k_chunk_honored(self):
        a, b, c = _operands(9, 9, 9, MIN_PLUS)
        for backend in available_backends().values():
            full = backend.srgemm_accumulate(c.copy(), a, b)
            chunked = backend.srgemm_accumulate(c.copy(), a, b, k_chunk=2)
            np.testing.assert_array_equal(full, chunked)

    def test_tiny_byte_budget_still_correct(self):
        # Force many tiny tiles/stripes; results must not change.
        a, b, c = _operands(13, 11, 7, MIN_PLUS)
        small = TiledBackend(byte_budget=256, name="tiled-tiny")
        expected = get_backend("reference").srgemm_accumulate(c.copy(), a, b)
        np.testing.assert_array_equal(small.srgemm_accumulate(c.copy(), a, b), expected)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(2, 12),
        seed=st.integers(0, 2**16),
    )
    def test_property_blocked_fw_backend_invariant(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.0, 10.0, (n, n))
        w[rng.uniform(size=(n, n)) < 0.3] = np.inf
        np.fill_diagonal(w, 0.0)
        b = max(1, n // 2)
        expected = blocked_fw(w, b, backend="reference", check_negative_cycles=False)
        for name, backend in available_backends().items():
            got = blocked_fw(w, b, backend=name, check_negative_cycles=False)
            if backend.rtol == 0.0:
                np.testing.assert_array_equal(got, expected, err_msg=name)
            else:
                np.testing.assert_allclose(got, expected, rtol=backend.rtol, err_msg=name)


class TestPanelUpdates:
    @pytest.mark.parametrize("sr_name", sorted(SEMIRINGS))
    def test_panel_row_update_matches_formula(self, sr_name):
        sr = SEMIRINGS[sr_name]
        _, panel, _ = _operands(1, 17, 6, sr, seed=3)
        panel = np.ascontiguousarray(panel)  # (6, 17)
        a, _, _ = _operands(6, 1, 6, sr, seed=4)
        diag = np.ascontiguousarray(a.reshape(6, 6))
        want = sr.plus(panel, get_backend("reference").srgemm(diag, panel, semiring=sr))
        for name, backend in available_backends().items():
            got = backend.panel_row_update(panel.copy(), diag, semiring=sr)
            if backend.rtol == 0.0 and sr.idempotent_plus:
                np.testing.assert_array_equal(got, want, err_msg=name)
            else:
                np.testing.assert_allclose(got, want, rtol=max(backend.rtol, 1e-9), err_msg=name)

    @pytest.mark.parametrize("sr_name", sorted(SEMIRINGS))
    def test_panel_col_update_matches_formula(self, sr_name):
        sr = SEMIRINGS[sr_name]
        _, panel, _ = _operands(1, 17, 6, sr, seed=5)
        panel = np.ascontiguousarray(panel.reshape(17, 6))
        a, _, _ = _operands(6, 1, 6, sr, seed=6)
        diag = np.ascontiguousarray(a.reshape(6, 6))
        want = sr.plus(panel, get_backend("reference").srgemm(panel, diag, semiring=sr))
        for name, backend in available_backends().items():
            got = backend.panel_col_update(panel.copy(), diag, semiring=sr)
            if backend.rtol == 0.0 and sr.idempotent_plus:
                np.testing.assert_array_equal(got, want, err_msg=name)
            else:
                np.testing.assert_allclose(got, want, rtol=max(backend.rtol, 1e-9), err_msg=name)

    def test_stripe_snapshot_matches_full_copy(self):
        # A budget so small every stripe is one column: the narrowest
        # possible snapshot must still equal the full-panel-copy result.
        rng = np.random.default_rng(11)
        panel = rng.uniform(0, 10, (8, 23))
        diag = rng.uniform(0, 10, (8, 8))
        tiny = TiledBackend(byte_budget=2 * 8 * panel.dtype.itemsize, name="tiled-stripe1")
        want = MIN_PLUS.plus(panel, get_backend("reference").srgemm(diag, panel))
        np.testing.assert_array_equal(tiny.panel_row_update(panel.copy(), diag), want)
        panel_c = np.ascontiguousarray(panel.T)
        want_c = MIN_PLUS.plus(panel_c, get_backend("reference").srgemm(panel_c, diag))
        np.testing.assert_array_equal(tiny.panel_col_update(panel_c.copy(), diag), want_c)

    def test_shape_validation(self):
        backend = get_backend("tiled")
        with pytest.raises(ValueError):
            backend.panel_row_update(np.zeros((4, 6)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            backend.panel_col_update(np.zeros((6, 4)), np.zeros((3, 3)))


class TestByteBudget:
    def test_default_reproduces_legacy_k_chunk(self):
        # 128 x 128 float64 blocks under the default 8 MiB budget give
        # exactly the historical DEFAULT_K_CHUNK = 64 slab.
        t = tune_kernel_tiling(128, 128, 128, 8)
        assert t.k_chunk == 64
        assert t.byte_budget == DEFAULT_KERNEL_BYTE_BUDGET

    def test_reference_slab_within_budget(self):
        for m, n, k in [(64, 64, 64), (256, 256, 256), (1000, 3, 77), (5, 999, 2)]:
            for itemsize in (4, 8):
                t = tune_kernel_tiling(m, n, k, itemsize)
                assert m * t.k_chunk * n * itemsize <= t.byte_budget or t.k_chunk == 1
                assert 1 <= t.k_chunk <= max(1, k)

    def test_scratch_tile_within_half_budget(self):
        for m, n, k in [(256, 256, 256), (2048, 2048, 16), (3, 10000, 4)]:
            t = tune_kernel_tiling(m, n, k, 8)
            assert t.tile_m * t.tile_n * 8 <= t.byte_budget // 2

    def test_env_var_budget(self, monkeypatch):
        monkeypatch.setenv(ENV_BYTE_BUDGET, str(1 << 14))
        assert kernel_byte_budget() == 1 << 14
        t = tune_kernel_tiling(256, 256, 256, 8)
        assert t.byte_budget == 1 << 14
        assert t.tile_m * t.tile_n * 8 <= (1 << 14) // 2

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            kernel_byte_budget(0)

    def test_compute_width_doubles_chunk(self):
        # Halving the compute itemsize doubles the k-slab the same
        # budget can hold (the float32 bandwidth saving).
        f64 = tune_kernel_tiling(128, 128, 512, 8)
        f32 = tune_kernel_tiling(128, 128, 512, 4)
        assert f32.k_chunk == 2 * f64.k_chunk

    def test_backend_compute_itemsize(self):
        a64 = np.zeros((2, 2))
        a32 = np.zeros((2, 2), dtype=np.float32)
        assert get_backend("tiled").compute_itemsize(a64, a64) == 8
        assert get_backend("tiled").compute_itemsize(a32, a32) == 4
        # An advertised compute dtype wins over the operand dtype.
        assert get_backend("tiled-f32").compute_itemsize(a64, a64) == 4

    def test_reduce_planes_reserved_off_budget(self):
        # Budget sized for exactly 4 (m, n) f64 planes: reserving one
        # for a reduction output leaves room for a 3-deep k-slab.
        m = n = 64
        budget = 4 * m * n * 8
        free = tune_kernel_tiling(m, n, 100, 8, byte_budget=budget)
        reserved = tune_kernel_tiling(m, n, 100, 8, byte_budget=budget, reduce_planes=1)
        assert free.k_chunk == 4
        assert reserved.k_chunk == 3

    def test_reduce_planes_never_starves_chunk(self):
        # Even when the reservation eats the whole budget, k_chunk
        # stays >= 1 so progress is always possible.
        t = tune_kernel_tiling(64, 64, 16, 8, byte_budget=64 * 64 * 8, reduce_planes=8)
        assert t.k_chunk == 1

    def test_negative_reduce_planes_rejected(self):
        with pytest.raises(ValueError):
            tune_kernel_tiling(8, 8, 8, 8, reduce_planes=-1)

    def test_peak_temporary_under_budget(self):
        # The acceptance criterion: at b=256 float64 the tiled kernel's
        # peak temporary allocation stays under the byte budget (numpy
        # data blocks are tracked by tracemalloc via PyTraceMalloc_Track).
        budget = 1 << 20  # 1 MiB, well below the 256x256x8x64 slab
        backend = TiledBackend(byte_budget=budget, name="tiled-traced")
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 10, (256, 256))
        b = rng.uniform(0, 10, (256, 256))
        c = rng.uniform(0, 10, (256, 256))
        backend.srgemm_accumulate(c, a, b)  # warm any lazy allocations
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            backend.srgemm_accumulate(c, a, b)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - base <= budget, f"peak temporary {peak - base} exceeds budget {budget}"

    def test_reference_exceeds_small_budget_baseline(self):
        # Sanity check that the measurement above is meaningful: the
        # reference kernel pinned to one full-k slab blows through the
        # same budget.
        budget = 1 << 20
        backend = ReferenceBackend(byte_budget=budget)
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 10, (256, 256))
        b = rng.uniform(0, 10, (256, 256))
        c = rng.uniform(0, 10, (256, 256))
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            tracemalloc.reset_peak()
            backend.srgemm_accumulate(c, a, b, k_chunk=256)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - base > budget


class TestPathKernels:
    def _paths_case(self, seed=0, n=24, b=6):
        rng = np.random.default_rng(seed)
        w = rng.uniform(1.0, 10.0, (n, n))
        w[rng.uniform(size=(n, n)) < 0.4] = np.inf
        np.fill_diagonal(w, 0.0)
        return w, b

    def test_blocked_fw_paths_backend_invariant(self):
        w, b = self._paths_case()
        dist_ref, nxt_ref = blocked_fw_paths(w, b, backend="reference")
        for name in available_backends():
            dist, nxt = blocked_fw_paths(w, b, backend=name)
            # Hop pointers must be bitwise invariant: every backend
            # derives k-chunk boundaries from the shared tuner and path
            # numerics never take the reduced-precision route.
            np.testing.assert_array_equal(dist, dist_ref, err_msg=name)
            np.testing.assert_array_equal(nxt, nxt_ref, err_msg=name)

    def test_paths_never_use_f32(self):
        f32 = get_backend("tiled-f32")
        rng = np.random.default_rng(3)
        c = rng.uniform(5, 10, (7, 7))
        c_nxt = np.full((7, 7), -1, dtype=np.int64)
        a = rng.uniform(0, 5, (7, 4))
        a_nxt = rng.integers(0, 7, (7, 4)).astype(np.int64)
        b = rng.uniform(0, 5, (4, 7))
        ref = get_backend("reference")
        c1, n1 = c.copy(), c_nxt.copy()
        c2, n2 = c.copy(), c_nxt.copy()
        f32.srgemm_accumulate_paths(c1, n1, a, a_nxt, b)
        ref.srgemm_accumulate_paths(c2, n2, a, a_nxt, b)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_array_equal(n1, n2)


class TestModeledCostScale:
    def test_kernel_duration_scales(self):
        cost = CostModel(SUMMIT)
        env = Environment()
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        s = gpu.stream()
        s.kernel(128, 128, 128, label="base")
        env.run()
        base = env.now
        env2 = Environment()
        gpu2 = SimGPU(env2, SUMMIT.node.gpu, cost)
        s2 = gpu2.stream()
        s2.kernel(128, 128, 128, label="scaled", cost_scale=2.0)
        env2.run()
        assert env2.now == pytest.approx(2.0 * base)

    def test_nonpositive_scale_rejected(self):
        cost = CostModel(SUMMIT)
        env = Environment()
        gpu = SimGPU(env, SUMMIT.node.gpu, cost)
        with pytest.raises(ValueError):
            gpu.stream().kernel(8, 8, 8, cost_scale=0.0)

    def test_shipped_backends_model_paper_kernel(self):
        # All shipped backends model the same fp32 cuASR kernel the
        # cost model is calibrated against - the scale must stay 1.0 or
        # every calibrated benchmark assertion in the repo shifts.
        for name, backend in registered_backends().items():
            assert backend.modeled_cost_scale == 1.0, name


class TestDriverIntegration:
    def test_solver_config_resolves_backend(self):
        from repro.core.context import SolverConfig

        cfg = SolverConfig(block_size=8, kernel_backend="tiled")
        assert cfg.kernel_backend == "tiled"

    def test_apsp_backend_equivalence(self):
        from repro.core import apsp
        from repro.graphs import uniform_random_dense

        w = uniform_random_dense(48, seed=2)
        ref = apsp(w, block_size=12, n_nodes=1, ranks_per_node=4, validate=True)
        tld = apsp(
            w, block_size=12, n_nodes=1, ranks_per_node=4, validate=True,
            kernel_backend="tiled",
        )
        np.testing.assert_array_equal(ref.dist, tld.dist)

    def test_apsp_unknown_backend_raises(self):
        from repro.core import apsp
        from repro.graphs import uniform_random_dense

        w = uniform_random_dense(16, seed=0)
        with pytest.raises(ConfigurationError):
            apsp(w, block_size=8, n_nodes=1, ranks_per_node=4, kernel_backend="nope")

    def test_oog_plan_takes_backend(self):
        from repro.core.oog_srgemm import oog_srgemm_plan, run_oog_pipeline
        from repro.machine.host import HostCpu

        rng = np.random.default_rng(4)
        a = rng.uniform(0, 10, (12, 12))
        b = rng.uniform(0, 10, (12, 12))
        expected = MIN_PLUS.plus(
            np.zeros((12, 12)), get_backend("reference").srgemm(a, b)
        )
        for name in available_backends():
            c = np.zeros((12, 12))
            env = Environment()
            cost = CostModel(SUMMIT)
            gpu = SimGPU(env, SUMMIT.node.gpu, cost)
            host = HostCpu(env, SUMMIT.node, cost)
            tiles = oog_srgemm_plan(a, b, c, mx=5, nx=7, backend=name)
            env.process(run_oog_pipeline(env, gpu, host, tiles, n_streams=2))
            env.run()
            backend = get_backend(name)
            if backend.rtol == 0.0:
                np.testing.assert_array_equal(c, expected, err_msg=name)
            else:
                np.testing.assert_allclose(c, expected, rtol=backend.rtol, err_msg=name)
