"""Unit tests for Resource / Store / FilterStore."""

from __future__ import annotations

import pytest

from repro.sim import FilterStore, Resource, SimulationError, Store


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, 0)

    def test_grant_immediately_when_free(self, env):
        res = Resource(env, 1)

        def prog():
            req = res.request()
            yield req
            assert res.count == 1
            res.release(req)
            assert res.count == 0
            return env.now

        assert env.run(env.process(prog())) == 0.0

    def test_fifo_queueing(self, env):
        res = Resource(env, 1)
        order = []

        def user(name, hold):
            yield from res.use(hold)
            order.append((name, env.now))

        env.process(user("a", 2))
        env.process(user("b", 1))
        env.process(user("c", 1))
        env.run()
        assert order == [("a", 2), ("b", 3), ("c", 4)]

    def test_capacity_two_runs_pairs(self, env):
        res = Resource(env, 2)
        done = []

        def user(name):
            yield from res.use(1)
            done.append((name, env.now))

        for name in "abcd":
            env.process(user(name))
        env.run()
        assert done == [("a", 1), ("b", 1), ("c", 2), ("d", 2)]

    def test_release_without_hold_raises(self, env):
        res = Resource(env, 1)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_use_releases_on_interrupt(self, env):
        from repro.sim import Interrupt

        res = Resource(env, 1)

        def victim():
            try:
                yield from res.use(100)
            except Interrupt:
                pass

        def other():
            yield from res.use(1)
            return env.now

        v = env.process(victim())

        def attacker():
            yield env.timeout(5)
            v.interrupt()

        env.process(attacker())
        o = env.process(other())
        env.run()
        # After the interrupt at t=5 the resource is free; "other" then
        # holds it for 1 time unit.
        assert o.value == 6
        assert res.count == 0

    def test_queue_len(self, env):
        res = Resource(env, 1)

        def holder():
            yield from res.use(10)

        def waiter():
            yield from res.use(1)

        env.process(holder())
        env.process(waiter())
        env.process(waiter())
        env.run(until=1)
        assert res.queue_len == 2

    def test_total_wait_time_accumulates(self, env):
        res = Resource(env, 1)

        def user(hold):
            yield from res.use(hold)

        env.process(user(3))
        env.process(user(1))
        env.run()
        assert res.total_wait_time == pytest.approx(3.0)


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")

        def prog():
            got = yield store.get()
            return got

        assert env.run(env.process(prog())) == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter():
            got = yield store.get()
            return (got, env.now)

        def putter():
            yield env.timeout(5)
            store.put("late")

        g = env.process(getter())
        env.process(putter())
        assert env.run(g) == ("late", 5)

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(3):
            store.put(i)
        got = []

        def prog():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(prog())
        env.run()
        assert got == [0, 1, 2]

    def test_len(self, env):
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2


class TestFilterStore:
    def test_filtered_get_skips_nonmatching(self, env):
        store = FilterStore(env)
        store.put({"tag": 1})
        store.put({"tag": 2})

        def prog():
            got = yield store.get(lambda m: m["tag"] == 2)
            return got

        assert env.run(env.process(prog()))["tag"] == 2
        assert len(store) == 1  # tag 1 still there

    def test_blocked_getter_wakes_on_matching_put(self, env):
        store = FilterStore(env)

        def getter():
            got = yield store.get(lambda m: m == "wanted")
            return (got, env.now)

        def putter():
            yield env.timeout(1)
            store.put("other")
            yield env.timeout(1)
            store.put("wanted")

        g = env.process(getter())
        env.process(putter())
        assert env.run(g) == ("wanted", 2)

    def test_head_of_line_blocking_avoided(self, env):
        """A getter deeper in the queue may match before the head
        getter (MPI tag matching requires this)."""
        store = FilterStore(env)
        results = {}

        def getter(name, want):
            got = yield store.get(lambda m, w=want: m == w)
            results[name] = (got, env.now)

        env.process(getter("first", "a"))
        env.process(getter("second", "b"))

        def putter():
            yield env.timeout(1)
            store.put("b")  # matches the *second* getter
            yield env.timeout(1)
            store.put("a")

        env.process(putter())
        env.run()
        assert results["second"] == ("b", 1)
        assert results["first"] == ("a", 2)

    def test_fifo_among_matching_getters(self, env):
        store = FilterStore(env)
        order = []

        def getter(name):
            yield store.get(lambda m: True)
            order.append(name)

        env.process(getter("g1"))
        env.process(getter("g2"))

        def putter():
            yield env.timeout(1)
            store.put(1)
            store.put(2)

        env.process(putter())
        env.run()
        assert order == ["g1", "g2"]

    def test_unfiltered_get(self, env):
        store = FilterStore(env)
        store.put("only")

        def prog():
            got = yield store.get()
            return got

        assert env.run(env.process(prog())) == "only"
