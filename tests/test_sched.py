"""Multi-tenant cluster scheduler: exactness, fairness, isolation.

Four contracts pinned here:

1. **Degenerate exactness** - a single job submitted through
   :class:`~repro.sched.ClusterScheduler` reproduces the unscheduled
   engine bit-for-bit *and* second-for-second: all six variants match
   ``repro.solve`` and the five recorded makespans/digests of
   ``tests/test_schedule_ir.py``.
2. **Admission** - demand pricing is formula-identical to the driver's
   state builders (measured against live allocations); oversubscribed
   jobs queue and finish, impossible jobs are REJECTED with
   :class:`~repro.errors.AdmissionError` (exit code 15).
3. **Fair share** - priority buys proportional bandwidth, never
   starvation: across a seeded priority/arrival/weight matrix every
   job completes, bit-exact with its solo run.
4. **Failure isolation** - a crash or OOM that exhausts one job's
   restart budget fails *that job* with its per-class exit code while
   concurrent jobs finish bit-exact.
"""

import hashlib
import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.api import SolveConfig
from repro.core.context import FwContext
from repro.core.driver import MachineHandles, make_state_builders, plan_run
from repro.errors import AdmissionError, ConfigurationError, exit_code_for
from repro.graphs import uniform_random_dense
from repro.machine.spec import SUMMIT
from repro.mpi.comm import SimMPI
from repro.sched import (
    ClusterScheduler,
    FairShareArbiter,
    JobStatus,
    assess,
    demand_of,
    load_job_mix,
    run_job_mix,
)

# The recorded single-job ground truth (same values as
# tests/test_schedule_ir.py): the scheduler's degenerate path must hit
# these exactly - same bits, same simulated seconds.
REAL_KW = dict(block_size=5, n_nodes=2, ranks_per_node=3)
RECORDED_ELAPSED = {
    "baseline": 0.0002740077794117649,
    "pipelined": 0.000346252455882353,
    "reordering": 0.000346252455882353,
    "async": 0.00034372901838235296,
    "offload": 0.0003222435441176473,
}
RECORDED_DIST_SHA = {
    0: "a212b9afbc9074bd6042ae010bbbd2b369c9014a7246079a921f1247fc8c7c3a",
    1: "b95b93ea5d1ab404adbfde5466cb4fa02b32771a864e3d75b8cf76d431a720f2",
    2: "9f4b377f89436d306998b3acf3f0b58d9dbfef734a721084d009ff05f4866906",
}
HOLLOW_KW = dict(
    block_size=1, n_nodes=4, ranks_per_node=4, dim_scale=768.0,
    compute_numerics=False, collect=False, check_negative_cycles=False,
)
RECORDED_HOLLOW_ASYNC = 0.14802366061176453

ALL_VARIANTS = ["baseline", "pipelined", "reordering", "async", "offload",
                "offload-pipelined"]


def dist_sha(dist: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(dist).tobytes()).hexdigest()


def _solo(seed: int, variant: str = "async", n: int = 30, **kw):
    kw = {**REAL_KW, **kw} if n == 30 else kw
    return repro.solve(uniform_random_dense(n, seed=seed), variant=variant, **kw)


# ---------------------------------------------------------------------------
# 1. Degenerate schedules are exact
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ALL_VARIANTS)
def test_degenerate_schedule_is_exact(variant):
    """One job through the scheduler == the unscheduled engine, for all
    six variants: identical distance bits and identical makespan."""
    w = uniform_random_dense(30, seed=0)
    solo = repro.solve(w, variant=variant, **REAL_KW)
    sched = ClusterScheduler(n_nodes=2)
    handle = sched.submit(w, variant=variant, **REAL_KW)
    result = handle.result()
    assert result.dist.tobytes() == solo.dist.tobytes()
    assert result.report.elapsed == solo.report.elapsed
    if variant in RECORDED_ELAPSED:
        assert result.report.elapsed == RECORDED_ELAPSED[variant]
        assert dist_sha(result.dist) == RECORDED_DIST_SHA[0]


def test_degenerate_schedule_hollow_makespan():
    """Paper-scale hollow run (nb=24, dim_scale=768, 16 ranks) through
    the scheduler keeps the recorded makespan to the last ulp."""
    w = np.zeros((24, 24), dtype=np.float32)
    sched = ClusterScheduler(n_nodes=4, dim_scale=768.0)
    handle = sched.submit(w, variant="async", **HOLLOW_KW)
    assert handle.result().report.elapsed == RECORDED_HOLLOW_ASYNC


def test_concurrent_jobs_stay_bit_exact():
    """Three tenants sharing one cluster contend for GPUs and NICs -
    timing changes, numerics must not: each job's digest equals its
    recorded solo digest."""
    sched = ClusterScheduler(n_nodes=2)
    handles = {
        seed: sched.submit(uniform_random_dense(30, seed=seed),
                           variant="async", name=f"seed{seed}", **REAL_KW)
        for seed in (0, 1, 2)
    }
    sched.run()
    for seed, handle in handles.items():
        assert handle.status is JobStatus.DONE
        assert dist_sha(handle.result().dist) == RECORDED_DIST_SHA[seed]


def test_api_submit_degenerate_matches_solve():
    w = uniform_random_dense(30, seed=1)
    solo = repro.solve(w, variant="pipelined", **REAL_KW)
    handle = repro.submit(w, variant="pipelined", **REAL_KW)
    result = handle.result()
    assert result.dist.tobytes() == solo.dist.tobytes()
    assert result.report.elapsed == solo.report.elapsed
    assert handle.report().exit_code == 0


# ---------------------------------------------------------------------------
# 2. Admission control
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("variant", ["async", "offload"])
def test_demand_pricing_matches_builders(variant):
    """demand_of() must price exactly what make_state_builders later
    allocates, or admission would admit jobs the builder OOMs on:
    compare against live per-GPU/per-host allocation counters."""
    handles = MachineHandles.create(SUMMIT, 2)
    rp = plan_run(uniform_random_dense(30, seed=0), variant=variant,
                  machine=SUMMIT, **REAL_KW)
    demand = demand_of(rp, handles.cost, SUMMIT.node.gpus_per_node)
    mpi = SimMPI(handles.env, handles.cluster,
                 [rp.placement.node_of(r) for r in range(rp.n_ranks)], None)
    ctx = FwContext(handles.env, handles.cluster, mpi, rp.grid, rp.placement,
                    rp.config, rp.nb, None)
    rp.distribute()
    build_states, teardown_states = make_state_builders(ctx, rp)
    states = build_states(rp.config, rp.locals_, rp.nxt_locals)
    try:
        for (node, g), nbytes in demand.gpu_bytes.items():
            assert handles.cluster.nodes[node].gpus[g].allocated == nbytes
        for node, nbytes in demand.dram_bytes.items():
            assert handles.cluster.nodes[node].host._dram_allocated == nbytes
        if variant != "offload":
            assert not demand.dram_bytes
    finally:
        teardown_states(states)
    for node in handles.cluster.nodes:
        assert all(gpu.allocated == 0 for gpu in node.gpus)


def test_oversubscribed_job_queues_then_finishes():
    """Two hollow jobs that each nearly fill HBM: the second queues
    (reason names the oversubscribed GPU), then runs to completion when
    the first releases its reservation."""
    sched = ClusterScheduler(n_nodes=1, dim_scale=9000.0)
    w = np.zeros((8, 8), dtype=np.float32)
    kw = dict(variant="async", block_size=1, n_nodes=1, ranks_per_node=2,
              dim_scale=9000.0, compute_numerics=False, collect=False,
              check_negative_cycles=False)
    first = sched.submit(w, name="first", **kw)
    second = sched.submit(w, name="second", **kw)
    assert first.status is JobStatus.RUNNING
    assert second.status is JobStatus.QUEUED
    assert "oversubscribed" in second.report().reason
    reports = sched.run()
    assert [r.status for r in reports] == ["done", "done"]
    assert second.report().queue_wait > 0.0
    assert first.report().queue_wait == 0.0
    flat = sched.fleet_metrics().flat()
    assert flat["fleet.jobs.queued"] == 1.0
    assert flat["fleet.queue.depth"] == 0.0


def test_impossible_job_is_rejected_with_exit_15():
    sched = ClusterScheduler(n_nodes=1, dim_scale=100000.0)
    handle = sched.submit(
        np.zeros((16, 16), dtype=np.float32), name="huge",
        variant="baseline", block_size=1, n_nodes=1, ranks_per_node=2,
        dim_scale=100000.0, compute_numerics=False, collect=False,
        check_negative_cycles=False,
    )
    assert handle.status is JobStatus.REJECTED
    assert "exceeds HBM capacity" in handle.report().reason
    assert handle.report().exit_code == 15
    with pytest.raises(AdmissionError):
        handle.result()
    assert exit_code_for(AdmissionError("huge", "x")) == 15


def test_needs_more_nodes_is_rejected():
    sched = ClusterScheduler(n_nodes=1)
    handle = sched.submit(uniform_random_dense(30, seed=0),
                          variant="async", **REAL_KW)  # wants 2 nodes
    assert handle.status is JobStatus.REJECTED
    assert "nodes" in handle.report().reason


def test_makespan_slo_rejects_slow_jobs():
    """An SLO-configured fleet rejects jobs whose Eq. 1 prediction
    exceeds the limit - before any simulated event is spent."""
    sched = ClusterScheduler(n_nodes=2, makespan_limit=1e-9)
    handle = sched.submit(uniform_random_dense(30, seed=0),
                          variant="async", **REAL_KW)
    assert handle.status is JobStatus.REJECTED
    assert "makespan" in handle.report().reason
    roomy = ClusterScheduler(n_nodes=2, makespan_limit=1e6)
    assert roomy.submit(uniform_random_dense(30, seed=0), variant="async",
                        **REAL_KW).result() is not None


def test_job_config_must_match_fleet():
    sched = ClusterScheduler(n_nodes=1)
    w = uniform_random_dense(12, seed=0)
    with pytest.raises(ConfigurationError):
        sched.submit(w, machine="workstation", block_size=3, ranks_per_node=2)
    with pytest.raises(ConfigurationError):
        sched.submit(w, dim_scale=2.0, block_size=3, ranks_per_node=2)
    with pytest.raises(ConfigurationError):
        sched.submit(w, stragglers={0: 2.0}, block_size=3, ranks_per_node=2)


def test_assess_feasibility_ladder():
    small = assess(30, 2, 3)
    assert small.feasibility == "fits-hbm" and small.feasible
    assert small.predicted_makespan > 0
    paper = assess(1_664_511, 64, 12)
    assert paper.feasibility == "needs-offload"
    assert "offload" in paper.summary()
    absurd = assess(50_000_000, 1, 12)
    assert not absurd.feasible and absurd.predicted_makespan is None
    # The scheduler's what-if view prices against its own fleet shape.
    assert ClusterScheduler(n_nodes=2).assess(30, ranks_per_node=3).feasible


# ---------------------------------------------------------------------------
# 3. Fair share: proportional service, no starvation
# ---------------------------------------------------------------------------


def _grants(arbiter, scopes, rounds):
    """Simulate contended grants: every scope always has one waiter;
    each grant charges one second of service."""
    counts = {s: 0 for s in scopes}
    for _ in range(rounds):
        waiting = [SimpleNamespace(scope=s) for s in scopes]
        picked = arbiter.select(waiting).scope
        counts[picked] += 1
        arbiter.charge(picked, 1.0)
    return counts


def test_arbiter_priority_buys_double_share():
    arbiter = FairShareArbiter()
    arbiter.register("lo", priority=0)
    arbiter.register("hi", priority=1)
    counts = _grants(arbiter, ["lo", "hi"], 30)
    assert counts["hi"] == 2 * counts["lo"]
    assert counts["lo"] > 0  # never starved


def test_arbiter_weight_subdivides_within_priority():
    arbiter = FairShareArbiter()
    arbiter.register("a", weight=1.0)
    arbiter.register("b", weight=3.0)
    counts = _grants(arbiter, ["a", "b"], 40)
    assert counts["b"] == 3 * counts["a"]


def test_arbiter_single_scope_is_fifo():
    arbiter = FairShareArbiter()
    arbiter.register("only")
    waiting = [SimpleNamespace(scope="only", tag=i) for i in range(4)]
    assert arbiter.select(waiting).tag == 0  # queue order, no reordering


def test_arbiter_latecomer_starts_at_current_min():
    arbiter = FairShareArbiter()
    arbiter.register("old")
    arbiter.charge("old", 100.0)
    arbiter.register("new")
    assert arbiter.vtime("new") == pytest.approx(100.0)


@settings(max_examples=6, deadline=None)
@given(
    priorities=st.lists(st.integers(0, 3), min_size=3, max_size=3),
    weights=st.lists(st.floats(0.5, 4.0, allow_nan=False), min_size=3, max_size=3),
    arrivals=st.lists(st.floats(0.0, 2e-4, allow_nan=False), min_size=3, max_size=3),
)
def test_fair_share_never_starves(priorities, weights, arrivals):
    """Property: whatever the priority/weight/arrival matrix, every
    submitted job completes - and bit-exact with its solo run (fair
    share shifts *when* things happen, never *what* is computed)."""
    kw = dict(variant="async", block_size=3, n_nodes=1, ranks_per_node=2)
    sched = ClusterScheduler(n_nodes=1)
    handles = []
    for i, (prio, wt, arr) in enumerate(zip(priorities, weights, arrivals)):
        handles.append(sched.submit(
            uniform_random_dense(12, seed=i), name=f"j{i}",
            priority=prio, weight=wt, arrival=arr, **kw,
        ))
    sched.run()
    for i, handle in enumerate(handles):
        assert handle.status is JobStatus.DONE, handle.report()
        solo = repro.solve(uniform_random_dense(12, seed=i), **kw)
        assert handle.result().dist.tobytes() == solo.dist.tobytes()


def test_future_arrival_is_pending_then_runs():
    sched = ClusterScheduler(n_nodes=1)
    handle = sched.submit(uniform_random_dense(12, seed=0), variant="async",
                          block_size=3, n_nodes=1, ranks_per_node=2,
                          arrival=0.5)
    assert handle.status is JobStatus.PENDING
    report = handle.wait()
    assert report.status == "done"
    assert report.submitted_at == pytest.approx(0.5)
    assert report.started_at >= 0.5


# ---------------------------------------------------------------------------
# 4. Failure isolation across concurrent jobs
# ---------------------------------------------------------------------------


def test_crash_fails_one_job_others_bit_exact():
    """A crash with no restart budget kills exactly one tenant (exit 8,
    RankFailure); the other two finish bit-exact with their solo runs."""
    sched = ClusterScheduler(n_nodes=1)
    kw = dict(block_size=4, n_nodes=1, ranks_per_node=4)
    a = sched.submit(uniform_random_dense(24, seed=0), variant="async",
                     name="a", **kw)
    b = sched.submit(uniform_random_dense(24, seed=1), variant="async", name="b",
                     fault_plan=["crash:rank=1,at=0.0001", "policy:restarts=0"],
                     **kw)
    c = sched.submit(uniform_random_dense(24, seed=2), variant="pipelined",
                     name="c", **kw)
    sched.run()
    assert b.status is JobStatus.FAILED
    assert b.report().exit_code == 8
    with pytest.raises(repro.RankFailure):
        b.result()
    for seed, handle, variant in ((0, a, "async"), (2, c, "pipelined")):
        solo = repro.solve(uniform_random_dense(24, seed=seed),
                           variant=variant, **kw)
        assert handle.result().dist.tobytes() == solo.dist.tobytes()
    flat = sched.fleet_metrics().flat()
    assert flat["fleet.jobs.failed"] == 1.0
    assert flat["fleet.jobs.completed"] == 2.0


def test_oom_fails_one_job_with_exit_5():
    """Injected GPU OOM with degradation and restarts disabled fails
    only its own job (exit 5); the concurrent job is unaffected."""
    sched = ClusterScheduler(n_nodes=1)
    kw = dict(block_size=4, n_nodes=1, ranks_per_node=4)
    victim = sched.submit(
        uniform_random_dense(24, seed=1), variant="async", name="victim",
        fault_plan=["oom:rank=1,k=1", "policy:restarts=0,oom_degrade=false"],
        **kw,
    )
    bystander = sched.submit(uniform_random_dense(24, seed=0), variant="async",
                             name="bystander", **kw)
    sched.run()
    assert victim.status is JobStatus.FAILED
    assert victim.report().exit_code == 5
    solo = repro.solve(uniform_random_dense(24, seed=0), variant="async", **kw)
    assert bystander.result().dist.tobytes() == solo.dist.tobytes()


def test_crash_recovery_inside_shared_cluster():
    """With a restart budget, a crashed tenant restarts from its
    checkpoint *on the shared cluster* and still converges bit-exact,
    while the bystander also stays bit-exact."""
    sched = ClusterScheduler(n_nodes=1)
    kw = dict(block_size=4, n_nodes=1, ranks_per_node=4)
    crashy = sched.submit(
        uniform_random_dense(24, seed=1), variant="async", name="crashy",
        fault_plan=["crash:rank=1,at=0.0001", "policy:ckpt=2"], **kw,
    )
    calm = sched.submit(uniform_random_dense(24, seed=2), variant="async",
                        name="calm", **kw)
    sched.run()
    assert crashy.status is JobStatus.DONE
    assert crashy.report().restarts >= 1
    solo1 = repro.solve(uniform_random_dense(24, seed=1), variant="async", **kw)
    solo2 = repro.solve(uniform_random_dense(24, seed=2), variant="async", **kw)
    assert crashy.result().dist.tobytes() == solo1.dist.tobytes()
    assert calm.result().dist.tobytes() == solo2.dist.tobytes()


def test_message_faults_do_not_leak_between_jobs():
    """Message-drop injection arms the faulted job's transport only:
    the bystander's traffic is untouched and its digest unchanged."""
    sched = ClusterScheduler(n_nodes=1)
    kw = dict(block_size=4, n_nodes=1, ranks_per_node=4)
    faulted = sched.submit(
        uniform_random_dense(24, seed=1), variant="async", name="faulted",
        fault_plan=["drop:src=0,dst=1,nth=1", "policy:timeout=1e-3"], **kw,
    )
    bystander = sched.submit(uniform_random_dense(24, seed=0), variant="async",
                             name="bystander", **kw)
    sched.run()
    assert faulted.status is JobStatus.DONE
    assert faulted.result().fault_counters.get("faults.dropped", 0) >= 1
    assert not bystander.result().fault_counters
    solo = repro.solve(uniform_random_dense(24, seed=0), variant="async", **kw)
    assert bystander.result().dist.tobytes() == solo.dist.tobytes()


# ---------------------------------------------------------------------------
# 5. Fleet workload + observability (the acceptance scenario)
# ---------------------------------------------------------------------------


def _mixed_workload(sched):
    """The seeded 8-job mixed-priority acceptance mix."""
    rng = np.random.RandomState(7)
    handles = []
    variants = ["async", "pipelined", "baseline", "async",
                "offload", "async", "pipelined", "async"]
    for i, variant in enumerate(variants):
        handles.append(sched.submit(
            uniform_random_dense(24, seed=i), variant=variant,
            name=f"tenant{i}", priority=int(rng.randint(0, 3)),
            weight=float(rng.choice([0.5, 1.0, 2.0])),
            arrival=float(rng.uniform(0, 1e-4)),
            block_size=4, n_nodes=1, ranks_per_node=4,
        ))
    return handles


def test_eight_job_mixed_priority_workload():
    sched = ClusterScheduler(n_nodes=2, trace=True)
    handles = _mixed_workload(sched)
    reports = sched.run()
    assert len(reports) == 8
    assert all(h.status is JobStatus.DONE for h in handles)
    for i, handle in enumerate(handles):
        solo = repro.solve(uniform_random_dense(24, seed=i),
                           variant=handle.report().variant, block_size=4,
                           n_nodes=1, ranks_per_node=4)
        assert handle.result().dist.tobytes() == solo.dist.tobytes()

    flat = sched.fleet_metrics().flat()
    assert flat["fleet.jobs.completed"] == 8.0
    assert 0.0 < flat["fleet.gpu.utilization"] <= 1.0
    assert flat["fleet.job.latency.p99"] >= flat["fleet.job.latency.p50"] > 0.0
    assert flat["fleet.makespan"] > 0.0

    trace = sched.chrome_trace()
    lanes = {e["args"]["name"] for e in trace["traceEvents"]
             if e.get("ph") == "M" and e.get("name") == "thread_name"}
    # Job-tagged lanes: each tenant's ranks and engine lanes interleave.
    assert any(lane.startswith("tenant0.") for lane in lanes)
    assert any(lane.startswith("tenant7.") for lane in lanes)
    assert "fleet.jobs" in lanes  # one lane spans every job's lifetime


def test_untraced_fleet_refuses_chrome_trace():
    with pytest.raises(ConfigurationError):
        ClusterScheduler(n_nodes=1).chrome_trace()


# ---------------------------------------------------------------------------
# 6. Job-mix specs and the `repro-apsp sched` CLI
# ---------------------------------------------------------------------------


def _mix_spec():
    return {
        "machine": "summit",
        "n_nodes": 1,
        "jobs": [
            {"name": "mixA",
             "graph": {"kind": "uniform_random_dense", "n": 24, "seed": 0},
             "priority": 1,
             "config": {"variant": "async", "block_size": 4,
                        "n_nodes": 1, "ranks_per_node": 4}},
            {"name": "mixB",
             "graph": {"kind": "zeros", "n": 16},
             "config": {"variant": "pipelined", "block_size": 4,
                        "n_nodes": 1, "ranks_per_node": 2}},
        ],
    }


def test_run_job_mix_roundtrip(tmp_path):
    path = tmp_path / "mix.json"
    path.write_text(json.dumps(_mix_spec()))
    sched, reports = run_job_mix(load_job_mix(str(path)))
    assert [r.name for r in reports] == ["mixA", "mixB"]
    assert all(r.status == "done" for r in reports)
    assert sched.fleet_metrics().flat()["fleet.jobs.completed"] == 2.0


def test_load_job_mix_rejects_bad_specs(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"jobs": []}))
    with pytest.raises(ConfigurationError):
        load_job_mix(str(empty))
    bad_graph = dict(_mix_spec())
    bad_graph["jobs"] = [{"name": "x", "graph": {"kind": "not_a_kind", "n": 4},
                          "config": {}}]
    with pytest.raises(ConfigurationError):
        run_job_mix(bad_graph)


def test_cli_sched_runs_a_mix(tmp_path, capsys):
    from repro.cli import main

    spec = tmp_path / "mix.json"
    spec.write_text(json.dumps(_mix_spec()))
    report_json = tmp_path / "report.json"
    trace_json = tmp_path / "trace.json"
    code = main(["sched", str(spec), "--report-json", str(report_json),
                 "--trace-out", str(trace_json)])
    out = capsys.readouterr().out
    assert code == 0
    assert "mixA" in out and "mixB" in out and "fleet.gpu.utilization" in out
    payload = json.loads(report_json.read_text())
    assert {j["name"] for j in payload["jobs"]} == {"mixA", "mixB"}
    assert payload["fleet"]["fleet.jobs.completed"] == 2.0
    trace = json.loads(trace_json.read_text())
    assert any("mixA" in str(e.get("args", {}).get("name", ""))
               for e in trace["traceEvents"])


def test_cli_sched_exit_code_reflects_failed_tenant(tmp_path, capsys):
    from repro.cli import main

    spec = _mix_spec()
    spec["jobs"][1] = {
        "name": "doomed",
        "graph": {"kind": "uniform_random_dense", "n": 24, "seed": 1},
        "config": {"variant": "async", "block_size": 4, "n_nodes": 1,
                   "ranks_per_node": 4,
                   "fault_plan": ["crash:rank=1,at=0.0001",
                                  "policy:restarts=0"]},
    }
    path = tmp_path / "mix.json"
    path.write_text(json.dumps(spec))
    code = main(["sched", str(path)])
    capsys.readouterr()
    assert code == 8  # the doomed tenant's RankFailure class
