"""Tests for the ABFT verification layer (:mod:`repro.verify`).

Covers: the (min,+) checksum algebra (bit-exact prediction against
brute-force recomputation, including infinities and narrowed compute
dtypes), configuration gating, memflip fault specs, the
zero-false-positive contract on clean runs (with makespans pinned
bit-exactly against the pre-feature recordings for *every* verify
mode), the SDC detection matrix (seeded bit-flips on resident blocks
across variants, modes, and seeds - each detected and either repaired
in place or escalated to checkpoint/restart, final distances bit-exact
against the fault-free oracle), localized repair of corrupted ooG
staging buffers, the monotonicity sentinel, certificate determinism,
and the CLI exit codes for the two new error classes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import _exit_code_for
from repro.core import apsp
from repro.errors import (
    ConfigurationError,
    SilentCorruptionError,
    ValidationError,
    VerificationError,
)
from repro.faults import FaultPlan, MemoryFault
from repro.graphs import uniform_random_dense
from repro.semiring import MIN_PLUS, PLUS_TIMES
from repro.semiring.backends import get_backend
from repro.verify import (
    VerifyRuntime,
    block_checksums,
    checksums_match,
    predicted_accumulate,
    predicted_merge,
)

#: Same shared workload as test_faults: 48 vertices, b=8, 4 ranks on 2
#: nodes.
N, B, NODES, RPN = 48, 8, 2, 2

#: The pre-fault-framework makespans (see test_faults).  Verification
#: runs inside existing kernel closures and adds no simulated events,
#: so *every* verify mode - including off - must reproduce these
#: bit-for-bit.
PRE_FAULT_MAKESPANS = {
    "baseline": 0.00032133007058823555,
    "pipelined": 0.0003952467576470589,
    "async": 0.0003952467576470589,
    "offload": 0.0004660122352941178,
}


def run(w, variant, **kw):
    return apsp(w, variant=variant, block_size=B, n_nodes=NODES, ranks_per_node=RPN, **kw)


@pytest.fixture(scope="module")
def w48():
    return uniform_random_dense(N, seed=3)


@pytest.fixture(scope="module")
def oracle(w48):
    return run(w48, "baseline").dist


# ---------------------------------------------------------------------------
# Checksum algebra
# ---------------------------------------------------------------------------
class TestChecksumAlgebra:
    """rowsum(C (+) A (x) B) must equal the *predicted* checksums
    bit-for-bit - (+) is min (exact selection), so the distributive law
    holds in IEEE floats, not just in exact arithmetic."""

    @staticmethod
    def _rand(rng, shape, inf_frac=0.0):
        a = rng.uniform(0.5, 9.0, size=shape)
        if inf_frac:
            a[rng.random(shape) < inf_frac] = np.inf
        return a

    @pytest.mark.parametrize("inf_frac", [0.0, 0.3], ids=["finite", "with-inf"])
    def test_accumulate_prediction_bit_exact(self, inf_frac):
        rng = np.random.default_rng(11)
        for _ in range(20):
            c = self._rand(rng, (8, 8), inf_frac)
            a = self._rand(rng, (8, 8), inf_frac)
            b = self._rand(rng, (8, 8), inf_frac)
            pre = block_checksums(c, MIN_PLUS)
            predicted = predicted_accumulate(pre, a, b, MIN_PLUS)
            get_backend("reference").srgemm_accumulate(c, a, b, MIN_PLUS)
            assert checksums_match(predicted, block_checksums(c, MIN_PLUS))

    def test_prediction_catches_any_downward_flip(self):
        """A sign flip of a positive entry lowers a row *and* column
        minimum, so it always breaks both checksums."""
        rng = np.random.default_rng(12)
        c = self._rand(rng, (6, 6))
        a = self._rand(rng, (6, 6))
        b = self._rand(rng, (6, 6))
        pre = block_checksums(c, MIN_PLUS)
        predicted = predicted_accumulate(pre, a, b, MIN_PLUS)
        get_backend("reference").srgemm_accumulate(c, a, b, MIN_PLUS)
        for i in range(6):
            for j in range(6):
                saved = c[i, j]
                c[i, j] = -saved
                assert not checksums_match(predicted, block_checksums(c, MIN_PLUS))
                c[i, j] = saved
        assert checksums_match(predicted, block_checksums(c, MIN_PLUS))

    def test_f32_compute_dtype_prediction_matches_tiled_backend(self):
        """Predictions must replicate the narrowed-operand rounding of
        tiled-f32 (operands cast to f32, accumulation in the C dtype) -
        otherwise every op under that backend is a false positive."""
        backend = get_backend("tiled-f32")
        rng = np.random.default_rng(13)
        c = rng.uniform(0.5, 9.0, size=(16, 16))
        a = rng.uniform(0.5, 9.0, size=(16, 16))
        b = rng.uniform(0.5, 9.0, size=(16, 16))
        pre = block_checksums(c, MIN_PLUS)
        predicted = predicted_accumulate(
            pre, a, b, MIN_PLUS, compute_dtype=backend.compute_dtype
        )
        backend.srgemm_accumulate(c, a, b, MIN_PLUS)
        assert checksums_match(predicted, block_checksums(c, MIN_PLUS))

    def test_merge_prediction_bit_exact(self):
        rng = np.random.default_rng(14)
        blk = rng.uniform(0.5, 9.0, size=(8, 8))
        x = rng.uniform(0.5, 9.0, size=(8, 8))
        predicted = predicted_merge(block_checksums(blk, MIN_PLUS), x, MIN_PLUS)
        MIN_PLUS.plus(blk, x, out=blk)
        assert checksums_match(predicted, block_checksums(blk, MIN_PLUS))

    def test_empty_k_prediction_is_identity(self):
        rng = np.random.default_rng(15)
        c = rng.uniform(0.5, 9.0, size=(4, 4))
        pre = block_checksums(c, MIN_PLUS)
        predicted = predicted_accumulate(
            pre, np.empty((4, 0)), np.empty((0, 4)), MIN_PLUS
        )
        assert checksums_match(predicted, pre)


# ---------------------------------------------------------------------------
# Configuration gating and fault specs
# ---------------------------------------------------------------------------
class TestConfiguration:
    def test_bad_mode_rejected(self, w48):
        with pytest.raises(ConfigurationError, match="verify"):
            run(w48, "baseline", verify="paranoid")

    def test_requires_numerics(self, w48):
        with pytest.raises(ConfigurationError, match="compute_numerics"):
            run(w48, "baseline", verify="checksum", compute_numerics=False)

    def test_requires_idempotent_plus(self, w48):
        with pytest.raises(ConfigurationError, match="idempotent"):
            run(w48, "baseline", verify="checksum", semiring=PLUS_TIMES,
                check_negative_cycles=False)

    def test_memflip_spec_grammar(self):
        plan = FaultPlan.from_specs(
            ["memflip:rank=1,k=3", "memflip:rank=0,k=2,target=oog,bits=2",
             "memflip:rank=0,k=4,target=checkpoint", "memflip:rank=2,k=1,i=0,j=3"]
        )
        assert plan.memory_faults == (
            MemoryFault(1, 3),
            MemoryFault(0, 2, target="oog", bits=2),
            MemoryFault(0, 4, target="checkpoint"),
            MemoryFault(2, 1, block=(0, 3)),
        )
        assert plan.armed()

    @pytest.mark.parametrize(
        "spec",
        [
            "memflip:rank=0",  # missing k
            "memflip:rank=0,k=2,target=gpu",  # unknown target
            "memflip:rank=0,k=2,bits=0",  # bits >= 1
            "memflip:rank=0,k=2,i=1",  # i without j
            "memflip:rank=0,k=2,target=oog,i=0,j=0",  # block only for target=block
        ],
    )
    def test_bad_memflip_specs(self, spec):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_specs([spec])

    def test_memflip_json_round_trip(self):
        plan = FaultPlan.from_specs(
            ["memflip:rank=1,k=3,i=2,j=4", "memflip:rank=0,k=2,target=oog"]
        )
        assert FaultPlan.from_json(plan.to_json()) == plan


# ---------------------------------------------------------------------------
# Clean runs: zero false positives, zero cost
# ---------------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("variant", list(PRE_FAULT_MAKESPANS))
    @pytest.mark.parametrize("mode", ["off", "checksum", "full"])
    def test_makespan_pinned_per_mode(self, w48, variant, mode):
        """Verification adds no simulated events: every mode reproduces
        the pre-feature makespan bit-for-bit."""
        r = run(w48, variant, verify=mode)
        assert r.report.elapsed == PRE_FAULT_MAKESPANS[variant]

    @pytest.mark.parametrize("variant", ["baseline", "async", "offload"])
    @pytest.mark.parametrize("mode", ["checksum", "full"])
    def test_zero_false_positives(self, w48, oracle, variant, mode):
        r = run(w48, variant, verify=mode, validate=True)
        cert = r.verification
        assert cert["passed"]
        assert cert["sdc_detected"] == 0
        assert cert["repaired"] == 0
        assert cert["escalated"] == 0
        assert cert["sentinel_violations"] == 0
        assert cert["ops_checked"] > 0
        if mode == "full":
            assert cert["sentinel_samples"] > 0
            assert cert["audit"]["triangle_violations"] == 0
            assert cert["audit"]["sssp_mismatches"] == 0
        else:
            assert cert["sentinel_samples"] == 0
            assert "audit" not in cert
        assert np.array_equal(r.dist, oracle)
        assert r.report.verification is cert
        assert "PASSED" in r.report.summary()

    def test_off_mode_has_no_certificate(self, w48):
        r = run(w48, "baseline")
        assert r.verification is None
        assert r.report.verification is None


# ---------------------------------------------------------------------------
# SDC detection matrix
# ---------------------------------------------------------------------------
class TestDetectionMatrix:
    """Every seeded resident-block bit-flip must be detected and the
    final distances bit-exact against the fault-free oracle (repair in
    place, or escalation to checkpoint/restart)."""

    @pytest.mark.parametrize("seed", [0, 1, 2], ids=lambda s: f"seed{s}")
    @pytest.mark.parametrize("mode", ["checksum", "full"])
    @pytest.mark.parametrize("variant", ["baseline", "async", "offload"])
    def test_block_flip_detected_and_recovered(self, w48, oracle, variant, mode, seed):
        r = run(
            w48, variant, verify=mode,
            fault_plan=["memflip:rank=0,k=2", "policy:ckpt=2"],
            fault_seed=seed,
        )
        cert = r.verification
        fc = r.fault_counters
        assert fc.get("faults.block_flips", 0) >= 1
        assert cert["sdc_detected"] >= 1
        # A flipped resident block is caught by the *pre*-check of the
        # next guarded op; its operands are suspect, so the runtime
        # escalates to checkpoint/restart rather than repairing.
        assert cert["escalated"] + cert["repaired"] >= 1
        if cert["escalated"]:
            assert fc.get("faults.restarts", 0) >= 1
        assert cert["passed"]
        assert np.array_equal(r.dist, oracle)

    def test_unrepairable_without_checkpoints_raises(self, w48):
        """Escalation with no restart path must surface as
        SilentCorruptionError, never a silently wrong answer."""
        with pytest.raises(SilentCorruptionError):
            run(w48, "baseline", verify="checksum",
                fault_plan=["memflip:rank=0,k=2", "policy:restarts=0,ckpt=2"],
                fault_seed=0)

    def test_off_mode_misses_the_corruption(self, w48, oracle):
        """Coverage measurement: the same flip with verify=off flows
        into the result undetected."""
        r = run(
            w48, "baseline", check_negative_cycles=False,
            fault_plan=["memflip:rank=0,k=2", "policy:ckpt=2"],
            fault_seed=0,
        )
        assert r.fault_counters.get("faults.block_flips", 0) >= 1
        assert not np.array_equal(r.dist, oracle)


# ---------------------------------------------------------------------------
# Localized repair: ooG staging buffers
# ---------------------------------------------------------------------------
class TestOogRepair:
    def test_staged_tile_flip_repaired_in_place(self, w48, oracle):
        r = run(
            w48, "offload", verify="checksum",
            fault_plan=["memflip:rank=0,k=2,target=oog"],
            fault_seed=0,
        )
        cert = r.verification
        fc = r.fault_counters
        assert fc.get("faults.oog_flips", 0) >= 1
        assert cert["sdc_detected"] >= 1
        assert cert["repaired"] >= 1
        assert cert["escalated"] == 0
        assert not fc.get("faults.restarts")  # repaired locally, no restart
        assert cert["passed"]
        assert np.array_equal(r.dist, oracle)

    @pytest.mark.parametrize("mode", ["checksum", "full"])
    def test_oog_repair_bit_exact_across_modes(self, w48, oracle, mode):
        r = run(
            w48, "offload", verify=mode,
            fault_plan=["memflip:rank=1,k=3,target=oog,bits=3"],
            fault_seed=1,
        )
        assert r.verification["repaired"] >= 1
        assert np.array_equal(r.dist, oracle)


# ---------------------------------------------------------------------------
# Monotonicity sentinel
# ---------------------------------------------------------------------------
class TestSentinel:
    """The sentinel covers what checksums cannot: an *upward* drift of
    a non-extremal entry (masked in both min-reductions)."""

    def _runtime(self, blocks):
        vrt = VerifyRuntime("full", get_backend("reference"), semiring=MIN_PLUS, seed=5)
        vrt.register_rank(0, blocks)
        return vrt

    def test_upward_drift_detected(self):
        rng = np.random.default_rng(21)
        blocks = {(0, 0): rng.uniform(1.0, 9.0, size=(8, 8))}
        vrt = self._runtime(blocks)
        vrt.sentinel_check(0, 0)  # baseline: clean
        assert vrt.counters.get("sentinel_violations", 0) == 0
        guard = next(iter(vrt._tiles.values()))
        pos = int(guard.sent_pos[0])
        blocks[(0, 0)].flat[pos] += 100.0  # distances never increase
        vrt.sentinel_check(0, 1)
        assert vrt.counters["sentinel_violations"] == 1
        assert vrt.counters["sdc_detected"] == 1
        with pytest.raises(SilentCorruptionError):
            vrt.raise_pending()

    def test_decrease_is_legal(self):
        rng = np.random.default_rng(22)
        blocks = {(0, 0): rng.uniform(1.0, 9.0, size=(8, 8))}
        vrt = self._runtime(blocks)
        vrt.sentinel_check(0, 0)
        blocks[(0, 0)] *= 0.5  # relaxation only ever lowers distances
        vrt.sentinel_check(0, 1)
        assert vrt.counters.get("sentinel_violations", 0) == 0
        vrt.raise_pending()  # no-op

    def test_checksum_mode_samples_nothing(self):
        vrt = VerifyRuntime("checksum", get_backend("reference"), semiring=MIN_PLUS)
        vrt.register_rank(0, {(0, 0): np.ones((4, 4))})
        vrt.sentinel_check(0, 0)
        assert vrt.counters.get("sentinel_samples", 0) == 0


# ---------------------------------------------------------------------------
# Certificate
# ---------------------------------------------------------------------------
class TestCertificate:
    def test_deterministic_across_identical_runs(self, w48):
        a = run(w48, "async", verify="full", fault_seed=7).verification
        b = run(w48, "async", verify="full", fault_seed=7).verification
        assert a == b

    def test_deterministic_under_faults(self, w48):
        plan = ["memflip:rank=0,k=2", "policy:ckpt=2"]
        a = run(w48, "async", verify="full", fault_plan=plan, fault_seed=3).verification
        b = run(w48, "async", verify="full", fault_plan=plan, fault_seed=3).verification
        assert a == b

    def test_residual_audit_flags_corrupt_distances(self, w48, oracle):
        """Feeding the audit a corrupted matrix must fail the
        certificate - this is the end-of-run net under everything
        else."""
        vrt = VerifyRuntime("full", get_backend("reference"), semiring=MIN_PLUS, seed=0)
        bad = oracle.copy()
        # Inflate a random half of the entries: a uniform row/column
        # shift would cancel out of the triangle slack, a random
        # scatter cannot.
        mask = np.random.default_rng(1).random(bad.shape) < 0.5
        bad[mask] += 50.0
        cert = vrt.build_certificate(bad, w48)
        assert not cert["passed"]
        assert (
            cert["audit"]["triangle_violations"] > 0
            or cert["audit"]["sssp_mismatches"] > 0
        )
        good = vrt.build_certificate(oracle, w48)
        assert good["passed"]


# ---------------------------------------------------------------------------
# Error classes and exit codes
# ---------------------------------------------------------------------------
class TestErrors:
    def test_exit_codes(self):
        assert _exit_code_for(SilentCorruptionError("x")) == 10
        assert _exit_code_for(VerificationError("x")) == 11
        assert _exit_code_for(ValidationError("x")) == 3

    def test_verification_error_is_a_validation_error(self):
        assert issubclass(VerificationError, ValidationError)

    def test_silent_corruption_error_carries_location(self):
        exc = SilentCorruptionError("bad tile", rank=2, block=(1, 3), op=7)
        assert (exc.rank, exc.block, exc.op) == (2, (1, 3), 7)
