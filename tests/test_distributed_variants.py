"""Integration tests: every distributed variant against the sequential
oracle (the paper's §5.1 correctness statement), across grid shapes,
graph classes, and block sizes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProcessGrid, apsp
from repro.errors import ConfigurationError, GpuOutOfMemory
from repro.graphs import (
    banded_graph,
    grid_road_network,
    ring_of_cliques,
    scipy_floyd_warshall,
    uniform_random_dense,
)
from repro.machine import SUMMIT, scaled_down
from repro.semiring import INF, MAX_MIN, OR_AND

ALL_VARIANTS = ["baseline", "pipelined", "reordering", "async", "offload"]


def check(w, ref=None, **kw):
    result = apsp(w, **kw)
    ref = scipy_floyd_warshall(w) if ref is None else ref
    mask = np.isfinite(ref)
    assert np.allclose(result.dist[mask], ref[mask])
    assert np.array_equal(np.isinf(result.dist), np.isinf(ref))
    return result


@pytest.mark.parametrize("variant", ALL_VARIANTS)
class TestVariantsAgainstOracle:
    def test_dense_basic(self, variant, dense24):
        check(dense24, variant=variant, block_size=4, n_nodes=2, ranks_per_node=3)

    def test_sparse_with_unreachable(self, variant, sparse30):
        check(sparse30, variant=variant, block_size=5, n_nodes=2, ranks_per_node=2)

    def test_single_rank(self, variant, dense24):
        check(dense24, variant=variant, block_size=6, n_nodes=1, ranks_per_node=1)

    def test_single_node_many_ranks(self, variant, dense24):
        check(dense24, variant=variant, block_size=4, n_nodes=1, ranks_per_node=6)

    def test_nonsquare_grid(self, variant, dense24):
        check(
            dense24,
            variant=variant,
            block_size=4,
            n_nodes=2,
            ranks_per_node=3,
            grid=ProcessGrid(2, 3),
        )

    def test_tall_grid(self, variant, dense24):
        check(
            dense24,
            variant=variant,
            block_size=4,
            n_nodes=2,
            ranks_per_node=3,
            grid=ProcessGrid(3, 2),
        )

    def test_block_size_one(self, variant):
        w = uniform_random_dense(12, seed=9)
        check(w, variant=variant, block_size=1, n_nodes=2, ranks_per_node=2)

    def test_padding_path(self, variant):
        """n not divisible by b: driver pads and crops transparently."""
        w = uniform_random_dense(23, seed=5)
        check(w, variant=variant, block_size=4, n_nodes=2, ranks_per_node=2)

    def test_nb_smaller_than_grid(self, variant):
        """Fewer block rows than process rows: some ranks own nothing
        in some iterations."""
        w = uniform_random_dense(12, seed=13)
        check(w, variant=variant, block_size=4, n_nodes=2, ranks_per_node=4)

    def test_banded_graph_long_chains(self, variant):
        w = banded_graph(32, 2, seed=21)
        check(w, variant=variant, block_size=4, n_nodes=2, ranks_per_node=2)

    def test_road_network(self, variant):
        w = grid_road_network(5, 6, seed=2)
        check(w, variant=variant, block_size=5, n_nodes=2, ranks_per_node=2)

    def test_community_structure(self, variant):
        w = ring_of_cliques(5, 6)
        check(w, variant=variant, block_size=6, n_nodes=3, ranks_per_node=2)

    def test_disconnected_components(self, variant):
        w = np.full((16, 16), INF)
        np.fill_diagonal(w, 0.0)
        w[:8, :8] = uniform_random_dense(8, seed=3)
        w[8:, 8:] = uniform_random_dense(8, seed=4)
        check(w, variant=variant, block_size=4, n_nodes=2, ranks_per_node=2)

    def test_validate_flag(self, variant, dense24):
        res = apsp(
            dense24,
            variant=variant,
            block_size=4,
            n_nodes=2,
            ranks_per_node=2,
            validate=True,
        )
        assert res.dist is not None

    def test_virtual_scaling_does_not_change_result(self, variant, dense24):
        a = apsp(dense24, variant=variant, block_size=4, n_nodes=2, ranks_per_node=2)
        b = apsp(
            dense24,
            variant=variant,
            block_size=4,
            n_nodes=2,
            ranks_per_node=2,
            dim_scale=32.0,
        )
        assert np.allclose(a.dist, b.dist)
        assert b.report.n_virtual == pytest.approx(24 * 32)


class TestVariantSemantics:
    def test_variants_agree_with_each_other(self, sparse30):
        results = [
            apsp(sparse30, variant=v, block_size=5, n_nodes=2, ranks_per_node=2).dist
            for v in ALL_VARIANTS
        ]
        for other in results[1:]:
            assert np.allclose(
                np.where(np.isinf(results[0]), -1, results[0]),
                np.where(np.isinf(other), -1, other),
            )

    def test_boolean_semiring_distributed(self):
        adj = np.zeros((12, 12), dtype=bool)
        rng = np.random.default_rng(0)
        adj[rng.random((12, 12)) < 0.2] = True
        np.fill_diagonal(adj, True)
        res = apsp(
            adj,
            variant="async",
            block_size=4,
            n_nodes=2,
            ranks_per_node=2,
            semiring=OR_AND,
            check_negative_cycles=False,
        )
        from repro.core import blocked_fw

        ref = blocked_fw(adj, 4, semiring=OR_AND, check_negative_cycles=False)
        assert np.array_equal(res.dist, ref)

    def test_bottleneck_semiring_distributed(self):
        rng = np.random.default_rng(1)
        cap = rng.uniform(1, 100, (12, 12))
        np.fill_diagonal(cap, INF)
        res = apsp(
            cap,
            variant="pipelined",
            block_size=3,
            n_nodes=2,
            ranks_per_node=2,
            semiring=MAX_MIN,
            check_negative_cycles=False,
        )
        from repro.core import blocked_fw

        ref = blocked_fw(cap, 3, semiring=MAX_MIN, check_negative_cycles=False)
        assert np.allclose(res.dist, ref)

    def test_diag_on_host(self, dense24):
        res = check(
            dense24,
            variant="baseline",
            block_size=4,
            n_nodes=2,
            ranks_per_node=2,
            diag_on_gpu=False,
        )
        assert res.dist is not None

    def test_offload_stream_counts(self, dense24):
        for s in (1, 2, 4):
            check(
                dense24,
                variant="offload",
                block_size=4,
                n_nodes=2,
                ranks_per_node=2,
                n_streams=s,
            )

    def test_offload_tile_shapes(self, dense24):
        for mx, nx in ((1, 1), (1, 3), (3, 1), (4, 4)):
            check(
                dense24,
                variant="offload",
                block_size=4,
                n_nodes=2,
                ranks_per_node=2,
                mx_blocks=mx,
                nx_blocks=nx,
            )


class TestMemoryWall:
    def test_in_gpu_variant_hits_wall(self):
        """Figure 7's 'Beyond GPU Memory' boundary: the non-offload
        variants raise once the per-rank matrix exceeds HBM."""
        tiny = scaled_down(SUMMIT, hbm_bytes=2 * 1024, gpus_per_node=2)
        w = uniform_random_dense(32, seed=0)
        with pytest.raises(GpuOutOfMemory):
            apsp(w, variant="async", block_size=8, n_nodes=1, ranks_per_node=2,
                 machine=tiny)

    def test_offload_crosses_wall(self):
        """The offload variant solves the same problem on the same
        tiny-HBM machine (matrix lives in host DRAM)."""
        tiny = scaled_down(SUMMIT, hbm_bytes=2 * 1024, gpus_per_node=2)
        w = uniform_random_dense(32, seed=0)
        res = apsp(w, variant="offload", block_size=8, n_nodes=1, ranks_per_node=2,
                   machine=tiny, mx_blocks=1, nx_blocks=1, n_streams=1)
        assert np.allclose(res.dist, scipy_floyd_warshall(w))

    def test_gpu_peak_reported(self, dense24):
        res = apsp(dense24, variant="baseline", block_size=4, n_nodes=2,
                   ranks_per_node=2)
        assert res.report.gpu_peak_bytes > 0

    def test_offload_uses_less_hbm(self, dense24):
        a = apsp(dense24, variant="baseline", block_size=4, n_nodes=2,
                 ranks_per_node=2, dim_scale=1000.0, collect_result=False)
        b = apsp(dense24, variant="offload", block_size=4, n_nodes=2,
                 ranks_per_node=2, dim_scale=1000.0, collect_result=False,
                 mx_blocks=1, nx_blocks=1)
        assert b.report.gpu_peak_bytes < a.report.gpu_peak_bytes


class TestDriverValidation:
    def test_nonsquare_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            apsp(np.zeros((3, 4)))

    def test_grid_size_mismatch(self, dense24):
        with pytest.raises(ConfigurationError):
            apsp(dense24, n_nodes=2, ranks_per_node=2, grid=ProcessGrid(3, 3))

    def test_unknown_variant(self, dense24):
        with pytest.raises(ConfigurationError):
            apsp(dense24, variant="warp-drive")

    def test_hollow_mode_guards(self, dense24):
        with pytest.raises(ConfigurationError):
            apsp(dense24, compute_numerics=False)  # collect_result defaults True

    def test_hollow_mode_runs(self, dense24):
        res = apsp(
            dense24,
            variant="async",
            block_size=4,
            n_nodes=2,
            ranks_per_node=2,
            compute_numerics=False,
            collect_result=False,
        )
        assert res.dist is None
        assert res.report.elapsed > 0

    def test_hollow_matches_full_timing(self, dense24):
        """Hollow mode must not change the simulated schedule."""
        kw = dict(variant="async", block_size=4, n_nodes=2, ranks_per_node=2,
                  dim_scale=512.0)
        full = apsp(dense24, collect_result=False, **kw)
        hollow = apsp(dense24, compute_numerics=False, collect_result=False, **kw)
        assert hollow.report.elapsed == pytest.approx(full.report.elapsed)

    def test_default_block_size(self, dense24):
        res = apsp(dense24, n_nodes=1, ranks_per_node=2)
        assert res.report.block_size >= 1

    def test_placement_node_mismatch(self, dense24):
        from repro.core import tiled_placement

        pl = tiled_placement(ProcessGrid(2, 2), 1, 2)  # 2 nodes
        with pytest.raises(ConfigurationError):
            apsp(dense24, n_nodes=4, ranks_per_node=1, grid=ProcessGrid(2, 2),
                 placement=pl)

    def test_report_fields(self, dense24):
        res = apsp(dense24, variant="async", block_size=4, n_nodes=2,
                   ranks_per_node=2, trace=True)
        r = res.report
        assert r.variant == "async"
        assert r.n_physical == 24
        assert r.n_nodes == 2
        assert r.ranks == 4
        assert r.messages > 0
        assert r.flops == pytest.approx(2 * 24.0**3)
        assert r.flop_rate > 0
        assert r.effective_bandwidth() > 0
        assert "async" in r.summary()
        assert res.tracer is not None and res.tracer.spans
