"""Tests for the serving layer: artifacts, cache, queries, updates.

The oracle discipline throughout: every query answer is compared
bit-exactly against the in-memory ``ApspResult.dist`` (or a rank-1
patched copy of it) that produced the artifact.  Floating-point
equality here is deliberate - the serving layer stores and returns the
solver's bytes, it never re-derives them.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro.errors import ArtifactError, ConfigurationError, NegativeCycleError, QueryError
from repro.graphs import erdos_renyi, uniform_random_dense
from repro.semiring.backends import available_backends
from repro.serve import (
    Artifact,
    BlockCache,
    MemoryArtifact,
    ServeConfig,
    load_artifact,
    save_artifact,
)

CLUSTER = dict(n_nodes=2, ranks_per_node=2)


@pytest.fixture(scope="module")
def solved():
    """One 40-vertex solve shared by the read-only tests."""
    w = erdos_renyi(40, 0.3, seed=3)
    res = repro.solve(w, variant="async", block_size=8, **CLUSTER)
    return w, res


@pytest.fixture()
def artifact_dir(solved, tmp_path):
    w, res = solved
    path = tmp_path / "art"
    res.save(path, block_size=16, graph=w)
    return path


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("block_size", [1, 7, 16, 40, 64])
    def test_roundtrip_bit_exact(self, solved, tmp_path, block_size):
        w, res = solved
        path = tmp_path / f"b{block_size}"
        res.save(path, block_size=block_size, graph=w)
        art = load_artifact(path)
        np.testing.assert_array_equal(art.dist(), res.dist)
        assert art.dist().dtype == res.dist.dtype
        np.testing.assert_array_equal(art.load_graph(), w)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_roundtrip_dtypes(self, tmp_path, dtype):
        dist = uniform_random_dense(20, seed=5).astype(dtype)
        path = tmp_path / "art"
        save_artifact(dist, path, block_size=6)
        art = load_artifact(path)
        assert art.dtype == np.dtype(dtype)
        np.testing.assert_array_equal(art.dist(), dist)

    def test_result_save_returns_artifact(self, solved, tmp_path):
        w, res = solved
        art = res.save(tmp_path / "a", graph=w)
        assert isinstance(art, Artifact)
        assert art.n == 40
        assert art.certificate == res.certificate
        assert art.solve_header["variant"] == "async"

    def test_identical_tiles_are_deduplicated(self, tmp_path):
        # A constant matrix: every off-diagonal tile has identical bytes.
        dist = np.zeros((32, 32))
        art = save_artifact(dist, tmp_path / "a", block_size=8)
        blocks = list((tmp_path / "a" / "blocks").glob("*.blk"))
        assert len(blocks) == 1  # 16 logical tiles, one physical file
        np.testing.assert_array_equal(art.dist(), dist)

    def test_overwrite_refuses_non_artifact_dir(self, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "data.txt").write_text("keep me")
        with pytest.raises(ArtifactError):
            save_artifact(np.zeros((4, 4)), target, overwrite=True)
        assert (target / "data.txt").read_text() == "keep me"

    def test_overwrite_replaces_existing_artifact(self, tmp_path):
        a = np.zeros((4, 4))
        b = np.ones((6, 6))
        save_artifact(a, tmp_path / "a")
        with pytest.raises(ArtifactError):
            save_artifact(b, tmp_path / "a")  # refused without overwrite
        save_artifact(b, tmp_path / "a", overwrite=True)
        np.testing.assert_array_equal(load_artifact(tmp_path / "a").dist(), b)

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_artifact(tmp_path / "nope")
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "manifest.json").write_text("{not json")
        with pytest.raises(ArtifactError):
            load_artifact(bad)

    def test_load_rejects_wrong_version(self, tmp_path):
        save_artifact(np.zeros((4, 4)), tmp_path / "a")
        manifest = json.loads((tmp_path / "a" / "manifest.json").read_text())
        manifest["version"] = 99
        (tmp_path / "a" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="version"):
            load_artifact(tmp_path / "a")


class TestCorruption:
    def test_corrupted_block_is_refused(self, artifact_dir):
        blk = sorted((artifact_dir / "blocks").glob("*.blk"))[0]
        raw = bytearray(blk.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blk.write_bytes(bytes(raw))
        art = load_artifact(artifact_dir)
        with pytest.raises(ArtifactError, match="CRC32"):
            art.dist()

    def test_corruption_refused_through_server(self, artifact_dir):
        blk = sorted((artifact_dir / "blocks").glob("*.blk"))[-1]
        raw = bytearray(blk.read_bytes())
        raw[0] ^= 0x01
        blk.write_bytes(bytes(raw))
        srv = repro.serve(artifact_dir)
        with pytest.raises(ArtifactError):
            srv.submatrix(range(srv.n), range(srv.n))

    def test_missing_block_file_is_refused(self, artifact_dir):
        blk = sorted((artifact_dir / "blocks").glob("*.blk"))[0]
        blk.unlink()
        art = load_artifact(artifact_dir)
        with pytest.raises(ArtifactError):
            art.dist()

    def test_verification_can_be_disabled(self, artifact_dir, solved):
        # verify_blocks=False serves whatever bytes are on disk.
        _, res = solved
        srv = repro.serve(artifact_dir, verify_blocks=False)
        assert srv.distance(0, 39) == res.dist[0, 39]


class TestBlockCache:
    def test_hit_miss_accounting(self):
        cache = BlockCache(1 << 20)
        tile = np.zeros((4, 4))
        loads = []

        def loader():
            loads.append(1)
            return tile

        assert cache.get("a", loader) is tile
        assert cache.get("a", loader) is tile
        assert len(loads) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert cache.stats()["hit_rate"] == 0.5

    def test_lru_eviction_order_and_bytes(self):
        tile_bytes = np.zeros((8, 8)).nbytes  # 512
        cache = BlockCache(tile_bytes * 2)
        a, b, c = (np.zeros((8, 8)) for _ in range(3))
        cache.get("a", lambda: a)
        cache.get("b", lambda: b)
        cache.get("a", lambda: a)  # touch: b is now least recent
        cache.get("c", lambda: c)  # evicts b, not a
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1
        assert cache.resident_bytes == tile_bytes * 2
        cache.get("b", lambda: b)  # evicts a (LRU after the touch)
        assert "a" not in cache
        assert cache.evictions == 2

    def test_oversize_pass_through(self):
        cache = BlockCache(64)
        big = np.zeros((64, 64))
        out = cache.get("big", lambda: big)
        assert out is big
        assert len(cache) == 0
        assert cache.stats()["oversize"] == 1
        assert cache.resident_bytes == 0

    def test_invalidate(self):
        cache = BlockCache(1 << 20)
        cache.get("a", lambda: np.zeros(8))
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.resident_bytes == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            BlockCache(0)
        with pytest.raises(ConfigurationError):
            BlockCache(True)


class TestQueries:
    def test_point_queries_bit_exact(self, artifact_dir, solved):
        _, res = solved
        srv = repro.serve(artifact_dir)
        rng = np.random.default_rng(0)
        for _ in range(50):
            s, t = rng.integers(0, srv.n, size=2)
            assert srv.distance(int(s), int(t)) == res.dist[s, t]

    def test_batch_matches_dist(self, artifact_dir, solved):
        _, res = solved
        srv = repro.serve(artifact_dir)
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, srv.n, size=(200, 2))
        np.testing.assert_array_equal(
            srv.batch(pairs), res.dist[pairs[:, 0], pairs[:, 1]]
        )

    def test_submatrix_matches_dist(self, artifact_dir, solved):
        _, res = solved
        srv = repro.serve(artifact_dir)
        rows, cols = [0, 3, 17, 39], [1, 16, 38]
        np.testing.assert_array_equal(
            srv.submatrix(rows, cols), res.dist[np.ix_(rows, cols)]
        )
        # Full-matrix extraction equals the solver's matrix exactly.
        np.testing.assert_array_equal(
            srv.submatrix(range(srv.n), range(srv.n)), res.dist
        )

    def test_k_nearest_matches_dist(self, artifact_dir, solved):
        _, res = solved
        srv = repro.serve(artifact_dir)
        got = srv.k_nearest(5, 10)
        vals = res.dist[5].copy()
        vals[5] = np.inf
        want = np.lexsort((np.arange(len(vals)), vals))[:10]
        assert [v for v, _ in got] == [int(v) for v in want if np.isfinite(vals[v])][:len(got)]
        for v, d in got:
            assert d == res.dist[5, v]

    def test_k_nearest_ties_break_by_vertex_id(self):
        dist = np.full((6, 6), 2.0)
        np.fill_diagonal(dist, 0.0)
        dist[0, 4] = dist[0, 2] = 1.0  # tie at 1.0; then a 3-way tie at 2.0
        srv = repro.serve(dist)
        assert srv.k_nearest(0, 4) == [(2, 1.0), (4, 1.0), (1, 2.0), (3, 2.0)]

    def test_k_nearest_stops_at_unreachable(self):
        dist = np.array(
            [[0.0, 1.0, np.inf], [np.inf, 0.0, np.inf], [np.inf, np.inf, 0.0]]
        )
        srv = repro.serve(dist)
        assert srv.k_nearest(0, 5) == [(1, 1.0)]
        assert srv.k_nearest(2, 5) == []

    def test_query_errors(self, artifact_dir):
        srv = repro.serve(artifact_dir)
        with pytest.raises(QueryError):
            srv.distance(0, srv.n)
        with pytest.raises(QueryError):
            srv.distance(-1, 0)
        with pytest.raises(QueryError):
            srv.distance(0.5, 1)
        with pytest.raises(QueryError):
            srv.batch(np.zeros((0, 2)))
        with pytest.raises(QueryError):
            srv.batch([[0, 1, 2]])
        with pytest.raises(QueryError):
            srv.k_nearest(0, 0)
        with pytest.raises(QueryError):
            srv.submatrix([], [0])

    def test_cache_counters_through_server(self, artifact_dir):
        srv = repro.serve(artifact_dir)
        srv.distance(0, 0)
        srv.distance(1, 1)  # same 16x16 tile
        stats = srv.cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["resident_blocks"] == 1

    def test_tiny_cache_still_answers_correctly(self, artifact_dir, solved):
        # A cache that can hold a single tile must thrash, not corrupt.
        _, res = solved
        tile_bytes = 16 * 16 * 8
        srv = repro.serve(artifact_dir, cache_bytes=tile_bytes)
        np.testing.assert_array_equal(
            srv.submatrix(range(srv.n), range(srv.n)), res.dist
        )
        assert srv.cache_stats()["evictions"] > 0
        assert srv.cache_stats()["resident_bytes"] <= tile_bytes


class TestAsyncBatch:
    def test_chunked_progress_and_result(self, artifact_dir, solved):
        _, res = solved
        srv = repro.serve(artifact_dir, batch_chunk=3)
        pairs = [(i, (i * 7) % srv.n) for i in range(10)]
        handle = srv.submit_batch(pairs)
        assert handle.status == "pending"
        assert len(handle) == 10
        handle.poll()
        assert handle.answered == 3
        assert handle.status == "running"
        assert handle.wait() == "done"
        np.testing.assert_array_equal(
            handle.result(), [res.dist[s, t] for s, t in pairs]
        )

    def test_result_drives_to_completion(self, artifact_dir, solved):
        _, res = solved
        srv = repro.serve(artifact_dir)
        handle = srv.submit_batch([(0, 1)])
        np.testing.assert_array_equal(handle.result(), [res.dist[0, 1]])
        assert handle.done

    def test_invalid_pairs_fail_at_submit(self, artifact_dir):
        srv = repro.serve(artifact_dir)
        with pytest.raises(QueryError):
            srv.submit_batch([(0, srv.n)])

    def test_handle_is_awaitable(self, artifact_dir, solved):
        import asyncio

        _, res = solved
        srv = repro.serve(artifact_dir)

        async def drive():
            return await srv.submit_batch([(2, 3), (4, 5)])

        out = asyncio.run(drive())
        np.testing.assert_array_equal(out, res.dist[[2, 4], [3, 5]])


class TestBackendsPinned:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_point_queries_bit_identical_per_backend(self, tmp_path, backend):
        """Serving answers must be the solver's bytes for every kernel
        backend, not just the reference one."""
        w = erdos_renyi(24, 0.4, seed=9)
        res = repro.solve(w, variant="async", block_size=8,
                          kernel_backend=backend, **CLUSTER)
        path = tmp_path / backend
        res.save(path, block_size=8, graph=w)
        srv = repro.serve(path)
        for s in range(0, 24, 5):
            for t in range(0, 24, 7):
                assert srv.distance(s, t) == res.dist[s, t]
        np.testing.assert_array_equal(
            srv.submatrix(range(24), range(24)), res.dist
        )


class TestMemoryServing:
    def test_serve_result_directly(self, solved):
        _, res = solved
        srv = repro.serve(res)
        assert srv.distance(0, 1) == res.dist[0, 1]
        assert srv.certificate == res.certificate

    def test_serve_bare_matrix(self):
        dist = uniform_random_dense(12, seed=2)
        srv = repro.serve(dist, block_size=5)
        np.testing.assert_array_equal(
            srv.submatrix(range(12), range(12)), dist
        )

    def test_memory_artifact_updates(self):
        w = erdos_renyi(16, 0.5, seed=4)
        base = repro.serve(MemoryArtifact(
            np.array(repro.solve(w, block_size=4).dist), graph=w))
        assert base.update_edge(0, 9, 1e-4) is True
        assert base.distance(0, 9) == pytest.approx(1e-4)

    def test_serve_rejects_junk(self):
        with pytest.raises(ConfigurationError):
            repro.serve(object())

    def test_closed_server_refuses_queries(self, solved):
        _, res = solved
        with repro.serve(res) as srv:
            srv.distance(0, 1)
        with pytest.raises(ConfigurationError):
            srv.distance(0, 1)


class TestIncremental:
    def _served(self, tmp_path, n=30, seed=6):
        w = erdos_renyi(n, 0.3, seed=seed)
        res = repro.solve(w, variant="async", block_size=8, **CLUSTER)
        path = tmp_path / "art"
        res.save(path, block_size=8, graph=w)
        return w, res, repro.serve(path), path

    def test_decrease_patches_only_dirty_tiles(self, tmp_path):
        w, res, srv, path = self._served(tmp_path)
        assert srv.update_edge(0, 17, 1e-3) is True
        base = res.dist
        expected = np.minimum(base, base[:, 0, None] + (1e-3 + base[None, 17, :]))
        np.testing.assert_array_equal(
            repro.serve(path).submatrix(range(30), range(30)), expected
        )
        stats = srv.stats()["incremental"]
        assert stats["fast_updates"] == 1
        assert stats["recomputes"] == 0
        assert 0 < stats["dirty_blocks"] <= 16

    def test_noop_increase_is_fast(self, tmp_path):
        w, res, srv, path = self._served(tmp_path)
        # Raising an absent edge's weight can't carry any shortest path.
        absent = np.argwhere(np.isinf(w))[0]
        u, v = int(absent[0]), int(absent[1])
        assert srv.update_edge(u, v, 1e6) is True
        np.testing.assert_array_equal(
            repro.serve(path).submatrix(range(30), range(30)), res.dist
        )

    def test_invalidating_increase_reschedules_solve(self, tmp_path):
        w, res, srv, path = self._served(tmp_path)
        # Find an edge that carries some shortest path: cheapest real edge.
        finite = np.isfinite(w) & ~np.eye(len(w), dtype=bool)
        u, v = map(int, np.argwhere(finite)[np.argmin(w[finite])])
        assert srv.update_edge(u, v, 1e5) is False
        srv.close()
        w2 = w.copy()
        w2[u, v] = 1e5
        ref = repro.solve(w2, variant="async", block_size=8, **CLUSTER).dist
        np.testing.assert_array_equal(
            repro.serve(path).submatrix(range(30), range(30)), ref
        )
        assert srv.stats()["incremental"]["recomputes"] == 1

    def test_remove_and_reinsert(self, tmp_path):
        w, res, srv, path = self._served(tmp_path)
        finite = np.isfinite(w) & ~np.eye(len(w), dtype=bool)
        u, v = map(int, np.argwhere(finite)[np.argmin(w[finite])])
        c = float(w[u, v])
        srv.remove_edge(u, v)          # carried shortest paths: re-solve
        srv.insert_edge(u, v, c)       # comes back via the rank-1 patch
        srv.close()
        # Bit-exact oracle: the rank-1 formula over the *same* baseline
        # the patcher saw (the post-removal re-solve).
        w_cut = w.copy()
        w_cut[u, v] = np.inf
        base = repro.solve(w_cut, variant="async", block_size=8, **CLUSTER).dist
        expected = np.minimum(base, base[:, u, None] + (c + base[None, v, :]))
        got = repro.serve(path).submatrix(range(30), range(30))
        np.testing.assert_array_equal(got, expected)
        # ...and ULP-close to a from-scratch solve of the restored graph.
        ref = repro.solve(w, variant="async", block_size=8, **CLUSTER).dist
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_batch_update_coalesces_recomputes(self, tmp_path):
        w, res, srv, path = self._served(tmp_path)
        finite = np.isfinite(w) & ~np.eye(len(w), dtype=bool)
        edges = np.argwhere(finite)[np.argsort(w[finite])[:3]]
        updates = [(int(u), int(v), float(w[u, v]) * 100) for u, v in edges]
        updates.append((0, 17, 1e-3))  # one decrease rides along
        srv.batch_update(updates)
        assert srv.stats()["incremental"]["recomputes"] <= 1
        srv.close()
        w2 = w.copy()
        for u, v, c in updates:
            w2[u, v] = c
        ref = repro.solve(w2, variant="async", block_size=8, **CLUSTER).dist
        np.testing.assert_array_equal(
            repro.serve(path).submatrix(range(30), range(30)), ref
        )

    def test_negative_cycle_refused(self, tmp_path):
        w, res, srv, path = self._served(tmp_path)
        with pytest.raises(NegativeCycleError):
            srv.update_edge(3, 3, -1.0)
        with pytest.raises(NegativeCycleError):
            srv.update_edge(0, 17, -1e6)

    def test_update_requires_graph_payload(self, solved, tmp_path):
        w, res = solved
        path = tmp_path / "nograph"
        res.save(path)  # no graph payload
        srv = repro.serve(path)
        with pytest.raises(ArtifactError):
            srv.update_edge(0, 1, 0.5)

    def test_bad_weights_refused(self, tmp_path):
        _, _, srv, _ = self._served(tmp_path)
        with pytest.raises(QueryError):
            srv.update_edge(0, 1, float("nan"))
        with pytest.raises(QueryError):
            srv.update_edge(0, 1, float("-inf"))


class TestServeConfig:
    def test_explicit_beats_env(self):
        cfg = ServeConfig.from_env(
            {"REPRO_SERVE_CACHE_BYTES": "1024"}, cache_bytes=2048
        )
        assert cfg.effective_cache_bytes == 2048

    def test_env_beats_default(self):
        cfg = ServeConfig.from_env({"REPRO_SERVE_CACHE_BYTES": "1024"})
        assert cfg.cache_bytes == 1024

    def test_default_when_unset(self):
        from repro.serve import DEFAULT_CACHE_BYTES

        cfg = ServeConfig.from_env({})
        assert cfg.cache_bytes is None
        assert cfg.effective_cache_bytes == DEFAULT_CACHE_BYTES

    def test_backend_env_precedence(self):
        cfg = ServeConfig.from_env(
            {"REPRO_SRGEMM_BACKEND": "tiled"}, kernel_backend="reference"
        )
        assert cfg.kernel_backend == "reference"
        assert ServeConfig.from_env(
            {"REPRO_SRGEMM_BACKEND": "tiled"}
        ).kernel_backend == "tiled"

    def test_bad_env_value_rejected(self):
        with pytest.raises(ConfigurationError):
            ServeConfig.from_env({"REPRO_SERVE_CACHE_BYTES": "lots"})
        with pytest.raises(ConfigurationError):
            ServeConfig.from_env({"REPRO_SERVE_CACHE_BYTES": "-5"})

    def test_field_validation(self):
        with pytest.raises(ConfigurationError):
            ServeConfig(cache_bytes=0)
        with pytest.raises(ConfigurationError):
            ServeConfig(cache_bytes=True)
        with pytest.raises(ConfigurationError):
            ServeConfig(batch_chunk=0)
        with pytest.raises(ConfigurationError):
            ServeConfig().replace(nonsense=1)

    def test_frozen(self):
        import dataclasses

        cfg = ServeConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.cache_bytes = 7


class TestObservability:
    def test_metrics_catalog_and_sink(self, artifact_dir, tmp_path):
        out = tmp_path / "metrics.json"
        cfg = ServeConfig(obs=repro.ObsSinks(metrics_out=str(out)))
        with repro.serve(artifact_dir, cfg) as srv:
            srv.distance(0, 1)
            srv.distance(0, 2)
            srv.batch([(0, 1), (2, 3)])
            srv.k_nearest(0, 3)
        payload = json.loads(out.read_text())
        flat = {name: m["value"] for name, m in payload["metrics"].items()}
        assert flat["serve.queries.point"] == 2
        assert flat["serve.queries.batch"] == 1
        assert flat["serve.queries.batch_pairs"] == 2
        assert flat["serve.queries.k_nearest"] == 1
        assert flat["serve.cache.hits"] + flat["serve.cache.misses"] >= 4
        assert payload["serve"]["cache"]["hits"] >= 1

    def test_incremental_metrics(self, tmp_path):
        w = erdos_renyi(16, 0.4, seed=8)
        res = repro.solve(w, block_size=4)
        path = tmp_path / "a"
        res.save(path, block_size=4, graph=w)
        cfg = ServeConfig(obs=repro.ObsSinks(metrics=True))
        srv = repro.serve(path, cfg)
        srv.update_edge(0, 9, 1e-4)
        flat = srv.metrics.flat()
        assert flat["serve.incremental.fast_updates"] == 1
        assert flat["serve.incremental.dirty_blocks"] >= 1

    def test_no_metrics_by_default(self, artifact_dir):
        srv = repro.serve(artifact_dir)
        assert srv.metrics is None


class TestIncrementalExtension:
    """The in-memory IncrementalApsp now honors dtype/backend/metrics."""

    def test_float32_preserved(self):
        from repro.extensions import IncrementalApsp

        w = erdos_renyi(12, 0.5, seed=1).astype(np.float32)
        inc = IncrementalApsp(w, block_size=4)
        assert inc.dist.dtype == np.float32
        assert inc.weights.dtype == np.float32

    def test_backend_is_honored(self):
        from repro.extensions import IncrementalApsp

        w = erdos_renyi(12, 0.5, seed=1)
        ref = IncrementalApsp(w, block_size=4, backend="reference")
        for name in sorted(available_backends()):
            other = IncrementalApsp(w, block_size=4, backend=name)
            if "f32" in name:  # reduced-precision backend, by design
                np.testing.assert_allclose(other.dist, ref.dist, rtol=1e-5)
            else:
                np.testing.assert_array_equal(other.dist, ref.dist)
            other.update_edge(0, 5, 100.0)  # exercise the recompute path

    def test_metrics_counters(self):
        from repro.extensions import IncrementalApsp
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        w = erdos_renyi(12, 0.5, seed=1)
        inc = IncrementalApsp(w, block_size=4, metrics=registry)
        inc.update_edge(0, 5, 1e-4)
        assert registry.flat()["serve.incremental.fast_updates"] == 1
