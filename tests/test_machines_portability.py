"""Tests for the non-Summit machine presets (the paper's §7 claim that
the models and algorithms port to other accelerated architectures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import apsp
from repro.graphs import scipy_floyd_warshall
from repro.machine import (
    FRONTIER_LIKE,
    MACHINES,
    SUMMIT,
    WORKSTATION,
    CostModel,
)
from repro.perfmodel import min_offload_block_size, recommend_streams, tune


class TestPresets:
    def test_registry(self):
        assert set(MACHINES) == {"summit", "frontier-like", "workstation"}

    def test_frontier_outmuscles_summit(self):
        assert FRONTIER_LIKE.node_peak_flops() > 3 * SUMMIT.node_peak_flops()
        assert FRONTIER_LIKE.node.nic_bw > SUMMIT.node.nic_bw

    def test_workstation_single_node(self):
        assert WORKSTATION.max_nodes == 1


class TestModelPortability:
    def test_eq5_floor_tracks_link_speed(self):
        """The offload block-size floor moves with the host link: a
        PCIe box needs much larger blocks than NVLink'd Summit."""
        floor = {m.name: min_offload_block_size(CostModel(m))
                 for m in (SUMMIT, FRONTIER_LIKE, WORKSTATION)}
        assert floor["workstation"] > 3 * floor["summit"]
        # Frontier's faster link is offset by its faster kernels: the
        # floor stays in the same few-hundred range.
        assert 0.5 * floor["summit"] < floor["frontier-like"] < 2 * floor["summit"]

    def test_tuner_runs_on_every_machine(self):
        for m in (SUMMIT, FRONTIER_LIKE, WORKSTATION):
            nodes = min(4, m.max_nodes)
            rep = tune(CostModel(m), 50_000, nodes, 4)
            assert rep.predicted.total > 0

    def test_frontier_predicted_faster_than_summit(self):
        t_s = tune(CostModel(SUMMIT), 300_000, 64, 12).predicted.total
        t_f = tune(CostModel(FRONTIER_LIKE), 300_000, 64, 16).predicted.total
        assert t_f < t_s

    def test_stream_recommendation_varies(self):
        # On the PCIe box transfers are slow: at small blocks offload
        # needs every stream; Summit saturates earlier.
        s_ws = recommend_streams(CostModel(WORKSTATION), 20_000, 20_000, 512)
        assert 1 <= s_ws <= 3


class TestEndToEndOnOtherMachines:
    @pytest.mark.parametrize("machine", [FRONTIER_LIKE, WORKSTATION])
    def test_all_variants_correct(self, machine, dense24):
        ref = scipy_floyd_warshall(dense24)
        nodes = min(2, machine.max_nodes)
        for variant in ("baseline", "async", "offload"):
            res = apsp(dense24, variant=variant, block_size=4, n_nodes=nodes,
                       ranks_per_node=4, machine=machine)
            assert np.allclose(res.dist, ref), (machine.name, variant)

    def test_frontier_simulated_faster_than_summit(self):
        w = np.zeros((48, 48), dtype=np.float32)
        kw = dict(block_size=1, n_nodes=4, ranks_per_node=4, dim_scale=768.0,
                  compute_numerics=False, collect_result=False)
        t_s = apsp(w, variant="async", machine=SUMMIT, **kw).report.elapsed
        t_f = apsp(w, variant="async", machine=FRONTIER_LIKE, **kw).report.elapsed
        assert t_f < t_s

    def test_workstation_peak_memory_wall_lower(self):
        """24 GB HBM per GPU but only one node: the wall is reachable."""
        from repro.errors import GpuOutOfMemory

        w = np.zeros((192, 192), dtype=np.float32)
        # n = 196,608 virtual: the per-rank local matrix (38.7 GB)
        # exceeds the 24 GB cards, while the four ranks together
        # (155 GB) still fit the 256 GB host DRAM.
        with pytest.raises(GpuOutOfMemory):
            apsp(w, variant="async", block_size=1, n_nodes=1, ranks_per_node=4,
                 machine=WORKSTATION, dim_scale=1024.0,
                 compute_numerics=False, collect_result=False)
        # Offload still goes through (panels + tiles only on the GPU).
        res = apsp(w, variant="offload", block_size=1, n_nodes=1, ranks_per_node=4,
                   machine=WORKSTATION, dim_scale=1024.0,
                   compute_numerics=False, collect_result=False,
                   mx_blocks=8, nx_blocks=8)
        assert res.report.elapsed > 0
