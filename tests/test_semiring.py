"""Tests for the semiring algebra, kernels and closures, including
property-based tests of the algebraic laws the algorithms rely on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import NegativeCycleError
from repro.semiring import (
    INF,
    MAX_MIN,
    MAX_PLUS,
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    SEMIRINGS,
    closure_by_squaring,
    eltwise_plus,
    floyd_warshall,
    fw_inplace,
    panel_col_update,
    panel_row_update,
    srgemm,
    srgemm_accumulate,
    srgemm_flops,
    squaring_steps,
    weight_matrix_is_valid,
)
from repro.semiring.reference import naive_floyd_warshall, naive_srgemm


def finite_matrices(max_side=6):
    side = st.integers(1, max_side)
    return side.flatmap(
        lambda n: hnp.arrays(
            np.float64,
            (n, n),
            elements=st.floats(0, 50, allow_nan=False, allow_infinity=False),
        )
    )


class TestSemiringDefinitions:
    def test_registry(self):
        assert set(SEMIRINGS) == {
            "min_plus",
            "max_plus",
            "max_min",
            "min_max",
            "or_and",
            "plus_times",
        }

    def test_minplus_identities(self):
        sr = MIN_PLUS
        assert sr.plus(3.0, sr.zero) == 3.0
        assert sr.times(3.0, sr.one) == 3.0
        assert sr.times(3.0, sr.zero) == INF  # zero annihilates

    def test_eye(self):
        eye = MIN_PLUS.eye(3)
        assert np.all(np.diagonal(eye) == 0.0)
        assert np.all(eye[~np.eye(3, dtype=bool)] == INF)

    def test_zeros(self):
        z = MIN_PLUS.zeros((2, 3))
        assert z.shape == (2, 3)
        assert np.all(np.isinf(z))

    def test_boolean_eye(self):
        eye = OR_AND.eye(2)
        assert eye.dtype == np.bool_
        assert eye[0, 0] and not eye[0, 1]

    def test_plus_reduce(self):
        arr = np.array([[1.0, 5.0], [3.0, 2.0]])
        assert np.array_equal(MIN_PLUS.plus_reduce(arr, axis=0), [1.0, 2.0])
        assert np.array_equal(MAX_PLUS.plus_reduce(arr, axis=1), [5.0, 3.0])

    def test_weight_matrix_validation(self):
        good = np.array([[0.0, 1.0], [INF, 0.0]])
        assert weight_matrix_is_valid(good)
        assert not weight_matrix_is_valid(np.zeros((2, 3)))
        assert not weight_matrix_is_valid(np.array([[0.0, np.nan], [1.0, 0.0]]))
        assert not weight_matrix_is_valid(np.array([[0.0, -INF], [1.0, 0.0]]))


class TestSrgemm:
    def test_flops_convention(self):
        assert srgemm_flops(2, 3, 4) == 48

    @pytest.mark.parametrize("m,k,n", [(1, 1, 1), (3, 5, 2), (8, 8, 8), (2, 7, 9)])
    def test_matches_naive(self, rng, m, k, n):
        a = rng.uniform(0, 10, (m, k))
        b = rng.uniform(0, 10, (k, n))
        assert np.allclose(srgemm(a, b), naive_srgemm(a, b))

    @pytest.mark.parametrize("chunk", [1, 2, 3, 64])
    def test_chunking_invariant(self, rng, chunk):
        a = rng.uniform(0, 10, (5, 7))
        b = rng.uniform(0, 10, (7, 4))
        assert np.allclose(srgemm(a, b, k_chunk=chunk), srgemm(a, b))

    def test_with_infinities(self):
        a = np.array([[0.0, INF], [1.0, 2.0]])
        b = np.array([[5.0, INF], [1.0, 0.0]])
        out = srgemm(a, b)
        assert out[0, 0] == 5.0
        assert out[0, 1] == INF
        assert out[1, 1] == 2.0

    def test_plus_times_matches_matmul(self, rng):
        a = rng.uniform(0, 1, (4, 6))
        b = rng.uniform(0, 1, (6, 5))
        assert np.allclose(srgemm(a, b, PLUS_TIMES), a @ b)

    @pytest.mark.parametrize("name", ["max_plus", "max_min", "min_max"])
    def test_other_semirings_match_naive(self, rng, name):
        sr = SEMIRINGS[name]
        a = rng.uniform(0, 10, (4, 5))
        b = rng.uniform(0, 10, (5, 3))
        assert np.allclose(srgemm(a, b, sr), naive_srgemm(a, b, sr))

    def test_boolean_semiring(self):
        a = np.array([[True, False], [False, True]])
        b = np.array([[False, True], [True, False]])
        out = srgemm(a, b, OR_AND)
        assert out.dtype == np.bool_
        assert np.array_equal(out, a @ b)  # boolean matmul

    def test_accumulate_in_place(self, rng):
        a = rng.uniform(0, 10, (3, 4))
        b = rng.uniform(0, 10, (4, 3))
        c = rng.uniform(0, 10, (3, 3))
        expected = np.minimum(c, srgemm(a, b))
        got = srgemm_accumulate(c, a, b)
        assert got is c
        assert np.allclose(c, expected)

    def test_shape_errors(self, rng):
        with pytest.raises(ValueError):
            srgemm(rng.uniform(0, 1, (2, 3)), rng.uniform(0, 1, (4, 2)))
        with pytest.raises(ValueError):
            srgemm(rng.uniform(0, 1, 3), rng.uniform(0, 1, (3, 2)))
        with pytest.raises(ValueError):
            srgemm_accumulate(np.zeros((2, 2)), np.zeros((2, 3)), np.zeros((3, 3)))

    def test_empty_inner_dimension(self):
        out = srgemm(np.zeros((2, 0)), np.zeros((0, 3)))
        assert out.shape == (2, 3)
        assert np.all(np.isinf(out))

    @given(finite_matrices())
    @settings(max_examples=25, deadline=None)
    def test_identity_property(self, a):
        """A ⊗ I = A over (min,+)."""
        eye = MIN_PLUS.eye(a.shape[0])
        assert np.allclose(srgemm(a, eye), a)
        assert np.allclose(srgemm(eye, a), a)

    @given(finite_matrices(4))
    @settings(max_examples=25, deadline=None)
    def test_associativity_property(self, a):
        """(A ⊗ A) ⊗ A = A ⊗ (A ⊗ A)."""
        left = srgemm(srgemm(a, a), a)
        right = srgemm(a, srgemm(a, a))
        assert np.allclose(left, right)


class TestPanelUpdates:
    def test_row_update_formula(self, rng):
        diag = rng.uniform(0, 5, (3, 3))
        panel = rng.uniform(0, 5, (3, 7))
        expected = np.minimum(panel, srgemm(diag, panel))
        got = panel_row_update(panel.copy(), diag)
        assert np.allclose(got, expected)

    def test_col_update_formula(self, rng):
        diag = rng.uniform(0, 5, (3, 3))
        panel = rng.uniform(0, 5, (7, 3))
        expected = np.minimum(panel, srgemm(panel, diag))
        got = panel_col_update(panel.copy(), diag)
        assert np.allclose(got, expected)

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            panel_row_update(rng.uniform(0, 1, (3, 7)), rng.uniform(0, 1, (4, 4)))
        with pytest.raises(ValueError):
            panel_col_update(rng.uniform(0, 1, (7, 3)), rng.uniform(0, 1, (4, 4)))

    def test_eltwise_plus(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        assert np.array_equal(eltwise_plus(a, b), [1.0, 2.0])


class TestClosure:
    def test_fw_matches_naive(self, dense24):
        assert np.allclose(floyd_warshall(dense24), naive_floyd_warshall(dense24))

    def test_fw_matches_scipy(self, sparse30):
        from repro.graphs import scipy_floyd_warshall

        assert np.allclose(floyd_warshall(sparse30), scipy_floyd_warshall(sparse30))

    def test_fw_inplace_returns_same_array(self, dense24):
        arr = dense24.copy()
        assert fw_inplace(arr) is arr

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            fw_inplace(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            closure_by_squaring(np.zeros((2, 3)))

    def test_squaring_steps(self):
        assert squaring_steps(1) == 0
        assert squaring_steps(2) == 1
        assert squaring_steps(3) == 1
        assert squaring_steps(5) == 2
        assert squaring_steps(768) == 10

    def test_squaring_equals_fw_on_zero_diagonal(self, dense24):
        fw = floyd_warshall(dense24)
        sq = closure_by_squaring(dense24)
        assert np.allclose(fw, sq)

    def test_squaring_includes_identity(self):
        """Even with a nonzero diagonal, squaring yields the reflexive
        closure (diagonal <= 0 contribution from I)."""
        w = np.array([[5.0, 1.0], [1.0, 5.0]])
        out = closure_by_squaring(w)
        assert np.allclose(np.diagonal(out), 0.0)

    def test_squaring_rejects_nonidempotent(self):
        with pytest.raises(ValueError):
            closure_by_squaring(np.ones((2, 2)), semiring=PLUS_TIMES)

    def test_extra_squaring_steps_harmless(self, dense24):
        base = closure_by_squaring(dense24)
        more = closure_by_squaring(dense24, steps=squaring_steps(24) + 3)
        assert np.allclose(base, more)

    def test_negative_cycle_detection(self):
        w = np.array(
            [[0.0, 1.0, INF], [INF, 0.0, -5.0], [2.0, INF, 0.0]]
        )
        with pytest.raises(NegativeCycleError) as exc:
            floyd_warshall(w)
        assert exc.value.value < 0

    def test_negative_edges_without_cycle_ok(self):
        w = np.array([[0.0, -1.0, INF], [INF, 0.0, -2.0], [INF, INF, 0.0]])
        dist = floyd_warshall(w)
        assert dist[0, 2] == -3.0

    def test_disconnected_components(self):
        w = np.full((4, 4), INF)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = w[1, 0] = 1.0
        w[2, 3] = w[3, 2] = 2.0
        dist = floyd_warshall(w)
        assert dist[0, 1] == 1.0
        assert dist[0, 2] == INF

    def test_max_min_bottleneck(self):
        """Bottleneck closure: widest-path capacities."""
        cap = np.array(
            [[INF, 3.0, -INF], [-INF, INF, 5.0], [-INF, -INF, INF]]
        )
        out = fw_inplace(cap.copy(), semiring=MAX_MIN)
        assert out[0, 2] == 3.0  # bottleneck of 0->1->2 is min(3, 5)

    @given(finite_matrices(5))
    @settings(max_examples=20, deadline=None)
    def test_fw_idempotent_property(self, w):
        """FW(FW(A)) = FW(A): the closure is a fixed point."""
        np.fill_diagonal(w, 0.0)
        once = floyd_warshall(w, check_negative_cycles=False)
        twice = floyd_warshall(once, check_negative_cycles=False)
        assert np.allclose(once, twice)

    @given(finite_matrices(5), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_fw_permutation_equivariant_property(self, w, seed):
        """Relabeling vertices commutes with APSP."""
        np.fill_diagonal(w, 0.0)
        n = w.shape[0]
        perm = np.random.default_rng(seed).permutation(n)
        direct = floyd_warshall(w, check_negative_cycles=False)[np.ix_(perm, perm)]
        relabeled = floyd_warshall(w[np.ix_(perm, perm)], check_negative_cycles=False)
        assert np.allclose(direct, relabeled)


class TestDivideAndConquer:
    """R-Kleene: the recursive closure behind the communication-avoiding
    2.5D algorithms in the paper's related work."""

    @pytest.mark.parametrize("base", [1, 3, 8, 64])
    def test_matches_fw(self, sparse30, base):
        from repro.semiring import dc_floyd_warshall

        got = dc_floyd_warshall(sparse30, base_size=base)
        ref = floyd_warshall(sparse30)
        assert np.allclose(got, ref, equal_nan=True)

    def test_odd_sizes(self, rng):
        from repro.semiring import dc_floyd_warshall

        for n in (5, 17, 31):
            w = rng.uniform(1, 9, (n, n))
            np.fill_diagonal(w, 0.0)
            assert np.allclose(dc_floyd_warshall(w, base_size=4), floyd_warshall(w))

    def test_other_semirings(self, rng):
        from repro.semiring import dc_floyd_warshall

        cap = rng.uniform(1, 100, (12, 12))
        np.fill_diagonal(cap, INF)
        got = dc_floyd_warshall(cap, base_size=3, semiring=MAX_MIN,
                                check_negative_cycles=False)
        ref = fw_inplace(np.array(cap), semiring=MAX_MIN)
        assert np.allclose(got, ref)

    def test_negative_cycle_detected(self):
        from repro.semiring import dc_floyd_warshall

        w = np.array([[0.0, 1.0], [-3.0, 0.0]])
        with pytest.raises(NegativeCycleError):
            dc_floyd_warshall(w, base_size=1)

    def test_validation(self):
        from repro.semiring import dc_floyd_warshall

        with pytest.raises(ValueError):
            dc_floyd_warshall(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            dc_floyd_warshall(np.zeros((2, 2)), base_size=0)

    @given(finite_matrices(6))
    @settings(max_examples=20, deadline=None)
    def test_property_equals_fw(self, w):
        from repro.semiring import dc_floyd_warshall

        np.fill_diagonal(w, 0.0)
        assert np.allclose(
            dc_floyd_warshall(w, base_size=2, check_negative_cycles=False),
            floyd_warshall(w, check_negative_cycles=False),
        )
