"""Tests for block-cyclic distribution and the sequential blocked FW."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProcessGrid, blocked_fw, collect, distribute, pad_to_blocks
from repro.core.distribution import block_slice, local_matrix_elems
from repro.errors import ConfigurationError, NegativeCycleError
from repro.graphs import (
    banded_graph,
    erdos_renyi,
    ring_of_cliques,
    scipy_floyd_warshall,
    uniform_random_dense,
)
from repro.semiring import INF, MAX_MIN, OR_AND, floyd_warshall
from repro.semiring.reference import naive_blocked_fw


class TestPadding:
    def test_no_padding_needed(self, dense24):
        padded, n = pad_to_blocks(dense24, 8)
        assert padded is dense24
        assert n == 24

    def test_padding_isolates_new_vertices(self):
        w = uniform_random_dense(10, seed=3)
        padded, n = pad_to_blocks(w, 4)
        assert padded.shape == (12, 12)
        assert n == 10
        assert np.all(np.isinf(padded[10:, :10]))
        assert np.all(np.isinf(padded[:10, 10:]))
        assert padded[10, 10] == 0.0 and padded[11, 11] == 0.0

    def test_padding_preserves_distances(self):
        w = uniform_random_dense(10, seed=3)
        padded, n = pad_to_blocks(w, 4)
        ref = floyd_warshall(w)
        full = floyd_warshall(padded)
        assert np.allclose(full[:n, :n], ref)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            pad_to_blocks(np.zeros((2, 3)), 2)
        with pytest.raises(ConfigurationError):
            pad_to_blocks(np.zeros((4, 4)), 0)


class TestDistributeCollect:
    def test_roundtrip(self, dense24):
        g = ProcessGrid(2, 3)
        parts = distribute(dense24, 4, g)
        assert np.allclose(collect(parts, 24, 4, g), dense24)

    def test_blocks_are_copies(self, dense24):
        g = ProcessGrid(2, 2)
        parts = distribute(dense24, 6, g)
        parts[0][(0, 0)][:] = -1
        assert dense24[0, 0] == 0.0

    def test_ownership_respected(self, dense24):
        g = ProcessGrid(2, 3)
        parts = distribute(dense24, 4, g)
        for rank, blocks in enumerate(parts):
            for (bi, bj) in blocks:
                assert g.owner(bi, bj) == rank

    def test_indivisible_rejected(self, dense24):
        with pytest.raises(ConfigurationError):
            distribute(dense24, 5, ProcessGrid(2, 2))

    def test_collect_crops_padding(self):
        w = uniform_random_dense(10, seed=1)
        padded, n = pad_to_blocks(w, 4)
        g = ProcessGrid(2, 2)
        parts = distribute(padded, 4, g)
        assert collect(parts, n, 4, g).shape == (10, 10)

    def test_collect_detects_misplaced_block(self, dense24):
        g = ProcessGrid(2, 2)
        parts = distribute(dense24, 6, g)
        blk = parts[0].pop((0, 0))
        parts[1][(0, 0)] = blk  # wrong owner
        with pytest.raises(ConfigurationError):
            collect(parts, 24, 6, g)

    def test_collect_detects_missing_block(self, dense24):
        g = ProcessGrid(2, 2)
        parts = distribute(dense24, 6, g)
        parts[0].pop((0, 0))
        with pytest.raises(ConfigurationError):
            collect(parts, 24, 6, g)

    def test_collect_accepts_mapping(self, dense24):
        g = ProcessGrid(2, 2)
        parts = distribute(dense24, 6, g)
        as_map = {r: parts[r] for r in range(4)}
        assert np.allclose(collect(as_map, 24, 6, g), dense24)

    def test_block_slice(self):
        rs, cs = block_slice(4, 1, 2)
        assert (rs.start, rs.stop) == (4, 8)
        assert (cs.start, cs.stop) == (8, 12)

    def test_local_matrix_elems(self):
        g = ProcessGrid(2, 3)
        total = sum(local_matrix_elems(r, 6, 4, g) for r in range(g.size))
        assert total == (6 * 4) ** 2

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3), st.integers(4, 20))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, pr, pc, b, n):
        w = np.arange(float(n * n)).reshape(n, n)
        padded, n0 = pad_to_blocks(w, b)
        g = ProcessGrid(pr, pc)
        parts = distribute(padded, b, g)
        assert np.allclose(collect(parts, n0, b, g), w)


class TestBlockedFw:
    @pytest.mark.parametrize("b", [1, 3, 5, 8, 24, 30])
    def test_matches_scipy(self, dense24, b):
        assert np.allclose(blocked_fw(dense24, b), scipy_floyd_warshall(dense24))

    @pytest.mark.parametrize("b", [4, 7])
    def test_sparse_with_unreachable(self, sparse30, b):
        got = blocked_fw(sparse30, b)
        ref = scipy_floyd_warshall(sparse30)
        mask = np.isfinite(ref)
        assert np.allclose(got[mask], ref[mask])
        assert np.array_equal(np.isinf(got), np.isinf(ref))

    def test_matches_naive_blocked(self, dense24):
        assert np.allclose(blocked_fw(dense24, 8), naive_blocked_fw(dense24, 8))

    def test_diag_via_squaring_equivalent(self, dense24):
        a = blocked_fw(dense24, 6, diag_via_squaring=False)
        b = blocked_fw(dense24, 6, diag_via_squaring=True)
        assert np.allclose(a, b)

    def test_banded_long_paths(self):
        w = banded_graph(40, 2, seed=5)
        assert np.allclose(blocked_fw(w, 8), scipy_floyd_warshall(w))

    def test_ring_of_cliques(self):
        w = ring_of_cliques(4, 5)
        assert np.allclose(blocked_fw(w, 4), scipy_floyd_warshall(w))

    def test_negative_cycle_detected(self):
        w = np.array([[0.0, 1.0], [-3.0, 0.0]])
        with pytest.raises(NegativeCycleError):
            blocked_fw(w, 1)

    def test_boolean_transitive_closure(self):
        """Blocked FW over the (or, and) semiring computes reachability."""
        adj = np.zeros((6, 6), dtype=bool)
        adj[0, 1] = adj[1, 2] = adj[3, 4] = True
        np.fill_diagonal(adj, True)
        reach = blocked_fw(adj, 2, semiring=OR_AND, check_negative_cycles=False)
        assert reach[0, 2] and not reach[0, 3] and reach[3, 4]

    def test_bottleneck_semiring(self):
        cap = np.full((4, 4), -INF)
        np.fill_diagonal(cap, INF)
        cap[0, 1], cap[1, 2], cap[0, 2] = 10.0, 4.0, 3.0
        out = blocked_fw(cap, 2, semiring=MAX_MIN, check_negative_cycles=False)
        assert out[0, 2] == 4.0  # widest path 0->1->2

    def test_block_larger_than_matrix(self, dense24):
        assert np.allclose(blocked_fw(dense24, 64), scipy_floyd_warshall(dense24))

    def test_nonsquare_rejected(self):
        with pytest.raises(ConfigurationError):
            blocked_fw(np.zeros((3, 4)), 2)

    @given(st.integers(2, 16), st.integers(1, 6), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_blocked_equals_unblocked_property(self, n, b, seed):
        w = erdos_renyi(n, 0.4, seed=seed)
        assert np.allclose(
            blocked_fw(w, min(b, n)), floyd_warshall(w), equal_nan=True
        )
