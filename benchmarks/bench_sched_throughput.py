"""Multi-tenant scheduler throughput: shared cluster vs one-at-a-time.

The point of the job runtime (repro/sched/) is that a fleet running N
jobs *concurrently* finishes the mix sooner and keeps its GPUs busier
than the same fleet running the same jobs back to back - admission
packs jobs whose memory demands coexist, and fair-share arbitration
interleaves their GPU/NIC use.  This bench runs the fixed-seed 8-job
mixed-priority mix both ways on a 2-node Summit fleet (hollow mode,
paper block scale) and measures the difference.

Outputs:

* ``benchmarks/results/sched_throughput.txt`` - human-readable table;
* ``benchmarks/results/BENCH_sched.json`` - machine-readable makespan,
  jobs/min, fleet utilization and per-job latency percentiles for both
  modes (the CI ``sched`` job asserts on this file).

Shape assertions: every job completes in both modes, the concurrent
mix beats serial on makespan, and concurrent fleet utilization beats
the serial (single-job) baseline - the acceptance criterion of the
scheduler tentpole.
"""

from __future__ import annotations

import json

import numpy as np
from common import B_VIRT, RESULTS_DIR, write_table

from repro.sched import ClusterScheduler

SEED = 7
N_NODES = 2
N_JOBS = 8


def job_mix(seed: int = SEED) -> list[dict]:
    """The fixed-seed mixed-priority mix: varied shapes, priorities,
    weights and arrivals, all hollow at the paper's block scale."""
    rng = np.random.RandomState(seed)
    jobs = []
    for i in range(N_JOBS):
        nb = int(rng.choice([8, 10, 12, 14]))
        n_nodes = int(rng.choice([1, 2]))
        jobs.append(dict(
            name=f"tenant{i}",
            nb=nb,
            priority=int(rng.randint(0, 3)),
            weight=float(rng.choice([0.5, 1.0, 2.0])),
            arrival=float(rng.uniform(0.0, 0.05)),
            config=dict(
                variant=str(rng.choice(["async", "pipelined", "baseline"])),
                block_size=1,
                n_nodes=n_nodes,
                ranks_per_node=int(rng.choice([2, 3, 4])),
                dim_scale=B_VIRT,
                compute_numerics=False,
                collect=False,
                check_negative_cycles=False,
            ),
        ))
    return jobs


def _submit(sched: ClusterScheduler, job: dict, serial: bool):
    return sched.submit(
        np.zeros((job["nb"], job["nb"]), dtype=np.float32),
        name=job["name"],
        priority=0 if serial else job["priority"],
        weight=1.0 if serial else job["weight"],
        arrival=0.0 if serial else job["arrival"],
        **job["config"],
    )


def run_serial(jobs: list[dict]) -> dict:
    """One-job-at-a-time baseline: a fresh fleet per job (the pre-sched
    engine's model), utilization = busy / (gpus x summed makespan)."""
    total_makespan = 0.0
    total_busy = 0.0
    n_gpus = None
    for job in jobs:
        sched = ClusterScheduler(n_nodes=N_NODES, dim_scale=B_VIRT)
        handle = _submit(sched, job, serial=True)
        sched.run()
        assert handle.report().status == "done", handle.report()
        flat = sched.fleet_metrics().flat()
        total_makespan += flat["fleet.makespan"]
        total_busy += flat["fleet.gpu.busy_seconds"]
        n_gpus = len(sched.cluster.nodes) * sched.machine.node.gpus_per_node
    return {
        "makespan": total_makespan,
        "gpu_utilization": total_busy / (n_gpus * total_makespan),
        "jobs_per_minute": 60.0 * len(jobs) / total_makespan,
    }


def run_concurrent(jobs: list[dict]) -> dict:
    sched = ClusterScheduler(n_nodes=N_NODES, dim_scale=B_VIRT)
    handles = [_submit(sched, job, serial=False) for job in jobs]
    reports = sched.run()
    assert all(r.status == "done" for r in reports), reports
    assert len(handles) == len(jobs)
    flat = sched.fleet_metrics().flat()
    return {
        "makespan": flat["fleet.makespan"],
        "gpu_utilization": flat["fleet.gpu.utilization"],
        "jobs_per_minute": 60.0 * len(jobs) / flat["fleet.makespan"],
        "latency_p50": flat["fleet.job.latency.p50"],
        "latency_p99": flat["fleet.job.latency.p99"],
        "queue_wait_p50": flat["fleet.job.queue_wait.p50"],
        "queue_wait_p99": flat["fleet.job.queue_wait.p99"],
        "queued": flat.get("fleet.jobs.queued", 0.0),
    }


def run_both() -> dict:
    jobs = job_mix()
    return {"serial": run_serial(jobs), "concurrent": run_concurrent(jobs)}


def test_sched_throughput(benchmark):
    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    serial, conc = out["serial"], out["concurrent"]

    rows = [
        ["serial (1 job/fleet)", f"{serial['makespan']:.3f}",
         f"{serial['jobs_per_minute']:.0f}", f"{serial['gpu_utilization']:.1%}",
         "-", "-"],
        ["concurrent (shared)", f"{conc['makespan']:.3f}",
         f"{conc['jobs_per_minute']:.0f}", f"{conc['gpu_utilization']:.1%}",
         f"{conc['latency_p50']:.3f}", f"{conc['latency_p99']:.3f}"],
    ]
    write_table(
        "sched_throughput",
        f"Scheduler throughput: {N_JOBS}-job mixed-priority mix (seed {SEED}) "
        f"on {N_NODES} Summit nodes, simulated seconds",
        ["mode", "makespan s", "jobs/min", "GPU util", "lat p50", "lat p99"],
        rows,
    )
    payload = {
        "bench": "sched_throughput",
        "seed": SEED,
        "n_jobs": N_JOBS,
        "n_nodes": N_NODES,
        "serial": serial,
        "concurrent": conc,
        "speedup": serial["makespan"] / conc["makespan"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sched.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Shape: sharing the fleet must beat running the same jobs alone.
    assert conc["makespan"] < serial["makespan"]
    assert conc["gpu_utilization"] > serial["gpu_utilization"]
    assert conc["latency_p99"] >= conc["latency_p50"] > 0.0
