"""Ablation: SrGemm kernel backend micro-benchmark.

Unlike the figure-reproduction sweeps, this one measures *real* kernel
throughput (wall clock, not the simulator): the same fused
``C ← C ⊕ A ⊗ B`` update at the block sizes the paper's Figure 5
sweeps, per registered backend, plus the phase-specialized
``srgemm_outer`` entry point the bulk of a solve actually dispatches
through.  It documents the backend ladder: the ``reference`` broadcast
kernel materializes an ``(m, k_chunk, n)`` slab and reduces it; the
``tensor`` backend keeps the formulation but reuses buffers; ``tiled``
bounds a rank-1 scratch by the byte budget; and the compiled family
(``cnative`` via the system C compiler, ``compiled``/``compiled-ms``
via numba when installed) fuses the triple loop to native code.

Outputs:

* ``benchmarks/results/ablation_kernel_backends.txt`` - human table;
* ``benchmarks/results/BENCH_kernels.json`` - machine-readable
  per-backend GF/s by block size, so the perf trajectory is trackable
  across PRs.

The shape assertions are the acceptance criteria of the backend work:
tiled >= reference at b=256, and - whenever a compiled-family backend
is available - best available >= 10x reference at b=256.
"""

from __future__ import annotations

import json
import time

import numpy as np
from common import RESULTS_DIR, write_table

from repro.semiring import MIN_PLUS, srgemm_flops
from repro.semiring.backends import available_backends, get_backend

BLOCKS = (64, 128, 256)
REPEATS = 3
#: Backends with a natively-compiled inner loop; when any is available
#: the >=10x-over-reference acceptance criterion is enforced.
COMPILED_FAMILY = ("cnative", "compiled", "compiled-ms", "cupy")


def _bench_entry(backend, entry: str, b: int, rng: np.random.Generator) -> float:
    """Best-of-REPEATS GF/s for one b x b x b update through ``entry``."""
    a = rng.uniform(0.0, 10.0, (b, b))
    bb = rng.uniform(0.0, 10.0, (b, b))
    c = rng.uniform(0.0, 10.0, (b, b))
    fn = getattr(backend, entry)
    fn(c.copy(), a, bb, semiring=MIN_PLUS)  # warm-up (JIT/compile/cache)
    best = float("inf")
    for _ in range(REPEATS):
        work = c.copy()
        t0 = time.perf_counter()
        fn(work, a, bb, semiring=MIN_PLUS)
        best = min(best, time.perf_counter() - t0)
    return srgemm_flops(b, b, b) / best / 1e9


def run_sweep() -> dict:
    """{(name, b): fused GF/s} plus {(name+'#outer', b): outer GF/s}."""
    rng = np.random.default_rng(0)
    rates: dict[tuple[str, int], float] = {}
    for name in sorted(available_backends()):
        backend = get_backend(name)
        for b in BLOCKS:
            rates[(name, b)] = _bench_entry(backend, "srgemm_accumulate", b, rng)
            rates[(f"{name}#outer", b)] = _bench_entry(backend, "srgemm_outer", b, rng)
    return rates


def _write_json(rates: dict) -> None:
    names = sorted(available_backends())
    payload = {
        "bench": "ablation_kernel_backends",
        "unit": "GF/s",
        "blocks": list(BLOCKS),
        "semiring": "min_plus",
        "dtype": "float64",
        "backends": {
            name: {
                "fused": {str(b): rates[(name, b)] for b in BLOCKS},
                "outer": {str(b): rates[(f"{name}#outer", b)] for b in BLOCKS},
            }
            for name in names
        },
        "best_backend_at_256": max(names, key=lambda n: rates[(f"{n}#outer", 256)]),
        "best_over_reference_at_256": max(
            rates[(f"{n}#outer", 256)] for n in names
        )
        / rates[("reference", 256)],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernels.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def test_ablation_kernel_backends(benchmark):
    rates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    names = sorted(available_backends())
    rows = []
    for b in BLOCKS:
        best = max(rates[(f"{n}#outer", b)] for n in names)
        rows.append(
            [b]
            + [f"{rates[(name, b)]:.3f}" for name in names]
            + [f"{best / rates[('reference', b)]:.1f}x"]
        )
    write_table(
        "ablation_kernel_backends",
        "Ablation: SrGemm kernel backend throughput, fused C ⊕= A ⊗ B at "
        "b x b x b (GF/s, best of 3; tropical semiring, float64 operands; "
        "tiled-f32 = float32 compute path; best/ref uses each backend's "
        "phase-specialized outer entry)",
        ["block"] + [f"{n} GF/s" for n in names] + ["best/ref"],
        rows,
    )
    _write_json(rates)

    # Acceptance criterion: the cache-blocked kernel beats the
    # broadcast reference at the largest block, where the reference's
    # (m, k_chunk, n) slab falls out of cache.
    assert rates[("tiled", 256)] > rates[("reference", 256)]
    # The float32 path should not be slower than the float64 tiled
    # kernel at the bandwidth-bound large block (it halves traffic;
    # allow wide margin for cast overhead on small problems).
    assert rates[("tiled-f32", 256)] > 0.7 * rates[("tiled", 256)]
    # Tentpole criterion: with any natively-compiled backend available,
    # the best outer-phase rate must reach >=10x the reference at b=256.
    if any(n in names for n in COMPILED_FAMILY):
        best = max(rates[(f"{n}#outer", 256)] for n in names)
        assert best >= 10.0 * rates[("reference", 256)], (
            f"best available backend reached only "
            f"{best / rates[('reference', 256)]:.1f}x reference at b=256"
        )
