"""Ablation: SrGemm kernel backend micro-benchmark.

Unlike the figure-reproduction sweeps, this one measures *real* NumPy
kernel throughput (wall clock, not the simulator): the same fused
``C ← C ⊕ A ⊗ B`` update at the block sizes the paper's Figure 5
sweeps, per registered backend, in float64 and through the float32
compute path.  It documents why the cache-blocked ``tiled`` backend
exists: the ``reference`` broadcast kernel materializes an
``(m, k_chunk, n)`` slab and reduces it, roughly doubling memory
traffic; the tiled kernel accumulates rank-1 updates into one
cache-resident scratch tile bounded by the byte budget.

The shape assertion (tiled >= reference at b=256 float64) is the
acceptance criterion of the backend work; results are recorded in
``benchmarks/results/ablation_kernel_backends.txt``.
"""

from __future__ import annotations

import time

import numpy as np
from common import write_table

from repro.semiring import MIN_PLUS, srgemm_flops
from repro.semiring.backends import available_backends, get_backend

BLOCKS = (64, 128, 256)
#: (label, backend name) pairs; compiled joins automatically when numba
#: is installed (available_backends filters it out otherwise).
REPEATS = 3


def _bench_one(backend, b: int, rng: np.random.Generator) -> float:
    """Best-of-REPEATS GF/s for one fused b x b x b update."""
    a = rng.uniform(0.0, 10.0, (b, b))
    bb = rng.uniform(0.0, 10.0, (b, b))
    c = rng.uniform(0.0, 10.0, (b, b))
    backend.srgemm_accumulate(c.copy(), a, bb, semiring=MIN_PLUS)  # warm-up
    best = float("inf")
    for _ in range(REPEATS):
        work = c.copy()
        t0 = time.perf_counter()
        backend.srgemm_accumulate(work, a, bb, semiring=MIN_PLUS)
        best = min(best, time.perf_counter() - t0)
    return srgemm_flops(b, b, b) / best / 1e9


def run_sweep() -> dict[tuple[str, int], float]:
    rng = np.random.default_rng(0)
    rates: dict[tuple[str, int], float] = {}
    for name in sorted(available_backends()):
        backend = get_backend(name)
        for b in BLOCKS:
            rates[(name, b)] = _bench_one(backend, b, rng)
    return rates


def test_ablation_kernel_backends(benchmark):
    rates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    names = sorted(available_backends())
    rows = []
    for b in BLOCKS:
        speedup = rates[("tiled", b)] / rates[("reference", b)]
        rows.append(
            [b]
            + [f"{rates[(name, b)]:.3f}" for name in names]
            + [f"{speedup:.2f}x"]
        )
    write_table(
        "ablation_kernel_backends",
        "Ablation: SrGemm kernel backend throughput, fused C ⊕= A ⊗ B at "
        "b x b x b (GF/s, best of 3; tropical semiring, float64 operands; "
        "tiled-f32 = float32 compute path)",
        ["block"] + [f"{n} GF/s" for n in names] + ["tiled/ref"],
        rows,
    )

    # Acceptance criterion: the cache-blocked kernel beats the
    # broadcast reference at the largest block, where the reference's
    # (m, k_chunk, n) slab falls out of cache.
    assert rates[("tiled", 256)] > rates[("reference", 256)]
    # The float32 path should not be slower than the float64 tiled
    # kernel at the bandwidth-bound large block (it halves traffic;
    # allow wide margin for cast overhead on small problems).
    assert rates[("tiled-f32", 256)] > 0.7 * rates[("tiled", 256)]
