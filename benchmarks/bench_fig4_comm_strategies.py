"""Figure 4: effect of the communication optimizations.

The paper sweeps the vertex count (26k -> 524k) on 64 nodes and plots
effective bandwidth for Baseline / Pipelined / +Rank Reordering /
+Async, observing: in the communication-bound regime each optimization
stacks another gain (up to ~4x over Baseline in the best case), and
beyond the compute-bound threshold the curves converge.

Replayed here on 16 nodes x 8 ranks with the vertex count swept across
the crossover.
"""

from __future__ import annotations

from asciiplot import render_chart
from common import B_VIRT, hollow_apsp, write_table

NODES = 16
RPN = 8
VARIANTS = ("baseline", "pipelined", "reordering", "async")
#: Block rows swept: virtual n = nb * 768 from 9k to 98k, straddling
#: the compute-bound crossover for this machine size.
NBS = (12, 16, 24, 32, 48, 64, 96, 128, 192)


def run_sweep():
    table = {}
    for nb in NBS:
        for v in VARIANTS:
            rep = hollow_apsp(v, nb, NODES, RPN)
            table[(nb, v)] = rep
    return table


def test_fig4_comm_strategies(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for nb in NBS:
        row = [f"{int(nb * B_VIRT):,}"]
        for v in VARIANTS:
            row.append(f"{table[(nb, v)].effective_bandwidth() / 1e9:.2f}")
        rows.append(row)
    chart = render_chart(
        [f"{int(nb * B_VIRT) // 1000}k" for nb in NBS],
        {v: [table[(nb, v)].effective_bandwidth() / 1e9 for nb in NBS]
         for v in VARIANTS},
        title="GB/s/node vs vertices",
        y_label="GB/s",
    )
    write_table(
        "fig4_comm_strategies",
        f"Figure 4: effective bandwidth (GB/s/node) vs vertices, "
        f"{NODES} nodes x {RPN} ranks "
        "(paper: Baseline < Pipelined < +Reordering < +Async while "
        "communication-bound; convergence once compute-bound)",
        ["vertices"] + list(VARIANTS),
        rows,
        chart=chart,
    )

    def bw(nb, v):
        return table[(nb, v)].effective_bandwidth()

    # Communication-bound regime (small n): strict stacking of gains.
    for nb in NBS[:3]:
        assert bw(nb, "pipelined") > bw(nb, "baseline")
        assert bw(nb, "reordering") >= 0.98 * bw(nb, "pipelined")
        assert bw(nb, "async") >= 0.98 * bw(nb, "reordering")
        assert bw(nb, "async") > 1.5 * bw(nb, "baseline")

    # Paper's "up to four times higher effective bandwidth": the best
    # ratio across the sweep is large.
    best_ratio = max(bw(nb, "async") / bw(nb, "baseline") for nb in NBS)
    assert best_ratio > 2.0

    # Compute-bound regime (large n): the async/baseline gap shrinks
    # monotonically past the crossover and closes to < 1.35x at the
    # end of the sweep (the paper's convergence, reached in full at
    # its larger sizes).
    gaps = [bw(nb, "async") / bw(nb, "baseline") for nb in NBS]
    peak_gap_idx = gaps.index(max(gaps))
    tail = gaps[peak_gap_idx:]
    assert all(a >= b * 0.98 for a, b in zip(tail, tail[1:]))
    assert gaps[-1] < 1.35
    assert gaps[-1] < 0.6 * max(gaps)

    # Effective bandwidth of the optimized variant rises toward the
    # crossover then flattens/falls - the tent shape of Figure 4.
    async_bws = [bw(nb, "async") for nb in NBS]
    peak = max(async_bws)
    assert async_bws[0] < peak
    assert async_bws[-1] < peak
