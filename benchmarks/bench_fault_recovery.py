"""Recovery overhead: makespan vs checkpoint interval under one crash.

The paper's projected flagship run (§5.2.3: 4,096 GPUs for 22 hours)
is squarely in the regime where a node loss mid-solve is expected, so
the interesting question for the fault subsystem is the classic
checkpoint-interval trade-off: a small interval C pays snapshot cost
every C iterations but replays almost nothing after a crash; a large C
is nearly free until the crash, then throws away up to C-1 iterations
of work.  This sweep injects one rank crash at ~40% of the clean
makespan and measures the whole recovered run for each C.
"""

from __future__ import annotations

import numpy as np

from common import B_VIRT, write_table

from repro.core import apsp

NODES = 4
RPN = 4
NB = 32
INTERVALS = (1, 2, 4, 8)


def run_one(fault_plan=None, checkpoint_interval=None):
    w = np.zeros((NB, NB), dtype=np.float32)
    return apsp(
        w,
        variant="baseline",
        block_size=1,
        n_nodes=NODES,
        ranks_per_node=RPN,
        dim_scale=B_VIRT,
        compute_numerics=False,
        collect_result=False,
        fault_plan=fault_plan,
        checkpoint_interval=checkpoint_interval,
    )


def run_sweep():
    clean = run_one()
    crash_at = 0.4 * clean.report.elapsed
    out = {"clean": clean}
    for c in INTERVALS:
        out[c] = run_one(
            fault_plan=[f"crash:rank=5,at={crash_at!r}"], checkpoint_interval=c
        )
    return out


def test_fault_recovery_interval_sweep(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    clean = table["clean"].report.elapsed
    rows = [["none (no crash)", f"{clean:.3f}", "-", "-", "-"]]
    for c in INTERVALS:
        r = table[c]
        f = r.fault_counters
        rows.append(
            [
                str(c),
                f"{r.report.elapsed:.3f}",
                f"{int(f['faults.checkpoints'])} ({f['faults.checkpoint_time']:.3f} s)",
                f"{int(f['faults.replayed_iters'])}",
                f"{r.report.elapsed / clean:.2f}x",
            ]
        )
    write_table(
        "fault_recovery",
        f"Recovery: makespan vs checkpoint interval, one rank crash at 40% "
        f"(n={int(NB * B_VIRT):,}, {NODES} nodes x {RPN} ranks, baseline)",
        ["interval C", "makespan (s)", "checkpoints", "replayed iters", "vs clean"],
        rows,
    )

    # Every recovered run finished, crashed exactly once, and paid for it.
    for c in INTERVALS:
        f = table[c].fault_counters
        assert f["faults.crashes"] == 1 and f["faults.restarts"] == 1
        assert table[c].report.elapsed > clean
    # Checkpoint count falls with the interval; replayed work grows.
    ckpts = [table[c].fault_counters["faults.checkpoints"] for c in INTERVALS]
    assert ckpts == sorted(ckpts, reverse=True)
    replayed = [table[c].fault_counters["faults.replayed_iters"] for c in INTERVALS]
    assert replayed == sorted(replayed)
    assert replayed[-1] > replayed[0]
