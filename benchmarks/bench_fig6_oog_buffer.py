"""Figure 6: ooGSrGemm performance vs operand size and buffer size.

The paper's heatmap (vertices 4k..64k x buffer mx 1k..8k, block 768)
shows: performance grows with the operand size; a 2k x 2k buffer is
already near-peak when n is large; and an oversized buffer *hurts*
small problems (too few tiles to overlap the three pipeline stages).
"""

from __future__ import annotations

from bench_fig5_oog_blocksize import oog_rate
from common import write_table

BLOCK = 768
VERTICES = (4096, 8192, 16384, 32768, 65536)
BUFFERS = (1024, 2048, 4096, 8192)


def run_sweep():
    return {
        (n, mx): oog_rate(n, BLOCK, mx) for n in VERTICES for mx in BUFFERS
    }


def test_fig6_oog_buffer(benchmark):
    rates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [f"{n:,}"] + [f"{rates[(n, mx)]:.0f}" for mx in BUFFERS] for n in VERTICES
    ]
    write_table(
        "fig6_oog_buffer",
        f"Figure 6: ooGSrGemm GFLOP/s, vertices x GPU buffer dimension "
        f"(block {BLOCK}; paper: near-peak at 2k buffers for large n, "
        "degradation for small n with big buffers)",
        ["vertices"] + [f"mx={mx}" for mx in BUFFERS],
        rows,
    )

    # Performance grows with operand size at every buffer size.
    for mx in BUFFERS:
        assert rates[(65536, mx)] > rates[(4096, mx)]

    # For the largest n, a 2k buffer is already near-peak.
    assert rates[(65536, 2048)] > 0.9 * 6800

    # Small n + oversized buffer is the worst corner (paper's bottom
    # right), markedly below small n + right-sized buffer.
    assert rates[(4096, 8192)] < 0.8 * rates[(4096, 1024)]

    # The top row (large n) is much faster than the bottom-right corner.
    assert rates[(65536, 2048)] > 1.5 * rates[(4096, 8192)]
