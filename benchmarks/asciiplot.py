"""Tiny ASCII line-chart renderer for the figure benchmarks.

Renders multiple named series against a shared x axis so the *shape*
of each reproduced figure (orderings, crossovers, walls) is reviewable
at a glance inside ``benchmarks/results/*.txt``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["render_chart"]

_GLYPHS = "ox+*#@%&"


def render_chart(
    x_labels: Sequence[object],
    series: dict[str, Sequence[Optional[float]]],
    *,
    height: int = 14,
    width: Optional[int] = None,
    title: str = "",
    y_label: str = "",
    log_y: bool = False,
) -> str:
    """Render series as an ASCII chart.

    ``None`` values (e.g. OOM points) are skipped.  Columns are spread
    evenly; collisions between series show the later glyph.
    """
    n = len(x_labels)
    if any(len(v) != n for v in series.values()):
        raise ValueError("every series must match the x axis length")
    width = width or max(48, 6 * n)
    vals = [v for s in series.values() for v in s if v is not None]
    if not vals:
        return "(no data)"
    if log_y and min(vals) <= 0:
        log_y = False

    def t(v: float) -> float:
        return math.log10(v) if log_y else v

    lo, hi = min(t(v) for v in vals), max(t(v) for v in vals)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    xcols = [round(i * (width - 1) / max(n - 1, 1)) for i in range(n)]
    for idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for i, y in enumerate(ys):
            if y is None:
                continue
            row = height - 1 - round((t(y) - lo) / span * (height - 1))
            grid[row][xcols[i]] = glyph
    lines = []
    if title:
        lines.append(title)
    top = f"{(10 ** hi if log_y else hi):.3g}"
    bot = f"{(10 ** lo if log_y else lo):.3g}"
    margin = max(len(top), len(bot), len(y_label)) + 1
    for r, row in enumerate(grid):
        if r == 0:
            label = top
        elif r == height - 1:
            label = bot
        elif r == height // 2 and y_label:
            label = y_label
        else:
            label = ""
        lines.append(f"{label:>{margin}} |" + "".join(row))
    lines.append(" " * margin + "-" + "-" * width)
    # X labels: first, middle, last.
    xl = [str(x_labels[0]), str(x_labels[n // 2]), str(x_labels[-1])]
    axis = [" "] * (width + 2)
    positions = [xcols[0], xcols[n // 2], xcols[-1]]
    for pos, lab in zip(positions, xl):
        start = min(max(0, pos - len(lab) // 2), width + 1 - len(lab))
        for i, ch in enumerate(lab):
            axis[start + i] = ch
    lines.append(" " * margin + "".join(axis))
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * margin + legend)
    return "\n".join(lines)
