"""Figure 2: the ooGSrGemm pipeline schedule.

The paper's diagram shows SrGemm, d2hXfer and hostUpdate executing in
parallel across cudaStreams to mask the memory-transfer cost.  This
benchmark runs the pipeline on the simulated GPU with tracing, renders
the text Gantt chart, and asserts the overlap exists (and vanishes
with a single stream).
"""

from __future__ import annotations

import numpy as np
from common import write_table

from repro.core import oog_srgemm_plan, run_oog_pipeline
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.semiring import INF
from repro.sim import Environment, Tracer, render_gantt


def run_pipeline(streams: int, trace: bool = True):
    scale = 768.0
    env = Environment()
    tr = Tracer(enabled=trace)
    cost = CostModel(SUMMIT, dim_scale=scale)
    cluster = SimCluster(env, SUMMIT, 1, cost, tr)
    gpu, host = cluster.nodes[0].gpus[0], cluster.nodes[0].host
    a = np.zeros((24, 1), dtype=np.float32)
    b = np.zeros((1, 24), dtype=np.float32)
    c = np.full((24, 24), INF, dtype=np.float32)
    tiles = oog_srgemm_plan(a, b, c, 4, 4)
    stats = env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, streams)))
    return stats, tr, env.now


def test_fig2_pipeline_overlap(benchmark):
    stats, tr, elapsed = benchmark.pedantic(
        lambda: run_pipeline(3), rounds=1, iterations=1
    )

    gantt = render_gantt(
        tr,
        width=100,
        actors=["node0.gpu0.kernel", "node0.gpu0.d2h", "node0.gpu0.h2d", "node0.host"],
        glyphs={"SrGemm": "S", "d2hXfer": "D", "h2dXfer": "H", "hostUpdate": "U"},
    )
    print("\nFigure 2: ooGSrGemm pipeline (3 streams, 36 tiles)")
    print(gantt)

    ov_sd = tr.overlap_time("SrGemm", "d2hXfer")
    ov_su = tr.overlap_time("SrGemm", "hostUpdate")
    srgemm_busy = tr.total_time("SrGemm")

    _, tr1, elapsed1 = run_pipeline(1)

    write_table(
        "fig2_pipeline",
        "Figure 2: stage overlap in ooGSrGemm (simulated seconds)",
        ["streams", "elapsed", "SrGemm busy", "SrGemm||d2h", "SrGemm||hostUpd"],
        [
            ["3", f"{elapsed:.4f}", f"{srgemm_busy:.4f}", f"{ov_sd:.4f}", f"{ov_su:.4f}"],
            [
                "1",
                f"{elapsed1:.4f}",
                f"{tr1.total_time('SrGemm'):.4f}",
                f"{tr1.overlap_time('SrGemm', 'd2hXfer'):.4f}",
                f"{tr1.overlap_time('SrGemm', 'hostUpdate'):.4f}",
            ],
        ],
    )

    # Paper's claim: the three stages execute in parallel to mask the
    # transfer cost - so transfers overlap compute substantially, and
    # with one stream there is no overlap at all.
    assert ov_sd > 0.3 * srgemm_busy
    assert ov_su > 0
    assert tr1.overlap_time("SrGemm", "d2hXfer") == 0.0
    assert elapsed < elapsed1
