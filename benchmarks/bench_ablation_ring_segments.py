"""Ablation: segmented (pipelined) ring PanelBcast.

The paper's §3.3 ring broadcast is unsegmented; HPL-style
implementations additionally pipeline each broadcast in S chunks,
cutting a lone broadcast's makespan from (P-1)·B toward (P-1+S)·B/S at
the cost of S times the message setups.  This ablation measures both
effects: the collective in isolation and the end-to-end solver.
"""

from __future__ import annotations

import numpy as np
from common import B_VIRT, hollow_apsp, write_table

from repro.machine import SUMMIT, CostModel, SimCluster
from repro.mpi import SimMPI, bcast_ring_segmented
from repro.sim import Environment

SEGMENTS = (1, 2, 4, 8)
NODES = 16
RPN = 8
NB = 24  # comm-bound


def lone_bcast_makespan(segments: int, ranks: int = 8) -> float:
    env = Environment()
    cost = CostModel(SUMMIT)
    cluster = SimCluster(env, SUMMIT, ranks, cost)
    mpi = SimMPI(env, cluster, list(range(ranks)))
    world = mpi.world()
    big = np.ones((1500, 1500))

    def prog(rank):
        comm = world.localize(rank)
        payload = big if rank == 0 else None
        got, relay = yield from bcast_ring_segmented(comm, 0, payload, tag=1,
                                                     segments=segments)
        yield relay

    for r in range(ranks):
        env.process(prog(r))
    env.run()
    return env.now


def run_sweep():
    lone = {s: lone_bcast_makespan(s) for s in SEGMENTS}
    e2e = {s: hollow_apsp("async", NB, NODES, RPN, ring_segments=s) for s in SEGMENTS}
    return lone, e2e


def test_ablation_ring_segments(benchmark):
    lone, e2e = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [s, f"{lone[s] * 1e3:.2f}", f"{e2e[s].elapsed:.3f}",
         f"{e2e[s].effective_bandwidth() / 1e9:.2f}"]
        for s in SEGMENTS
    ]
    write_table(
        "ablation_ring_segments",
        f"Ablation: segmented ring PanelBcast (lone 9 MB broadcast on an "
        f"8-node ring; end-to-end async n={int(NB * B_VIRT):,} on {NODES} "
        f"nodes x {RPN} ranks)",
        ["segments", "lone bcast (ms)", "end-to-end (s)", "GB/s/node"],
        rows,
    )

    # The lone broadcast pipelines nearly ideally.
    assert lone[8] < 0.35 * lone[1]
    assert lone[4] < lone[2] < lone[1]
    # End to end the gain is bounded (broadcasts already overlap
    # compute and each other), but segmentation must not hurt.
    assert e2e[4].elapsed <= e2e[1].elapsed * 1.05
