"""Ablation: block-sparsity exploitation on structured graphs.

The paper's conclusion points at "structured sparse graphs, where
exploiting sparsity becomes paramount" (its supernodal APSP citation).
This ablation runs the solver with and without block-sparsity
exploitation on structured (banded / community) graphs and on
unstructured random sparsity, measuring simulated time and
communication volume.  Expected shape: structure pays, random
sparsity does not (few blocks are entirely empty) - the argument for
supernodal/structure-aware methods.
"""

from __future__ import annotations

from common import write_table

from repro.core import apsp
from repro.graphs import banded_graph, erdos_renyi, ring_of_cliques

GRAPHS = {
    "banded(w=2)": lambda: banded_graph(48, 2, seed=1),
    "cliques(6x8)": lambda: ring_of_cliques(6, 8),
    "random(p=.08)": lambda: erdos_renyi(48, 0.08, seed=2),
    "dense": lambda: erdos_renyi(48, 1.0, seed=3),
}


def run_one(w, sparse):
    return apsp(
        w,
        variant="async",
        block_size=6,
        n_nodes=2,
        ranks_per_node=4,
        dim_scale=128.0,
        exploit_sparsity=sparse,
    ).report


def run_sweep():
    out = {}
    for name, gen in GRAPHS.items():
        w = gen()
        out[name] = (run_one(w, False), run_one(w, True))
    return out


def test_ablation_sparsity(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for name, (dense_rep, sparse_rep) in table.items():
        t_save = 1 - sparse_rep.elapsed / dense_rep.elapsed
        comm_d = dense_rep.internode_bytes + dense_rep.intranode_bytes
        comm_s = sparse_rep.internode_bytes + sparse_rep.intranode_bytes
        c_save = 1 - comm_s / comm_d
        rows.append([name, f"{dense_rep.elapsed:.4f}", f"{sparse_rep.elapsed:.4f}",
                     f"{t_save * 100:.1f}%", f"{c_save * 100:.1f}%"])
    write_table(
        "ablation_sparsity",
        "Ablation: block-sparsity exploitation (async variant, n=6,144 "
        "virtual, 2 nodes x 4 ranks).  Structure pays; unstructured "
        "random sparsity leaves few empty blocks",
        ["graph", "dense run (s)", "sparse run (s)", "time saved", "comm saved"],
        rows,
    )

    def saving(name):
        d, s = table[name]
        return 1 - s.elapsed / d.elapsed

    # Structured graphs save materially.
    assert saving("banded(w=2)") > 0.08
    assert saving("cliques(6x8)") > 0.05
    # Unstructured sparsity and dense graphs save (almost) nothing.
    assert abs(saving("random(p=.08)")) < 0.05
    assert abs(saving("dense")) < 0.02
