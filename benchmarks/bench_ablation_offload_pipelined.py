"""Ablation: pipelined Me-ParallelFw (the combination the paper never ran).

The paper evaluates the look-ahead pipeline (Algorithm 4) only for
GPU-resident runs and Me-ParallelFw only under the bulk-synchronous
schedule - its implementation could not compose them.  The schedule IR
makes ``offload-pipelined`` a policy pairing, so this ablation can ask
the question the paper could not: how much of the offload variant's
broadcast time hides under the ooGSrGemm tile pipeline?

Sweep: paper-scale hollow runs (nb = 24 block rows of b = 768, 4 nodes
x 4 ranks) across three GPU tile-buffer sizes (mx = nx blocks).  For
every buffer size the pipelined flavor must be no slower than plain
offload, and its SrGemm/NIC overlap strictly larger - the comm/compute
overlap is the whole point of the variant.
"""

from __future__ import annotations

import numpy as np

from common import B_VIRT, write_table

from repro.core import apsp

NB = 24
NODES, RPN = 4, 4
#: GPU tile buffer, in blocks per dimension (buffer edge = mx * 768).
BUFFER_BLOCKS = (1, 2, 4)


def run_one(variant: str, mx: int):
    w = np.zeros((NB, NB), dtype=np.float32)
    res = apsp(
        w,
        variant=variant,
        block_size=1,
        n_nodes=NODES,
        ranks_per_node=RPN,
        dim_scale=B_VIRT,
        compute_numerics=False,
        collect_result=False,
        check_negative_cycles=False,
        mx_blocks=mx,
        nx_blocks=mx,
        trace=True,
    )
    return res.report.elapsed, res.tracer.overlap_time("SrGemm", "nic_xfer")


def run_sweep():
    return {
        (variant, mx): run_one(variant, mx)
        for variant in ("offload", "offload-pipelined")
        for mx in BUFFER_BLOCKS
    }


def test_ablation_offload_pipelined(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for mx in BUFFER_BLOCKS:
        plain_t, plain_ov = results[("offload", mx)]
        piped_t, piped_ov = results[("offload-pipelined", mx)]
        rows.append(
            [
                f"{mx * 768}",
                f"{plain_t:.4f}",
                f"{piped_t:.4f}",
                f"{plain_t / piped_t:.2f}x",
                f"{plain_ov * 1e3:.3f}",
                f"{piped_ov * 1e3:.3f}",
            ]
        )
    write_table(
        "ablation_offload_pipelined",
        f"Ablation: offload vs offload-pipelined, {NB} block rows of "
        f"b=768 on {NODES} nodes x {RPN} ranks (hollow).  The look-ahead "
        "schedule rides PanelBcast(k+1) under the ooGSrGemm tile "
        "pipeline; 'overlap' is simulated time SrGemm runs concurrently "
        "with NIC transfers.",
        ["buffer mx", "offload s", "offl-pipe s", "speedup",
         "offl overlap ms", "pipe overlap ms"],
        rows,
    )

    for mx in BUFFER_BLOCKS:
        plain_t, plain_ov = results[("offload", mx)]
        piped_t, piped_ov = results[("offload-pipelined", mx)]
        # The pipelined flavor never loses, and at paper scale the win
        # is substantial (>15% at every buffer size here).
        assert piped_t < plain_t
        assert plain_t / piped_t > 1.15
        # ...because communication actually hides under compute.
        assert piped_ov > plain_ov
