"""Fleet self-healing: MTTR and goodput vs a no-retry baseline.

The point of the resilience layer (repro/sched/resilience.py) is that a
fleet under a fault storm *finishes its work anyway*: failed jobs are
re-admitted with seeded backoff, resume from their last CRC-valid
checkpoint, and route around quarantined devices.  This bench runs the
fixed-seed 8-job mixed-priority mix under a GPU-crash storm twice - once
with the self-healing layer armed, once with it disarmed (PR-8
semantics: first failure is terminal) - and measures what resilience
buys and what it costs.

Outputs:

* ``benchmarks/results/fleet_mttr.txt`` - human-readable table;
* ``benchmarks/results/BENCH_resilience.json`` - machine-readable MTTR
  percentiles, retry counts, goodput (jobs finished per simulated
  minute) and makespans for both modes (the CI ``chaos-fleet`` job
  asserts on this file).

Shape assertions: the armed fleet completes every job, the disarmed
fleet loses every storm-struck one, and MTTR is positive and bounded by
the armed fleet's makespan.
"""

from __future__ import annotations

import json

import numpy as np
from common import RESULTS_DIR, write_table

from repro.faults import resolve_fault_plan
from repro.graphs import uniform_random_dense
from repro.sched import ClusterScheduler, HealthPolicy, ResiliencePolicy, RetryPolicy

SEED = 7
N_NODES = 2
N_JOBS = 8
REAL_KW = dict(block_size=5, n_nodes=2, ranks_per_node=3)


def job_mix(seed: int = SEED) -> list[dict]:
    """Fixed-seed mixed-priority mix under a storm: half the jobs are
    struck by a GPU crash shortly after their arrival (always rank 1,
    so the storm concentrates on one device and trips quarantine), and
    one late tenant rides through a degraded NIC window."""
    rng = np.random.RandomState(seed)
    jobs = []
    for i in range(N_JOBS):
        arrival = float(rng.uniform(0.0, 0.0002))
        specs = []
        if i % 2 == 0:
            specs.append(f"crash:rank=1,at={arrival + 0.00005!r}")
        if i == N_JOBS - 1:
            specs.append(f"nic:node=0,factor=4,t0={arrival!r},t1={arrival + 0.0002!r}")
        plan = None
        if specs:
            plan = resolve_fault_plan(specs, seed=seed).replace(
                max_restarts=0, checkpoint_interval=2
            )
        jobs.append(dict(
            name=f"tenant{i}",
            graph_seed=i % 3,
            priority=int(rng.randint(0, 3)),
            weight=float(rng.choice([0.5, 1.0, 2.0])),
            arrival=arrival,
            fault_plan=plan,
        ))
    return jobs


def run_mode(jobs: list[dict], armed: bool) -> dict:
    policy = None
    if armed:
        policy = ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3),
            health=HealthPolicy(fault_threshold=2, probation=0.02),
            retry_budget=16,
        )
    sched = ClusterScheduler(n_nodes=N_NODES, resilience=policy)
    for job in jobs:
        sched.submit(
            uniform_random_dense(30, seed=job["graph_seed"]),
            variant="async",
            name=job["name"],
            priority=job["priority"],
            weight=job["weight"],
            arrival=job["arrival"],
            fault_plan=job["fault_plan"],
            **REAL_KW,
        )
    reports = sched.run()
    flat = sched.fleet_metrics().flat()
    done = sum(1 for r in reports if r.status == "done")
    makespan = flat["fleet.makespan"]
    out = {
        "jobs_done": done,
        "jobs_failed": sum(1 for r in reports if r.status == "failed"),
        "makespan": makespan,
        "goodput_jobs_per_minute": 60.0 * done / makespan if makespan > 0 else 0.0,
        "retries": flat.get("fleet.resilience.retries", 0.0),
        "quarantines": flat.get("fleet.resilience.quarantines", 0.0),
        "mttr_p50": flat.get("fleet.resilience.mttr.p50", 0.0),
        "mttr_max": flat.get("fleet.resilience.mttr.max", 0.0),
    }
    return out


def run_both() -> dict:
    jobs = job_mix()
    return {
        "baseline": run_mode(jobs, armed=False),
        "resilient": run_mode(jobs, armed=True),
    }


def test_fleet_mttr(benchmark):
    out = benchmark.pedantic(run_both, rounds=1, iterations=1)
    base, res = out["baseline"], out["resilient"]

    rows = [
        ["no-retry baseline", f"{base['jobs_done']}/{N_JOBS}",
         f"{base['makespan']:.4f}", f"{base['goodput_jobs_per_minute']:.0f}",
         "-", "-"],
        ["self-healing", f"{res['jobs_done']}/{N_JOBS}",
         f"{res['makespan']:.4f}", f"{res['goodput_jobs_per_minute']:.0f}",
         f"{res['mttr_p50']:.4f}", f"{res['retries']:.0f}"],
    ]
    write_table(
        "fleet_mttr",
        f"Fleet self-healing: {N_JOBS}-job mix (seed {SEED}) under a "
        f"GPU-crash storm on {N_NODES} Summit nodes, simulated seconds",
        ["mode", "done", "makespan s", "goodput j/min", "MTTR p50", "retries"],
        rows,
    )
    payload = {
        "bench": "fleet_mttr",
        "seed": SEED,
        "n_jobs": N_JOBS,
        "n_nodes": N_NODES,
        "baseline": base,
        "resilient": res,
        "goodput_gain": (
            res["goodput_jobs_per_minute"] / base["goodput_jobs_per_minute"]
            if base["goodput_jobs_per_minute"] > 0 else float("inf")
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )

    # Shape: the armed fleet finishes everything the storm took from
    # the baseline, pays for it with retries, and recovers in finite
    # simulated time.
    assert res["jobs_done"] == N_JOBS
    assert base["jobs_done"] < N_JOBS
    assert res["retries"] > 0
    assert 0.0 < res["mttr_p50"] <= res["mttr_max"] <= res["makespan"]
