"""Fuzzer throughput: scenarios/minute and the oracle overhead split.

The fuzzer's value scales with how many scenarios a budget can afford,
and its cost is dominated by the oracles (a reference solve per new
graph, a full re-run per determinism double-check), so this bench
measures both on a fixed-seed in-process session and, separately, the
sandboxing tax of the isolated (fork-per-scenario) chaos-autopilot
mode.

Outputs:

* ``benchmarks/results/fuzz_throughput.txt`` - human-readable table;
* ``benchmarks/results/BENCH_fuzz.json`` - machine-readable
  scenarios/min for both modes plus per-family oracle seconds.

The shape assertions are deliberately loose (CI machines vary): the
session must be clean (the seed is one the tier-1 budget also pins),
in-process throughput must beat a scenario/second, and the oracle
timings must account for a sane fraction of the wall clock.
"""

from __future__ import annotations

import json
import tempfile

from common import RESULTS_DIR, write_table

from repro.fuzz import Corpus, FuzzSession

SEED = 2026
BUDGET = 120
ISOLATED_BUDGET = 24
ISOLATED_JOBS = 4


def run_sessions() -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        inproc = FuzzSession(
            budget=BUDGET, seed=SEED, corpus_path=f"{tmp}/corpus.jsonl"
        ).run()
        replay_wall = 0.0
        corpus = Corpus(f"{tmp}/corpus.jsonl")
        import time

        t0 = time.perf_counter()
        replays = corpus.replay_all()
        replay_wall = time.perf_counter() - t0
        isolated = FuzzSession(
            budget=ISOLATED_BUDGET,
            seed=SEED,
            isolate=True,
            timeout=60.0,
            jobs=ISOLATED_JOBS,
        ).run()
    return {"inproc": inproc, "isolated": isolated,
            "replays": replays, "replay_wall": replay_wall}


def _write_json(out: dict) -> None:
    inproc, isolated = out["inproc"], out["isolated"]
    oracle_total = sum(inproc.oracle_seconds.values())
    payload = {
        "bench": "fuzz_throughput",
        "seed": SEED,
        "in_process": {
            "budget": inproc.budget,
            "wall_seconds": inproc.wall_seconds,
            "scenarios_per_minute": inproc.scenarios_per_minute,
            "findings": len(inproc.findings),
            "coverage_cells_hit": inproc.coverage.get("cells_hit", 0),
        },
        "isolated": {
            "budget": isolated.budget,
            "jobs": ISOLATED_JOBS,
            "wall_seconds": isolated.wall_seconds,
            "scenarios_per_minute": isolated.scenarios_per_minute,
            "timeout_kills": isolated.kills,
        },
        "oracle_seconds": dict(inproc.oracle_seconds),
        "oracle_share_of_wall": oracle_total / inproc.wall_seconds
        if inproc.wall_seconds
        else 0.0,
        "replay": {
            "scenarios": len(out["replays"]),
            "wall_seconds": out["replay_wall"],
            "per_minute": 60.0 * len(out["replays"]) / out["replay_wall"]
            if out["replay_wall"]
            else 0.0,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fuzz.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def test_fuzz_throughput(benchmark):
    out = benchmark.pedantic(run_sessions, rounds=1, iterations=1)
    inproc, isolated = out["inproc"], out["isolated"]

    # Clean on the pinned seed (the tier-1 200-budget uses the same one).
    assert inproc.ok, inproc.summary()
    assert isolated.ok, isolated.summary()
    assert all(r.bit_exact for r in out["replays"])

    oracle_total = sum(inproc.oracle_seconds.values())
    rows = [
        ["in-process", str(inproc.budget), "1",
         f"{inproc.wall_seconds:.1f}", f"{inproc.scenarios_per_minute:.0f}"],
        ["isolated (fork)", str(isolated.budget), str(ISOLATED_JOBS),
         f"{isolated.wall_seconds:.1f}", f"{isolated.scenarios_per_minute:.0f}"],
        ["corpus replay", str(len(out["replays"])), "1",
         f"{out['replay_wall']:.1f}",
         f"{60.0 * len(out['replays']) / out['replay_wall']:.0f}"],
    ]
    split = "  ".join(
        f"{family}={seconds:.2f}s"
        for family, seconds in sorted(inproc.oracle_seconds.items())
    )
    write_table(
        "fuzz_throughput",
        f"Fuzzer throughput (seed {SEED}): oracle split {split} "
        f"({oracle_total / inproc.wall_seconds:.0%} of wall)",
        ["mode", "scenarios", "jobs", "wall s", "scen/min"],
        rows,
    )
    _write_json(out)

    # Shape: the fuzzer must stay usable - a scenario per second
    # in-process - and the oracle timings must be sane.
    assert inproc.scenarios_per_minute > 60, inproc.scenarios_per_minute
    assert 0 < oracle_total < inproc.wall_seconds
    assert set(inproc.oracle_seconds) == {
        "crash", "equivalence", "determinism", "certificate", "perf-model"
    }
