"""Ablation: behaviour under stragglers (the paper's §3.3 motivation).

"If some network links are slower due to network contention or if
there are straggler processes then its impact propagates to all the
processes" - the stated reason the library broadcast is replaced by
the asynchronous ring.  This ablation injects a slow NIC on one node
and measures every communication variant, clean vs perturbed.
"""

from __future__ import annotations

from common import B_VIRT, hollow_apsp, write_table

NODES = 16
RPN = 8
NB = 32
SLOW = {5: 4.0}  # one node's NIC 4x slower
VARIANTS = ("baseline", "pipelined", "reordering", "async")


def run_sweep():
    table = {}
    for v in VARIANTS:
        table[(v, "clean")] = hollow_apsp(v, NB, NODES, RPN)
        table[(v, "straggler")] = hollow_apsp(v, NB, NODES, RPN, stragglers=SLOW)
    return table


def test_ablation_stragglers(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for v in VARIANTS:
        clean = table[(v, "clean")].elapsed
        slow = table[(v, "straggler")].elapsed
        rows.append([v, f"{clean:.3f}", f"{slow:.3f}", f"{slow / clean:.2f}x"])
    write_table(
        "ablation_stragglers",
        f"Ablation (§3.3): one node's NIC 4x slower "
        f"(n={int(NB * B_VIRT):,}, {NODES} nodes x {RPN} ranks)",
        ["variant", "clean (s)", "straggler (s)", "slowdown"],
        rows,
    )

    t = {(v, c): table[(v, c)].elapsed for v in VARIANTS for c in ("clean", "straggler")}
    # Everybody pays something.
    for v in VARIANTS:
        assert t[(v, "straggler")] > t[(v, "clean")]
    # The fully optimized variant stays the fastest under perturbation.
    for v in ("baseline", "pipelined", "reordering"):
        assert t[("async", "straggler")] < t[(v, "straggler")]
    # And its advantage over the baseline survives the straggler.
    assert t[("baseline", "straggler")] > 1.4 * t[("async", "straggler")]
