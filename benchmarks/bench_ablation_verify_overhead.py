"""Ablation: physical cost of ABFT verification vs block size.

Verification (docs/FAULTS.md) is free in *simulated* time by
construction - the checksum algebra runs inside the existing kernel
closures and adds no events - so the interesting cost is physical:
NumPy wall-clock spent predicting and re-reducing min-checksums around
every guarded SrGemm.  Per b x b block-product the kernel does O(b^3)
work and the checksums O(b^2), so the relative overhead should *fall*
as the block size grows - the same asymptotic argument classic ABFT
GEMM makes, and the reason the paper-scale b=768 regime makes
verification cheap.  This sweep holds the matrix fixed and grows the
block size; it asserts the monotone trend and that simulated makespans
are bit-identical across verify modes.
"""

from __future__ import annotations

import time

import numpy as np
from common import write_table

from repro.core import apsp
from repro.graphs import uniform_random_dense

N = 192
BLOCKS = (8, 16, 32, 64)
NODES = 2
RPN = 2
MODES = ("off", "checksum", "full")
REPEATS = 3


def run_one(w: np.ndarray, b: int, mode: str) -> tuple[float, float]:
    """(best physical wall-clock seconds, simulated elapsed)."""
    best = float("inf")
    elapsed = None
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        res = apsp(
            w,
            variant="async",
            block_size=b,
            n_nodes=NODES,
            ranks_per_node=RPN,
            verify=mode,
        )
        best = min(best, time.perf_counter() - t0)
        elapsed = res.report.elapsed
    return best, elapsed


def run_sweep():
    w = uniform_random_dense(N, seed=3)
    out = {}
    for b in BLOCKS:
        for mode in MODES:
            out[(b, mode)] = run_one(w, b, mode)
    return out


def test_ablation_verify_overhead(benchmark):
    times = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for b in BLOCKS:
        off, sim_off = times[(b, "off")]
        # Simulated makespan is pinned bit-identical across modes.
        for mode in MODES:
            assert times[(b, mode)][1] == sim_off
        row = [b]
        for mode in MODES:
            row.append(f"{times[(b, mode)][0]:.3f}")
        row.append(f"{(times[(b, 'checksum')][0] / off - 1) * 100:+.0f}%")
        row.append(f"{(times[(b, 'full')][0] / off - 1) * 100:+.0f}%")
        rows.append(row)
    write_table(
        "ablation_verify_overhead",
        f"Ablation: physical wall-clock cost of ABFT verification vs block "
        f"size (n={N}, async, {NODES} nodes x {RPN} ranks, best of "
        f"{REPEATS}; simulated makespans bit-identical across modes)",
        ["block", "off (s)", "checksum (s)", "full (s)",
         "checksum ovh", "full ovh"],
        rows,
    )

    # O(b^2) checksums over O(b^3) kernels: relative overhead shrinks
    # with block size.
    small = times[(BLOCKS[0], "checksum")][0] / times[(BLOCKS[0], "off")][0]
    large = times[(BLOCKS[-1], "checksum")][0] / times[(BLOCKS[-1], "off")][0]
    assert large < small
