"""Figure 7: end-to-end performance vs problem size, with the GPU
memory wall.

The paper sweeps 16k -> 1.66M vertices on 64 nodes: the optimized
variants win in the bandwidth-bound region and converge once compute
bound; every in-GPU variant stops at the "Beyond GPU Memory" wall
(524k there), while the offload variant continues to 1.66M vertices at
~50% of peak - 2.5x beyond the others' capacity with modest overhead.

Replayed on 16 nodes x 8 ranks.  The wall position scales with HBM
capacity, so the benchmark uses a reduced-HBM machine to place the
wall inside a tractable sweep; the *shape* - a wall for in-GPU
variants, offload sailing past it at a modest discount - is the
reproduced claim.
"""

from __future__ import annotations

from asciiplot import render_chart
from common import B_VIRT, hollow_apsp, write_table

from repro.errors import GpuOutOfMemory
from repro.machine import SUMMIT, scaled_down

NODES = 16
RPN = 8
VARIANTS = ("baseline", "pipelined", "async", "offload")
NBS = (16, 24, 32, 48, 64, 96, 128)
#: HBM shrunk so the in-GPU wall falls around nb ~ 116 (n ~ 89k).
MACHINE = scaled_down(SUMMIT, hbm_bytes=256 * 1024**2, name="summit-256MiB-hbm")


def run_sweep():
    table = {}
    for nb in NBS:
        for v in VARIANTS:
            kw = dict(machine=MACHINE)
            if v == "offload":
                kw.update(mx_blocks=3, nx_blocks=3)
            try:
                table[(nb, v)] = hollow_apsp(v, nb, NODES, RPN, **kw)
            except GpuOutOfMemory:
                table[(nb, v)] = None
    return table


def test_fig7_vertex_sweep(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for nb in NBS:
        row = [f"{int(nb * B_VIRT):,}"]
        for v in VARIANTS:
            rep = table[(nb, v)]
            row.append("OOM" if rep is None else f"{rep.petaflops:.4f}")
        rows.append(row)
    chart = render_chart(
        [f"{int(nb * B_VIRT) // 1000}k" for nb in NBS],
        {v: [None if table[(nb, v)] is None else table[(nb, v)].petaflops
             for nb in NBS] for v in VARIANTS},
        title="PFLOP/s vs vertices (missing points = Beyond GPU Memory)",
        y_label="PF/s",
        log_y=True,
    )
    write_table(
        "fig7_vertex_sweep",
        f"Figure 7: performance (PFLOP/s) vs vertices, {NODES} nodes x "
        f"{RPN} ranks, HBM reduced to 256 MiB/GPU to place the wall in "
        "range (paper: in-GPU variants hit 'Beyond GPU Memory'; offload "
        "continues ~2.5x further at a modest discount)",
        ["vertices"] + list(VARIANTS),
        rows,
        chart=chart,
    )

    def pf(nb, v):
        rep = table[(nb, v)]
        return None if rep is None else rep.petaflops

    # The wall: some suffix of the sweep is OOM for every in-GPU
    # variant but fine for offload.
    wall_nbs = [nb for nb in NBS if table[(nb, "async")] is None]
    assert wall_nbs, "expected the in-GPU variants to hit the memory wall"
    for nb in wall_nbs:
        for v in ("baseline", "pipelined"):
            assert table[(nb, v)] is None
        assert table[(nb, "offload")] is not None

    # Offload capacity is >= 1.3x the in-GPU capacity in this sweep
    # (the paper reports 2.5x on Summit; the exact factor depends on
    # where host DRAM runs out, which this sweep does not reach).
    largest_ingpu = max(nb for nb in NBS if table[(nb, "async")] is not None)
    largest_off = max(nb for nb in NBS if table[(nb, "offload")] is not None)
    assert largest_off >= 1.3 * largest_ingpu

    # Communication-bound region: async wins clearly.
    assert pf(NBS[0], "async") > 1.3 * pf(NBS[0], "baseline")

    # Offload runs at a modest discount to the in-GPU variant with the
    # same (bulk-synchronous) schedule - the paper's "20% increase in
    # overall running time" comparison.  (Its "80% of Co-ParallelFw"
    # number additionally assumes tuned large offload tiles, which the
    # reduced-HBM machine of this sweep cannot hold; EXPERIMENTS.md
    # records the tuned-tile measurement.)
    assert pf(largest_ingpu, "offload") > 0.7 * pf(largest_ingpu, "baseline")

    # Beyond the wall, offload keeps gaining throughput with size (the
    # rising tail of Figure 7).
    beyond = [nb for nb in NBS if table[(nb, "async")] is None]
    assert pf(beyond[-1], "offload") > pf(largest_ingpu, "offload")

    # Throughput grows with problem size for every variant (the rising
    # left side of Figure 7).
    for v in VARIANTS:
        assert pf(NBS[3], v) > pf(NBS[0], v)
