"""Figure 3: effect of rank reordering.

The paper sweeps every (P_r, P_c, K_r, K_c) combination on node counts
2^0..2^6 for n = 196,608 and plots the achieved effective bandwidth
per node, observing: (a) for a given node count, the best bandwidth
is always at K_r ≈ K_c, (b) lopsided node grids perform worst, and
(c) the single-node case exceeds the NIC line because its traffic is
intranode.

This benchmark replays the sweep on the simulator (hollow mode, the
tuned pipelined+ring code) at node counts 1..16 with Q = 8 ranks/node
in a communication-bound configuration, and checks the same shape.
"""

from __future__ import annotations


from common import B_VIRT, hollow_apsp, write_table

from repro.core import enumerate_placements

#: Virtual n = 24 * 768 = 18,432: communication-bound on these node
#: counts, playing the role of the paper's 196,608 on its counts.
NB = 24
RANKS_PER_NODE = 8
NODE_COUNTS = (1, 2, 4, 8, 16)


def k_ratio(p) -> float:
    return max(p.kr, p.kc) / min(p.kr, p.kc)


def run_sweep():
    results = {}
    for nodes in NODE_COUNTS:
        for p in enumerate_placements(nodes * RANKS_PER_NODE, RANKS_PER_NODE):
            # Keep the sweep tractable: skip grids more lopsided than
            # the paper plots (ratio > 16).
            if max(p.grid.pr, p.grid.pc) > 16 * min(p.grid.pr, p.grid.pc):
                continue
            rep = hollow_apsp("async", NB, nodes, RANKS_PER_NODE, placement=p)
            results.setdefault(nodes, []).append(
                (rep.effective_bandwidth() / 1e9, p)
            )
        results[nodes].sort(reverse=True, key=lambda t: t[0])
    return results


def test_fig3_rank_reordering(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        for bw, p in results[nodes]:
            rows.append([nodes, p.describe(), f"{bw:.2f}", f"{k_ratio(p):.0f}"])
    write_table(
        "fig3_rank_reordering",
        f"Figure 3: effective bandwidth (GB/s/node) by placement, "
        f"n={int(NB * B_VIRT):,}, Q={RANKS_PER_NODE} ranks/node "
        "(paper: best always at K_r≈K_c; lopsided node grids worst; "
        "single node above the NIC line)",
        ["nodes", "placement", "GB/s/node", "K ratio"],
        rows,
    )

    for nodes in NODE_COUNTS[1:]:
        ranked = results[nodes]
        best_bw, best_p = ranked[0]
        worst_bw, _worst_p = ranked[-1]
        # (a) the winning placement's node grid is as square as this
        # node count allows (within 2x).
        min_ratio = min(k_ratio(p) for _, p in ranked)
        assert k_ratio(best_p) <= 2 * min_ratio, (nodes, best_p.describe())
        if nodes >= 4:
            # (b) placement matters: a material best-to-worst spread.
            assert worst_bw < 0.95 * best_bw
            # (c) within the near-square process grid (the one a tuned
            # run uses), the squarest node grid beats the most
            # lopsided one - the paper's "best at K_r ≈ K_c / worst
            # when far off" observation, controlled for P shape.
            grids = {}
            for bw, p in ranked:
                grids.setdefault((p.grid.pr, p.grid.pc), []).append((bw, p))
            near_square = min(grids, key=lambda g: abs(g[0] - g[1]))
            members = grids[near_square]
            sq = min(members, key=lambda t: k_ratio(t[1]))
            lop = max(members, key=lambda t: k_ratio(t[1]))
            if k_ratio(lop[1]) > 2 * k_ratio(sq[1]):
                assert sq[0] > lop[0], (nodes, near_square)

    # (c) the mechanism behind the paper's single-node observation
    # ("best effective bandwidth higher than the 25 GB/s NIC line
    # since all communication is within a single node"): our
    # single-node run indeed never touches a NIC.  The *absolute*
    # single-node bandwidth does not exceed the NIC line at
    # reproduction scale because the run is GPU-bound, not
    # communication-bound - recorded as a deviation in EXPERIMENTS.md.
    single = hollow_apsp("async", NB, 1, RANKS_PER_NODE)
    assert single.internode_bytes == 0.0
    assert single.intranode_bytes > 0.0
