"""Figure 8: strong scaling.

The paper fixes n = 300,000 and scales 16 -> 256 nodes: Co-ParallelFw
reaches 8.1 PF/s at 256 nodes (~70% of peak, 80% parallel efficiency
quoted in the abstract for the weak-scaled runs; ~45% strong-scaling
efficiency in §5.5.1), and its advantage over Baseline grows from
1.6x at 16 nodes to 4.6x at 256.

Replayed at fixed virtual n with node counts 2 -> 32.
"""

from __future__ import annotations

from asciiplot import render_chart
from common import B_VIRT, hollow_apsp, write_table

from repro.machine import SUMMIT

RPN = 8
NB = 64  # virtual n = 49,152 - strong-scaling stress at these sizes
NODE_COUNTS = (2, 4, 8, 16, 32)
VARIANTS = ("baseline", "pipelined", "reordering", "async", "offload")


def run_sweep():
    table = {}
    for nodes in NODE_COUNTS:
        for v in VARIANTS:
            kw = {"mx_blocks": 8, "nx_blocks": 8} if v == "offload" else {}
            table[(nodes, v)] = hollow_apsp(v, NB, nodes, RPN, **kw)
    return table


def test_fig8_strong_scaling(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        row = [nodes]
        for v in VARIANTS:
            row.append(f"{table[(nodes, v)].petaflops:.4f}")
        row.append(f"{table[(nodes, 'async')].percent_of_peak(SUMMIT):.1f}%")
        rows.append(row)
    chart = render_chart(
        list(NODE_COUNTS),
        {v: [table[(nodes, v)].petaflops for nodes in NODE_COUNTS]
         for v in VARIANTS},
        title="PFLOP/s vs nodes (strong scaling)",
        y_label="PF/s",
    )
    write_table(
        "fig8_strong_scaling",
        f"Figure 8: strong scaling, PFLOP/s at n={int(NB * B_VIRT):,} "
        f"({RPN} ranks/node).  Paper: Co-ParallelFw 1.6x over Baseline "
        "at 16 nodes growing to 4.6x at 256; ~45% strong-scaling "
        "efficiency",
        ["nodes"] + list(VARIANTS) + ["async %peak"],
        rows,
        chart=chart,
    )

    def t(nodes, v):
        return table[(nodes, v)].elapsed

    # Async speedup over baseline grows with node count (1.6x -> 4.6x
    # in the paper).
    ratios = [t(nodes, "baseline") / t(nodes, "async") for nodes in NODE_COUNTS]
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.5

    # Every variant gets faster with more nodes up to the sweep's end.
    for v in ("baseline", "pipelined", "async"):
        assert t(NODE_COUNTS[-1], v) < t(NODE_COUNTS[0], v)

    # Co-ParallelFw keeps a reasonable strong-scaling efficiency over
    # a 16x node increase (paper: ~45% over 16x).
    eff = (t(NODE_COUNTS[0], "async") / t(NODE_COUNTS[-1], "async")) / (
        NODE_COUNTS[-1] / NODE_COUNTS[0]
    )
    assert eff > 0.3

    # The ordering at the largest scale matches the paper's figure:
    # async fastest, baseline and offload slowest.
    biggest = NODE_COUNTS[-1]
    assert t(biggest, "async") <= t(biggest, "reordering") * 1.02
    assert t(biggest, "reordering") <= t(biggest, "pipelined") * 1.02
    assert t(biggest, "pipelined") < t(biggest, "baseline")
    assert t(biggest, "offload") > t(biggest, "async")
