"""Figure 5: ooGSrGemm performance vs block size.

The paper's single-GPU micro-benchmark sweeps the block (inner)
dimension for device buffers mx in {512, 1k, 2k, 4k} and finds the
offload SrGemm within a few percent of the kernel's peak once the
block size reaches ~768, matching the Eq. 5 prediction (~624 with
their constants).
"""

from __future__ import annotations

import numpy as np
from common import write_table

from repro.core import oog_srgemm_plan, run_oog_pipeline
from repro.machine import SUMMIT, CostModel, SimCluster
from repro.perfmodel import min_offload_block_size
from repro.sim import Environment

N_VIRT = 32_768
BLOCKS = (128, 256, 512, 768, 1024, 2048)
BUFFERS = (512, 1024, 2048, 4096)


def oog_rate(n_virt: float, k_virt: float, mx_virt: float, streams: int = 3) -> float:
    """Simulated ooGSrGemm GF/s for one C ← C ⊕ A ⊗ B."""
    scale = k_virt
    n_phys = max(2, round(n_virt / scale))
    mx_phys = max(1, round(mx_virt / scale))
    cost = CostModel(SUMMIT, dim_scale=scale)
    env = Environment()
    cluster = SimCluster(env, SUMMIT, 1, cost)
    gpu, host = cluster.nodes[0].gpus[0], cluster.nodes[0].host
    a = np.zeros((n_phys, 1), dtype=np.float32)
    b = np.zeros((1, n_phys), dtype=np.float32)
    c = np.full((n_phys, n_phys), np.inf, dtype=np.float32)
    tiles = oog_srgemm_plan(a, b, c, mx_phys, mx_phys)
    stats = env.run(env.process(run_oog_pipeline(env, gpu, host, tiles, streams)))
    return stats.flop_rate() / 1e9


def run_sweep():
    return {
        (blk, mx): oog_rate(N_VIRT, blk, mx) for blk in BLOCKS for mx in BUFFERS
    }


def test_fig5_oog_blocksize(benchmark):
    rates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [blk] + [f"{rates[(blk, mx)]:.0f}" for mx in BUFFERS] for blk in BLOCKS
    ]
    eq5 = min_offload_block_size(CostModel(SUMMIT))
    write_table(
        "fig5_oog_blocksize",
        f"Figure 5: ooGSrGemm GFLOP/s vs block size (n={N_VIRT:,}; "
        f"sustained kernel peak 6800, theoretical no-FMA peak 7800; "
        f"Eq. 5 minimum block size = {eq5:.0f})",
        ["block"] + [f"mx={mx}" for mx in BUFFERS],
        rows,
    )

    for mx in BUFFERS:
        series = [rates[(blk, mx)] for blk in BLOCKS]
        # Monotonically rising with block size.
        assert all(a <= b * 1.01 for a, b in zip(series, series[1:]))
        # Paper: block >= 768 performs "very close to the peak".
        assert rates[(768, mx)] > 0.85 * 6800
        # Small blocks are far from peak (their Figure 5 left edge).
        assert rates[(128, mx)] < 0.45 * 6800

    # Eq. 5's floor is below the empirical knee (768), as in the paper.
    assert eq5 < 768
