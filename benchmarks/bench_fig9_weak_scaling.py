"""Figure 9: weak scaling.

The paper holds the per-node workload O(n³/p) constant (starting from
n = 300,000 on 16 nodes) and scales to 256 nodes: Co-ParallelFw's
runtime stays flat (perfect weak scaling) while Baseline and Offload
degrade because they do not hide communication - the growing
communication share shows up directly in their runtimes.

Replayed from nb = 48 block rows on 2 nodes, scaling n as p^(1/3).
"""

from __future__ import annotations

from asciiplot import render_chart
from common import B_VIRT, hollow_apsp, write_table

RPN = 8
NODE_COUNTS = (2, 4, 8, 16, 32)
VARIANTS = ("baseline", "pipelined", "reordering", "async", "offload")
NB0 = 48


def nb_for(nodes: int) -> int:
    """Block rows keeping n³/p constant from (NB0, NODE_COUNTS[0])."""
    return round(NB0 * (nodes / NODE_COUNTS[0]) ** (1.0 / 3.0))


def run_sweep():
    table = {}
    for nodes in NODE_COUNTS:
        nb = nb_for(nodes)
        for v in VARIANTS:
            kw = {"mx_blocks": 8, "nx_blocks": 8} if v == "offload" else {}
            table[(nodes, v)] = hollow_apsp(v, nb, nodes, RPN, **kw)
    return table


def test_fig9_weak_scaling(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for nodes in NODE_COUNTS:
        row = [nodes, f"{int(nb_for(nodes) * B_VIRT):,}"]
        for v in VARIANTS:
            row.append(f"{table[(nodes, v)].elapsed:.3f}")
        rows.append(row)
    chart = render_chart(
        list(NODE_COUNTS),
        {v: [table[(nodes, v)].elapsed for nodes in NODE_COUNTS]
         for v in VARIANTS},
        title="runtime (s) vs nodes at constant n^3/p (flat = perfect weak scaling)",
        y_label="sec",
    )
    write_table(
        "fig9_weak_scaling",
        f"Figure 9: weak scaling, runtime (s) at constant n³/p "
        f"({RPN} ranks/node).  Paper: Co-ParallelFw flat; Baseline and "
        "Offload degrade (they do not hide communication)",
        ["nodes", "vertices"] + list(VARIANTS),
        rows,
        chart=chart,
    )

    def t(nodes, v):
        return table[(nodes, v)].elapsed

    first, last = NODE_COUNTS[0], NODE_COUNTS[-1]

    # Co-ParallelFw (async) weak-scales well: bounded growth over 16x
    # more nodes.
    async_growth = t(last, "async") / t(first, "async")
    assert async_growth < 1.6

    # Baseline and offload degrade faster than async - the paper's
    # stated reason: they do not actively hide communication.
    base_growth = t(last, "baseline") / t(first, "baseline")
    off_growth = t(last, "offload") / t(first, "offload")
    assert base_growth > async_growth
    assert off_growth > async_growth

    # And at the largest scale the gap is material.
    assert t(last, "baseline") > 1.25 * t(last, "async")
