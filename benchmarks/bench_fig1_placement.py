"""Figure 1: optimal rank placement for K = 4 nodes, Q = 6 ranks/node.

The paper's diagram shows 24 MPI processes on 4 nodes with a 2x3
coordinate tile per node - the minimal-internode-communication
placement.  This benchmark regenerates the diagram and verifies, with
the §3.4.1 volume model, that the 2x3 tile is the optimum among all
placements of 24 ranks on 4 nodes.
"""

from __future__ import annotations

from common import write_table

from repro.core import ProcessGrid, enumerate_placements, tiled_placement
from repro.machine import SUMMIT, CostModel
from repro.perfmodel import refined_comm_cost


def test_fig1_optimal_placement(benchmark):
    cost = CostModel(SUMMIT)
    n = 196_608  # the Fig. 3 problem size

    def sweep():
        rows = []
        for p in enumerate_placements(24, 6):
            t = refined_comm_cost(cost, n, p.grid.pr, p.grid.pc, p.qr, p.qc)
            rows.append((t, p))
        # Volume first (Eq. 2); ties broken by the latency criterion
        # P_r ≈ P_c (Eq. 3), exactly the paper's two-step argument.
        rows.sort(key=lambda x: (x[0], abs(x[1].grid.pr - x[1].grid.pc)))
        return rows

    rows = benchmark(sweep)

    table = [
        [p.describe(), f"{t * 1e3:.1f} ms", f"{p.kr}x{p.kc}"] for t, p in rows
    ]
    write_table(
        "fig1_placement",
        "Figure 1: placements of 24 ranks on 4 nodes, ranked by modeled "
        "per-sweep communication time (n=196,608)",
        ["placement", "T_comm (model)", "node grid"],
        table,
    )

    best = rows[0][1]
    # The paper's diagram: P=4x6, Q=2x3, K=2x2.
    assert (best.kr, best.kc) == (2, 2)
    assert {(best.qr, best.qc), (best.qc, best.qr)} & {(2, 3), (3, 2)}

    diagram = tiled_placement(ProcessGrid(4, 6), 2, 3).ascii_diagram()
    print("\nFigure 1 placement diagram (node id per grid coordinate):")
    print(diagram)
    assert diagram.splitlines()[0].split() == ["0", "0", "0", "1", "1", "1"]
