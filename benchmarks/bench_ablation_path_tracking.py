"""Ablation: the cost of distributed shortest-path generation.

The paper plans "distributed shortest path generation" as future work;
this reproduction implements it (``track_paths=True``): next-hop
pointer blocks ride with the *column* panels and the diagonal (the
left operands of every min-plus product), while row panels stay
distance-only.  This ablation quantifies what that asymmetric extra
traffic and the pointer-carrying kernels cost end to end.
"""

from __future__ import annotations

import numpy as np
from common import write_table

from repro.core import apsp


def run_one(track):
    w = np.zeros((48, 48), dtype=np.float32)
    # Path tracking needs real numerics; keep the physical size tiny.
    return apsp(
        w,
        variant="async",
        block_size=1,
        n_nodes=4,
        ranks_per_node=4,
        dim_scale=768.0,
        track_paths=track,
        collect_result=False,
    ).report


def run_sweep():
    return {"distances only": run_one(False), "with path generation": run_one(True)}


def test_ablation_path_tracking(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for name, rep in table.items():
        comm = rep.internode_bytes + rep.intranode_bytes
        rows.append(
            [name, f"{rep.elapsed:.3f}", f"{comm / 1e9:.2f}",
             f"{rep.gpu_peak_bytes / 1e9:.2f}"]
        )
    write_table(
        "ablation_path_tracking",
        "Ablation: distributed path generation (async, n=36,864 virtual, "
        "4 nodes x 4 ranks; pointer blocks ride with column panels only)",
        ["mode", "time (s)", "comm (GB)", "GPU peak (GB)"],
        rows,
    )

    plain = table["distances only"]
    tracked = table["with path generation"]
    comm_plain = plain.internode_bytes + plain.intranode_bytes
    comm_tracked = tracked.internode_bytes + tracked.intranode_bytes
    # Column panels (half the panel traffic) double: total grows by
    # roughly a third, but never doubles (row panels are untouched).
    assert 1.2 * comm_plain < comm_tracked < 2.0 * comm_plain
    # Runtime premium is bounded (the extra traffic mostly hides under
    # the outer product like everything else).
    assert tracked.elapsed < 1.5 * plain.elapsed
    # Pointer blocks triple the HBM footprint (int64 next to float32).
    assert tracked.gpu_peak_bytes > 2 * plain.gpu_peak_bytes