"""Ablation: cudaStream count in the offload pipeline (paper §4.5).

The paper's model: 1 stream costs t0+t1+t2 per tile, 2 streams the
best pairing, >= 3 streams max(t0, t1, t2).  This ablation runs the
full Me-ParallelFw end to end at 1..4 streams and checks the model's
prediction that going from 1 to 3 streams buys real end-to-end time
while 4 streams buys nothing further.
"""

from __future__ import annotations

from common import B_VIRT, hollow_apsp, write_table

NODES = 4
RPN = 6  # one rank per GPU, so the kernel engine is not oversubscribed
NB = 96
STREAMS = (1, 2, 3, 4)


def run_sweep():
    return {
        s: hollow_apsp(
            "offload", NB, NODES, RPN, n_streams=s, mx_blocks=4, nx_blocks=4
        )
        for s in STREAMS
    }


def test_ablation_stream_count(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [s, f"{table[s].elapsed:.3f}", f"{table[s].petaflops:.4f}"] for s in STREAMS
    ]
    write_table(
        "ablation_streams",
        f"Ablation (§4.5): Me-ParallelFw end-to-end vs cudaStream count "
        f"(n={int(NB * B_VIRT):,}, {NODES} nodes x {RPN} ranks)",
        ["streams", "time (s)", "PF/s"],
        rows,
    )

    t = {s: table[s].elapsed for s in STREAMS}
    # One stream serializes the three stages: materially slower.
    assert t[1] > 1.1 * t[3]
    # Two streams capture most of the overlap; three saturate it.
    assert t[2] <= t[1]
    assert t[3] <= t[2] * 1.01
    # Beyond three streams there is nothing left to overlap (§4.5:
    # with three or more streams all substeps already overlap).
    assert abs(t[4] - t[3]) <= 0.02 * t[3]
