"""Ablation: DiagUpdate on the GPU vs on the host (paper §4.2).

The paper argues the diagonal update, though asymptotically minor
(2nb² of 2n³ flops), lands on the critical path at strong scale and
must run on the GPU - as log2(b) SrGemm squarings (Eq. 4), despite the
extra flops - because the host's scalar Floyd-Warshall is far slower.
This ablation measures exactly that: end-to-end time with the
diagonal on GPU vs on the host, at a strong-scaled configuration
where the diagonal chain matters.
"""

from __future__ import annotations

from common import B_VIRT, hollow_apsp, write_table

NODES = 16
RPN = 8
NB = 32  # strong-scaled: little outer-product work per rank


def run_sweep():
    return {
        "gpu": hollow_apsp("async", NB, NODES, RPN, diag_on_gpu=True),
        "host": hollow_apsp("async", NB, NODES, RPN, diag_on_gpu=False),
    }


def test_ablation_diag_on_gpu(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [
        [where, f"{rep.elapsed:.3f}", f"{rep.petaflops:.4f}"]
        for where, rep in table.items()
    ]
    write_table(
        "ablation_diag_gpu",
        f"Ablation (§4.2): DiagUpdate placement at strong scale "
        f"(n={int(NB * B_VIRT):,}, {NODES} nodes x {RPN} ranks)",
        ["diag update", "time (s)", "PF/s"],
        rows,
    )

    # GPU squaring wins despite its log2(b) extra flops.
    assert table["gpu"].elapsed < table["host"].elapsed
