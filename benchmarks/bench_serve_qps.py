"""Serving-layer load generator: queries/sec, latency, cache hit rate.

The headline number of the serving tentpole: once a solve is persisted
as a block artifact, a *warm point query* must be orders of magnitude
faster than answering the same question with a fresh ``repro.solve()``
- that is the entire reason the layer exists.  This bench builds one
artifact, replays a configurable point/batch/k-nearest mix against it
(seeded, so the mix is reproducible), and measures per-query wall
latency.

Outputs:

* ``benchmarks/results/serve_qps.txt`` - human-readable table;
* ``benchmarks/results/BENCH_serve.json`` - machine-readable qps,
  p50/p99 latency per query shape, cache hit rate, and the
  warm-query-vs-fresh-solve speedup (the CI ``serve`` job asserts on
  this file).

Shape assertions: every answer is bit-identical to the in-memory
``ApspResult.dist``, the cache ends hot (hit rate > 0.5 under a zipf
working set), and the warm point query beats a fresh solve by >= 100x.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np
from common import RESULTS_DIR, write_table

import repro
from repro.graphs import erdos_renyi

SEED = 21
N = 192
SOLVE = dict(variant="async", block_size=16, n_nodes=2, ranks_per_node=2)
ARTIFACT_BLOCK = 32
CACHE_BYTES = 1 << 22  # 4 MiB: holds the hot set, not the whole matrix

N_POINT = 2000
N_BATCH = 20
BATCH_PAIRS = 256
N_NEAREST = 50
K = 10


def _query_mix(rng: np.random.Generator, n: int):
    """A zipf-ish working set: most queries hit a small hot vertex set,
    the tail wanders - the access pattern an LRU cache is for."""
    hot = rng.permutation(n)[: max(8, n // 8)]

    def vertex():
        if rng.random() < 0.8:
            return int(rng.choice(hot))
        return int(rng.integers(0, n))

    points = [(vertex(), vertex()) for _ in range(N_POINT)]
    batches = [
        np.array([(vertex(), vertex()) for _ in range(BATCH_PAIRS)])
        for _ in range(N_BATCH)
    ]
    nearest = [vertex() for _ in range(N_NEAREST)]
    return points, batches, nearest


def run_load() -> dict:
    rng = np.random.default_rng(SEED)
    w = erdos_renyi(N, 0.25, seed=SEED)

    t0 = time.perf_counter()
    result = repro.solve(w, **SOLVE)
    solve_seconds = time.perf_counter() - t0

    out = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.apsp"
        t0 = time.perf_counter()
        result.save(path, block_size=ARTIFACT_BLOCK, graph=w)
        out["save_seconds"] = time.perf_counter() - t0

        server = repro.serve(path, cache_bytes=CACHE_BYTES)
        points, batches, nearest = _query_mix(rng, N)

        # Cold first touch, then the measured warm passes.
        server.distance(*points[0])

        lat_point = np.empty(len(points))
        for i, (s, t) in enumerate(points):
            t0 = time.perf_counter()
            d = server.distance(s, t)
            lat_point[i] = time.perf_counter() - t0
            assert d == result.dist[s, t]  # bit-identical to the solve

        lat_batch = np.empty(len(batches))
        for i, pairs in enumerate(batches):
            t0 = time.perf_counter()
            got = server.batch(pairs)
            lat_batch[i] = time.perf_counter() - t0
            np.testing.assert_array_equal(
                got, result.dist[pairs[:, 0], pairs[:, 1]]
            )

        lat_nearest = np.empty(len(nearest))
        for i, s in enumerate(nearest):
            t0 = time.perf_counter()
            server.k_nearest(s, K)
            lat_nearest[i] = time.perf_counter() - t0

        stats = server.cache_stats()
        server.close()

    total_queries = len(points) + len(batches) + len(nearest)
    total_seconds = lat_point.sum() + lat_batch.sum() + lat_nearest.sum()
    total_pairs = len(points) + N_BATCH * BATCH_PAIRS + len(nearest)
    out.update(
        n=N,
        solve_seconds=solve_seconds,
        qps=total_queries / total_seconds,
        pairs_per_second=total_pairs / total_seconds,
        point=_percentiles(lat_point),
        batch=_percentiles(lat_batch),
        k_nearest=_percentiles(lat_nearest),
        cache=stats,
        speedup_vs_solve=solve_seconds / float(np.mean(lat_point)),
    )
    return out


def _percentiles(lat: np.ndarray) -> dict:
    return {
        "count": int(lat.size),
        "mean_us": float(np.mean(lat) * 1e6),
        "p50_us": float(np.percentile(lat, 50) * 1e6),
        "p99_us": float(np.percentile(lat, 99) * 1e6),
    }


def test_serve_qps(benchmark):
    out = benchmark.pedantic(run_load, rounds=1, iterations=1)

    rows = [
        [name, str(p["count"]), f"{p['mean_us']:.1f}",
         f"{p['p50_us']:.1f}", f"{p['p99_us']:.1f}"]
        for name, p in (
            ("point", out["point"]),
            (f"batch x{BATCH_PAIRS}", out["batch"]),
            (f"k-nearest (k={K})", out["k_nearest"]),
        )
    ]
    hit_rate = out["cache"]["hit_rate"]
    chart = (
        f"qps (mixed)          {out['qps']:.0f}\n"
        f"pairs/s              {out['pairs_per_second']:.0f}\n"
        f"cache hit rate       {hit_rate:.1%}\n"
        f"fresh solve          {out['solve_seconds'] * 1e3:.1f} ms\n"
        f"warm point query     {out['point']['mean_us']:.1f} us "
        f"({out['speedup_vs_solve']:.0f}x faster)"
    )
    write_table(
        "serve_qps",
        f"Serving load test: n={N} artifact (tile {ARTIFACT_BLOCK}), "
        f"{CACHE_BYTES >> 20} MiB cache, zipf query mix (seed {SEED})",
        ["query", "count", "mean us", "p50 us", "p99 us"],
        rows,
        chart=chart,
    )
    (RESULTS_DIR / "BENCH_serve.json").write_text(
        json.dumps(out, indent=2) + "\n", encoding="utf-8"
    )

    # The acceptance criteria of the serving tentpole.
    assert out["speedup_vs_solve"] >= 100.0, (
        f"warm point query only {out['speedup_vs_solve']:.1f}x faster than a solve"
    )
    assert hit_rate > 0.5, f"cache never warmed up: hit rate {hit_rate:.1%}"
    assert out["point"]["p99_us"] > 0.0


if __name__ == "__main__":  # pragma: no cover - manual runs
    print(json.dumps(run_load(), indent=2))
