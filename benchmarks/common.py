"""Shared harness for the figure-reproduction benchmarks.

Every benchmark regenerates one of the paper's figures: it sweeps the
same axes, prints the same rows/series (as a text table), writes the
table under ``benchmarks/results/`` for EXPERIMENTS.md, and asserts the
*shape* of the result (who wins, roughly by how much, where crossovers
fall) - not absolute numbers, since the testbed here is a simulator.

All sweeps run the simulator in *hollow* mode (full event structure,
modeled costs, no NumPy numerics) with the paper's block size b = 768
as the virtual scale, so paper-scale vertex counts are reachable in
seconds.  Numerical correctness is covered by the test suite, and
``tests/test_distributed_variants.py::TestDriverValidation::
test_hollow_matches_full_timing`` pins that hollow mode does not change
the schedule.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import apsp
from repro.core.report import PerfReport

#: The paper's block size; hollow sweeps use dim_scale = B_VIRT so one
#: physical "block" row models one 768-wide block.
B_VIRT = 768.0

RESULTS_DIR = Path(__file__).parent / "results"


def hollow_apsp(
    variant: str,
    nb: int,
    n_nodes: int,
    ranks_per_node: int = 4,
    scale: float = B_VIRT,
    **kw,
) -> PerfReport:
    """Run one hollow simulation of ``nb`` block rows (virtual
    n = nb * scale) and return its report."""
    w = np.zeros((nb, nb), dtype=np.float32)
    res = apsp(
        w,
        variant=variant,
        block_size=1,
        n_nodes=n_nodes,
        ranks_per_node=ranks_per_node,
        dim_scale=scale,
        compute_numerics=False,
        collect_result=False,
        **kw,
    )
    return res.report


def write_table(
    name: str,
    title: str,
    header: list[str],
    rows: list[list[str]],
    chart: str = "",
) -> str:
    """Format, print, and persist a result table (plus an optional
    ASCII chart of the figure's shape); returns the text."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows)) for i in range(len(header))
    ]
    lines = [title, ""]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(r)))
    if chart:
        lines += ["", chart]
    text = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
    return text


def gb(x: float) -> str:
    return f"{x / 1e9:.2f}"


def pf(report: PerfReport) -> float:
    return report.petaflops
