"""Ablation: block size in the end-to-end solver.

DESIGN.md calls out the block-size trade: small blocks keep the
DiagUpdate chain cheap but pay per-kernel overhead and low SrGemm
efficiency (paper Figure 5) plus more latency-bound iterations
(Eq. 1's 2(n/b) t_l term); huge blocks push the log2(b)-squaring
DiagUpdate onto the critical path.  The paper settles on b = 768.
This ablation holds the virtual problem fixed and sweeps the virtual
block size; the optimum should sit in the 512-1536 plateau, agreeing
with the model in repro.perfmodel.tuning.recommend_block_size.
"""

from __future__ import annotations

import numpy as np
from common import write_table

from repro.core import apsp
from repro.machine import SUMMIT, CostModel
from repro.perfmodel import recommend_block_size

N_VIRT = 36_864
BLOCKS = (128, 256, 512, 768, 1536)
NODES = 4
RPN = 8


def run_one(b_virt: int) -> float:
    nb = round(N_VIRT / b_virt)
    w = np.zeros((nb, nb), dtype=np.float32)
    res = apsp(
        w,
        variant="async",
        block_size=1,
        n_nodes=NODES,
        ranks_per_node=RPN,
        dim_scale=float(b_virt),
        compute_numerics=False,
        collect_result=False,
    )
    return res.report.elapsed


def run_sweep():
    return {b: run_one(b) for b in BLOCKS}


def test_ablation_block_size(benchmark):
    times = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = [[b, f"{times[b]:.3f}"] for b in BLOCKS]
    write_table(
        "ablation_blocksize",
        f"Ablation: end-to-end time vs virtual block size "
        f"(n={N_VIRT:,}, {NODES} nodes x {RPN} ranks; paper uses b=768)",
        ["block", "time (s)"],
        rows,
    )

    best = min(BLOCKS, key=lambda b: times[b])
    # The optimum sits in the paper's plateau, not at either extreme.
    assert best in (512, 768, 1536)
    # Tiny blocks pay for it.
    assert times[128] > 1.2 * times[best]

    # The analytic recommendation agrees with the simulated optimum to
    # within the plateau.
    cost = CostModel(SUMMIT)
    rec = recommend_block_size(
        cost, N_VIRT, 4, 8, candidates=BLOCKS, gpus_share=2
    )
    assert times[rec] <= 1.2 * times[best]
