"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`
inside the transport and machine layers.

The injector sits at three hook points, each costing one ``is None``
check when unarmed:

* :meth:`SimMPI._send <repro.mpi.comm.SimMPI._send>` calls
  :meth:`FaultInjector.process_send` instead of putting the message in
  the destination mailbox directly - drops, duplications and payload
  corruption happen here, after the NIC cost was charged (the fault
  model is "the wire/receiver lost or mangled it", so the sender paid
  for the send).
* :meth:`SimCluster.transfer <repro.machine.cluster.SimCluster.transfer>`
  multiplies internode durations by :meth:`FaultInjector.nic_factor`.
* :class:`CudaStream <repro.machine.gpu.CudaStream>` kernels multiply
  durations by the owning GPU's ``compute_multiplier``, which the
  driver sets from :meth:`FaultInjector.compute_factor`.

Reliability protocol
--------------------
Every armed send carries a per-(src, dst) *sequence number* and a
CRC32 *checksum* over its payload.  The injector retains a pristine
copy of the most recent message per (dst, src, tag); a receiver whose
:func:`~repro.mpi.collectives.recv_with_retry` times out (or detects a
checksum mismatch) calls :meth:`request_retransmit`, which charges a
control round-trip plus the data transfer again and re-delivers the
pristine copy - modeling NIC-level retransmission without requiring
the (generator-based) sender program to participate.  A per-dst set of
delivered (src, seq) pairs suppresses duplicates, whether injected
(``dup`` faults) or produced by a retransmit racing a slow original.

Everything is deterministic: probabilistic faults draw from a seeded
NumPy generator in send order, and send order is fixed by the
simulation kernel - so the same seed + plan reproduce the same faults,
retries and recoveries event-for-event.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ..mpi.comm import _copy_payload, payload_checksum
from ..sim.trace import Tracer
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..mpi.comm import Message, SimMPI
    from .checkpoint import CheckpointStore

__all__ = ["FaultInjector", "FaultRuntime", "CTRL_NBYTES"]

#: Virtual bytes charged for a re-request control message.
CTRL_NBYTES = 64.0


class FaultInjector:
    """Applies one :class:`FaultPlan` to one simulated run."""

    def __init__(self, plan: FaultPlan, tracer: Optional[Tracer] = None):
        self.plan = plan
        self.tracer = tracer
        self.rng = np.random.default_rng(plan.seed)
        #: Injection/recovery counters (``faults.*``).  Kept here (and
        #: mirrored into the tracer when one is attached) so the
        #: determinism contract is checkable even on untraced runs.
        self.counters: dict[str, float] = defaultdict(float)
        self.mpi: Optional["SimMPI"] = None
        self._seq: dict[tuple[int, int], int] = defaultdict(int)
        #: Per message-fault count of envelope matches (drives nth=).
        self._matches = [0] * len(plan.message_faults)
        #: dst -> {(src, seq)} already placed in the mailbox.
        self._delivered: dict[int, set[tuple[int, int]]] = defaultdict(set)
        #: dst -> {(src, tag): pristine Message} for retransmission.
        self._retained: dict[int, dict[tuple[int, int], "Message"]] = defaultdict(dict)
        self._oom_fired: set[tuple[int, int]] = set()
        #: Indices into plan.memory_faults that already fired (memflips
        #: are one-shot, like OOMs: replay after a restart stays clean).
        self._mem_fired: set[int] = set()
        self._straggler = {s.rank: s.factor for s in plan.stragglers}

    def attach(self, mpi: "SimMPI") -> None:
        self.mpi = mpi

    def count(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] += amount
        if self.tracer is not None:
            self.tracer.add(name, amount)

    # -- send-side hooks -----------------------------------------------------
    def next_seq(self, src: int, dst: int) -> int:
        seq = self._seq[(src, dst)]
        self._seq[(src, dst)] = seq + 1
        return seq

    def _classify(self, src: int, dst: int, tag: int) -> tuple[bool, bool, int]:
        """(drop, duplicate, corrupt_bits) decision for one send."""
        drop = dup = False
        bits = 0
        for idx, f in enumerate(self.plan.message_faults):
            if f.src is not None and f.src != src:
                continue
            if f.dst is not None and f.dst != dst:
                continue
            if f.tag is not None and f.tag != tag:
                continue
            self._matches[idx] += 1
            if f.nth is not None:
                hit = self._matches[idx] == f.nth
            else:
                hit = bool(self.rng.random() < f.p)
            if not hit:
                continue
            if f.kind == "drop":
                drop = True
            elif f.kind == "dup":
                dup = True
            else:
                bits = max(bits, f.bits)
        return drop, dup, bits

    def _corrupt(self, payload: Any, bits: int) -> Any:
        """Deep-copy ``payload`` and bit-flip ``bits`` entries of its
        ndarray leaves (seeded, so corruption is reproducible)."""
        corrupted = _copy_payload(payload)
        leaves: list[np.ndarray] = []

        def walk(p: Any) -> None:
            if isinstance(p, np.ndarray) and p.size:
                leaves.append(p)
            elif isinstance(p, (list, tuple)):
                for x in p:
                    walk(x)
            elif isinstance(p, dict):
                for x in p.values():
                    walk(x)

        walk(corrupted)
        if not leaves:
            return corrupted
        for _ in range(bits):
            leaf = leaves[int(self.rng.integers(len(leaves)))]
            flat = leaf.view(np.uint8).reshape(-1)
            byte = int(self.rng.integers(flat.size))
            bit = int(self.rng.integers(8))
            flat[byte] ^= np.uint8(1 << bit)
        return corrupted

    def first_delivery(self, dst: int, src: int, seq: int) -> bool:
        """Record a delivery attempt; False means this (src, seq) was
        already delivered to ``dst`` and must be suppressed."""
        if seq < 0:
            return True
        key = (src, seq)
        if key in self._delivered[dst]:
            self.count("faults.duplicates_suppressed")
            return False
        self._delivered[dst].add(key)
        return True

    def mark_undelivered(self, dst: int, src: int, seq: int) -> None:
        """Forget a delivery (the receiver consumed a corrupted copy),
        so the pristine retransmit is not suppressed."""
        self._delivered[dst].discard((src, seq))

    def process_send(self, mpi: "SimMPI", dst: int, msg: "Message") -> None:
        """Transport tail: decide the fate of one fully-transferred
        message.  Runs in the sender's context, zero additional cost."""
        self._retained[dst][(msg.src, msg.tag)] = msg
        drop, dup, bits = self._classify(msg.src, dst, msg.tag)
        if drop:
            self.count("faults.dropped")
            return
        deliver = msg
        if bits:
            self.count("faults.corrupted")
            deliver = dataclasses.replace(msg, payload=self._corrupt(msg.payload, bits))
        if self.first_delivery(dst, msg.src, msg.seq):
            mpi._mailboxes[dst].put(deliver)
        if dup:
            self.count("faults.duplicated")
            # The duplicate shares the original's sequence number, so
            # suppression swallows it unless the original was dropped.
            if self.first_delivery(dst, msg.src, msg.seq):
                mpi._mailboxes[dst].put(
                    dataclasses.replace(deliver, payload=_copy_payload(deliver.payload))
                )

    # -- receive-side recovery ----------------------------------------------
    def request_retransmit(self, dst_world: int, src_world: int, tag: int):
        """Generator: re-request the retained (dst, src, tag) message.

        Charges a small control message dst -> src plus the full data
        transfer src -> dst, then re-delivers the pristine copy (unless
        suppression says the original made it after all).  Returns True
        if a retained copy existed, False when there was nothing to
        re-send (e.g. the peer never sent - it may be dead)."""
        mpi = self.mpi
        assert mpi is not None, "injector not attached to a SimMPI world"
        msg = self._retained[dst_world].get((src_world, tag))
        self.count("faults.retransmit_requests")
        src_node = mpi.rank_to_node[src_world]
        dst_node = mpi.rank_to_node[dst_world]
        yield from mpi.cluster.transfer(
            dst_node,
            src_node,
            CTRL_NBYTES,
            label=f"rereq r{dst_world}->r{src_world} t{tag}",
            injector=self,
        )
        if msg is None:
            return False
        yield from mpi.cluster.transfer(
            src_node,
            dst_node,
            msg.nbytes,
            label=f"rexmit r{src_world}->r{dst_world} t{tag}",
            injector=self,
        )
        self.count("faults.retransmits")
        if self.first_delivery(dst_world, msg.src, msg.seq):
            mpi._mailboxes[dst_world].put(
                dataclasses.replace(
                    msg,
                    payload=_copy_payload(msg.payload),
                    delivered_at=mpi.env.now,
                )
            )
        return True

    # -- machine-layer hooks --------------------------------------------------
    def nic_factor(self, node: int, now: float) -> float:
        """Product of the NIC degradation factors active on ``node``
        at simulated time ``now``."""
        factor = 1.0
        for w in self.plan.nic_windows:
            if w.node == node and w.t0 <= now < w.t1:
                factor *= w.factor
        return factor

    def compute_factor(self, rank: int) -> float:
        return self._straggler.get(rank, 1.0)

    # -- silent-data-corruption faults ----------------------------------------
    def flip_entries(self, arr: np.ndarray, bits: int) -> int:
        """Flip the IEEE sign bit of up to ``bits`` seeded entries of
        ``arr`` *in place* and return how many flipped.

        Entries are chosen among the strictly positive finite values
        (falling back to any finite value): on non-negative distances a
        sign-bit upset drops the entry below every row/col minimum, the
        worst case for the result and the one the min-checksums provably
        detect.  ``0.0`` and ``inf`` are excluded because their sign
        flips are invisible to (min,+) comparisons or invalid weights.
        """
        values = arr.ravel()  # read-only scan; writes go through arr itself
        cand = np.flatnonzero(np.isfinite(values) & (values > 0))
        if cand.size == 0:
            cand = np.flatnonzero(np.isfinite(values) & (values != 0))
        if cand.size == 0:
            return 0
        idx = self.rng.choice(cand, size=min(bits, cand.size), replace=False)
        multi = np.unravel_index(idx, arr.shape)
        arr[multi] = -arr[multi]
        return int(idx.size)

    def _take_memory_faults(self, rank: int, k: int, target: str) -> list:
        """Matching not-yet-fired memflips for (rank, k, target); marks
        them fired."""
        hits = []
        for idx, f in enumerate(self.plan.memory_faults):
            if f.rank == rank and f.k == k and f.target == target and idx not in self._mem_fired:
                self._mem_fired.add(idx)
                hits.append(f)
        return hits

    def fire_block_flips(self, state, k: int) -> None:
        """``target=block`` memflips: silently corrupt a resident
        distance block at the top of iteration ``k``.  Fired *after* any
        checkpoint save of the same iteration, so snapshots stay
        pristine and restart replay is bit-exact."""
        for f in self._take_memory_faults(state.me, k, "block"):
            if f.block is not None:
                if f.block not in state.blocks:
                    self.count("faults.memflips_missed")
                    continue
                key = f.block
            else:
                keys = sorted(state.blocks)
                if not keys:  # rank owns no blocks (world larger than grid)
                    self.count("faults.memflips_missed")
                    continue
                key = keys[int(self.rng.integers(len(keys)))]
            if self.flip_entries(state.blocks[key], f.bits):
                self.count("faults.block_flips")

    def fire_checkpoint_flips(self, store: "CheckpointStore", rank: int, k: int) -> None:
        """``target=checkpoint`` memflips: corrupt the newest stored
        snapshot payload of ``rank`` in place, *without* refreshing its
        CRC - exactly the rot the integrity layer must catch."""
        for f in self._take_memory_faults(rank, k, "checkpoint"):
            epochs = sorted(e for e, per_rank in store._blocks.items() if rank in per_rank and e <= k)
            if not epochs:
                self.count("faults.memflips_missed")
                continue
            snap = store._blocks[epochs[-1]][rank]
            keys = sorted(snap)
            if not keys:  # blockless rank snapshots an empty payload
                self.count("faults.memflips_missed")
                continue
            key = keys[int(self.rng.integers(len(keys)))]
            if self.flip_entries(snap[key], f.bits):
                self.count("faults.ckpt_flips")

    def take_oog_flip(self, rank: int, k: int) -> int:
        """``target=oog`` memflips: bits to flip in the first staged
        ooGSrGemm tile of (rank, k); 0 when none is pending.  Only the
        host-resident variants consume these."""
        bits = 0
        for f in self._take_memory_faults(rank, k, "oog"):
            bits = max(bits, f.bits)
        return bits

    def should_oom(self, rank: int, k: int) -> bool:
        """True exactly once per (rank, k) OOM fault."""
        for o in self.plan.ooms:
            if o.rank == rank and o.k == k and (rank, k) not in self._oom_fired:
                self._oom_fired.add((rank, k))
                return True
        return False

    def reset_world(self) -> None:
        """Discard per-epoch transport state before a restart: all
        mailboxes (in-flight + undelivered messages of the dead epoch)
        and their abandoned getters.  Sequence counters, delivered sets
        and fault match counts carry over - an ``nth`` fault that
        already fired must not fire again on replay."""
        mpi = self.mpi
        assert mpi is not None
        for mailbox in mpi._mailboxes:
            mailbox.reset()


@dataclasses.dataclass
class FaultRuntime:
    """Per-run recovery state shared by the driver and the rank
    programs (hung off ``FwContext.faults``; None when unarmed)."""

    injector: FaultInjector
    store: "CheckpointStore"
    #: Outer iteration the current epoch (re)started from.
    start_k: int = 0
    #: rank -> highest k it has checkpointed (suppresses double saves
    #: at the restart iteration).
    last_saved: dict[int, int] = dataclasses.field(default_factory=dict)
    #: True on a checkpoint-carrying re-admission (scheduler retry):
    #: the first epoch of the new attempt must restore from the store
    #: at ``start_k`` instead of re-scattering ``rp.locals_`` - the
    #: previous attempt mutated those blocks in place - and must not
    #: overwrite the pristine ``k=0`` snapshot.
    resumed: bool = False
