"""Deterministic fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is a *reproducible input* to a simulated run: the
same plan (plus the same seed) always perturbs the same messages at the
same simulated times, so chaos runs are exactly replayable and their
results can be byte-compared against the fault-free oracle.

Plans are built three ways:

* programmatically (construct the dataclasses);
* from CLI spec strings via :meth:`FaultPlan.from_specs`, e.g.
  ``drop:src=0,dst=3,nth=1`` or ``crash:rank=2,at=0.01``;
* from JSON via :meth:`FaultPlan.from_json` (the ``$REPRO_FAULT_PLAN``
  environment hook).

Spec grammar (one fault per spec, ``kind:key=value,key=value``):

========== ============================================================
kind       keys
========== ============================================================
drop       src, dst, tag, nth (1-based match index) or p (probability)
dup        src, dst, tag, nth or p
corrupt    src, dst, tag, nth or p, bits (entries to flip, default 1)
nic        node, factor, t0, t1 (degradation window, seconds)
straggler  rank, factor (compute-cost multiplier on that rank's GPU)
crash      rank, at (hard rank loss at simulated time ``at``)
oom        rank, k (GpuOutOfMemory injected at outer iteration k)
memflip    rank, k, target (block|checkpoint|oog), bits, i, j
           (silent in-place bit upsets; detected only by ``--verify``)
policy     timeout, retries, backoff, ckpt, restarts, oom_degrade
========== ============================================================
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from ..errors import FaultPlanError

__all__ = [
    "MessageFault",
    "NicWindow",
    "ComputeStraggler",
    "RankCrash",
    "OomFault",
    "MemoryFault",
    "FaultPlan",
    "resolve_fault_plan",
    "FAULT_PLAN_ENV",
]

#: Environment variable holding a JSON fault plan (same schema as
#: :meth:`FaultPlan.to_json`); consulted when the driver gets no
#: explicit plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_num(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


_TYPE_CHECKS = {
    "int": (_is_int, "an integer"),
    "number": (_is_num, "a number"),
    "bool": (lambda v: isinstance(v, bool), "a boolean"),
    "str": (lambda v: isinstance(v, str), "a string"),
}


def _typed(owner: str, name: str, value: Any, expect: str, optional: bool = False) -> None:
    """Raise :class:`FaultPlanError` unless ``value`` has the expected
    type.  Spec values arrive through :func:`_coerce`, which falls back
    to the raw string - so ``crash:rank=two`` must die here with a
    message naming the field, not sort-of-work or explode downstream."""
    if value is None:
        if optional:
            return
        raise FaultPlanError(f"{owner} field {name!r} is required")
    check, describe = _TYPE_CHECKS[expect]
    if not check(value):
        raise FaultPlanError(
            f"{owner} field {name!r} must be {describe}, "
            f"got {value!r} ({type(value).__name__})"
        )


@dataclass(frozen=True)
class MessageFault:
    """Drop, duplicate, or corrupt messages matching an envelope filter.

    ``src``/``dst`` are world ranks, ``tag`` the MPI tag; ``None``
    matches anything.  Selection is either deterministic (``nth``: the
    nth matching send, 1-based) or seeded-probabilistic (``p``: each
    matching send independently with probability p, drawn from the
    plan's RNG in send order - still fully reproducible).
    """

    kind: str  # "drop" | "dup" | "corrupt"
    src: Optional[int] = None
    dst: Optional[int] = None
    tag: Optional[int] = None
    nth: Optional[int] = None
    p: float = 0.0
    #: corrupt only: how many payload entries get bit-flipped.
    bits: int = 1

    def __post_init__(self):
        if self.kind not in ("drop", "dup", "corrupt"):
            raise FaultPlanError(f"unknown message-fault kind {self.kind!r}")
        for name in ("src", "dst", "tag", "nth"):
            _typed("message fault", name, getattr(self, name), "int", optional=True)
        _typed("message fault", "p", self.p, "number")
        _typed("message fault", "bits", self.bits, "int")
        if self.nth is not None and self.nth < 1:
            raise FaultPlanError(f"nth is 1-based, got {self.nth}")
        if not 0.0 <= self.p <= 1.0:
            raise FaultPlanError(f"p must be in [0, 1], got {self.p}")
        if self.nth is None and self.p == 0.0:
            raise FaultPlanError(f"{self.kind} fault needs nth=... or p=...")
        if self.bits < 1:
            raise FaultPlanError(f"corrupt bits must be >= 1, got {self.bits}")


@dataclass(frozen=True)
class NicWindow:
    """Multiply one node's NIC transfer times by ``factor`` while the
    simulated clock is inside [t0, t1] - a degraded link / noisy
    neighbour window rather than a permanent straggler."""

    node: int
    factor: float
    t0: float = 0.0
    t1: float = float("inf")

    def __post_init__(self):
        _typed("nic window", "node", self.node, "int")
        _typed("nic window", "factor", self.factor, "number")
        _typed("nic window", "t0", self.t0, "number")
        _typed("nic window", "t1", self.t1, "number")
        if self.node < 0:
            raise FaultPlanError(f"nic node must be >= 0, got {self.node}")
        if self.factor <= 0:
            raise FaultPlanError(f"nic factor must be positive, got {self.factor}")
        if self.t0 < 0:
            raise FaultPlanError(f"nic t0 must be >= 0, got {self.t0}")
        if self.t1 < self.t0:
            raise FaultPlanError(f"empty nic window [{self.t0}, {self.t1}]")


@dataclass(frozen=True)
class ComputeStraggler:
    """Multiply one rank's GPU kernel times by ``factor`` (a slow or
    thermally throttled device, 2:1 rank sharing gone bad, ...)."""

    rank: int
    factor: float

    def __post_init__(self):
        _typed("straggler", "rank", self.rank, "int")
        _typed("straggler", "factor", self.factor, "number")
        if self.rank < 0:
            raise FaultPlanError(f"straggler rank must be >= 0, got {self.rank}")
        if self.factor <= 0:
            raise FaultPlanError(f"straggler factor must be positive, got {self.factor}")


@dataclass(frozen=True)
class RankCrash:
    """Hard-kill one rank at simulated time ``at`` (delivered through
    :meth:`repro.sim.engine.Process.interrupt`)."""

    rank: int
    at: float

    def __post_init__(self):
        _typed("crash", "rank", self.rank, "int")
        _typed("crash", "at", self.at, "number")
        if self.rank < 0:
            raise FaultPlanError(f"crash rank must be >= 0, got {self.rank}")
        if self.at < 0:
            raise FaultPlanError(f"crash time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class OomFault:
    """Raise :class:`~repro.errors.GpuOutOfMemory` on ``rank`` when it
    reaches outer iteration ``k`` - models a mid-solve allocation
    failure the driver must degrade around (restart under offload)."""

    rank: int
    k: int

    def __post_init__(self):
        _typed("oom fault", "rank", self.rank, "int")
        _typed("oom fault", "k", self.k, "int")
        if self.rank < 0:
            raise FaultPlanError(f"oom rank must be >= 0, got {self.rank}")
        if self.k < 0:
            raise FaultPlanError(f"oom iteration k must be >= 0, got {self.k}")


@dataclass(frozen=True)
class MemoryFault:
    """Silently flip bits in resident data on ``rank`` when it reaches
    outer iteration ``k`` - the SDC model the ABFT layer
    (:mod:`repro.verify`) exists to catch.

    ``target`` picks the corruption site:

    * ``"block"`` - a resident distance block (the seeded choice among
      the rank's blocks, or block ``(i, j)`` when given);
    * ``"checkpoint"`` - the newest stored snapshot payload for the
      rank (caught by the CRC32 layer on restore);
    * ``"oog"`` - a staged ooGSrGemm product tile between compute and
      apply (offload variants only; silently ignored elsewhere).

    ``bits`` entries get their IEEE sign bit flipped - seeded choices
    among the strictly positive finite entries, the upset the
    min-checksums provably catch on non-negative distances (an upward
    flip of a non-extremal entry is only caught by the sentinel).
    Injection is independent of ``--verify``: with verification off the
    run completes silently wrong, which is how detection coverage is
    measured.
    """

    rank: int
    k: int
    target: str = "block"
    bits: int = 1
    block: Optional[tuple[int, int]] = None

    def __post_init__(self):
        _typed("memflip", "rank", self.rank, "int")
        _typed("memflip", "k", self.k, "int")
        _typed("memflip", "target", self.target, "str")
        _typed("memflip", "bits", self.bits, "int")
        if self.rank < 0:
            raise FaultPlanError(f"memflip rank must be >= 0, got {self.rank}")
        if self.k < 0:
            raise FaultPlanError(f"memflip iteration k must be >= 0, got {self.k}")
        if self.target not in ("block", "checkpoint", "oog"):
            raise FaultPlanError(f"unknown memflip target {self.target!r}")
        if self.bits < 1:
            raise FaultPlanError(f"memflip bits must be >= 1, got {self.bits}")
        if self.block is not None and self.target != "block":
            raise FaultPlanError("memflip i=/j= only apply to target=block")
        if self.block is not None:
            if (
                not isinstance(self.block, tuple)
                or len(self.block) != 2
                or not all(_is_int(v) for v in self.block)
            ):
                raise FaultPlanError(
                    f"memflip block must be an (i, j) pair of integers, got {self.block!r}"
                )
            if any(v < 0 for v in self.block):
                raise FaultPlanError(f"memflip block indices must be >= 0, got {self.block}")


@dataclass(frozen=True)
class FaultPlan:
    """All injected faults of one run, plus the recovery policy.

    The plan is immutable and JSON-serializable; together with its
    ``seed`` it fully determines the injector's behaviour.
    """

    message_faults: tuple[MessageFault, ...] = ()
    nic_windows: tuple[NicWindow, ...] = ()
    stragglers: tuple[ComputeStraggler, ...] = ()
    crashes: tuple[RankCrash, ...] = ()
    ooms: tuple[OomFault, ...] = ()
    memory_faults: tuple[MemoryFault, ...] = ()
    #: Seeds probabilistic selection and corruption patterns.
    seed: int = 0

    # -- recovery policy ---------------------------------------------------
    #: Receive deadline (seconds, simulated) armed inside broadcasts;
    #: None leaves receives blocking (crashes are then detected by
    #: deadlock draining instead of timeouts).
    recv_timeout: Optional[float] = None
    #: Bounded retries of a timed-out receive (each re-requests the
    #: lost payload), with exponential backoff on the deadline.
    max_retries: int = 5
    backoff: float = 2.0
    #: Snapshot owned blocks every C outer iterations (None/0: only the
    #: free initial snapshot exists).
    checkpoint_interval: Optional[int] = None
    #: How many world restarts (crash or OOM) to attempt before giving up.
    max_restarts: int = 4
    #: Restart under the offload variant (Me-ParallelFw) when a
    #: non-offload run hits GpuOutOfMemory.
    oom_degrade: bool = True

    def __post_init__(self):
        _typed("fault plan", "seed", self.seed, "int")
        _typed("fault plan", "recv_timeout", self.recv_timeout, "number", optional=True)
        _typed("fault plan", "max_retries", self.max_retries, "int")
        _typed("fault plan", "backoff", self.backoff, "number")
        _typed(
            "fault plan", "checkpoint_interval", self.checkpoint_interval, "int", optional=True
        )
        _typed("fault plan", "max_restarts", self.max_restarts, "int")
        _typed("fault plan", "oom_degrade", self.oom_degrade, "bool")
        if self.recv_timeout is not None and self.recv_timeout <= 0:
            raise FaultPlanError(f"recv_timeout must be positive, got {self.recv_timeout}")
        if self.max_retries < 0:
            raise FaultPlanError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 1.0:
            raise FaultPlanError(f"backoff must be >= 1, got {self.backoff}")
        if self.checkpoint_interval is not None and self.checkpoint_interval < 0:
            raise FaultPlanError(
                f"checkpoint_interval must be >= 0, got {self.checkpoint_interval}"
            )
        if self.max_restarts < 0:
            raise FaultPlanError(f"max_restarts must be >= 0, got {self.max_restarts}")

    # -- queries -----------------------------------------------------------
    def armed(self) -> bool:
        """True when the plan perturbs or protects anything at all."""
        return bool(
            self.message_faults
            or self.nic_windows
            or self.stragglers
            or self.crashes
            or self.ooms
            or self.memory_faults
            or self.recv_timeout is not None
            or self.checkpoint_interval
        )

    def replace(self, **changes: Any) -> "FaultPlan":
        return dataclasses.replace(self, **changes)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_specs(cls, specs: Sequence[str], seed: int = 0) -> "FaultPlan":
        """Parse CLI-style fault specs (see module docs for grammar)."""
        msg: list[MessageFault] = []
        nic: list[NicWindow] = []
        stragglers: list[ComputeStraggler] = []
        crashes: list[RankCrash] = []
        ooms: list[OomFault] = []
        memflips: list[MemoryFault] = []
        policy: dict[str, Any] = {}
        for spec in specs:
            kind, _, body = spec.partition(":")
            kind = kind.strip().lower()
            kv = _parse_kv(body, spec)
            try:
                if kind in ("drop", "dup", "corrupt"):
                    msg.append(MessageFault(kind=kind, **_pick(kv, spec, "src", "dst", "tag", "nth", "p", "bits")))
                elif kind == "nic":
                    nic.append(NicWindow(**_pick(kv, spec, "node", "factor", "t0", "t1", required=("node", "factor"))))
                elif kind == "straggler":
                    stragglers.append(ComputeStraggler(**_pick(kv, spec, "rank", "factor", required=("rank", "factor"))))
                elif kind == "crash":
                    crashes.append(RankCrash(**_pick(kv, spec, "rank", "at", required=("rank", "at"))))
                elif kind == "oom":
                    ooms.append(OomFault(**_pick(kv, spec, "rank", "k", required=("rank", "k"))))
                elif kind == "memflip":
                    picked = _pick(
                        kv, spec, "rank", "k", "target", "bits", "i", "j", required=("rank", "k")
                    )
                    i, j = picked.pop("i", None), picked.pop("j", None)
                    if (i is None) != (j is None):
                        raise FaultPlanError(
                            f"memflip spec {spec!r} needs both i= and j= or neither"
                        )
                    if i is not None:
                        picked["block"] = (i, j)
                    memflips.append(MemoryFault(**picked))
                elif kind == "policy":
                    rename = {
                        "timeout": "recv_timeout",
                        "retries": "max_retries",
                        "backoff": "backoff",
                        "ckpt": "checkpoint_interval",
                        "restarts": "max_restarts",
                        "oom_degrade": "oom_degrade",
                    }
                    for key, value in kv.items():
                        if key not in rename:
                            raise FaultPlanError(f"unknown policy key {key!r} in {spec!r}")
                        policy[rename[key]] = value
                else:
                    raise FaultPlanError(f"unknown fault kind {kind!r} in {spec!r}")
            except TypeError as exc:  # unexpected keyword from _pick
                raise FaultPlanError(f"bad fault spec {spec!r}: {exc}") from None
        return cls(
            message_faults=tuple(msg),
            nic_windows=tuple(nic),
            stragglers=tuple(stragglers),
            crashes=tuple(crashes),
            ooms=tuple(ooms),
            memory_faults=tuple(memflips),
            seed=seed,
            **policy,
        )

    # -- JSON --------------------------------------------------------------
    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        # asdict turns nested dataclasses into dicts and tuples into
        # lists already; inf does not survive strict JSON, so encode it.
        for w in payload["nic_windows"]:
            if w["t1"] == float("inf"):
                w["t1"] = None
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"invalid fault-plan JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise FaultPlanError("fault-plan JSON must be an object")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys {sorted(unknown)}; known: {sorted(known)}"
            )
        kwargs: dict[str, Any] = dict(raw)
        kwargs["message_faults"] = tuple(
            _nested(MessageFault, m, "message_faults") for m in raw.get("message_faults", ())
        )
        kwargs["nic_windows"] = tuple(
            _nested(
                NicWindow,
                {**w, "t1": float("inf") if w.get("t1", None) is None else w["t1"]}
                if isinstance(w, dict)
                else w,
                "nic_windows",
            )
            for w in raw.get("nic_windows", ())
        )
        kwargs["stragglers"] = tuple(
            _nested(ComputeStraggler, s, "stragglers") for s in raw.get("stragglers", ())
        )
        kwargs["crashes"] = tuple(_nested(RankCrash, c, "crashes") for c in raw.get("crashes", ()))
        kwargs["ooms"] = tuple(_nested(OomFault, o, "ooms") for o in raw.get("ooms", ()))
        kwargs["memory_faults"] = tuple(
            _nested(
                MemoryFault,
                {**m, "block": tuple(m["block"]) if m.get("block") else None}
                if isinstance(m, dict)
                else m,
                "memory_faults",
            )
            for m in raw.get("memory_faults", ())
        )
        return cls(**kwargs)


def _nested(cls, raw: Any, where: str):
    """Construct a nested fault dataclass from decoded JSON, rejecting
    non-objects and unknown keys with a message that names the list the
    entry came from (``TypeError`` sprays a constructor signature;
    chaos configs deserve better)."""
    if not isinstance(raw, dict):
        raise FaultPlanError(f"each entry of {where!r} must be a JSON object, got {raw!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(raw) - known
    if unknown:
        raise FaultPlanError(
            f"unknown keys {sorted(unknown)} in {where!r} entry; known: {sorted(known)}"
        )
    return cls(**raw)


def _parse_kv(body: str, spec: str) -> dict[str, Any]:
    out: dict[str, Any] = {}
    body = body.strip()
    if not body:
        return out
    for item in body.split(","):
        key, sep, value = item.partition("=")
        if not sep:
            raise FaultPlanError(f"expected key=value, got {item!r} in {spec!r}")
        out[key.strip()] = _coerce(value.strip())
    return out


def _coerce(value: str) -> Any:
    low = value.lower()
    if low in ("true", "false"):
        return low == "true"
    if low in ("inf", "+inf"):
        return float("inf")
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _pick(
    kv: dict[str, Any], spec: str, *allowed: str, required: tuple[str, ...] = ()
) -> dict[str, Any]:
    unknown = set(kv) - set(allowed)
    if unknown:
        raise FaultPlanError(f"unknown keys {sorted(unknown)} in fault spec {spec!r}")
    missing = [k for k in required if k not in kv]
    if missing:
        raise FaultPlanError(f"fault spec {spec!r} is missing {missing}")
    return kv


def resolve_fault_plan(
    plan: Union["FaultPlan", Sequence[str], str, None], seed: int = 0
) -> Optional["FaultPlan"]:
    """Normalize the driver's ``fault_plan`` argument.

    Accepts an existing plan, a single spec string, a sequence of spec
    strings, or None - in which case ``$REPRO_FAULT_PLAN`` (JSON) is
    consulted.  Returns None when nothing arms the run.
    """
    if plan is None:
        env_json = os.environ.get(FAULT_PLAN_ENV)
        if not env_json:
            return None
        resolved = FaultPlan.from_json(env_json)
    elif isinstance(plan, FaultPlan):
        resolved = plan
    elif isinstance(plan, str):
        resolved = FaultPlan.from_specs([plan], seed=seed)
    else:
        resolved = FaultPlan.from_specs(list(plan), seed=seed)
    return resolved if resolved.armed() else None
