"""Deterministic fault injection and recovery for the simulated solver.

The package turns failure into a *reproducible input*: a seeded
:class:`FaultPlan` describes what goes wrong (message drops,
duplications, payload corruption, NIC degradation windows, compute
stragglers, rank crashes, mid-solve OOM, silent memory bit-flips for
the ABFT layer in :mod:`repro.verify`) and the recovery policy
(receive timeouts with bounded retry, checkpoint interval, restart
budget, OOM degradation); a :class:`FaultInjector` applies it inside
the transport and machine layers; :class:`CheckpointStore` +
:func:`checkpoint_hook` provide iteration-granular checkpoint/restart.

See ``docs/FAULTS.md`` for the spec grammar and the idempotence
argument behind bit-identical recovery.
"""

from .checkpoint import CheckpointStore, checkpoint_hook, reshard
from .injector import CTRL_NBYTES, FaultInjector, FaultRuntime
from .plan import (
    FAULT_PLAN_ENV,
    ComputeStraggler,
    FaultPlan,
    MemoryFault,
    MessageFault,
    NicWindow,
    OomFault,
    RankCrash,
    resolve_fault_plan,
)

__all__ = [
    "FaultPlan",
    "MessageFault",
    "NicWindow",
    "ComputeStraggler",
    "RankCrash",
    "OomFault",
    "MemoryFault",
    "resolve_fault_plan",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultRuntime",
    "CTRL_NBYTES",
    "CheckpointStore",
    "checkpoint_hook",
    "reshard",
]
