"""Iteration-granular checkpoint/restart for the distributed solvers.

The blocked Floyd-Warshall sweep is bulk-synchronous at iteration
granularity (paper Alg. 3; Alg. 4 merely overlaps adjacent iterations):
at the top of its outer loop every rank's blocks are a pure function of
the input and the iteration counter ``k``.  That makes *uncoordinated*
per-rank snapshots at top-of-loop consistent: a world restored from
``{rank -> snapshot at k}`` and replayed from ``k`` re-executes exactly
the original operand sequence, and the (min,+) semiring's idempotence
(``min(x, x) = x``) guarantees bit-identical results - replayed updates
recompute the same minima from the same operands.

Snapshots live in a (simulated) host-side store.  Saving charges
DRAM-bandwidth time via
:meth:`CostModel.checkpoint_time <repro.machine.cost.CostModel.checkpoint_time>`;
restoring charges the same read cost in the driver's recovery loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import CheckpointError, GpuOutOfMemory

if TYPE_CHECKING:  # pragma: no cover
    from ..core.context import RankState
    from ..core.distribution import LocalBlocks

__all__ = ["CheckpointStore", "checkpoint_hook"]


class CheckpointStore:
    """Host-side store of per-rank block snapshots, keyed by iteration."""

    def __init__(self):
        #: k -> rank -> {(i, j): array copy}
        self._blocks: dict[int, dict[int, "LocalBlocks"]] = {}
        self._nxt: dict[int, dict[int, "LocalBlocks"]] = {}

    def save(
        self,
        k: int,
        rank: int,
        blocks: "LocalBlocks",
        nxt: Optional["LocalBlocks"] = None,
    ) -> None:
        self._blocks.setdefault(k, {})[rank] = {key: b.copy() for key, b in blocks.items()}
        if nxt is not None:
            self._nxt.setdefault(k, {})[rank] = {key: b.copy() for key, b in nxt.items()}

    def checkpoints(self) -> list[int]:
        return sorted(self._blocks)

    def consistent_k(self, world_size: int) -> Optional[int]:
        """The newest iteration every rank has a snapshot for, or None.

        A crash can strike while some ranks have checkpointed iteration
        k and others have not; only a cut *all* ranks crossed is a
        legal restart point."""
        consistent = [k for k, by_rank in self._blocks.items() if len(by_rank) == world_size]
        return max(consistent) if consistent else None

    def restore(self, k: int, rank: int) -> "LocalBlocks":
        """A fresh deep copy of ``rank``'s snapshot at iteration ``k``
        (the store's own copy stays pristine for further restarts)."""
        try:
            snap = self._blocks[k][rank]
        except KeyError:
            raise CheckpointError(
                f"no checkpoint for rank {rank} at iteration {k}"
            ) from None
        return {key: b.copy() for key, b in snap.items()}

    def restore_nxt(self, k: int, rank: int) -> Optional["LocalBlocks"]:
        snap = self._nxt.get(k, {}).get(rank)
        if snap is None:
            return None
        return {key: b.copy() for key, b in snap.items()}


def checkpoint_hook(state: "RankState", k: int):
    """Generator: top-of-outer-loop hook every rank program runs.

    Unarmed (``ctx.faults is None``) it returns without yielding - no
    simulated events, so traces and makespans are untouched.  Armed it:

    1. records the rank's progress (``state.cur_k``, used to count
       replayed iterations after a restart);
    2. fires any injected :class:`~repro.faults.plan.OomFault` for this
       (rank, k) as a :class:`~repro.errors.GpuOutOfMemory`;
    3. every ``checkpoint_interval`` iterations, charges the DRAM write
       time and snapshots the rank's owned blocks into the store.
    """
    rt = state.ctx.faults
    if rt is None:
        return
    state.cur_k = k
    inj = rt.injector
    if inj.should_oom(state.me, k):
        inj.count("faults.oom_injected")
        gpu = state.gpu
        raise GpuOutOfMemory(
            max(1, int(state.hbm_charged)), 0, gpu.spec.hbm_bytes, device=gpu.name
        )
    interval = inj.plan.checkpoint_interval
    if not interval:
        return
    if k == 0 or k % interval != 0 or rt.last_saved.get(state.me, -1) >= k:
        return
    ctx = state.ctx
    b = ctx.b
    rows = len(state.local_rows())
    cols = len(state.local_cols())
    duration = ctx.cost.checkpoint_time(rows * b, cols * b)
    if state.nxt is not None:
        duration *= 3  # int64 pointer blocks cost 2x the distances
    start = ctx.env.now
    yield ctx.env.timeout(duration)
    rt.store.save(k, state.me, state.blocks, state.nxt)
    rt.last_saved[state.me] = k
    inj.count("faults.checkpoints")
    inj.count("faults.checkpoint_time", duration)
    if ctx.tracer is not None:
        ctx.tracer.record(f"rank{state.me}", "checkpoint", f"ckpt(k={k})", start, ctx.env.now)
