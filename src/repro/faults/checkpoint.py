"""Iteration-granular checkpoint/restart for the distributed solvers.

The blocked Floyd-Warshall sweep is bulk-synchronous at iteration
granularity (paper Alg. 3; Alg. 4 merely overlaps adjacent iterations):
at the top of its outer loop every rank's blocks are a pure function of
the input and the iteration counter ``k``.  That makes *uncoordinated*
per-rank snapshots at top-of-loop consistent: a world restored from
``{rank -> snapshot at k}`` and replayed from ``k`` re-executes exactly
the original operand sequence, and the (min,+) semiring's idempotence
(``min(x, x) = x``) guarantees bit-identical results - replayed updates
recompute the same minima from the same operands.

Snapshots live in a (simulated) host-side store.  Saving charges
DRAM-bandwidth time via
:meth:`CostModel.checkpoint_time <repro.machine.cost.CostModel.checkpoint_time>`;
restoring charges the same read cost in the driver's recovery loop.

Integrity: every saved block carries a CRC32 (the same primitive the
transport layer uses for message payloads).  :meth:`CheckpointStore.restore`
refuses to hand out a snapshot whose bytes no longer match, and
:meth:`CheckpointStore.consistent_k` skips corrupted epochs entirely, so
a restart falls back to the newest *uncorrupted* consistent cut instead
of silently restoring garbage.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Optional

from ..errors import CheckpointError, GpuOutOfMemory

if TYPE_CHECKING:  # pragma: no cover
    from ..core.context import RankState
    from ..core.distribution import LocalBlocks

__all__ = ["CheckpointStore", "checkpoint_hook", "reshard"]


class CheckpointStore:
    """Host-side store of per-rank block snapshots, keyed by iteration."""

    def __init__(self):
        #: k -> rank -> {(i, j): array copy}
        self._blocks: dict[int, dict[int, "LocalBlocks"]] = {}
        self._nxt: dict[int, dict[int, "LocalBlocks"]] = {}
        #: k -> rank -> {(i, j): crc32 at save time}, one dict per store.
        self._crc: dict[int, dict[int, dict]] = {}
        self._crc_nxt: dict[int, dict[int, dict]] = {}
        #: How many snapshots failed their CRC when consulted (restore
        #: or consistency scan) - observability for corrupted-epoch
        #: fallbacks.
        self.crc_rejections: int = 0

    @staticmethod
    def _crc32(arr) -> int:
        # tobytes() serializes in C order regardless of layout, so the
        # checksum is layout-independent and cheap to recompute.
        return zlib.crc32(arr.tobytes())

    def save(
        self,
        k: int,
        rank: int,
        blocks: "LocalBlocks",
        nxt: Optional["LocalBlocks"] = None,
    ) -> None:
        snap = {key: b.copy() for key, b in blocks.items()}
        self._blocks.setdefault(k, {})[rank] = snap
        self._crc.setdefault(k, {})[rank] = {key: self._crc32(b) for key, b in snap.items()}
        if nxt is not None:
            nsnap = {key: b.copy() for key, b in nxt.items()}
            self._nxt.setdefault(k, {})[rank] = nsnap
            self._crc_nxt.setdefault(k, {})[rank] = {
                key: self._crc32(b) for key, b in nsnap.items()
            }

    def checkpoints(self) -> list[int]:
        return sorted(self._blocks)

    def _corrupted_key(self, k: int, rank: int):
        """The first block key whose stored bytes no longer match their
        save-time CRC32, or None when the snapshot is intact."""
        crcs = self._crc.get(k, {}).get(rank, {})
        for key, snap in self._blocks[k][rank].items():
            if self._crc32(snap) != crcs.get(key):
                return key
        ncrcs = self._crc_nxt.get(k, {}).get(rank)
        if ncrcs is not None:
            for key, snap in self._nxt[k][rank].items():
                if self._crc32(snap) != ncrcs.get(key):
                    return key
        return None

    def consistent_k(self, world_size: int) -> Optional[int]:
        """The newest iteration every rank has an *uncorrupted* snapshot
        for, or None.

        A crash can strike while some ranks have checkpointed iteration
        k and others have not; only a cut *all* ranks crossed is a
        legal restart point.  Epochs containing any CRC-mismatched
        snapshot are skipped the same way - restoring them would replay
        from garbage."""
        best: Optional[int] = None
        for k in sorted(self._blocks, reverse=True):
            by_rank = self._blocks[k]
            if len(by_rank) != world_size:
                continue
            bad = next((r for r in by_rank if self._corrupted_key(k, r) is not None), None)
            if bad is not None:
                self.crc_rejections += 1
                continue
            best = k
            break
        return best

    def restore(self, k: int, rank: int) -> "LocalBlocks":
        """A fresh deep copy of ``rank``'s snapshot at iteration ``k``
        (the store's own copy stays pristine for further restarts).
        Raises :class:`CheckpointError` when the snapshot is missing or
        fails its CRC32 integrity check."""
        try:
            snap = self._blocks[k][rank]
        except KeyError:
            raise CheckpointError(
                f"no checkpoint for rank {rank} at iteration {k}"
            ) from None
        bad = self._corrupted_key(k, rank)
        if bad is not None:
            self.crc_rejections += 1
            raise CheckpointError(
                f"checkpoint for rank {rank} at iteration {k} is corrupted "
                f"(CRC32 mismatch on block {bad})"
            )
        return {key: b.copy() for key, b in snap.items()}

    def restore_nxt(self, k: int, rank: int) -> Optional["LocalBlocks"]:
        snap = self._nxt.get(k, {}).get(rank)
        if snap is None:
            return None
        return {key: b.copy() for key, b in snap.items()}


def reshard(
    store: CheckpointStore,
    k: int,
    old_world: int,
    new_grid,
    nb: int,
    track_paths: bool = False,
) -> CheckpointStore:
    """Re-key one consistent cut onto a new process grid.

    Block snapshots are keyed by *global* block coordinates ``(i, j)``,
    so a cut taken under one grid can seed a differently shaped world
    as long as the blocking (``nb``) is unchanged: union the old ranks'
    snapshots at iteration ``k``, then re-select each new rank's owned
    tile.  Used by the scheduler's re-plan ladder so a job squeezed
    onto a smaller healthy fleet keeps its checkpoint progress instead
    of restarting from scratch.

    Every restored snapshot is CRC-validated by :meth:`CheckpointStore.restore`;
    a corrupted or missing snapshot raises :class:`CheckpointError` and
    the caller falls back to a from-scratch retry.
    """
    merged: dict = {}
    merged_nxt: dict = {}
    for r in range(old_world):
        merged.update(store.restore(k, r))
        nxt = store.restore_nxt(k, r)
        if nxt:
            merged_nxt.update(nxt)
    out = CheckpointStore()
    for r in range(new_grid.pr * new_grid.pc):
        rows = new_grid.local_block_rows(r, nb)
        cols = new_grid.local_block_cols(r, nb)
        try:
            blocks = {(i, j): merged[(i, j)] for i in rows for j in cols}
            nxt = (
                {(i, j): merged_nxt[(i, j)] for i in rows for j in cols}
                if track_paths
                else None
            )
        except KeyError as missing:
            raise CheckpointError(
                f"cannot reshard checkpoint k={k}: block {missing} is missing"
            ) from None
        out.save(k, r, blocks, nxt)
    return out


def checkpoint_hook(state: "RankState", k: int):
    """Generator: top-of-outer-loop hook every rank program runs.

    Unarmed (``ctx.faults is None``) it returns without yielding - no
    simulated events, so traces and makespans are untouched.  Armed it:

    1. records the rank's progress (``state.cur_k``, used to count
       replayed iterations after a restart);
    2. fires any injected :class:`~repro.faults.plan.OomFault` for this
       (rank, k) as a :class:`~repro.errors.GpuOutOfMemory`;
    3. every ``checkpoint_interval`` iterations, charges the DRAM write
       time and snapshots the rank's owned blocks into the store;
    4. fires any :class:`~repro.faults.plan.MemoryFault` due at this
       (rank, k) - *after* the save, so snapshots capture pristine state
       and the upset models rot that happened since.
    """
    rt = state.ctx.faults
    if rt is None:
        return
    state.cur_k = k
    inj = rt.injector
    if inj.should_oom(state.me, k):
        inj.count("faults.oom_injected")
        gpu = state.gpu
        raise GpuOutOfMemory(
            max(1, int(state.hbm_charged)), 0, gpu.spec.hbm_bytes, device=gpu.name
        )
    interval = inj.plan.checkpoint_interval
    due = (
        bool(interval)
        and k > 0
        and k % interval == 0
        and rt.last_saved.get(state.me, -1) < k
    )
    if due:
        ctx = state.ctx
        b = ctx.b
        rows = len(state.local_rows())
        cols = len(state.local_cols())
        duration = ctx.cost.checkpoint_time(rows * b, cols * b)
        if state.nxt is not None:
            duration *= 3  # int64 pointer blocks cost 2x the distances
        start = ctx.env.now
        yield ctx.env.timeout(duration)
        rt.store.save(k, state.me, state.blocks, state.nxt)
        rt.last_saved[state.me] = k
        inj.count("faults.checkpoints")
        inj.count("faults.checkpoint_time", duration)
        if ctx.tracer is not None:
            ctx.tracer.record(
                f"rank{state.me}", "checkpoint", f"ckpt(k={k})", start, ctx.env.now
            )
    if inj.plan.memory_faults:
        inj.fire_checkpoint_flips(rt.store, state.me, k)
        inj.fire_block_flips(state, k)
