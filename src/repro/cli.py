"""Command-line interface: ``repro-apsp``.

Run a simulated distributed APSP from the shell::

    repro-apsp solve --n 128 --block 16 --variant async --nodes 4 \
        --ranks-per-node 4 --validate
    repro-apsp solve --n 128 --kernel-backend tiled
    repro-apsp solve --n 128 --metrics-out metrics.json --trace-out trace.json
    repro-apsp profile --n 96 --nodes 2 --report-json report.json \
        --trace-out trace.json
    repro-apsp tune --n 300000 --nodes 64 --ranks-per-node 12
    repro-apsp variants
    repro-apsp backends

Solve once, then answer distance queries from the persisted artifact
(the serving layer, docs/SERVING.md)::

    repro-apsp serve build runs/road.apsp --n 256 --nodes 4
    repro-apsp serve info runs/road.apsp
    repro-apsp serve update runs/road.apsp --edge 4,7,0.25
    repro-apsp query runs/road.apsp --pair 0,255 --pair 3,9 \
        --nearest 0,5 --cache-bytes 268435456

All solver paths route through :func:`repro.solve` /
:class:`repro.SolveConfig`; ``--metrics-out``/``--trace-out`` sinks are
validated *before* solving and an unusable path exits with code 12
(:class:`~repro.errors.SinkError`).  An unusable or corrupt artifact
exits 17 (:class:`~repro.errors.ArtifactError`), a malformed query 18
(:class:`~repro.errors.QueryError`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

def _add_obs_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write the run's metrics catalog as JSON (path validated before solving; "
        "profile writes one file per variant, suffixed .<variant>.json)",
    )
    p.add_argument(
        "--trace-out",
        type=str,
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON openable in Perfetto/about:tracing "
        "(profile writes one file per variant, suffixed .<variant>.json)",
    )


def _add_cluster_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", type=int, default=1, help="number of simulated nodes")
    p.add_argument(
        "--ranks-per-node", type=int, default=4, help="MPI ranks per node (paper: 12)"
    )
    p.add_argument(
        "--machine",
        default="summit",
        choices=["summit", "frontier-like", "workstation"],
        help="machine preset (hardware constants)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-apsp",
        description="Distributed multi-GPU Floyd-Warshall APSP on a simulated cluster "
        "(reproduction of Sao et al., HPDC '21)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="run one APSP and report performance")
    solve.add_argument("--n", type=int, default=128, help="number of vertices")
    solve.add_argument("--input", type=str, default=None, help=".npz weight matrix (overrides --n)")
    solve.add_argument("--block", type=int, default=None, help="block size b")
    solve.add_argument(
        "--variant",
        default="async",
        choices=["baseline", "pipelined", "reordering", "async", "offload",
                 "offload-pipelined"],
    )
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--density", type=float, default=1.0, help="edge probability")
    solve.add_argument("--scale", type=float, default=1.0, help="virtual/physical dim scale")
    solve.add_argument("--validate", action="store_true", help="check against the sequential oracle")
    solve.add_argument("--trace", action="store_true", help="print a per-category time breakdown")
    solve.add_argument("--output", type=str, default=None, help="save distances to .npz")
    solve.add_argument("--paths", action="store_true",
                       help="track next-hop pointers (distributed path generation)")
    solve.add_argument("--sparse", action="store_true",
                       help="exploit block sparsity (skip all-infinite blocks)")
    solve.add_argument(
        "--kernel-backend",
        type=str,
        default=None,
        metavar="NAME",
        help="SrGemm kernel backend (see `repro-apsp backends`); default: "
        "$REPRO_SRGEMM_BACKEND or 'reference'",
    )
    solve.add_argument(
        "--faults",
        action="append",
        default=None,
        metavar="SPEC",
        help="inject a fault, e.g. 'drop:src=0,dst=3,nth=1', "
        "'nic:node=0,factor=4,t0=0,t1=1e-3', 'crash:rank=2,at=1e-4', "
        "'policy:timeout=1e-3,ckpt=4'; repeatable (see docs/FAULTS.md)",
    )
    solve.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="C",
        help="snapshot rank state every C outer iterations (arms fault tolerance)",
    )
    solve.add_argument(
        "--recv-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="simulated receive deadline inside broadcasts, with bounded "
        "retry-and-retransmit on expiry (arms fault tolerance)",
    )
    solve.add_argument(
        "--fault-seed", type=int, default=0, help="seed for probabilistic fault selection"
    )
    solve.add_argument(
        "--verify",
        default="off",
        choices=["off", "checksum", "full"],
        help="ABFT verification: 'checksum' guards every SrGemm with "
        "(min,+) checksums and repairs corrupted tiles in place; 'full' "
        "adds a per-iteration monotonicity sentinel and a sampled "
        "triangle-inequality audit; a certificate is printed and a "
        "failing one exits with a distinct code (see docs/FAULTS.md)",
    )
    _add_obs_args(solve)
    _add_cluster_args(solve)

    profile = sub.add_parser(
        "profile",
        help="instrumented runs per variant + perf-model validation report",
    )
    profile.add_argument("--n", type=int, default=96, help="number of vertices")
    profile.add_argument("--input", type=str, default=None, help=".npz weight matrix (overrides --n)")
    profile.add_argument("--block", type=int, default=None, help="block size b")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--density", type=float, default=1.0, help="edge probability")
    profile.add_argument("--scale", type=float, default=1.0, help="virtual/physical dim scale")
    profile.add_argument(
        "--variants",
        default="baseline,pipelined,offload",
        metavar="LIST",
        help="comma-separated variants to instrument (default: baseline,pipelined,offload)",
    )
    profile.add_argument(
        "--report-json",
        type=str,
        default=None,
        metavar="PATH",
        help="write the validation report (constants + predicted-vs-measured rows) as JSON",
    )
    profile.add_argument(
        "--kernel-backend",
        type=str,
        default=None,
        metavar="NAME[,NAME...]",
        help="SrGemm backend for the instrumented runs; a comma-separated "
        "list or 'all' enters sweep mode, profiling each available "
        "backend and printing a fitted-t_f / wall-clock comparison table",
    )
    _add_obs_args(profile)
    _add_cluster_args(profile)

    tune = sub.add_parser("tune", help="model-driven parameter recommendation")
    tune.add_argument("--n", type=float, required=True, help="virtual vertex count")
    tune.add_argument("--offload", action="store_true")
    _add_cluster_args(tune)

    sub.add_parser("variants", help="list solver variants")

    sub.add_parser("backends", help="list SrGemm kernel backends and availability")

    analyze = sub.add_parser("analyze", help="graph analytics on a saved distance matrix")
    analyze.add_argument("input", type=str, help=".npz produced by solve --output")
    analyze.add_argument("--top", type=int, default=5, help="how many central vertices to list")

    placement = sub.add_parser("placement", help="show a rank placement diagram (paper Fig. 1)")
    placement.add_argument("--pr", type=int, required=True)
    placement.add_argument("--pc", type=int, required=True)
    placement.add_argument("--qr", type=int, required=True)
    placement.add_argument("--qc", type=int, required=True)

    sched = sub.add_parser(
        "sched",
        help="run a multi-tenant job mix on one shared cluster (see docs/SCHEDULING.md)",
    )
    sched.add_argument(
        "spec", type=str,
        help="job-mix JSON: machine/n_nodes plus a 'jobs' array "
        "(graph, config, priority, weight, arrival per job)",
    )
    sched.add_argument(
        "--report-json", type=str, default=None, metavar="PATH",
        help="write per-job reports + fleet metrics as JSON",
    )
    sched.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write the fleet metrics catalog as JSON",
    )
    sched.add_argument(
        "--trace-out", type=str, default=None, metavar="PATH",
        help="write a job-tagged Chrome trace_event JSON of the whole fleet "
        "(per-job Perfetto lanes; forces fleet tracing on)",
    )
    sched.add_argument(
        "--no-resilience", action="store_true",
        help="strip the spec's 'resilience' policy and per-job "
        "retry/deadline fields: jobs fail terminally on first error "
        "(the PR-8 exact baseline; see docs/RESILIENCE.md)",
    )

    fuzz = sub.add_parser(
        "fuzz", help="coverage-driven scenario fuzzer (see docs/FUZZING.md)"
    )
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    frun = fuzz_sub.add_parser("run", help="run a budgeted fuzzing session")
    frun.add_argument("--budget", type=int, default=50, help="number of scenarios")
    frun.add_argument("--seed", type=int, default=0, help="generator seed")
    frun.add_argument(
        "--jobs", type=int, default=1,
        help="concurrent sandboxed scenarios (implies --isolate when > 1)",
    )
    frun.add_argument(
        "--corpus", type=str, default=None, metavar="PATH",
        help="append every scenario+outcome to this JSONL scenario database",
    )
    frun.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-scenario wall-clock timeout (implies --isolate)",
    )
    frun.add_argument(
        "--isolate", action="store_true",
        help="fork a sandbox child per scenario (hangs/hard crashes become findings)",
    )
    frun.add_argument(
        "--no-autopilot", action="store_true",
        help="uniform sampling instead of coverage-biased generation",
    )
    frun.add_argument(
        "--no-shrink", action="store_true", help="skip delta-debugging of findings"
    )
    frun.add_argument(
        "--max-findings", type=int, default=0,
        help="stop after this many findings (0 = exhaust the budget)",
    )
    frun.add_argument(
        "--report-json", type=str, default=None, metavar="PATH",
        help="write the machine-readable session report",
    )

    freplay = fuzz_sub.add_parser(
        "replay", help="re-run a corpus scenario and byte-compare digests"
    )
    freplay.add_argument("id", type=str, help="scenario id (or unambiguous prefix)")
    freplay.add_argument(
        "--corpus", type=str, required=True, metavar="PATH", help="JSONL scenario database"
    )

    fcorpus = fuzz_sub.add_parser("corpus", help="inspect or maintain a corpus")
    fcorpus_sub = fcorpus.add_subparsers(dest="corpus_command", required=True)
    fls = fcorpus_sub.add_parser("ls", help="list corpus records")
    fls.add_argument("--corpus", type=str, required=True, metavar="PATH")
    fls.add_argument(
        "--findings", action="store_true", help="only records with oracle violations"
    )
    fmin = fcorpus_sub.add_parser(
        "minimize", help="rewrite keeping only findings and minimized repros"
    )
    fmin.add_argument("--corpus", type=str, required=True, metavar="PATH")
    fmin.add_argument(
        "--output", type=str, default=None, metavar="PATH",
        help="write here instead of rewriting in place",
    )

    serve = sub.add_parser(
        "serve", help="persist and manage solve artifacts (see docs/SERVING.md)"
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    sbuild = serve_sub.add_parser(
        "build", help="solve and persist a query-ready artifact directory"
    )
    sbuild.add_argument("artifact", type=str, help="artifact directory to create")
    sbuild.add_argument("--n", type=int, default=128, help="number of vertices")
    sbuild.add_argument("--input", type=str, default=None,
                        help=".npz weight matrix (overrides --n)")
    sbuild.add_argument("--block", type=int, default=None, help="solver block size b")
    sbuild.add_argument(
        "--artifact-block", type=int, default=None, metavar="B",
        help="artifact tile size (default: min(n, 128); independent of --block)",
    )
    sbuild.add_argument(
        "--variant",
        default="async",
        choices=["baseline", "pipelined", "reordering", "async", "offload",
                 "offload-pipelined"],
    )
    sbuild.add_argument("--seed", type=int, default=0)
    sbuild.add_argument("--density", type=float, default=1.0, help="edge probability")
    sbuild.add_argument(
        "--kernel-backend", type=str, default=None, metavar="NAME",
        help="SrGemm kernel backend for the solve",
    )
    sbuild.add_argument(
        "--overwrite", action="store_true",
        help="replace an existing artifact directory at the target path",
    )
    sbuild.add_argument(
        "--no-graph", action="store_true",
        help="omit the weight matrix from the artifact "
        "(smaller, but disables `serve update`)",
    )
    _add_cluster_args(sbuild)

    sinfo = serve_sub.add_parser("info", help="describe an artifact")
    sinfo.add_argument("artifact", type=str, help="artifact directory")

    supdate = serve_sub.add_parser(
        "update", help="apply edge updates, rewriting only dirtied tiles"
    )
    supdate.add_argument("artifact", type=str, help="artifact directory")
    supdate.add_argument(
        "--edge", action="append", required=True, metavar="U,V,W",
        help="set edge (u, v) to weight w ('inf' removes it); repeatable",
    )
    supdate.add_argument(
        "--kernel-backend", type=str, default=None, metavar="NAME",
        help="SrGemm backend for any escalated re-solve",
    )
    supdate.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write serve.* metrics (incl. incremental counters) as JSON",
    )

    query = sub.add_parser(
        "query", help="answer distance queries from a solve artifact"
    )
    query.add_argument("artifact", type=str, help="artifact directory")
    query.add_argument(
        "--pair", action="append", default=None, metavar="S,T",
        help="print d(s, t); repeatable (all pairs answered as one batch)",
    )
    query.add_argument(
        "--nearest", type=str, default=None, metavar="S,K",
        help="print the k nearest reachable vertices to s",
    )
    query.add_argument(
        "--submatrix", type=str, default=None, metavar="ROWS:COLS",
        help="print a dense submatrix; ROWS and COLS are comma lists, "
        "e.g. '0,1,2:5,9'",
    )
    query.add_argument(
        "--cache-bytes", type=int, default=None, metavar="BYTES",
        help="block-cache budget (default: $REPRO_SERVE_CACHE_BYTES or 64 MiB)",
    )
    query.add_argument(
        "--no-verify", action="store_true",
        help="skip per-block CRC32 verification on first load",
    )
    query.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="write serve.* metrics (cache hits/misses, query counts) as JSON",
    )

    return parser


def _load_graph(args: argparse.Namespace):
    from .graphs import erdos_renyi, load_matrix, uniform_random_dense

    if args.input:
        return load_matrix(args.input)
    if args.density >= 1.0:
        return uniform_random_dense(args.n, seed=args.seed)
    return erdos_renyi(args.n, args.density, seed=args.seed)


def cmd_solve(args: argparse.Namespace) -> int:
    from .api import ObsSinks, SolveConfig, solve
    from .graphs import save_matrix

    config = SolveConfig.from_env(
        variant=args.variant,
        block_size=args.block,
        n_nodes=args.nodes,
        ranks_per_node=args.ranks_per_node,
        machine=args.machine,
        dim_scale=args.scale,
        validate=args.validate,
        trace=args.trace,
        track_paths=args.paths,
        exploit_sparsity=args.sparse,
        kernel_backend=args.kernel_backend,
        fault_plan=args.faults,
        checkpoint_interval=args.checkpoint_interval,
        recv_timeout=args.recv_timeout,
        fault_seed=args.fault_seed,
        verify=args.verify,
        obs=ObsSinks(metrics_out=args.metrics_out, trace_out=args.trace_out),
    )
    # Sinks fail fast (exit 12) before the graph is even built.
    config.obs.validate()
    w = _load_graph(args)
    result = solve(w, config)
    print(result.report.summary())
    if result.fault_counters:
        print("\nfault injection / recovery:")
        for name, value in sorted(result.fault_counters.items()):
            print(f"  {name:<28s} {value:g}")
    if result.verification is not None:
        print("\nverification certificate:")
        for key, value in result.verification.items():
            print(f"  {key:<20s} {value}")
    if args.validate:
        print("validation: OK (matches sequential blocked Floyd-Warshall)")
    if args.trace and result.tracer is not None:
        print("\nper-category busy time:")
        cats = sorted({s.category for s in result.tracer.spans})
        for c in cats:
            print(f"  {c:<14s} {result.tracer.total_time(c):.6f} s total across actors")
    if args.output:
        save_matrix(args.output, result.dist)
        print(f"distances written to {args.output}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.trace_out:
        print(f"Chrome trace written to {args.trace_out} (open in Perfetto)")
    return 0


def _variant_sink(path: str, variant: str) -> str:
    """Derive the per-variant sink file: trace.json -> trace.offload.json."""
    import os

    root, ext = os.path.splitext(path)
    return f"{root}.{variant}{ext or '.json'}"


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from .api import ObsSinks
    from .obs.export import write_chrome_trace
    from .obs.validation import run_profile

    variants = tuple(v.strip() for v in args.variants.split(",") if v.strip())
    if not variants:
        from .errors import ConfigurationError

        raise ConfigurationError("--variants must name at least one variant")
    # Validate every sink (including derived per-variant files) before
    # spending any time solving.
    sinks = [args.report_json] if args.report_json else []
    for path in (args.metrics_out, args.trace_out):
        if path:
            sinks.extend(_variant_sink(path, v) for v in variants)
    for path in sinks:
        ObsSinks(metrics_out=path).validate()

    w = _load_graph(args)
    backends = _profile_backends(args.kernel_backend)
    if len(backends) > 1:
        return _profile_backend_sweep(args, w, variants, backends)
    prof = run_profile(
        w,
        variants=variants,
        block_size=args.block,
        machine=args.machine,
        n_nodes=args.nodes,
        ranks_per_node=args.ranks_per_node,
        dim_scale=args.scale,
        kernel_backend=backends[0],
    )
    print(prof.report.summary())
    if args.report_json:
        with open(args.report_json, "w") as f:
            json.dump(prof.report.to_dict(), f, indent=2)
        print(f"\nvalidation report written to {args.report_json}")
    for variant, result in prof.results.items():
        if args.metrics_out:
            path = _variant_sink(args.metrics_out, variant)
            with open(path, "w") as f:
                json.dump(result.metrics.as_dict(), f, indent=2)
            print(f"metrics[{variant}] written to {path}")
        if args.trace_out:
            path = _variant_sink(args.trace_out, variant)
            write_chrome_trace(result.tracer, path, run_name=f"repro profile {variant}")
            print(f"trace[{variant}] written to {path} (open in Perfetto)")
    return 0


def _profile_backends(spec) -> list:
    """Resolve the profile --kernel-backend spec to a backend list.

    ``None`` → [None] (process default, single-backend mode); a single
    name → [name]; a comma list or ``all`` → sweep over the named /
    every available backend.
    """
    if spec is None:
        return [None]
    if spec.strip().lower() == "all":
        from .semiring.backends import available_backends

        return sorted(available_backends())
    names = [s.strip() for s in spec.split(",") if s.strip()]
    if not names:
        from .errors import ConfigurationError

        raise ConfigurationError("--kernel-backend must name at least one backend")
    from .semiring.backends import get_backend

    for name in names:  # fail fast on unknown/unavailable names
        get_backend(name)
    return names


def _profile_backend_sweep(args: argparse.Namespace, w, variants, backends) -> int:
    """Sweep mode: one instrumented profile per backend, then a
    comparison table of fitted t_f (simulated; backend-invariant by
    design) against the physical wall-clock rate each backend achieved
    (from the ``kernel.wall_seconds`` meter)."""
    import json

    from .obs.validation import run_profile

    rows = []
    reports = {}
    for name in backends:
        prof = run_profile(
            w,
            variants=variants,
            block_size=args.block,
            machine=args.machine,
            n_nodes=args.nodes,
            ranks_per_node=args.ranks_per_node,
            dim_scale=args.scale,
            kernel_backend=name,
        )
        reports[name] = prof.report.to_dict()
        flops = sum(
            r.metrics.value("kernel.flops", 0.0) for r in prof.results.values()
        )
        wall = sum(
            r.metrics.value("kernel.wall_seconds", 0.0) for r in prof.results.values()
        )
        rows.append(
            {
                "backend": name,
                "t_f_fitted": prof.report.constants.t_f,
                "kernel_flops": flops,
                "kernel_wall_seconds": wall,
                "wall_t_f": (wall / flops) if flops else float("nan"),
                "wall_gflops": (flops / wall / 1e9) if wall else float("nan"),
            }
        )
    print(f"kernel-backend sweep over {len(rows)} backends "
          f"(variants: {', '.join(variants)})")
    print(f"{'backend':<12s} {'fitted t_f':>12s} {'wall t_f':>12s} {'wall GF/s':>10s}")
    for r in rows:
        print(
            f"{r['backend']:<12s} {r['t_f_fitted']:>12.3e} "
            f"{r['wall_t_f']:>12.3e} {r['wall_gflops']:>10.3f}"
        )
    print(
        "\nfitted t_f is derived from simulated kernel-busy time and is "
        "backend-invariant by design; wall t_f / GF/s measure the physical "
        "kernel speed of each backend on this host."
    )
    if args.report_json:
        with open(args.report_json, "w") as f:
            json.dump({"sweep": rows, "reports": reports}, f, indent=2)
        print(f"\nsweep report written to {args.report_json}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    import numpy as np

    from .machine import MACHINES, CostModel
    from .perfmodel import min_offload_block_size, tune, tune_kernel_tiling

    cost = CostModel(MACHINES[args.machine])
    report = tune(cost, args.n, args.nodes, args.ranks_per_node, offload=args.offload)
    print(report.summary())
    if args.offload:
        print(f"Eq. 5 minimum offload block size: {min_offload_block_size(cost):.0f}")
    b = report.block_size
    kt = tune_kernel_tiling(b, b, b, np.dtype(np.float64).itemsize)
    print(
        f"kernel tiling at b={b} (float64): tile {kt.tile_m}x{kt.tile_n}, "
        f"k-chunk {kt.k_chunk}, byte budget {kt.byte_budget}"
    )
    return 0


def cmd_backends(_: argparse.Namespace) -> int:
    from .semiring.backends import default_backend_name, registered_backends

    default = default_backend_name()
    for name, backend in sorted(registered_backends().items()):
        marker = "*" if name == default else " "
        print(f"{marker} {name:<12s} {backend.describe()}")
    print("\n* = default (override with --kernel-backend or $REPRO_SRGEMM_BACKEND)")
    return 0


def cmd_variants(_: argparse.Namespace) -> int:
    from .core.variants import VARIANT_DESCRIPTIONS

    for v, desc in VARIANT_DESCRIPTIONS.items():
        print(f"{v.value:<12s} {desc}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis import closeness_centrality, summarize
    from .graphs import load_matrix

    dist = load_matrix(args.input)
    s = summarize(dist)
    print(f"vertices:          {s.n}")
    print(f"reachable pairs:   {s.reachable_pairs} of {s.n * (s.n - 1)}")
    print(f"strongly connected components: {s.components}")
    print(f"diameter / radius: {s.diameter:.4g} / {s.radius:.4g}")
    print(f"mean distance:     {s.average_distance:.4g}")
    print(f"center vertices:   {list(s.center)[:args.top]}")
    print(f"periphery:         {list(s.periphery)[:args.top]}")
    closeness = closeness_centrality(dist)
    order = np.argsort(closeness)[::-1][: args.top]
    print("top closeness:     " + ", ".join(f"v{int(v)}={closeness[v]:.4f}" for v in order))
    return 0


def cmd_placement(args: argparse.Namespace) -> int:
    from .core import ProcessGrid, tiled_placement

    p = tiled_placement(ProcessGrid(args.pr, args.pc), args.qr, args.qc)
    print(p.describe())
    print(p.ascii_diagram())
    return 0


def cmd_sched(args: argparse.Namespace) -> int:
    import json

    from .api import _check_sink_path
    from .sched import load_job_mix, run_job_mix

    for path in (args.report_json, args.metrics_out, args.trace_out):
        if path is not None:
            _check_sink_path(path)
    spec = load_job_mix(args.spec)
    if args.no_resilience:
        spec = dict(spec)
        spec.pop("resilience", None)
        spec["jobs"] = [
            {k: v for k, v in job.items() if k not in ("retry", "deadline")}
            for job in spec.get("jobs", [])
        ]
    scheduler, reports = run_job_mix(
        spec, trace=True if args.trace_out else None
    )

    print(
        f"{'job':<16s} {'status':<9s} {'prio':>4s} {'queued':>10s} "
        f"{'elapsed':>10s} {'latency':>10s} {'exit':>4s}"
    )
    for r in reports:
        print(
            f"{r.name:<16s} {r.status:<9s} {r.priority:>4d} "
            f"{r.queue_wait:>10.6f} {r.elapsed:>10.6f} {r.latency:>10.6f} "
            f"{r.exit_code:>4d}"
        )
        if r.error:
            print(f"  {r.name}: {r.error}")
    flat = scheduler.fleet_metrics().flat()
    print("\nfleet:")
    for key in sorted(flat):
        if key.startswith("fleet."):
            print(f"  {key:<28s} {flat[key]:g}")

    if args.report_json:
        payload = {
            "spec": args.spec,
            "jobs": [r.as_dict() for r in reports],
            "fleet": {k: v for k, v in sorted(flat.items()) if k.startswith("fleet.")},
        }
        with open(args.report_json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"report written to {args.report_json}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as fh:
            json.dump(scheduler.fleet_metrics().as_dict(), fh, indent=2)
        print(f"fleet metrics written to {args.metrics_out}")
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            json.dump(scheduler.chrome_trace(run_name=f"repro sched {args.spec}"), fh)
        print(f"Chrome trace written to {args.trace_out} (open in Perfetto)")
    # A failed tenant fails the mix with its own class's exit code.
    return max((r.exit_code for r in reports), default=0)


def cmd_fuzz(args: argparse.Namespace) -> int:
    if args.fuzz_command == "run":
        return _cmd_fuzz_run(args)
    if args.fuzz_command == "replay":
        return _cmd_fuzz_replay(args)
    return _cmd_fuzz_corpus(args)


def _cmd_fuzz_run(args: argparse.Namespace) -> int:
    from .fuzz import FuzzSession

    isolate = args.isolate or args.jobs > 1 or args.timeout is not None
    session = FuzzSession(
        budget=args.budget,
        seed=args.seed,
        corpus_path=args.corpus,
        autopilot=not args.no_autopilot,
        timeout=args.timeout,
        isolate=isolate,
        jobs=args.jobs,
        shrink_findings=not args.no_shrink,
        max_findings=args.max_findings,
        log=lambda msg: print(f"  {msg}"),
    )
    report = session.run()
    print(report.summary())
    if args.report_json:
        import json

        with open(args.report_json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.report_json}")
    # Exit 0 only on a clean sweep: findings fail CI smoke jobs loudly.
    return 0 if report.ok else 1


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from .fuzz import Corpus

    replay = Corpus(args.corpus).replay(args.id)
    print(replay.record.scenario.describe())
    print(
        f"replay: {replay.outcome.status} (exit {replay.outcome.exit_code}) - "
        f"{'BIT-EXACT' if replay.bit_exact else 'DIGEST DRIFT'}: {replay.detail}"
    )
    return 0 if replay.bit_exact else 1


def _cmd_fuzz_corpus(args: argparse.Namespace) -> int:
    from .fuzz import Corpus

    corpus = Corpus(args.corpus)
    if args.corpus_command == "minimize":
        kept = corpus.minimize(args.output)
        print(f"kept {kept} record(s) in {args.output or args.corpus}")
        return 0
    shown = 0
    for record in corpus:
        if args.findings and not record.is_finding:
            continue
        flags = []
        if record.is_finding:
            flags.append("FINDING:" + ",".join(sorted({v.family for v in record.violations})))
        if record.shrunk_from:
            flags.append(f"shrunk-from:{record.shrunk_from}")
        status = record.outcome.status if record.outcome else "?"
        print(f"{record.scenario.describe()} [{status}]" + (f" {' '.join(flags)}" if flags else ""))
        shown += 1
    print(f"{shown} record(s)")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "build":
        return _cmd_serve_build(args)
    if args.serve_command == "info":
        return _cmd_serve_info(args)
    return _cmd_serve_update(args)


def _cmd_serve_build(args: argparse.Namespace) -> int:
    from .api import SolveConfig, solve

    config = SolveConfig.from_env(
        variant=args.variant,
        block_size=args.block,
        n_nodes=args.nodes,
        ranks_per_node=args.ranks_per_node,
        machine=args.machine,
        kernel_backend=args.kernel_backend,
    )
    w = _load_graph(args)
    result = solve(w, config)
    print(result.report.summary())
    artifact = result.save(
        args.artifact,
        block_size=args.artifact_block,
        graph=None if args.no_graph else w,
        overwrite=args.overwrite,
    )
    print()
    print(artifact.describe())
    return 0


def _cmd_serve_info(args: argparse.Namespace) -> int:
    from .serve import load_artifact

    print(load_artifact(args.artifact).describe())
    return 0


def _cmd_serve_update(args: argparse.Namespace) -> int:
    from .errors import QueryError
    from .obs.sinks import ObsSinks
    from .serve import ServeConfig, serve

    def parse_edge(spec: str):
        parts = spec.split(",")
        if len(parts) != 3:
            raise QueryError(f"--edge wants U,V,W, got {spec!r}")
        try:
            return int(parts[0]), int(parts[1]), float(parts[2])
        except ValueError:
            raise QueryError(f"--edge wants U,V,W, got {spec!r}") from None

    updates = [parse_edge(spec) for spec in args.edge]
    config = ServeConfig.from_env(
        kernel_backend=args.kernel_backend,
        obs=ObsSinks(metrics_out=args.metrics_out),
    )
    with serve(args.artifact, config) as server:
        expensive = server.batch_update(updates)
        stats = server.stats()["incremental"]
    fast = stats["fast_updates"]
    print(
        f"{len(updates)} update(s): {fast} fast (O(n^2) patch, "
        f"{stats['dirty_blocks']} tile(s) rewritten), "
        f"{stats['recomputes']} re-solve(s) covering {expensive} update(s)"
    )
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .errors import QueryError
    from .obs.sinks import ObsSinks
    from .serve import ServeConfig, serve

    def parse_ints(spec: str, what: str, want: int):
        parts = spec.split(",")
        if len(parts) != want:
            raise QueryError(f"{what} wants {want} comma-separated ints, got {spec!r}")
        try:
            return [int(p) for p in parts]
        except ValueError:
            raise QueryError(f"{what} wants integers, got {spec!r}") from None

    config = ServeConfig.from_env(
        cache_bytes=args.cache_bytes,
        verify_blocks=not args.no_verify,
        obs=ObsSinks(metrics_out=args.metrics_out),
    )
    did_anything = False
    with serve(args.artifact, config) as server:
        if args.pair:
            pairs = [parse_ints(spec, "--pair", 2) for spec in args.pair]
            dists = server.batch(pairs)
            for (s, t), d in zip(pairs, dists):
                print(f"d({s}, {t}) = {d:g}")
            did_anything = True
        if args.nearest:
            s, k = parse_ints(args.nearest, "--nearest", 2)
            print(f"{min(k, server.n - 1)} nearest to {s}:")
            for v, d in server.k_nearest(s, k):
                print(f"  v{v:<6d} {d:g}")
            did_anything = True
        if args.submatrix:
            halves = args.submatrix.split(":")
            if len(halves) != 2:
                raise QueryError(
                    f"--submatrix wants ROWS:COLS, got {args.submatrix!r}"
                )
            try:
                rows = [int(p) for p in halves[0].split(",") if p.strip()]
                cols = [int(p) for p in halves[1].split(",") if p.strip()]
            except ValueError:
                raise QueryError(
                    f"--submatrix wants comma-separated ints on each side "
                    f"of ':', got {args.submatrix!r}"
                ) from None
            sub = server.submatrix(rows, cols)
            header = "        " + " ".join(f"{c:>10d}" for c in cols)
            print(header)
            for r, line in zip(rows, sub):
                print(f"{r:>7d} " + " ".join(f"{v:>10.4g}" for v in line))
            did_anything = True
        if not did_anything:
            print(server.describe())
        stats = server.cache_stats()
    print(
        f"cache: {stats['hits']} hit(s) / {stats['misses']} miss(es), "
        f"{stats['resident_blocks']} block(s) "
        f"({stats['resident_bytes']} bytes) resident"
    )
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _exit_code_for(exc: Exception) -> int:
    """Distinct, stable exit codes per failure class so scripts (and
    the CI fault matrix) can tell *why* a run failed.  The table lives
    in :mod:`repro.errors` (shared with the fuzzer's classifier)."""
    from .errors import exit_code_for

    return exit_code_for(exc)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .errors import ReproError

    args = build_parser().parse_args(argv)
    handlers = {
        "solve": cmd_solve,
        "profile": cmd_profile,
        "tune": cmd_tune,
        "variants": cmd_variants,
        "backends": cmd_backends,
        "placement": cmd_placement,
        "analyze": cmd_analyze,
        "sched": cmd_sched,
        "fuzz": cmd_fuzz,
        "serve": cmd_serve,
        "query": cmd_query,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return _exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
