"""Single executor: lowers a schedule-IR op stream onto the sim engine.

:func:`execute_schedule` replaces the three hand-written rank programs
(baseline / pipelined / offload).  It walks the op lists emitted by a
:class:`~repro.core.schedule.SchedulePolicy` and dispatches each typed
op to a small handler; residency-dependent ops (where the distance
matrix lives: HBM vs host DRAM) go through a :class:`ResidencyPolicy`,
and ``PanelBcast`` goes through the context's
:class:`~repro.mpi.policy.BcastPolicy`.  The named variants are just
policy combinations (:mod:`repro.core.programs`).

Exactness contract: for every pre-refactor variant the executor emits
the *identical* sequence of sim events (kernels, transfers, messages,
waits) the dedicated generator did, so distance matrices are
bit-identical and makespans cost-identical (pinned by
``tests/test_schedule_ir.py`` against recorded pre-refactor runs).

When tracing is enabled the executor also records one ``op:<Name>``
span per op that consumed simulated time, keyed by rank - the
task-level timeline the per-kernel spans are too fine-grained to show
(see :meth:`repro.sim.trace.Tracer.op_spans`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..faults.checkpoint import checkpoint_hook
from ..sim.engine import Event
from ..sim.trace import OP_CATEGORY_PREFIX
from . import schedule as ir
from .context import (
    RankState,
    diag_bcast,
    diag_update,
    maybe,
    outer_update,
    panel_bcast,
    panel_update_col,
    panel_update_row,
)
from .oog_srgemm import TileTask, run_oog_pipeline

__all__ = [
    "ResidencyPolicy",
    "GpuResident",
    "HostResident",
    "GPU_RESIDENT",
    "HOST_RESIDENT",
    "residency_policy_for",
    "execute_schedule",
    "offload_gpu_footprint",
]


# ---------------------------------------------------------------------------
# Shared row/col-parameterized kernel helpers
# ---------------------------------------------------------------------------


def _lookahead_diag(state: RankState, k: int, row_panel, col_panel):
    """Kernel: apply OuterUpdate(k) to block (k+1, k+1) only."""
    ctx = state.ctx
    blk = state.blocks[(k + 1, k + 1)]
    bmat = row_panel[k + 1]

    if ctx.config.track_paths:
        a, a_nxt = col_panel[k + 1]
        nblk = state.nxt[(k + 1, k + 1)]

        def fn():
            ctx.backend.srgemm_accumulate_paths(blk, nblk, a, a_nxt, bmat)

    else:
        a = col_panel[k + 1]

        def fn():
            ctx.backend.srgemm_diag(blk, a, bmat, semiring=ctx.semiring)

    return state.stream.kernel(
        ctx.b,
        ctx.b,
        ctx.b,
        f"LookaheadDiag({k + 1})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )


def _lookahead_panel(state: RankState, k: int, axis: ir.Axis, row_panel, col_panel):
    """Kernel: apply OuterUpdate(k) to the (k+1) block row or column
    (local index ∉ {k, k+1}):

    * ``axis="row"``: ``A(k+1,j) ⊕= A(k+1,k) ⊗ A(k,j)``
    * ``axis="col"``: ``A(i,k+1) ⊕= A(i,k) ⊗ A(k,k+1)``
    """
    ctx = state.ctx
    b = ctx.b
    if axis == "row":
        idxs = state.local_cols(exclude=(k, k + 1))
        if ctx.config.exploit_sparsity:
            idxs = [j for j in idxs if j in row_panel]
    else:
        idxs = state.local_rows(exclude=(k, k + 1))
        if ctx.config.exploit_sparsity:
            idxs = [i for i in idxs if i in col_panel]
    if not idxs:
        return None

    if axis == "row":
        if ctx.config.track_paths:
            a, a_nxt = col_panel[k + 1]

            def fn():
                for j in idxs:
                    ctx.backend.srgemm_accumulate_paths(
                        state.blocks[(k + 1, j)], state.nxt[(k + 1, j)], a, a_nxt, row_panel[j]
                    )

        else:
            a = col_panel[k + 1]

            def fn():
                for j in idxs:
                    ctx.backend.srgemm_panel(
                        state.blocks[(k + 1, j)], a, row_panel[j], semiring=ctx.semiring
                    )

        m, n = b, b * len(idxs)
        label = f"LookaheadRow({k + 1})"
    else:
        bmat = row_panel[k + 1]
        if ctx.config.track_paths:

            def fn():
                for i in idxs:
                    a, a_nxt = col_panel[i]
                    ctx.backend.srgemm_accumulate_paths(
                        state.blocks[(i, k + 1)], state.nxt[(i, k + 1)], a, a_nxt, bmat
                    )

        else:

            def fn():
                for i in idxs:
                    ctx.backend.srgemm_panel(
                        state.blocks[(i, k + 1)], col_panel[i], bmat, semiring=ctx.semiring
                    )

        m, n = b * len(idxs), b
        label = f"LookaheadCol({k + 1})"

    return state.stream.kernel(
        m, n, b, label, maybe(ctx, fn), cost_scale=ctx.backend.modeled_cost_scale
    )


def _staged_panel_update(state: RankState, k: int, axis: ir.Axis, diag: np.ndarray):
    """Generator: PanelUpdate with host<->device staging; completes when
    the updated panel is back on the host (ready to broadcast)."""
    ctx = state.ctx
    b = ctx.b
    idxs = state.local_cols(exclude=(k,)) if axis == "row" else state.local_rows(exclude=(k,))
    if not idxs:
        return
    s = state.stream
    s.h2d(b, b, label=f"h2d:diag{k}")
    if axis == "row":
        s.h2d(b, b * len(idxs), label=f"h2d:rowpanel{k}")

        def fn():
            for j in idxs:
                ctx.backend.panel_row_update(state.blocks[(k, j)], diag, semiring=ctx.semiring)

        m, n = b, b * len(idxs)
        label = f"PanelUpdateRow({k})"
    else:
        s.h2d(b * len(idxs), b, label=f"h2d:colpanel{k}")

        def fn():
            for i in idxs:
                ctx.backend.panel_col_update(state.blocks[(i, k)], diag, semiring=ctx.semiring)

        m, n = b * len(idxs), b
        label = f"PanelUpdateCol({k})"
    s.kernel(m, n, b, label, maybe(ctx, fn), cost_scale=ctx.backend.modeled_cost_scale)
    if axis == "row":
        s.d2h(b, b * len(idxs), label=f"d2h:rowpanel{k}")
    else:
        s.d2h(b * len(idxs), b, label=f"d2h:colpanel{k}")
    yield s.synchronize()


def _staged_lookahead_diag(state: RankState, k: int, row_panel, col_panel) -> None:
    """Host-resident look-ahead fill-in of block (k+1, k+1): stage the
    two pivot-panel pieces plus the target block up, run the (b,b,b)
    SrGemm, return the result.  Enqueue-only: the staged DiagUpdate(k+1)
    that always follows synchronizes the stream."""
    ctx = state.ctx
    b = ctx.b
    s = state.stream
    blk = state.blocks[(k + 1, k + 1)]
    a = col_panel[k + 1]
    bmat = row_panel[k + 1]

    def fn():
        ctx.backend.srgemm_diag(blk, a, bmat, semiring=ctx.semiring)

    s.h2d(b, 3 * b, label=f"h2d:lookahead_diag{k + 1}")
    s.kernel(b, b, b, f"LookaheadDiag({k + 1})", maybe(ctx, fn),
             cost_scale=ctx.backend.modeled_cost_scale)
    s.d2h(b, b, label=f"d2h:lookahead_diag{k + 1}")


def _staged_lookahead_panel(state: RankState, k: int, axis: ir.Axis, row_panel, col_panel):
    """Host-resident look-ahead update of the (k+1) block row/column:
    stage the panel strip and its pivot pieces, run the aggregated
    SrGemm, land the strip back on the host.  Returns the d2h event
    (None if no local blocks)."""
    ctx = state.ctx
    b = ctx.b
    s = state.stream
    if axis == "row":
        idxs = state.local_cols(exclude=(k, k + 1))
        if not idxs:
            return None
        a = col_panel[k + 1]

        def fn():
            for j in idxs:
                ctx.backend.srgemm_panel(
                    state.blocks[(k + 1, j)], a, row_panel[j], semiring=ctx.semiring
                )

        # Target strip + the A(k,j) operand strip up; updated strip down.
        s.h2d(b, b, label=f"h2d:lookahead_diag_piece{k + 1}")
        s.h2d(2 * b, b * len(idxs), label=f"h2d:lookahead_row{k + 1}")
        s.kernel(b, b * len(idxs), b, f"LookaheadRow({k + 1})", maybe(ctx, fn),
                 cost_scale=ctx.backend.modeled_cost_scale)
        return s.d2h(b, b * len(idxs), label=f"d2h:lookahead_row{k + 1}")

    idxs = state.local_rows(exclude=(k, k + 1))
    if not idxs:
        return None
    bmat = row_panel[k + 1]

    def fn():
        for i in idxs:
            ctx.backend.srgemm_panel(
                state.blocks[(i, k + 1)], col_panel[i], bmat, semiring=ctx.semiring
            )

    s.h2d(b, b, label=f"h2d:lookahead_diag_piece{k + 1}")
    s.h2d(b * len(idxs), 2 * b, label=f"h2d:lookahead_col{k + 1}")
    s.kernel(b * len(idxs), b, b, f"LookaheadCol({k + 1})", maybe(ctx, fn),
             cost_scale=ctx.backend.modeled_cost_scale)
    return s.d2h(b * len(idxs), b, label=f"d2h:lookahead_col{k + 1}")


def _chunks(items: list, size: int) -> list:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _observed_oog(obs, pipe):
    """Generator wrapper: run the ooGSrGemm pipeline and fold its
    :class:`~repro.core.oog_srgemm.OogStats` into the metrics registry
    (pure bookkeeping at completion; no simulation events)."""
    stats = yield from pipe
    if stats is not None:
        obs.counter("oog.tiles").inc(stats.tiles)
        obs.counter("oog.flops_virtual").inc(stats.flops_virtual)
        obs.counter("oog.h2d_bytes_virtual").inc(stats.h2d_bytes_virtual)
        obs.counter("oog.d2h_bytes_virtual").inc(stats.d2h_bytes_virtual)
        obs.histogram("oog.pipeline").observe(stats.elapsed)
    return stats


def _outer_tiles(
    state: RankState,
    k: int,
    row_panel: dict,
    col_panel: dict,
    skip_rows: tuple = (),
    skip_cols: tuple = (),
) -> list:
    """The ooGSrGemm tile plan for OuterUpdate(k) on this rank.

    Local block rows/cols (excluding k and already-updated look-ahead
    panels) are grouped into chunks of mx_blocks x nx_blocks; panel
    pieces are h2d'd on first use, keyed per (iteration, side, chunk)."""
    ctx = state.ctx
    cfg = ctx.config
    b = ctx.b
    semiring = ctx.semiring
    vrt = ctx.verify
    rt = ctx.faults
    # Pending target=oog memflip for this (rank, k): corrupts the first
    # tile's staged buffer between compute and apply, modeling an upset
    # during the d2h transfer / host residence of the product.
    oog_bits = 0
    if rt is not None and rt.injector.plan.memory_faults:
        oog_bits = rt.injector.take_oog_flip(state.me, k)
    row_chunks = _chunks(state.local_rows(exclude=(k, *skip_rows)), cfg.mx_blocks)
    col_chunks = _chunks(state.local_cols(exclude=(k, *skip_cols)), cfg.nx_blocks)
    tiles: list[TileTask] = []
    for ci, rows in enumerate(row_chunks):
        for cj, cols in enumerate(col_chunks):
            h2d = []
            if cj == 0:
                h2d.append(((k, "A", ci), b * len(rows), b))
            if ci == 0:
                h2d.append(((k, "B", cj), b, b * len(cols)))

            def compute(rows=rows, cols=cols):
                a = np.vstack([col_panel[i] for i in rows])
                bmat = np.hstack([row_panel[j] for j in cols])
                x = semiring.zeros((a.shape[0], bmat.shape[1]), dtype=a.dtype)
                return ctx.backend.srgemm_outer(x, a, bmat, semiring=semiring)

            clean_compute = compute
            if oog_bits:

                def compute(base=clean_compute, bits=oog_bits):
                    x = base()
                    inj = ctx.faults.injector
                    if inj.flip_entries(x, bits):
                        inj.count("faults.oog_flips")
                    return x

                oog_bits = 0  # one upset per fault, on the first tile

            if vrt is None:

                def apply(x, rows=rows, cols=cols):
                    for ri, i in enumerate(rows):
                        for rj, j in enumerate(cols):
                            blk = state.blocks[(i, j)]
                            semiring.plus(
                                blk, x[ri * b : (ri + 1) * b, rj * b : (rj + 1) * b], out=blk
                            )

            else:
                # The clean compute closure is retained for localized
                # repair: a corrupted staged tile is simply re-executed.

                def apply(x, rows=rows, cols=cols, recompute=clean_compute):
                    x = vrt.verify_staged(x, recompute=recompute)
                    for ri, i in enumerate(rows):
                        for rj, j in enumerate(cols):
                            vrt.guarded_merge(
                                state.blocks[(i, j)],
                                x[ri * b : (ri + 1) * b, rj * b : (rj + 1) * b],
                            )

            tiles.append(
                TileTask(
                    m=b * len(rows),
                    n=b * len(cols),
                    k=b,
                    h2d=h2d,
                    compute=maybe(ctx, compute),
                    apply=maybe(ctx, apply),
                    label=f"outer{k}[{ci},{cj}]",
                    cost_scale=ctx.backend.modeled_cost_scale,
                )
            )
    return tiles


def offload_gpu_footprint(state: RankState) -> int:
    """Virtual HBM bytes Me-ParallelFw needs on this rank's GPU:
    the two panels, the diagonal block, and ``s`` tile buffers."""
    ctx = state.ctx
    cfg = ctx.config
    b = ctx.b
    n_local_rows = len(state.local_rows())
    n_local_cols = len(state.local_cols())
    panel_bytes = ctx.cost.gpu_bytes(b * n_local_rows, b) + ctx.cost.gpu_bytes(
        b, b * n_local_cols
    )
    diag_bytes = ctx.cost.gpu_bytes(b, b)
    tile_bytes = cfg.n_streams * ctx.cost.gpu_bytes(
        b * cfg.mx_blocks, b * cfg.nx_blocks
    )
    return panel_bytes + diag_bytes + tile_bytes


# ---------------------------------------------------------------------------
# Residency policies
# ---------------------------------------------------------------------------


class ResidencyPolicy:
    """Where the local distance matrix lives - and therefore how each
    residency-dependent op lowers.  All methods are generators run
    inside the executor's rank program."""

    name: str = "abstract"

    def diag_update(self, state: RankState, k: int):
        """DiagUpdate(k) on the owner; completes before returning."""
        raise NotImplementedError

    def panel_update(self, state: RankState, k: int, axis: ir.Axis, diag, wait: bool, env):
        raise NotImplementedError

    def lookahead_diag(self, state: RankState, k: int, env):
        raise NotImplementedError

    def lookahead_panel(self, state: RankState, k: int, axis: ir.Axis, env):
        raise NotImplementedError

    def outer_update(self, state: RankState, k: int, wait: bool, env):
        raise NotImplementedError


class GpuResident(ResidencyPolicy):
    """Distance matrix in HBM: ops are plain stream kernels."""

    name = "gpu"

    def diag_update(self, state, k):
        yield diag_update(state, k)

    def panel_update(self, state, k, axis, diag, wait, env):
        ev = (
            panel_update_row(state, k, diag)
            if axis == "row"
            else panel_update_col(state, k, diag)
        )
        if wait:
            if ev is not None:
                yield ev
        else:
            env.panel_evs.append(ev)

    def lookahead_diag(self, state, k, env):
        if (k + 1) in env.col_panel and (k + 1) in env.row_panel:
            _lookahead_diag(state, k, env.row_panel, env.col_panel)
        yield from ()

    def lookahead_panel(self, state, k, axis, env):
        have = (k + 1) in (env.col_panel if axis == "row" else env.row_panel)
        if have:
            env.lookahead_evs.append(
                _lookahead_panel(state, k, axis, env.row_panel, env.col_panel)
            )
        yield from ()

    def outer_update(self, state, k, wait, env):
        ev = outer_update(state, k, env.row_panel, env.col_panel, env.skip_rows, env.skip_cols)
        if wait:
            if ev is not None:
                yield ev
        else:
            env.outer = ev
        yield from ()


class HostResident(ResidencyPolicy):
    """Me-ParallelFw (§4.3): distance matrix in host DRAM.  DiagUpdate
    and PanelUpdate stage operands up and results back; OuterUpdate
    streams the matrix through the ooGSrGemm pipeline.  Look-ahead ops
    stage the (k+1) strips the same way, which is what lets the
    look-ahead schedule compose with offload (pipelined Me-ParallelFw -
    the combination the paper never evaluates)."""

    name = "host"

    def diag_update(self, state, k):
        b = state.ctx.b
        state.stream.h2d(b, b, label=f"h2d:diag{k}")
        diag_update(state, k)  # enqueues the squaring-chain kernel
        state.stream.d2h(b, b, label=f"d2h:diag{k}")
        yield state.stream.synchronize()

    def panel_update(self, state, k, axis, diag, wait, env):
        # Staging ends in a stream synchronize either way, so the wait
        # flag is moot: the panel must be host-side before its bcast.
        yield from _staged_panel_update(state, k, axis, diag)

    def lookahead_diag(self, state, k, env):
        if (k + 1) in env.col_panel and (k + 1) in env.row_panel:
            _staged_lookahead_diag(state, k, env.row_panel, env.col_panel)
        yield from ()

    def lookahead_panel(self, state, k, axis, env):
        have = (k + 1) in (env.col_panel if axis == "row" else env.row_panel)
        if have:
            env.lookahead_evs.append(
                _staged_lookahead_panel(state, k, axis, env.row_panel, env.col_panel)
            )
        yield from ()

    def outer_update(self, state, k, wait, env):
        ctx = state.ctx
        tiles = _outer_tiles(state, k, env.row_panel, env.col_panel,
                             env.skip_rows, env.skip_cols)
        pipe = run_oog_pipeline(
            ctx.env, state.gpu, state.host, tiles, ctx.config.n_streams,
            label=f"r{state.me}.oog{k}", tracer=ctx.tracer,
        )
        if ctx.obs is not None:
            pipe = _observed_oog(ctx.obs, pipe)
        if wait:
            yield from pipe
        else:
            # Launch the tile pipeline as its own process so the rank
            # program can participate in PanelBcast(k+1) while tiles
            # stream - the offload-pipelined overlap.
            env.outer = ctx.env.process(pipe, name=f"r{state.me}.oog{k}")


#: Stateless residency singletons.
GPU_RESIDENT = GpuResident()
HOST_RESIDENT = HostResident()


def residency_policy_for(offload: bool) -> ResidencyPolicy:
    """Resolve the memory-residency axis from configuration."""
    return HOST_RESIDENT if offload else GPU_RESIDENT


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------


@dataclass
class _IterEnv:
    """Dataflow carried between ops: the executor's registers."""

    diag: Optional[np.ndarray] = None
    row_panel: Optional[dict] = None
    col_panel: Optional[dict] = None
    lookahead_evs: list = field(default_factory=list)
    panel_evs: list = field(default_factory=list)
    skip_rows: tuple = ()
    skip_cols: tuple = ()
    outer: Optional[Event] = None

    def reset_iteration(self) -> None:
        self.lookahead_evs = []
        self.panel_evs = []
        self.skip_rows = ()
        self.skip_cols = ()


def _op_checkpoint(state, residency, env, op):
    yield from checkpoint_hook(state, op.k)
    vrt = state.ctx.verify
    if vrt is not None:
        # Top-of-iteration sampled monotonicity check (full mode); pure
        # bookkeeping, no simulated events, so makespans are untouched.
        vrt.sentinel_check(state.me, op.k)


def _op_diag_update(state, residency, env, op):
    env.diag = None
    if state.owns_diag(op.k):
        yield from residency.diag_update(state, op.k)
        env.diag = state.blocks[(op.k, op.k)]


def _op_diag_bcast(state, residency, env, op):
    if state.in_row(op.k) or state.in_col(op.k):
        env.diag = yield from diag_bcast(state, op.k, env.diag)


def _op_panel_update(state, residency, env, op):
    if op.axis == "row":
        if not state.in_row(op.k):
            return
        if op.record_skip:
            env.skip_rows = (op.k,)
    else:
        if not state.in_col(op.k):
            return
        if op.record_skip:
            env.skip_cols = (op.k,)
    yield from residency.panel_update(state, op.k, op.axis, env.diag, op.wait, env)


def _op_wait_panel_updates(state, residency, env, op):
    evs, env.panel_evs = env.panel_evs, []
    for ev in evs:
        if ev is not None:
            yield ev


def _op_panel_bcast(state, residency, env, op):
    env.row_panel, env.col_panel = yield from panel_bcast(state, op.k)


def _op_lookahead_diag(state, residency, env, op):
    if state.owns_diag(op.k + 1):
        yield from residency.lookahead_diag(state, op.k, env)


def _op_lookahead_panel(state, residency, env, op):
    in_panel = state.in_row(op.k + 1) if op.axis == "row" else state.in_col(op.k + 1)
    if in_panel:
        yield from residency.lookahead_panel(state, op.k, op.axis, env)


def _op_wait_lookahead(state, residency, env, op):
    evs, env.lookahead_evs = env.lookahead_evs, []
    if state.ctx.config.exploit_sparsity:
        # The panel updates that follow inspect block emptiness at
        # enqueue time; the look-ahead fill-in must have landed first
        # (stale emptiness would drop blocks).
        for ev in evs:
            if ev is not None:
                yield ev


def _op_outer_update(state, residency, env, op):
    yield from residency.outer_update(state, op.k, op.wait, env)


def _op_wait_outer(state, residency, env, op):
    if env.outer is not None:
        yield env.outer
        env.outer = None


_HANDLERS = {
    ir.Checkpoint: _op_checkpoint,
    ir.DiagUpdate: _op_diag_update,
    ir.DiagBcast: _op_diag_bcast,
    ir.PanelUpdate: _op_panel_update,
    ir.WaitPanelUpdates: _op_wait_panel_updates,
    ir.PanelBcast: _op_panel_bcast,
    ir.LookaheadDiag: _op_lookahead_diag,
    ir.LookaheadPanel: _op_lookahead_panel,
    ir.WaitLookahead: _op_wait_lookahead,
    ir.OuterUpdate: _op_outer_update,
    ir.WaitOuter: _op_wait_outer,
}


def _lower(state: RankState, residency: ResidencyPolicy, env: _IterEnv, op: ir.ScheduleOp):
    """Generator: run one op; with tracing on, record a task-level
    ``op:<Name>`` span when the op consumed simulated time; with
    metrics on, feed the per-phase duration histograms.  Both
    instrumentation paths only read the simulated clock, so makespans
    are identical with them on or off."""
    ctx = state.ctx
    tracer = ctx.tracer
    obs = ctx.obs
    vrt = ctx.verify
    if tracer is None and obs is None:
        yield from _HANDLERS[type(op)](state, residency, env, op)
        if vrt is not None:
            # Op boundary: surface any corruption the guarded kernels
            # could not repair.  Raising here (inside the rank program)
            # reaches the driver's supervisor; raising inside a kernel
            # closure would fail the stream's event and abort the run.
            vrt.raise_pending()
        return
    t0 = ctx.env.now
    yield from _HANDLERS[type(op)](state, residency, env, op)
    t1 = ctx.env.now
    if t1 > t0:
        if tracer is not None:
            k = getattr(op, "k", None)
            label = op.opname if k is None else f"{op.opname}({k})"
            tracer.record(f"rank{state.me}", OP_CATEGORY_PREFIX + op.opname, label, t0, t1)
        if obs is not None:
            obs.histogram(f"phase.{op.opname}").observe(t1 - t0)
    if vrt is not None:
        vrt.raise_pending()


def execute_schedule(
    state: RankState,
    schedule: "ir.SchedulePolicy",
    residency: ResidencyPolicy,
    start_k: int = 0,
):
    """Build the rank program for one (schedule, residency) pair.

    Validates eagerly (so misconfiguration raises at build time, not at
    first resume of the generator) and returns the generator to hand to
    ``env.process``.  ``start_k`` resumes from a checkpoint taken at
    the top of outer iteration ``start_k``; ``start_k == nb`` is a
    completed sweep (the program only drains pending sends).
    """
    nb = state.ctx.nb
    if not isinstance(start_k, int) or isinstance(start_k, bool):
        raise ConfigurationError(f"start_k must be an int, got {start_k!r}")
    if start_k < 0 or start_k > nb:
        raise ConfigurationError(
            f"start_k must be in [0, {nb}] (nb blocks), got {start_k}"
        )
    if state.ctx.verify is not None:
        # (Re)anchor the ABFT guards on this rank's current block
        # arrays: restarts restore fresh copies, and stale guards keyed
        # by the dead arrays' ids must not linger.
        state.ctx.verify.register_rank(state.me, state.blocks)
    return _execute(state, schedule, residency, start_k)


def _execute(state, schedule, residency, start_k):
    nb = state.ctx.nb
    env = _IterEnv()
    for op in schedule.prologue(start_k, nb):
        yield from _lower(state, residency, env, op)
    for k in range(start_k, nb):
        env.reset_iteration()
        for op in schedule.iteration(k, nb):
            yield from _lower(state, residency, env, op)
    yield from state.drain()
    vrt = state.ctx.verify
    if vrt is not None:
        vrt.raise_pending()
    return state.blocks
