"""The public entry point: run a distributed APSP on the simulated cluster.

:func:`apsp` assembles the whole stack - cluster, MPI world, process
grid, placement, rank programs - runs the discrete-event simulation,
gathers the distance matrix, and returns it together with a
:class:`~repro.core.report.PerfReport`.

Typical use::

    from repro import apsp
    from repro.graphs import uniform_random_dense

    w = uniform_random_dense(256, seed=0)
    result = apsp(w, block_size=32, variant="async", n_nodes=4,
                  ranks_per_node=4)
    print(result.report.summary())
    dist = result.dist
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..errors import ConfigurationError, ValidationError
from ..machine.cluster import SimCluster
from ..machine.cost import CostModel
from ..machine.spec import SUMMIT, MachineSpec
from ..mpi.comm import SimMPI
from ..semiring.closure import check_no_negative_cycle
from ..semiring.minplus import MIN_PLUS, Semiring
from ..sim.engine import Environment
from ..sim.trace import Tracer
from .baseline import baseline_program
from .blocked import blocked_fw
from .context import FwContext, RankState, SolverConfig
from .distribution import collect, distribute, local_matrix_elems, pad_to_blocks
from .grid import ProcessGrid, near_square_factors
from .offload import offload_gpu_footprint, offload_program
from .pipelined import pipelined_program
from .placement import (
    RankPlacement,
    contiguous_placement,
    optimal_placement,
    tiled_placement,
)
from .report import PerfReport
from .variants import Variant, variant_config

__all__ = ["ApspResult", "apsp", "placement_for_variant", "default_block_size"]


@dataclass
class ApspResult:
    """Outcome of one simulated distributed APSP run."""

    #: The full n x n distance matrix (None when ``collect=False``).
    dist: Optional[np.ndarray]
    report: PerfReport
    tracer: Optional[Tracer]
    #: Next-hop pointers (only when ``track_paths=True``): the vertex
    #: after i on a shortest i->j path, -1 where none.
    next_hops: Optional[np.ndarray] = None


def default_block_size(n: int, grid: ProcessGrid) -> int:
    """A block size giving each process row/column ~4 block rows, so
    the pipeline has room to wind up; clamped to [1, n]."""
    target_nb = 4 * max(grid.pr, grid.pc)
    return max(1, min(n, -(-n // target_nb)))


def placement_for_variant(
    variant: Variant, grid: ProcessGrid, ranks_per_node: int
) -> RankPlacement:
    """Default placement per variant: launcher-style contiguous for
    Baseline/Pipelined/Offload, the optimal K_r ≈ K_c tiling for
    +Reordering and +Async."""
    if variant in (Variant.REORDERING, Variant.ASYNC):
        return optimal_placement(grid, ranks_per_node)
    try:
        return contiguous_placement(grid, ranks_per_node)
    except ConfigurationError:
        # Contiguous packing wraps rows for this shape; use the closest
        # rectangular equivalent (1 x Q or Q x 1 tile).
        if grid.pc % ranks_per_node == 0:
            return tiled_placement(grid, 1, ranks_per_node)
        if grid.pr % ranks_per_node == 0:
            return tiled_placement(grid, ranks_per_node, 1)
        return optimal_placement(grid, ranks_per_node)


def apsp(
    weights: np.ndarray,
    *,
    variant: Union[str, Variant] = Variant.ASYNC,
    block_size: Optional[int] = None,
    machine: MachineSpec = SUMMIT,
    n_nodes: int = 1,
    ranks_per_node: Optional[int] = None,
    grid: Optional[ProcessGrid] = None,
    placement: Optional[RankPlacement] = None,
    dim_scale: float = 1.0,
    semiring: Semiring = MIN_PLUS,
    diag_on_gpu: bool = True,
    n_streams: int = 3,
    ring_segments: int = 1,
    mx_blocks: int = 2,
    nx_blocks: int = 2,
    collect_result: bool = True,
    validate: bool = False,
    trace: bool = False,
    check_negative_cycles: bool = True,
    compute_numerics: bool = True,
    stragglers: Optional[dict[int, float]] = None,
    track_paths: bool = False,
    exploit_sparsity: bool = False,
    kernel_backend: Optional[str] = None,
) -> ApspResult:
    """Solve all-pairs shortest paths on the simulated cluster.

    Parameters
    ----------
    weights:
        Square weight matrix; ``semiring.zero`` (+inf) marks a missing
        edge.  The diagonal should be 0 (it is not forced).
    variant:
        One of ``baseline | pipelined | reordering | async | offload``
        (the paper's legends), or a :class:`Variant`.
    block_size:
        Block size ``b``; defaults to :func:`default_block_size`.
    machine, n_nodes, ranks_per_node:
        Cluster shape.  ``ranks_per_node`` defaults to 2 ranks per GPU
        (the paper's launch configuration).
    grid, placement:
        Explicit process grid / rank placement; defaults to the
        near-square grid and the variant's placement policy.
    dim_scale:
        Virtual/physical scaling of all costs (see
        :class:`~repro.machine.cost.CostModel`).  1.0 simulates the
        physical matrix literally.
    validate:
        Recompute with the sequential blocked oracle and raise
        :class:`~repro.errors.ValidationError` on mismatch.
    trace:
        Record spans for Gantt rendering / overlap analysis.
    stragglers:
        ``{node_id: factor}`` NIC slowdowns modeling contended links or
        slow nodes (the paper's §3.3 motivation for the asynchronous
        ring broadcast).
    exploit_sparsity:
        Skip all-infinite blocks in panel broadcasts and outer products
        (structured-sparsity future work; fill-in re-checked every
        iteration).  Requires real numerics.
    track_paths:
        Carry next-hop pointer blocks through the distributed sweep
        (distributed shortest-path generation, the paper's future
        work); the result's ``next_hops`` is then the full pointer
        matrix.  (min,+) only; not supported by the offload variant.
    kernel_backend:
        SrGemm kernel backend name (see
        :mod:`repro.semiring.backends`); None resolves the process
        default.  The validation oracle runs on the same backend, so
        validation isolates schedule bugs from kernel differences.

    Raises
    ------
    GpuOutOfMemory
        For non-offload variants whose per-rank matrix does not fit in
        (virtual) HBM - use ``variant="offload"``.
    """
    w = np.asarray(weights)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ConfigurationError(f"weights must be square, got {w.shape}")
    n = w.shape[0]
    var = Variant.parse(variant)

    if ranks_per_node is None:
        ranks_per_node = 2 * machine.node.gpus_per_node
    n_ranks = n_nodes * ranks_per_node
    if grid is None:
        pr, pc = near_square_factors(n_ranks)
        grid = ProcessGrid(pr, pc)
    elif grid.size != n_ranks:
        raise ConfigurationError(
            f"grid {grid.pr}x{grid.pc} has {grid.size} ranks but "
            f"{n_nodes} nodes x {ranks_per_node} ranks/node = {n_ranks}"
        )
    if placement is None:
        placement = placement_for_variant(var, grid, ranks_per_node)
    if placement.n_nodes != n_nodes:
        raise ConfigurationError(
            f"placement spans {placement.n_nodes} nodes, run requested {n_nodes}"
        )

    b = block_size if block_size is not None else default_block_size(n, grid)
    padded, n_orig = pad_to_blocks(w, b, semiring)
    nb = padded.shape[0] // b

    if not compute_numerics and (validate or collect_result):
        raise ConfigurationError(
            "compute_numerics=False runs the simulation hollow; the result "
            "matrix is meaningless - pass collect_result=False, validate=False"
        )
    config = variant_config(
        var,
        SolverConfig(
            block_size=b,
            semiring=semiring,
            diag_on_gpu=diag_on_gpu,
            n_streams=n_streams,
            mx_blocks=mx_blocks,
            nx_blocks=nx_blocks,
            ring_segments=ring_segments,
            track_paths=track_paths,
            exploit_sparsity=exploit_sparsity,
            compute_numerics=compute_numerics,
            kernel_backend=kernel_backend,
        ),
    )
    if track_paths and not compute_numerics:
        raise ConfigurationError("track_paths requires compute_numerics=True")

    env = Environment()
    tracer = Tracer(enabled=trace)
    cost = CostModel(machine, dim_scale=dim_scale)
    cluster = SimCluster(env, machine, n_nodes, cost, tracer if trace else None)
    if stragglers:
        cluster.set_stragglers(stragglers)
    mpi = SimMPI(env, cluster, [placement.node_of(r) for r in range(n_ranks)],
                 tracer if trace else None)
    ctx = FwContext(env, cluster, mpi, grid, placement, config, nb,
                    tracer if trace else None)

    locals_ = distribute(padded, b, grid)
    if track_paths:
        from ..semiring.path_kernels import NO_HOP, init_next_hops

        nxt_global = init_next_hops(padded)
        np.fill_diagonal(nxt_global, NO_HOP)
        nxt_locals = distribute(nxt_global, b, grid)
        states = [
            RankState(ctx, r, locals_[r], nxt=nxt_locals[r]) for r in range(n_ranks)
        ]
    else:
        states = [RankState(ctx, r, locals_[r]) for r in range(n_ranks)]

    # -- memory accounting (where Figure 7's feasibility wall comes from) --
    for state in states:
        elems = local_matrix_elems(state.me, nb, b, grid)
        rows = len(state.local_rows())
        cols = len(state.local_cols())
        if config.offload:
            state.host.alloc(int(cost.bytes_of(rows * b, cols * b)), "local distance matrix")
            state.hbm_charged = state.gpu.alloc(
                offload_gpu_footprint(state), f"rank {state.me} offload buffers"
            )
        else:
            footprint = (
                cost.gpu_bytes(rows * b, cols * b)  # local matrix
                + cost.gpu_bytes(b, cols * b)  # received row panel
                + cost.gpu_bytes(rows * b, b)  # received column panel
                + cost.gpu_bytes(b, b)  # diagonal block
            )
            if track_paths:
                # int64 pointer blocks cost 2x the float32 distances.
                footprint *= 3
            state.hbm_charged = state.gpu.alloc(footprint, f"rank {state.me} matrix+panels")
        assert elems == rows * cols * b * b

    program = offload_program if config.offload else (
        pipelined_program if config.pipelined else baseline_program
    )
    procs = [env.process(program(state), name=f"rank{state.me}") for state in states]
    env.run()
    for p in procs:
        if not p.processed or not p.ok:  # pragma: no cover - defensive
            raise RuntimeError(f"rank program {p.name} did not complete cleanly")
    elapsed = env.now

    dist = None
    next_hops = None
    if collect_result or validate:
        dist = collect([s.blocks for s in states], n_orig, b, grid)
        if track_paths:
            next_hops = collect([s.nxt for s in states], n_orig, b, grid)
        if check_negative_cycles and semiring is MIN_PLUS:
            check_no_negative_cycle(dist)
    if validate:
        oracle = blocked_fw(
            w, b, semiring=semiring, check_negative_cycles=False, backend=ctx.backend
        )
        if not np.allclose(dist, oracle, equal_nan=True):
            bad = int(np.sum(~np.isclose(dist, oracle, equal_nan=True)))
            raise ValidationError(
                f"distributed result differs from sequential oracle in {bad} entries"
            )

    report = PerfReport.from_run(
        var.value, n, cost, placement, elapsed, mpi, cluster,
        tracer if trace else None,
    )
    report.block_size = b
    return ApspResult(dist=dist if collect_result else None, report=report,
                      tracer=tracer if trace else None,
                      next_hops=next_hops if collect_result else None)
