"""The public entry point: run a distributed APSP on the simulated cluster.

:func:`apsp` assembles the whole stack - cluster, MPI world, process
grid, placement, rank programs - runs the discrete-event simulation,
gathers the distance matrix, and returns it together with a
:class:`~repro.core.report.PerfReport`.

The pipeline is factored into reusable stages so the multi-tenant
scheduler (:mod:`repro.sched`) can drive the same machinery over a
*shared* simulated machine:

* :func:`plan_run` - pure planning: validate arguments, resolve grid /
  placement / block size / variant config / fault plan into a
  :class:`RunPlan` (no simulation objects touched);
* :class:`MachineHandles` - the simulated machine (environment,
  cluster, cost model, tracer).  :func:`apsp` constructs a private one
  by default but accepts injected handles, which is how N concurrent
  jobs share one cluster;
* :func:`make_state_builders` - the per-rank state construction and
  HBM/DRAM accounting closures;
* :func:`build_result` - collection, validation, report and
  certificate assembly after the simulated run.

Typical use::

    from repro.core import apsp
    from repro.graphs import uniform_random_dense

    w = uniform_random_dense(256, seed=0)
    result = apsp(w, block_size=32, variant="async", n_nodes=4,
                  ranks_per_node=4)
    print(result.report.summary())
    dist = result.dist

(Through the public API this is ``repro.solve(w, repro.SolveConfig(...))``;
``result.save(path)`` then persists the solve as a serving artifact -
see :mod:`repro.serve`.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..errors import (
    CheckpointError,
    CommTimeoutError,
    ConfigurationError,
    GpuOutOfMemory,
    RankFailure,
    SilentCorruptionError,
    ValidationError,
    VerificationError,
)
from ..faults import CheckpointStore, FaultInjector, FaultPlan, FaultRuntime, resolve_fault_plan
from ..machine.cluster import SimCluster
from ..machine.cost import CostModel
from ..machine.spec import SUMMIT, MachineSpec
from ..mpi.comm import SimMPI
from ..semiring.closure import check_no_negative_cycle
from ..semiring.minplus import MIN_PLUS, Semiring
from ..sim.engine import Environment, Interrupt
from ..sim.trace import Tracer
from .blocked import blocked_fw
from .context import FwContext, RankState, SolverConfig
from .distribution import collect, distribute, local_matrix_elems, pad_to_blocks
from .executor import offload_gpu_footprint
from .grid import ProcessGrid, near_square_factors
from .placement import (
    RankPlacement,
    contiguous_placement,
    optimal_placement,
    tiled_placement,
)
from .programs import program_for_config
from .report import PerfReport
from .variants import Variant, variant_config

__all__ = [
    "ApspResult",
    "MachineHandles",
    "RunPlan",
    "apsp",
    "build_result",
    "make_state_builders",
    "placement_for_variant",
    "plan_run",
    "default_block_size",
]


@dataclass
class ApspResult:
    """Outcome of one simulated distributed APSP run."""

    #: The full n x n distance matrix (None when ``collect=False``).
    dist: Optional[np.ndarray]
    report: PerfReport
    tracer: Optional[Tracer]
    #: Next-hop pointers (only when ``track_paths=True``): the vertex
    #: after i on a shortest i->j path, -1 where none.
    next_hops: Optional[np.ndarray] = None
    #: ``faults.*`` injection/recovery counters (only when the run was
    #: armed with a fault plan); None on plain runs.
    fault_counters: Optional[dict[str, float]] = None
    #: ABFT verification certificate (only when ``verify != "off"``):
    #: checks run, corruption detected/repaired/escalated, and - in
    #: ``full`` mode - the residual audit.  Also attached to
    #: ``report.verification``.
    verification: Optional[dict] = None
    #: Observability registry (only when the run was armed with
    #: ``metrics=True``): a :class:`~repro.obs.metrics.MetricsRegistry`
    #: holding the full metric catalog (see docs/OBSERVABILITY.md).  A
    #: flat snapshot also lands on ``report.metrics``.
    metrics: Optional[object] = None

    # -- consistent field-name aliases (the public result vocabulary:
    # makespan / certificate / faults / metrics) ------------------------
    @property
    def makespan(self) -> float:
        """Simulated end-to-end seconds (``report.elapsed``)."""
        return self.report.elapsed

    @property
    def certificate(self) -> Optional[dict]:
        """The ABFT verification certificate (alias of ``verification``)."""
        return self.verification

    @property
    def faults(self) -> Optional[dict]:
        """Fault injection/recovery counters (alias of ``fault_counters``)."""
        return self.fault_counters

    # -- persistence ----------------------------------------------------
    def save(self, path, *, block_size=None, graph=None, overwrite=False):
        """Persist this result as a serving artifact directory (see
        :mod:`repro.serve`): distance blocks at rest (content-addressed,
        CRC-per-block) plus the run certificate and solve provenance.
        Pass ``graph=`` (the solved weight matrix) to enable the
        incremental edge-update path.  Returns the saved
        :class:`~repro.serve.Artifact`; serve it with
        ``repro.serve(path)``."""
        from ..serve.artifact import save_artifact

        return save_artifact(
            self, path, block_size=block_size, graph=graph, overwrite=overwrite
        )


def default_block_size(n: int, grid: ProcessGrid) -> int:
    """A block size giving each process row/column ~4 block rows, so
    the pipeline has room to wind up; clamped to [1, n]."""
    target_nb = 4 * max(grid.pr, grid.pc)
    return max(1, min(n, -(-n // target_nb)))


def placement_for_variant(
    variant: Variant, grid: ProcessGrid, ranks_per_node: int
) -> RankPlacement:
    """Default placement per variant: launcher-style contiguous for
    Baseline/Pipelined/Offload/Offload-Pipelined, the optimal
    K_r ≈ K_c tiling for +Reordering and +Async."""
    if variant in (Variant.REORDERING, Variant.ASYNC):
        return optimal_placement(grid, ranks_per_node)
    try:
        return contiguous_placement(grid, ranks_per_node)
    except ConfigurationError:
        # Contiguous packing wraps rows for this shape; use the closest
        # rectangular equivalent (1 x Q or Q x 1 tile).
        if grid.pc % ranks_per_node == 0:
            return tiled_placement(grid, 1, ranks_per_node)
        if grid.pr % ranks_per_node == 0:
            return tiled_placement(grid, ranks_per_node, 1)
        return optimal_placement(grid, ranks_per_node)


@dataclass
class MachineHandles:
    """The simulated machine of one (or many) runs.

    :func:`apsp` builds a private set by default; the cluster scheduler
    builds one set and injects it into every job so N concurrent solves
    contend for the same simulated GPUs and NICs.
    """

    env: Environment
    cluster: SimCluster
    cost: CostModel
    #: The fleet tracer; ``None`` when tracing is off.
    tracer: Optional[Tracer] = None

    @classmethod
    def create(
        cls,
        machine: MachineSpec,
        n_nodes: int,
        dim_scale: float = 1.0,
        trace: bool = False,
    ) -> "MachineHandles":
        env = Environment()
        tracer = Tracer(enabled=trace)
        cost = CostModel(machine, dim_scale=dim_scale)
        cluster = SimCluster(env, machine, n_nodes, cost, tracer if trace else None)
        return cls(env=env, cluster=cluster, cost=cost, tracer=tracer if trace else None)


@dataclass
class RunPlan:
    """The fully-resolved static shape of one APSP run.

    Produced by :func:`plan_run` before any simulation object exists,
    so the scheduler's admission controller can cost a job (memory
    demand, predicted makespan) without touching the shared machine.
    """

    var: Variant
    config: SolverConfig
    grid: ProcessGrid
    placement: RankPlacement
    b: int
    n: int
    n_orig: int
    nb: int
    n_ranks: int
    n_nodes: int
    semiring: Semiring
    w: np.ndarray
    padded: np.ndarray
    plan: Optional[FaultPlan] = None
    track_paths: bool = False
    collect_result: bool = True
    validate: bool = False
    check_negative_cycles: bool = True
    fault_seed: int = 0
    locals_: Optional[list] = field(default=None, repr=False)
    nxt_locals: Optional[list] = field(default=None, repr=False)

    def distribute(self) -> None:
        """Scatter the padded matrix (and next-hop pointers) into
        per-rank local blocks; idempotent."""
        if self.locals_ is not None:
            return
        self.locals_ = distribute(self.padded, self.b, self.grid)
        if self.track_paths:
            from ..semiring.path_kernels import NO_HOP, init_next_hops

            nxt_global = init_next_hops(self.padded)
            np.fill_diagonal(nxt_global, NO_HOP)
            self.nxt_locals = distribute(nxt_global, self.b, self.grid)


def plan_run(
    weights: np.ndarray,
    *,
    variant: Union[str, Variant] = Variant.ASYNC,
    block_size: Optional[int] = None,
    machine: MachineSpec = SUMMIT,
    n_nodes: int = 1,
    ranks_per_node: Optional[int] = None,
    grid: Optional[ProcessGrid] = None,
    placement: Optional[RankPlacement] = None,
    semiring: Semiring = MIN_PLUS,
    diag_on_gpu: bool = True,
    n_streams: int = 3,
    ring_segments: int = 1,
    mx_blocks: int = 2,
    nx_blocks: int = 2,
    collect_result: bool = True,
    validate: bool = False,
    check_negative_cycles: bool = True,
    compute_numerics: bool = True,
    track_paths: bool = False,
    exploit_sparsity: bool = False,
    kernel_backend: Optional[str] = None,
    fault_plan: Union[FaultPlan, Sequence[str], str, None] = None,
    checkpoint_interval: Optional[int] = None,
    recv_timeout: Optional[float] = None,
    fault_seed: int = 0,
    verify: str = "off",
) -> RunPlan:
    """Resolve run arguments into a :class:`RunPlan` (pure planning)."""
    w = np.asarray(weights)
    if w.ndim != 2 or w.shape[0] != w.shape[1]:
        raise ConfigurationError(f"weights must be square, got {w.shape}")
    n = w.shape[0]
    var = Variant.parse(variant)

    if ranks_per_node is None:
        ranks_per_node = 2 * machine.node.gpus_per_node
    n_ranks = n_nodes * ranks_per_node
    if grid is None:
        pr, pc = near_square_factors(n_ranks)
        grid = ProcessGrid(pr, pc)
    elif grid.size != n_ranks:
        raise ConfigurationError(
            f"grid {grid.pr}x{grid.pc} has {grid.size} ranks but "
            f"{n_nodes} nodes x {ranks_per_node} ranks/node = {n_ranks}"
        )
    if placement is None:
        placement = placement_for_variant(var, grid, ranks_per_node)
    if placement.n_nodes != n_nodes:
        raise ConfigurationError(
            f"placement spans {placement.n_nodes} nodes, run requested {n_nodes}"
        )

    b = block_size if block_size is not None else default_block_size(n, grid)
    padded, n_orig = pad_to_blocks(w, b, semiring)
    nb = padded.shape[0] // b

    if not compute_numerics and (validate or collect_result):
        raise ConfigurationError(
            "compute_numerics=False runs the simulation hollow; the result "
            "matrix is meaningless - pass collect_result=False, validate=False"
        )
    config = variant_config(
        var,
        SolverConfig(
            block_size=b,
            semiring=semiring,
            diag_on_gpu=diag_on_gpu,
            n_streams=n_streams,
            mx_blocks=mx_blocks,
            nx_blocks=nx_blocks,
            ring_segments=ring_segments,
            track_paths=track_paths,
            exploit_sparsity=exploit_sparsity,
            compute_numerics=compute_numerics,
            kernel_backend=kernel_backend,
            verify=verify,
        ),
    )
    if track_paths and not compute_numerics:
        raise ConfigurationError("track_paths requires compute_numerics=True")

    plan = resolve_fault_plan(fault_plan, seed=fault_seed)
    if checkpoint_interval is not None or recv_timeout is not None:
        overrides: dict[str, object] = {}
        if checkpoint_interval is not None:
            overrides["checkpoint_interval"] = checkpoint_interval
        if recv_timeout is not None:
            overrides["recv_timeout"] = recv_timeout
        plan = (plan if plan is not None else FaultPlan(seed=fault_seed)).replace(**overrides)
        if not plan.armed():
            plan = None
    if plan is not None:
        for c in plan.crashes:
            if not 0 <= c.rank < n_ranks:
                raise ConfigurationError(f"crash rank {c.rank} outside world of {n_ranks}")

    return RunPlan(
        var=var,
        config=config,
        grid=grid,
        placement=placement,
        b=b,
        n=n,
        n_orig=n_orig,
        nb=nb,
        n_ranks=n_ranks,
        n_nodes=n_nodes,
        semiring=semiring,
        w=w,
        padded=padded,
        plan=plan,
        track_paths=track_paths,
        collect_result=collect_result,
        validate=validate,
        check_negative_cycles=check_negative_cycles,
        fault_seed=fault_seed,
    )


def make_state_builders(
    ctx: FwContext, rp: RunPlan
) -> tuple[Callable, Callable]:
    """The per-rank state construction / teardown closures of a run.

    ``build_states(cfg, blocks_by_rank, nxt_by_rank)`` constructs every
    :class:`RankState` and charges its HBM (and, under offload, host
    DRAM) footprint, rolling the partial charges back on
    :class:`~repro.errors.GpuOutOfMemory` - the memory accounting where
    Figure 7's feasibility wall comes from.  ``teardown_states(states)``
    releases the charges.
    """
    cost = ctx.cost
    grid = rp.grid
    nb = rp.nb
    b = rp.b
    n_ranks = rp.n_ranks
    track_paths = rp.track_paths

    def teardown_states(states: list[RankState]) -> None:
        for state in states:
            if state.hbm_charged:
                state.gpu.dealloc(state.hbm_charged)
                state.hbm_charged = 0
            if state.dram_charged:
                state.host.dealloc(state.dram_charged)
                state.dram_charged = 0

    def build_states(cfg: SolverConfig, blocks_by_rank, nxt_by_rank) -> list[RankState]:
        states = [
            RankState(ctx, r, blocks_by_rank[r],
                      nxt=None if nxt_by_rank is None else nxt_by_rank[r])
            for r in range(n_ranks)
        ]
        # -- memory accounting (where Figure 7's feasibility wall comes from)
        try:
            for state in states:
                elems = local_matrix_elems(state.me, nb, b, grid)
                rows = len(state.local_rows())
                cols = len(state.local_cols())
                assert elems == rows * cols * b * b
                if cfg.offload:
                    state.dram_charged = int(cost.bytes_of(rows * b, cols * b))
                    state.host.alloc(state.dram_charged, "local distance matrix")
                    state.hbm_charged = state.gpu.alloc(
                        offload_gpu_footprint(state), f"rank {state.me} offload buffers"
                    )
                else:
                    footprint = (
                        cost.gpu_bytes(rows * b, cols * b)  # local matrix
                        + cost.gpu_bytes(b, cols * b)  # received row panel
                        + cost.gpu_bytes(rows * b, b)  # received column panel
                        + cost.gpu_bytes(b, b)  # diagonal block
                    )
                    if track_paths:
                        # int64 pointer blocks cost 2x the float32 distances.
                        footprint *= 3
                    state.hbm_charged = state.gpu.alloc(
                        footprint, f"rank {state.me} matrix+panels"
                    )
        except GpuOutOfMemory:
            teardown_states(states)  # roll back the partial charges
            raise
        return states

    return build_states, teardown_states


def build_result(
    ctx: FwContext,
    rp: RunPlan,
    states: list[RankState],
    elapsed: float,
    run_config: SolverConfig,
    *,
    obs=None,
    injector=None,
    tracer: Optional[Tracer] = None,
) -> ApspResult:
    """Assemble the :class:`ApspResult` of a completed simulated run:
    gather + negative-cycle check, oracle validation, PerfReport,
    verification certificate and the finalized metrics catalog."""
    config = rp.config
    semiring = rp.semiring
    dist = None
    next_hops = None
    if rp.collect_result or rp.validate:
        dist = collect([s.blocks for s in states], rp.n_orig, rp.b, rp.grid)
        if rp.track_paths:
            next_hops = collect([s.nxt for s in states], rp.n_orig, rp.b, rp.grid)
        if rp.check_negative_cycles and semiring is MIN_PLUS:
            check_no_negative_cycle(dist)
    if rp.validate:
        # The oracle runs on the *unwrapped* kernel: same numerics,
        # minus the checksumming (its temporaries are untracked anyway)
        # and minus the metering (oracle flops are not the run's work).
        if ctx.verify is not None:
            oracle_backend = ctx.verify.inner
        else:
            oracle_backend = ctx.backend.inner if obs is not None else ctx.backend
        oracle = blocked_fw(
            rp.w, rp.b, semiring=semiring, check_negative_cycles=False,
            backend=oracle_backend,
        )
        if not np.allclose(dist, oracle, equal_nan=True):
            bad = int(np.sum(~np.isclose(dist, oracle, equal_nan=True)))
            raise ValidationError(
                f"distributed result differs from sequential oracle in {bad} entries"
            )

    var_name = rp.var.value
    if run_config is not config and run_config.offload:
        # OOM degradation happened; the schedule shape is preserved, so
        # a pipelined run lands on offload-pipelined (see
        # _degrade_to_offload).
        degraded_to = (
            Variant.OFFLOAD_PIPELINED if run_config.pipelined else Variant.OFFLOAD
        )
        var_name = f"{rp.var.value}->{degraded_to.value}"
    report = PerfReport.from_run(
        var_name, rp.n, ctx.cost, rp.placement, elapsed, ctx.mpi, ctx.cluster,
        tracer,
    )
    report.block_size = rp.b
    verification = None
    if ctx.verify is not None:
        audit_dist = dist if config.verify == "full" and dist is not None else None
        verification = ctx.verify.build_certificate(
            audit_dist, rp.w if audit_dist is not None else None
        )
        report.verification = verification
        if not verification["passed"]:
            raise VerificationError(
                f"verification certificate failed: {verification}"
            )
    if obs is not None:
        from ..obs.collect import finalize_metrics

        finalize_metrics(
            obs,
            report=report,
            mpi=ctx.mpi,
            cluster=ctx.cluster,
            cost=ctx.cost,
            tracer=tracer,
            injector=injector,
            verify=ctx.verify,
            bcast_policy=ctx.bcast_policy.name,
        )
        report.metrics = obs.flat()
    return ApspResult(dist=dist if rp.collect_result else None, report=report,
                      tracer=tracer,
                      next_hops=next_hops if rp.collect_result else None,
                      fault_counters=dict(injector.counters) if injector is not None else None,
                      verification=verification,
                      metrics=obs)


def apsp(
    weights: np.ndarray,
    *,
    variant: Union[str, Variant] = Variant.ASYNC,
    block_size: Optional[int] = None,
    machine: MachineSpec = SUMMIT,
    n_nodes: int = 1,
    ranks_per_node: Optional[int] = None,
    grid: Optional[ProcessGrid] = None,
    placement: Optional[RankPlacement] = None,
    dim_scale: float = 1.0,
    semiring: Semiring = MIN_PLUS,
    diag_on_gpu: bool = True,
    n_streams: int = 3,
    ring_segments: int = 1,
    mx_blocks: int = 2,
    nx_blocks: int = 2,
    collect_result: bool = True,
    validate: bool = False,
    trace: bool = False,
    check_negative_cycles: bool = True,
    compute_numerics: bool = True,
    stragglers: Optional[dict[int, float]] = None,
    track_paths: bool = False,
    exploit_sparsity: bool = False,
    kernel_backend: Optional[str] = None,
    fault_plan: Union[FaultPlan, Sequence[str], str, None] = None,
    checkpoint_interval: Optional[int] = None,
    recv_timeout: Optional[float] = None,
    fault_seed: int = 0,
    verify: str = "off",
    metrics: bool = False,
    handles: Optional[MachineHandles] = None,
) -> ApspResult:
    """Solve all-pairs shortest paths on the simulated cluster.

    Parameters
    ----------
    weights:
        Square weight matrix; ``semiring.zero`` (+inf) marks a missing
        edge.  The diagonal should be 0 (it is not forced).
    variant:
        One of ``baseline | pipelined | reordering | async | offload |
        offload-pipelined`` (the paper's legends plus the pipelined
        Me-ParallelFw the schedule IR unlocks), or a :class:`Variant`.
    block_size:
        Block size ``b``; defaults to :func:`default_block_size`.
    machine, n_nodes, ranks_per_node:
        Cluster shape.  ``ranks_per_node`` defaults to 2 ranks per GPU
        (the paper's launch configuration).
    grid, placement:
        Explicit process grid / rank placement; defaults to the
        near-square grid and the variant's placement policy.
    dim_scale:
        Virtual/physical scaling of all costs (see
        :class:`~repro.machine.cost.CostModel`).  1.0 simulates the
        physical matrix literally.
    validate:
        Recompute with the sequential blocked oracle and raise
        :class:`~repro.errors.ValidationError` on mismatch.
    trace:
        Record spans for Gantt rendering / overlap analysis.
    stragglers:
        ``{node_id: factor}`` NIC slowdowns modeling contended links or
        slow nodes (the paper's §3.3 motivation for the asynchronous
        ring broadcast).
    exploit_sparsity:
        Skip all-infinite blocks in panel broadcasts and outer products
        (structured-sparsity future work; fill-in re-checked every
        iteration).  Requires real numerics.
    track_paths:
        Carry next-hop pointer blocks through the distributed sweep
        (distributed shortest-path generation, the paper's future
        work); the result's ``next_hops`` is then the full pointer
        matrix.  (min,+) only; not supported by the offload variant.
    kernel_backend:
        SrGemm kernel backend name (see
        :mod:`repro.semiring.backends`); None resolves the process
        default.  The validation oracle runs on the same backend, so
        validation isolates schedule bugs from kernel differences.
    fault_plan:
        A :class:`~repro.faults.FaultPlan`, CLI-style spec string(s)
        (see :mod:`repro.faults.plan`), or None to consult
        ``$REPRO_FAULT_PLAN``.  An armed plan routes the run through
        the fault injector and the checkpoint/restart recovery loop;
        unarmed runs are event-for-event identical to runs without
        this feature.
    checkpoint_interval, recv_timeout, fault_seed:
        Recovery-policy shortcuts layered over ``fault_plan``
        (equivalent to a ``policy:`` spec).
    verify:
        ABFT verification level (:mod:`repro.verify`): ``"off"`` (zero
        cost), ``"checksum"`` (guarded SrGemm ops with localized
        repair), or ``"full"`` (adds the per-iteration monotonicity
        sentinel and a residual audit in the certificate).  The
        certificate lands in ``result.verification`` /
        ``report.verification``; a failing certificate raises
        :class:`~repro.errors.VerificationError`, and unrepairable
        corruption without a restart path raises
        :class:`~repro.errors.SilentCorruptionError`.  Sampling is
        seeded by ``fault_seed``, so certificates are deterministic.
    metrics:
        Arm the observability layer (:mod:`repro.obs`): a
        :class:`~repro.obs.metrics.MetricsRegistry` is attached to the
        run (``ctx.obs`` / ``mpi.obs``) and lands on
        ``result.metrics``.  Off (the default) keeps every
        instrumentation hook on its zero-cost path; on, the hooks only
        read simulated clocks and operand shapes, so makespans are
        identical either way.
    handles:
        Injected :class:`MachineHandles` (shared simulated machine).
        ``None`` (the default) constructs a private machine, which is
        the historical single-job behavior.  Injected handles must span
        at least ``n_nodes`` nodes; ``dim_scale``/``trace`` are then
        governed by the handles, not these arguments.

    Raises
    ------
    GpuOutOfMemory
        For non-offload variants whose per-rank matrix does not fit in
        (virtual) HBM - use ``variant="offload"`` (or arm a fault plan
        with ``oom_degrade``, which restarts under offload).
    """
    rp = plan_run(
        weights,
        variant=variant,
        block_size=block_size,
        machine=machine,
        n_nodes=n_nodes,
        ranks_per_node=ranks_per_node,
        grid=grid,
        placement=placement,
        semiring=semiring,
        diag_on_gpu=diag_on_gpu,
        n_streams=n_streams,
        ring_segments=ring_segments,
        mx_blocks=mx_blocks,
        nx_blocks=nx_blocks,
        collect_result=collect_result,
        validate=validate,
        check_negative_cycles=check_negative_cycles,
        compute_numerics=compute_numerics,
        track_paths=track_paths,
        exploit_sparsity=exploit_sparsity,
        kernel_backend=kernel_backend,
        fault_plan=fault_plan,
        checkpoint_interval=checkpoint_interval,
        recv_timeout=recv_timeout,
        fault_seed=fault_seed,
        verify=verify,
    )

    if handles is None:
        handles = MachineHandles.create(machine, n_nodes, dim_scale=dim_scale, trace=trace)
    elif len(handles.cluster) < n_nodes:
        raise ConfigurationError(
            f"injected machine has {len(handles.cluster)} nodes; run needs {n_nodes}"
        )
    env = handles.env
    cluster = handles.cluster
    cost = handles.cost
    tracer = handles.tracer
    if stragglers:
        cluster.set_stragglers(stragglers)
    n_ranks = rp.n_ranks
    mpi = SimMPI(env, cluster, [rp.placement.node_of(r) for r in range(n_ranks)],
                 tracer)
    ctx = FwContext(env, cluster, mpi, rp.grid, rp.placement, rp.config, rp.nb,
                    tracer)
    config = rp.config
    if config.verify != "off":
        from ..verify import ChecksummedBackend, VerifyRuntime

        ctx.verify = VerifyRuntime(
            config.verify, ctx.backend, semiring=semiring, seed=fault_seed
        )
        ctx.backend = ChecksummedBackend(ctx.verify)
    obs = None
    if metrics:
        from ..obs import MeteredBackend, MetricsRegistry

        obs = MetricsRegistry()
        ctx.obs = obs
        mpi.obs = obs
        # Outermost wrapper: meter exactly what the run executes
        # (including checksummed kernels); preserves modeled_cost_scale,
        # so kernel durations - and makespans - are unchanged.
        ctx.backend = MeteredBackend(obs, ctx.backend)
    plan = rp.plan
    injector = None
    if plan is not None:
        injector = FaultInjector(plan, tracer)
        injector.attach(mpi)
        mpi.injector = injector
        cluster.injector = injector
        ctx.faults = FaultRuntime(injector, CheckpointStore())

    rp.distribute()
    locals_ = rp.locals_
    nxt_locals = rp.nxt_locals

    build_states, teardown_states = make_state_builders(ctx, rp)

    run_config = config
    if ctx.faults is None:
        states = build_states(config, locals_, nxt_locals)
        program = program_for_config(config)
        procs = [env.process(program(state), name=f"rank{state.me}") for state in states]
        env.run()
        for p in procs:
            if not p.processed or not p.ok:  # pragma: no cover - defensive
                raise RuntimeError(f"rank program {p.name} did not complete cleanly")
        elapsed = env.now
    else:
        states, elapsed, run_config = _run_with_recovery(
            ctx, plan, injector, config, locals_, nxt_locals,
            build_states, teardown_states, program_for_config,
        )

    return build_result(
        ctx, rp, states, elapsed, run_config,
        obs=obs, injector=injector, tracer=tracer,
    )


def _run_with_recovery(
    ctx: FwContext,
    plan: FaultPlan,
    injector: FaultInjector,
    config: SolverConfig,
    locals_,
    nxt_locals,
    build_states,
    teardown_states,
    program_for,
):
    """Epoch loop of a fault-armed run.

    Spawns every rank program under a supervisor, detects rank
    failures - injected crashes (delivered by watchdog processes as
    :class:`~repro.sim.engine.Interrupt`), exhausted receive retries,
    mid-solve :class:`~repro.errors.GpuOutOfMemory`, and worlds that
    deadlocked because a dead peer will never send - and restarts the
    world from the newest *consistent* checkpoint (one every rank
    crossed) until the sweep completes or ``plan.max_restarts`` is
    spent.  Replay is bit-exact: the simulation kernel is
    deterministic and the tropical updates recompute identical minima
    from identical operands (see docs/FAULTS.md).

    Returns ``(states, elapsed, run_config)`` where ``elapsed`` is the
    latest *rank completion* time - stale watchdog/receive-deadline
    timers may push ``env.now`` past the real makespan - and
    ``run_config`` differs from ``config`` only after OOM degradation
    to the offload variant.
    """
    env = ctx.env
    n_ranks = ctx.mpi.size
    rt = ctx.faults
    store = rt.store
    track_paths = config.track_paths

    # Free initial snapshot (pre-run, so no time is charged): restart
    # is possible even before the first periodic checkpoint.
    for r in range(n_ranks):
        store.save(0, r, locals_[r], None if nxt_locals is None else nxt_locals[r])
        rt.last_saved[r] = 0

    run_config = config
    fired_crashes: set[int] = set()
    restarts = 0
    while True:
        if ctx.verify is not None:
            ctx.verify.begin_epoch()
        start_k = rt.start_k
        if restarts == 0:
            blocks_by_rank = locals_
            nxt_by_rank = nxt_locals
        else:
            blocks_by_rank = [store.restore(start_k, r) for r in range(n_ranks)]
            nxt_by_rank = (
                [store.restore_nxt(start_k, r) for r in range(n_ranks)]
                if track_paths
                else None
            )
        try:
            states = build_states(run_config, blocks_by_rank, nxt_by_rank)
        except GpuOutOfMemory as oom_exc:
            if run_config.offload or not plan.oom_degrade:
                raise
            run_config = _degrade_to_offload(ctx, injector, config, oom_exc)
            states = build_states(run_config, blocks_by_rank, nxt_by_rank)
        for state in states:
            factor = injector.compute_factor(state.me)
            if factor != 1.0:
                state.gpu.compute_multiplier = max(state.gpu.compute_multiplier, factor)

        program = program_for(run_config)
        status: dict[int, tuple[str, object]] = {}

        def supervised(state, start_k=start_k, program=program, status=status):
            try:
                yield from program(state, start_k=start_k)
                status[state.me] = ("done", env.now)
            except Interrupt as exc:
                status[state.me] = ("crashed", exc)
            except CommTimeoutError as exc:
                status[state.me] = ("timeout", exc)
            except GpuOutOfMemory as exc:
                status[state.me] = ("oom", exc)
            except SilentCorruptionError as exc:
                status[state.me] = ("sdc", exc)

        procs = [env.process(supervised(state), name=f"rank{state.me}") for state in states]

        def crash_watchdog(idx, crash, proc):
            if crash.at > env.now:
                yield env.timeout(crash.at - env.now)
            fired_crashes.add(idx)
            if proc.is_alive:
                injector.count("faults.crashes")
                proc.interrupt(
                    RankFailure(
                        f"rank {crash.rank} lost at t={env.now:.6g}",
                        rank=crash.rank,
                        at=env.now,
                    )
                )

        watchdogs = []
        for idx, crash in enumerate(plan.crashes):
            if idx in fired_crashes or crash.at < env.now:
                continue
            watchdogs.append(
                env.process(crash_watchdog(idx, crash, procs[crash.rank]),
                            name=f"crash@r{crash.rank}")
            )

        env.run()
        # Ranks deadlocked on a peer that died (no recv_timeout armed)
        # never reach a status; declare them failed and drain again.
        stuck = [p for state, p in zip(states, procs) if state.me not in status]
        for p in stuck:
            if p.is_alive:
                p.interrupt(RankFailure("rank stalled after peer failure"))
        if stuck:
            env.run()

        if len(status) == n_ranks and all(st[0] == "done" for st in status.values()):
            return states, max(st[1] for st in status.values()), run_config

        # ---- failure: tear the epoch down and restart -------------------
        restarts += 1
        failures = {r: st for r, st in status.items() if st[0] != "done"}
        if restarts > plan.max_restarts:
            for st in failures.values():
                if isinstance(st[1], (SilentCorruptionError, CommTimeoutError, GpuOutOfMemory)):
                    raise st[1]
            raise RankFailure(
                f"world failed {restarts} times (restart budget {plan.max_restarts}); "
                f"failed ranks: {sorted(failures)}"
            )
        injector.count("faults.restarts")

        oom_failures = [st[1] for st in failures.values() if st[0] == "oom"]
        if oom_failures and not run_config.offload:
            if not plan.oom_degrade:
                raise oom_failures[0]
            run_config = _degrade_to_offload(ctx, injector, config, oom_failures[0])

        # Kill watchdogs and stray async relays of the dead epoch;
        # defuse so their Interrupt failures don't abort env.run().
        for wd in watchdogs:
            if wd.is_alive:
                wd.defuse()
                wd.interrupt()
        for state in states:
            for ev in state.pending:
                if getattr(ev, "is_alive", False):
                    ev.defuse()
                    ev.interrupt()
        env.run()

        k0 = store.consistent_k(n_ranks)
        if store.crc_rejections:
            injector.counters["faults.crc_rejections"] = float(store.crc_rejections)
        if k0 is None:  # pragma: no cover - the k=0 snapshot always exists
            raise CheckpointError("no consistent checkpoint to restart from")
        progress = max((state.cur_k for state in states), default=-1)
        injector.count("faults.replayed_iters", max(0, progress - k0))
        teardown_states(states)
        injector.reset_world()
        rt.start_k = k0
        for r in range(n_ranks):
            rt.last_saved[r] = max(rt.last_saved.get(r, 0), k0)
        # Charge the restore: each rank reads its snapshot back from the
        # host-side store in parallel, so the slowest read gates restart.
        restore_cost = 0.0
        for state in states:
            rows = len(state.local_rows())
            cols = len(state.local_cols())
            dur = ctx.cost.checkpoint_time(rows * ctx.b, cols * ctx.b)
            if track_paths:
                dur *= 3
            restore_cost = max(restore_cost, dur)
        env.run(until=env.timeout(restore_cost))
        injector.count("faults.restore_time", restore_cost)


def _degrade_to_offload(
    ctx: FwContext, injector: FaultInjector, base: SolverConfig, oom_exc: GpuOutOfMemory
) -> SolverConfig:
    """Switch a fault-armed run to the offload (Me-ParallelFw) variant
    after GpuOutOfMemory; re-raises the OOM when the configuration
    cannot run under offload (track_paths / exploit_sparsity).

    The schedule shape is preserved: a pipelined run degrades to
    ``offload-pipelined``, not ``offload``.  Look-ahead checkpoints
    already carry the next round's diag/panel updates (the resume
    prologue of :class:`~repro.core.schedule.LookaheadSchedule` relies
    on it), so replaying one under the bulk-sync schedule re-applies
    those updates and re-derives minima in a different association
    order - breaking bit-exact replay at the ULP level."""
    try:
        degraded = variant_config(
            Variant.OFFLOAD_PIPELINED if base.pipelined else Variant.OFFLOAD, base
        )
    except ConfigurationError:
        raise oom_exc from None
    injector.count("faults.oom_degraded")
    ctx.reconfigure(degraded)
    return degraded
