"""Memory-efficient distributed Floyd-Warshall, Me-ParallelFw (§4.3).

Follows the *baseline* schedule (the paper's legends call this variant
"offload": "the memory-efficient flavor of Algorithm 3"), but the local
distance matrix lives in host DRAM rather than HBM:

* DiagUpdate / PanelUpdate stage their (small) operands to the GPU and
  stage results back for the MPI broadcasts;
* OuterUpdate streams the local matrix through the GPU with the
  ooGSrGemm pipeline of :mod:`repro.core.oog_srgemm` - panels ride to
  the device once per iteration, C tiles cycle through ``s`` stream
  buffers, hostUpdates land the results.

GPU memory holds only panels + diagonal + stream buffers, so problems
~2.5x beyond aggregate HBM become feasible at a modest throughput cost
(the paper's Figure 7).
"""

from __future__ import annotations

import numpy as np

from ..faults.checkpoint import checkpoint_hook
from ..semiring.minplus import Semiring
from .context import (
    RankState,
    maybe,
    diag_bcast,
    diag_update,
    panel_bcast,
)
from .oog_srgemm import TileTask, run_oog_pipeline

__all__ = ["offload_program", "offload_gpu_footprint"]


def offload_gpu_footprint(state: RankState) -> int:
    """Virtual HBM bytes Me-ParallelFw needs on this rank's GPU:
    the two panels, the diagonal block, and ``s`` tile buffers."""
    ctx = state.ctx
    cfg = ctx.config
    b = ctx.b
    n_local_rows = len(state.local_rows())
    n_local_cols = len(state.local_cols())
    panel_bytes = ctx.cost.gpu_bytes(b * n_local_rows, b) + ctx.cost.gpu_bytes(
        b, b * n_local_cols
    )
    diag_bytes = ctx.cost.gpu_bytes(b, b)
    tile_bytes = cfg.n_streams * ctx.cost.gpu_bytes(
        b * cfg.mx_blocks, b * cfg.nx_blocks
    )
    return panel_bytes + diag_bytes + tile_bytes


def _chunks(items: list[int], size: int) -> list[list[int]]:
    return [items[i : i + size] for i in range(0, len(items), size)]


def _offload_diag_update(state: RankState, k: int):
    """Generator: DiagUpdate(k) with host<->device staging."""
    b = state.ctx.b
    state.stream.h2d(b, b, label=f"h2d:diag{k}")
    diag_update(state, k)  # enqueues the squaring-chain kernel
    state.stream.d2h(b, b, label=f"d2h:diag{k}")
    yield state.stream.synchronize()


def _offload_panel_row(state: RankState, k: int, diag: np.ndarray):
    """Generator: row PanelUpdate with staging; completes when the
    updated panel is back on the host (ready to broadcast)."""
    ctx = state.ctx
    b = ctx.b
    cols = state.local_cols(exclude=(k,))
    if not cols:
        return
    s = state.stream
    s.h2d(b, b, label=f"h2d:diag{k}")
    s.h2d(b, b * len(cols), label=f"h2d:rowpanel{k}")

    def fn():
        for j in cols:
            ctx.backend.panel_row_update(state.blocks[(k, j)], diag, semiring=ctx.semiring)

    s.kernel(
        b,
        b * len(cols),
        b,
        f"PanelUpdateRow({k})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )
    s.d2h(b, b * len(cols), label=f"d2h:rowpanel{k}")
    yield s.synchronize()


def _offload_panel_col(state: RankState, k: int, diag: np.ndarray):
    ctx = state.ctx
    b = ctx.b
    rows = state.local_rows(exclude=(k,))
    if not rows:
        return
    s = state.stream
    s.h2d(b, b, label=f"h2d:diag{k}")
    s.h2d(b * len(rows), b, label=f"h2d:colpanel{k}")

    def fn():
        for i in rows:
            ctx.backend.panel_col_update(state.blocks[(i, k)], diag, semiring=ctx.semiring)

    s.kernel(
        b * len(rows),
        b,
        b,
        f"PanelUpdateCol({k})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )
    s.d2h(b * len(rows), b, label=f"d2h:colpanel{k}")
    yield s.synchronize()


def _outer_tiles(
    state: RankState,
    k: int,
    row_panel: dict[int, np.ndarray],
    col_panel: dict[int, np.ndarray],
) -> list[TileTask]:
    """The ooGSrGemm tile plan for OuterUpdate(k) on this rank.

    Local block rows/cols (excluding k) are grouped into chunks of
    mx_blocks x nx_blocks; panel pieces are h2d'd on first use,
    keyed per (iteration, side, chunk)."""
    ctx = state.ctx
    cfg = ctx.config
    b = ctx.b
    semiring: Semiring = ctx.semiring
    row_chunks = _chunks(state.local_rows(exclude=(k,)), cfg.mx_blocks)
    col_chunks = _chunks(state.local_cols(exclude=(k,)), cfg.nx_blocks)
    tiles: list[TileTask] = []
    for ci, rows in enumerate(row_chunks):
        for cj, cols in enumerate(col_chunks):
            h2d = []
            if cj == 0:
                h2d.append(((k, "A", ci), b * len(rows), b))
            if ci == 0:
                h2d.append(((k, "B", cj), b, b * len(cols)))

            def compute(rows=rows, cols=cols):
                a = np.vstack([col_panel[i] for i in rows])
                bmat = np.hstack([row_panel[j] for j in cols])
                x = semiring.zeros((a.shape[0], bmat.shape[1]), dtype=a.dtype)
                return ctx.backend.srgemm_accumulate(x, a, bmat, semiring=semiring)

            def apply(x, rows=rows, cols=cols):
                for ri, i in enumerate(rows):
                    for rj, j in enumerate(cols):
                        blk = state.blocks[(i, j)]
                        semiring.plus(
                            blk, x[ri * b : (ri + 1) * b, rj * b : (rj + 1) * b], out=blk
                        )

            tiles.append(
                TileTask(
                    m=b * len(rows),
                    n=b * len(cols),
                    k=b,
                    h2d=h2d,
                    compute=maybe(ctx, compute),
                    apply=maybe(ctx, apply),
                    label=f"outer{k}[{ci},{cj}]",
                    cost_scale=ctx.backend.modeled_cost_scale,
                )
            )
    return tiles


def offload_program(state: RankState, start_k: int = 0):
    """Generator: Me-ParallelFw as executed by one rank.

    Like the baseline, resuming at the top of iteration ``start_k``
    (checkpoint recovery) reproduces a fresh run's ``k >= start_k``
    schedule exactly.
    """
    ctx = state.ctx
    for k in range(start_k, ctx.nb):
        yield from checkpoint_hook(state, k)
        diag = None
        if state.owns_diag(k):
            yield from _offload_diag_update(state, k)
            diag = state.blocks[(k, k)]
        if state.in_row(k) or state.in_col(k):
            diag = yield from diag_bcast(state, k, diag)
        if state.in_row(k):
            yield from _offload_panel_row(state, k, diag)
        if state.in_col(k):
            yield from _offload_panel_col(state, k, diag)

        row_panel, col_panel = yield from panel_bcast(state, k)

        tiles = _outer_tiles(state, k, row_panel, col_panel)
        yield from run_oog_pipeline(
            ctx.env, state.gpu, state.host, tiles, ctx.config.n_streams, label=f"r{state.me}.oog{k}"
        )
    yield from state.drain()
    return state.blocks
