"""Pipelined distributed Floyd-Warshall (paper Algorithm 4, §3.2).

The bulk-sequential dependence of Algorithm 3 is broken by observing
that iteration k+1's DiagUpdate and PanelUpdate only need the (k+1)
panels, not the whole matrix.  Each iteration k therefore:

1. ranks touching the (k+1) panels *look ahead*: they apply
   OuterUpdate(k) to just those panels, run DiagUpdate(k+1) /
   DiagBcast(k+1) / PanelUpdate(k+1), and initiate PanelBcast(k+1);
2. every rank then launches the big OuterUpdate(k) kernel on its GPU
   *asynchronously* and, while it runs, participates in
   PanelBcast(k+1) - the broadcast rides under the outer product,
   which is the whole point.

With the ring PanelBcast (``panel_bcast="ring"``, §3.3) relays are
issued asynchronously, so broadcasts from different iterations overlap
and no collective acts as a barrier - the paper's ``+Async`` variant.
With the tree it is the plain ``Pipelined`` variant.
"""

from __future__ import annotations

from ..faults.checkpoint import checkpoint_hook
from .context import (
    RankState,
    maybe,
    diag_bcast,
    diag_update,
    outer_update,
    panel_bcast,
    panel_update_col,
    panel_update_row,
)

__all__ = ["pipelined_program"]


def _lookahead_diag(state: RankState, k: int, row_panel, col_panel):
    """Kernel: apply OuterUpdate(k) to block (k+1, k+1) only."""
    ctx = state.ctx
    blk = state.blocks[(k + 1, k + 1)]
    bmat = row_panel[k + 1]

    if ctx.config.track_paths:
        a, a_nxt = col_panel[k + 1]
        nblk = state.nxt[(k + 1, k + 1)]

        def fn():
            ctx.backend.srgemm_accumulate_paths(blk, nblk, a, a_nxt, bmat)

    else:
        a = col_panel[k + 1]

        def fn():
            ctx.backend.srgemm_accumulate(blk, a, bmat, semiring=ctx.semiring)

    return state.stream.kernel(
        ctx.b,
        ctx.b,
        ctx.b,
        f"LookaheadDiag({k + 1})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )


def _lookahead_row(state: RankState, k: int, row_panel, col_panel):
    """Kernel: apply OuterUpdate(k) to the (k+1) block row (local
    j ∉ {k, k+1}): ``A(k+1,j) ⊕= A(k+1,k) ⊗ A(k,j)``."""
    ctx = state.ctx
    cols = state.local_cols(exclude=(k, k + 1))
    if ctx.config.exploit_sparsity:
        cols = [j for j in cols if j in row_panel]
    if not cols:
        return None

    if ctx.config.track_paths:
        a, a_nxt = col_panel[k + 1]

        def fn():
            for j in cols:
                ctx.backend.srgemm_accumulate_paths(
                    state.blocks[(k + 1, j)], state.nxt[(k + 1, j)], a, a_nxt, row_panel[j]
                )

    else:
        a = col_panel[k + 1]

        def fn():
            for j in cols:
                ctx.backend.srgemm_accumulate(
                    state.blocks[(k + 1, j)], a, row_panel[j], semiring=ctx.semiring
                )

    return state.stream.kernel(
        ctx.b,
        ctx.b * len(cols),
        ctx.b,
        f"LookaheadRow({k + 1})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )


def _lookahead_col(state: RankState, k: int, row_panel, col_panel):
    """Kernel: apply OuterUpdate(k) to the (k+1) block column (local
    i ∉ {k, k+1}): ``A(i,k+1) ⊕= A(i,k) ⊗ A(k,k+1)``."""
    ctx = state.ctx
    rows = state.local_rows(exclude=(k, k + 1))
    if ctx.config.exploit_sparsity:
        rows = [i for i in rows if i in col_panel]
    if not rows:
        return None
    bmat = row_panel[k + 1]

    if ctx.config.track_paths:

        def fn():
            for i in rows:
                a, a_nxt = col_panel[i]
                ctx.backend.srgemm_accumulate_paths(
                    state.blocks[(i, k + 1)], state.nxt[(i, k + 1)], a, a_nxt, bmat
                )

    else:

        def fn():
            for i in rows:
                ctx.backend.srgemm_accumulate(
                    state.blocks[(i, k + 1)], col_panel[i], bmat, semiring=ctx.semiring
                )

    return state.stream.kernel(
        ctx.b * len(rows),
        ctx.b,
        ctx.b,
        f"LookaheadCol({k + 1})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )


def pipelined_program(state: RankState, start_k: int = 0):
    """Generator: Algorithm 4 as executed by one rank.

    On resume (``start_k > 0``) the checkpointed state already carries
    the iteration-``start_k`` diag/panel updates: the look-ahead phase
    of iteration ``start_k - 1`` applied them before the checkpoint was
    taken at the top of iteration ``start_k``.  Re-running the update
    prologue would apply them twice (not bitwise idempotent for float
    path lengths), so resume only re-broadcasts the already-updated
    panels.
    """
    ctx = state.ctx
    nb = ctx.nb

    if start_k == 0:
        # ---- Prologue: start the pipeline with iteration 0's panels -----
        diag = None
        if state.owns_diag(0):
            yield diag_update(state, 0)
            diag = state.blocks[(0, 0)]
        if state.in_row(0) or state.in_col(0):
            diag = yield from diag_bcast(state, 0, diag)
        if state.in_row(0):
            ev = panel_update_row(state, 0, diag)
            if ev is not None:
                yield ev
        if state.in_col(0):
            ev = panel_update_col(state, 0, diag)
            if ev is not None:
                yield ev
    row_panel, col_panel = yield from panel_bcast(state, start_k)

    # ---- Main loop -------------------------------------------------------
    for k in range(start_k, nb):
        yield from checkpoint_hook(state, k)
        skip_rows: tuple[int, ...] = ()
        skip_cols: tuple[int, ...] = ()
        if k + 1 < nb:
            # -- Look-ahead phase: bring the (k+1) panels up to date and
            #    broadcast them, before the bulk of OuterUpdate(k).
            # With sparsity, a missing panel piece means that side of
            # the (k+1) look-ahead contributes nothing this iteration.
            have_col = (k + 1) in col_panel
            have_row = (k + 1) in row_panel
            diag_next = None
            if state.owns_diag(k + 1):
                if have_col and have_row:
                    _lookahead_diag(state, k, row_panel, col_panel)
                yield diag_update(state, k + 1)
                diag_next = state.blocks[(k + 1, k + 1)]
            if state.in_row(k + 1) or state.in_col(k + 1):
                lookahead_evs = []
                if state.in_row(k + 1) and have_col:
                    lookahead_evs.append(_lookahead_row(state, k, row_panel, col_panel))
                if state.in_col(k + 1) and have_row:
                    lookahead_evs.append(_lookahead_col(state, k, row_panel, col_panel))
                # DiagBcast(k+1): the look-ahead kernels overlap the wait.
                diag_next = yield from diag_bcast(state, k + 1, diag_next)
                if ctx.config.exploit_sparsity:
                    # The panel updates below inspect block emptiness at
                    # enqueue time; the look-ahead fill-in must have
                    # landed first (stale emptiness would drop blocks).
                    for ev in lookahead_evs:
                        if ev is not None:
                            yield ev
                evs = []
                if state.in_row(k + 1):
                    evs.append(panel_update_row(state, k + 1, diag_next))
                    skip_rows = (k + 1,)
                if state.in_col(k + 1):
                    evs.append(panel_update_col(state, k + 1, diag_next))
                    skip_cols = (k + 1,)
                for ev in evs:
                    if ev is not None:
                        yield ev

        # -- Launch the big OuterUpdate(k) asynchronously -----------------
        outer_ev = outer_update(state, k, row_panel, col_panel, skip_rows, skip_cols)

        # -- While it runs, move the (k+1) panels ---------------------------
        if k + 1 < nb:
            row_panel, col_panel = yield from panel_bcast(state, k + 1)

        if outer_ev is not None:
            yield outer_ev

    yield from state.drain()
    return state.blocks
