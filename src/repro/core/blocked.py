"""Sequential blocked Floyd-Warshall (paper Algorithm 2).

In-memory, single process, vectorized.  This is simultaneously:

* the oracle every distributed variant is verified against,
* the single-rank fast path of the public :func:`repro.apsp` API, and
* the reference structure (DiagUpdate / PanelUpdate / MinPlus outer
  product) that the distributed rank programs mirror step for step.

All SrGemm work dispatches through the pluggable kernel backends of
:mod:`repro.semiring.backends`; pass ``backend=`` to pick one, or rely
on the process default / ``REPRO_SRGEMM_BACKEND``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..semiring.backends import get_backend
from ..semiring.closure import check_no_negative_cycle, closure_by_squaring, fw_inplace
from ..semiring.minplus import MIN_PLUS, Semiring
from .distribution import block_slice, pad_to_blocks

__all__ = ["blocked_fw", "blocked_fw_inplace", "blocked_fw_paths"]


def blocked_fw(
    weights: np.ndarray,
    block_size: int,
    semiring: Semiring = MIN_PLUS,
    diag_via_squaring: bool = False,
    check_negative_cycles: bool = True,
    backend=None,
) -> np.ndarray:
    """Blocked Floyd-Warshall; returns the full APSP distance matrix.

    Parameters
    ----------
    weights:
        Square weight matrix (semiring-zero where no edge; by APSP
        convention its diagonal should be the semiring one).
    block_size:
        Block size ``b``; the input is padded if ``b`` does not divide n.
    diag_via_squaring:
        Use the GPU formulation of the diagonal update (paper Eq. 4,
        ``ceil(log2 b)`` squarings) instead of the classic k-loop.
        Results are identical for zero-diagonal inputs; this flag exists
        so tests can pin that equivalence.
    backend:
        SrGemm kernel backend (name or instance); ``None`` resolves the
        process default.
    """
    padded, n = pad_to_blocks(np.asarray(weights), block_size, semiring)
    dist = np.array(padded, dtype=semiring.dtype, copy=True)
    blocked_fw_inplace(dist, block_size, semiring, diag_via_squaring, backend=backend)
    dist = dist[:n, :n]
    if check_negative_cycles and semiring is MIN_PLUS:
        check_no_negative_cycle(dist)
    return dist


def blocked_fw_inplace(
    dist: np.ndarray,
    b: int,
    semiring: Semiring = MIN_PLUS,
    diag_via_squaring: bool = False,
    backend=None,
) -> np.ndarray:
    """Algorithm 2 on a block-divisible matrix, in place."""
    n = dist.shape[0]
    if dist.ndim != 2 or dist.shape[1] != n:
        raise ConfigurationError(f"distance matrix must be square, got {dist.shape}")
    if n % b:
        raise ConfigurationError(f"block size {b} does not divide n={n}")
    kernels = get_backend(backend)
    nb = n // b
    for k in range(nb):
        kk = block_slice(b, k, k)
        # --- Diagonal update -------------------------------------------
        if diag_via_squaring:
            dist[kk] = closure_by_squaring(dist[kk], semiring=semiring, backend=kernels)
        else:
            fw_inplace(dist[kk], semiring=semiring)
        # The wide panels below include block (k,k) itself, so the
        # closed diagonal is snapshotted once (b x b) to keep the
        # panel-update operands alias-free; updating block (k,k) along
        # with the panel is harmless (⊕ idempotent, diag closed) and
        # matches what a GPU implementation does to stay uniform.
        diag = dist[kk].copy()
        # --- Panel update ----------------------------------------------
        # Row panel: A(k, j) ← A(k, j) ⊕ A(k, k) ⊗ A(k, j), all j at
        # once (one wide fused SrGemm, like the aggregated GPU kernel);
        # the backend owns the panel-aliasing snapshot.
        kernels.panel_row_update(dist[k * b : (k + 1) * b, :], diag, semiring=semiring)
        kernels.panel_col_update(dist[:, k * b : (k + 1) * b], diag, semiring=semiring)
        # --- Min-plus outer product ----------------------------------------
        colk = dist[:, k * b : (k + 1) * b].copy()
        rowk = dist[k * b : (k + 1) * b, :].copy()
        # Zero out the k-th block row/col contribution to itself: the
        # outer product must not re-update the panels with stale data -
        # but since ⊕ is idempotent and the panels are already closed
        # over block k, a full-matrix update is both correct and simpler.
        kernels.srgemm_outer(dist, colk, rowk, semiring=semiring)
    return dist


def blocked_fw_paths(
    weights: np.ndarray,
    block_size: int,
    check_negative_cycles: bool = True,
    backend=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked Floyd-Warshall carrying next-hop pointers ((min,+) only).

    Returns ``(dist, nxt)`` where ``nxt[i, j]`` is the vertex after
    ``i`` on a shortest i->j path (or -1).  The block structure
    mirrors Algorithm 2 exactly, with the path-aware kernels of
    :mod:`repro.semiring.path_kernels`; this is both the sequential
    oracle for the distributed ``track_paths`` mode and the
    single-process fast path.
    """
    from ..semiring.path_kernels import NO_HOP, fw_inplace_paths, init_next_hops

    kernels = get_backend(backend)
    padded, n = pad_to_blocks(np.asarray(weights), block_size, MIN_PLUS)
    dist = np.array(padded, dtype=np.float64, copy=True)
    nxt = init_next_hops(dist)
    np.fill_diagonal(nxt, NO_HOP)
    b = block_size
    nb = dist.shape[0] // b

    def blk(mat, i, j):
        return mat[block_slice(b, i, j)]

    for k in range(nb):
        fw_inplace_paths(blk(dist, k, k), blk(nxt, k, k))
        diag, diag_nxt = blk(dist, k, k), blk(nxt, k, k)
        for j in range(nb):
            if j != k:
                kernels.srgemm_accumulate_paths(
                    blk(dist, k, j), blk(nxt, k, j), diag, diag_nxt, blk(dist, k, j).copy()
                )
        for i in range(nb):
            if i != k:
                kernels.srgemm_accumulate_paths(
                    blk(dist, i, k),
                    blk(nxt, i, k),
                    blk(dist, i, k).copy(),
                    blk(nxt, i, k).copy(),
                    diag,
                )
        for i in range(nb):
            if i == k:
                continue
            a, a_nxt = blk(dist, i, k), blk(nxt, i, k)
            for j in range(nb):
                if j == k:
                    continue
                kernels.srgemm_accumulate_paths(
                    blk(dist, i, j), blk(nxt, i, j), a, a_nxt, blk(dist, k, j)
                )
    dist, nxt = dist[:n, :n], nxt[:n, :n]
    if check_negative_cycles:
        check_no_negative_cycle(dist)
    return dist, nxt
