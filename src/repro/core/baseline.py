"""The baseline distributed Floyd-Warshall (paper Algorithm 3).

Bulk-synchronous within each outer iteration: DiagUpdate → DiagBcast →
PanelUpdate → PanelBcast → OuterUpdate, with the process *waiting* for
its outer-product kernel before starting the next iteration.  No
communication is overlapped with computation; broadcasts are the
library-style binomial tree.  This is the strong baseline the paper's
optimizations are measured against.
"""

from __future__ import annotations

from ..faults.checkpoint import checkpoint_hook
from .context import (
    RankState,
    diag_bcast,
    diag_update,
    outer_update,
    panel_bcast,
    panel_update_col,
    panel_update_row,
)

__all__ = ["baseline_program"]


def baseline_program(state: RankState, start_k: int = 0):
    """Generator: Algorithm 3 as executed by one rank.

    ``start_k`` resumes from a checkpoint taken at the top of outer
    iteration ``start_k`` (fault recovery); the schedule is identical
    to a fresh run restricted to ``k >= start_k``, which is safe
    because the top-of-loop state is exactly the post-(k-1) state.
    """
    ctx = state.ctx
    for k in range(start_k, ctx.nb):
        yield from checkpoint_hook(state, k)
        # --- DiagUpdate(k) + DiagBcast(k) --------------------------------
        diag = None
        if state.owns_diag(k):
            yield diag_update(state, k)
            diag = state.blocks[(k, k)]
        if state.in_row(k) or state.in_col(k):
            diag = yield from diag_bcast(state, k, diag)

        # --- PanelUpdate(k) ------------------------------------------------
        if state.in_row(k):
            ev = panel_update_row(state, k, diag)
            if ev is not None:
                yield ev
        if state.in_col(k):
            ev = panel_update_col(state, k, diag)
            if ev is not None:
                yield ev

        # --- PanelBcast(k) ---------------------------------------------------
        row_panel, col_panel = yield from panel_bcast(state, k)

        # --- OuterUpdate(k), waited for (bulk-synchronous) -----------------
        ev = outer_update(state, k, row_panel, col_panel)
        if ev is not None:
            yield ev
    yield from state.drain()
    return state.blocks
