"""Schedule IR: typed per-iteration op DAGs built by composable policies.

The paper's solver variants are orthogonal policy choices - schedule
shape (bulk-synchronous Algorithm 3 vs look-ahead Algorithm 4),
broadcast strategy (tree vs ring, §3.3), placement (§3.4), and memory
residency (Me-ParallelFw, §4).  Instead of hand-writing one rank
program per combination, a :class:`SchedulePolicy` emits each outer
iteration as a small list of typed ops and a single executor
(:mod:`repro.core.executor`) lowers them onto the sim engine through a
:class:`~repro.core.executor.ResidencyPolicy`.  The broadcast axis
lives in :mod:`repro.mpi.policy` and is consulted by the ``PanelBcast``
lowering.

The ops are deliberately coarse - one op per paper kernel/collective
(§2.5.2) plus explicit ``Wait*`` barriers - so a schedule reads like
the paper's pseudocode and the dependency structure (what may overlap
what) is visible in the op stream rather than buried in generator
control flow.

Ops are frozen dataclasses: a schedule is pure data, inspectable and
testable without a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal

__all__ = [
    "Axis",
    "ScheduleOp",
    "Checkpoint",
    "DiagUpdate",
    "DiagBcast",
    "PanelUpdate",
    "WaitPanelUpdates",
    "PanelBcast",
    "LookaheadDiag",
    "LookaheadPanel",
    "WaitLookahead",
    "OuterUpdate",
    "WaitOuter",
    "SchedulePolicy",
    "BulkSyncSchedule",
    "LookaheadSchedule",
    "BULK_SYNC",
    "LOOKAHEAD",
    "schedule_policy_for",
]

#: Which side of the cross a panel op works on: the k-th block row
#: ("row") or the k-th block column ("col").
Axis = Literal["row", "col"]


@dataclass(frozen=True)
class ScheduleOp:
    """Base class of all IR ops."""

    @property
    def opname(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Checkpoint(ScheduleOp):
    """Top-of-iteration checkpoint/fault hook (zero-cost unarmed)."""

    k: int


@dataclass(frozen=True)
class DiagUpdate(ScheduleOp):
    """Closure of block (k, k) on its owner; waited for (the bcast
    needs the result)."""

    k: int


@dataclass(frozen=True)
class DiagBcast(ScheduleOp):
    """Owner broadcasts A(k,k) along its process row and column
    (always the binomial tree: small message on the critical path)."""

    k: int


@dataclass(frozen=True)
class PanelUpdate(ScheduleOp):
    """Update the local pieces of the k-th block row or column with the
    diagonal.  ``wait=True`` blocks until the kernel completes
    (bulk-synchronous); ``wait=False`` enqueues and parks the event for
    a later :class:`WaitPanelUpdates`.  ``record_skip`` marks the axis
    as already updated so ``OuterUpdate`` excludes it (the look-ahead
    schedule's k+1 panels)."""

    k: int
    axis: Axis
    wait: bool = True
    record_skip: bool = False


@dataclass(frozen=True)
class WaitPanelUpdates(ScheduleOp):
    """Barrier: wait for every parked ``PanelUpdate(wait=False)``."""


@dataclass(frozen=True)
class PanelBcast(ScheduleOp):
    """Two one-to-all broadcasts (Eq. 1): row panel down the column
    communicator, column panel across the row communicator.  Strategy
    comes from the context's :class:`~repro.mpi.policy.BcastPolicy`."""

    k: int


@dataclass(frozen=True)
class LookaheadDiag(ScheduleOp):
    """Apply OuterUpdate(k) to block (k+1, k+1) only, so DiagUpdate(k+1)
    can run before the bulk outer product (Algorithm 4's look-ahead)."""

    k: int


@dataclass(frozen=True)
class LookaheadPanel(ScheduleOp):
    """Apply OuterUpdate(k) to the local (k+1) block row/column only."""

    k: int
    axis: Axis


@dataclass(frozen=True)
class WaitLookahead(ScheduleOp):
    """Barrier on the parked look-ahead kernels - only enforced under
    ``exploit_sparsity``, where the panel updates inspect block
    emptiness at enqueue time and stale fill-in would drop blocks;
    otherwise stream ordering already serializes them."""


@dataclass(frozen=True)
class OuterUpdate(ScheduleOp):
    """The bulk rank-b update of all remaining local blocks.
    ``wait=True`` is Algorithm 3's bulk-synchronous step; ``wait=False``
    launches asynchronously so PanelBcast(k+1) rides under it, to be
    joined by :class:`WaitOuter`."""

    k: int
    wait: bool = True


@dataclass(frozen=True)
class WaitOuter(ScheduleOp):
    """Barrier: join the asynchronous ``OuterUpdate(wait=False)``."""


# ---------------------------------------------------------------------------
# Schedule policies
# ---------------------------------------------------------------------------


class SchedulePolicy:
    """Emits the op DAG of one rank program, iteration by iteration."""

    name: str = "abstract"

    def prologue(self, start_k: int, nb: int) -> List[ScheduleOp]:
        """Ops run once before the main loop (pipeline wind-up)."""
        return []

    def iteration(self, k: int, nb: int) -> List[ScheduleOp]:
        """Ops of outer iteration ``k``."""
        raise NotImplementedError

    def ops(self, start_k: int, nb: int):
        """The full op stream of a run - for inspection and docs."""
        yield from self.prologue(start_k, nb)
        for k in range(start_k, nb):
            yield from self.iteration(k, nb)


class BulkSyncSchedule(SchedulePolicy):
    """Algorithm 3: DiagUpdate → DiagBcast → PanelUpdate → PanelBcast →
    OuterUpdate, every step waited for before the next iteration."""

    name = "bulk-sync"

    def iteration(self, k: int, nb: int) -> List[ScheduleOp]:
        return [
            Checkpoint(k),
            DiagUpdate(k),
            DiagBcast(k),
            PanelUpdate(k, "row", wait=True),
            PanelUpdate(k, "col", wait=True),
            PanelBcast(k),
            OuterUpdate(k, wait=True),
        ]


class LookaheadSchedule(SchedulePolicy):
    """Algorithm 4: iteration k brings the (k+1) panels up to date
    (look-ahead fill-in, DiagUpdate/DiagBcast/PanelUpdate of k+1), then
    launches the bulk OuterUpdate(k) asynchronously and participates in
    PanelBcast(k+1) while it runs - the broadcast rides under the outer
    product.

    On resume (``start_k > 0``) the checkpointed state already carries
    the iteration-``start_k`` diag/panel updates (applied by the
    look-ahead phase of ``start_k - 1`` before the checkpoint), so the
    prologue only re-broadcasts the already-updated panels.
    """

    name = "look-ahead"

    def prologue(self, start_k: int, nb: int) -> List[ScheduleOp]:
        ops: List[ScheduleOp] = []
        if start_k == 0:
            ops += [
                DiagUpdate(0),
                DiagBcast(0),
                PanelUpdate(0, "row", wait=True),
                PanelUpdate(0, "col", wait=True),
            ]
        if start_k < nb:
            ops.append(PanelBcast(start_k))
        return ops

    def iteration(self, k: int, nb: int) -> List[ScheduleOp]:
        ops: List[ScheduleOp] = [Checkpoint(k)]
        if k + 1 < nb:
            ops += [
                LookaheadDiag(k),
                DiagUpdate(k + 1),
                LookaheadPanel(k, "row"),
                LookaheadPanel(k, "col"),
                DiagBcast(k + 1),
                WaitLookahead(),
                PanelUpdate(k + 1, "row", wait=False, record_skip=True),
                PanelUpdate(k + 1, "col", wait=False, record_skip=True),
                WaitPanelUpdates(),
            ]
        ops.append(OuterUpdate(k, wait=False))
        if k + 1 < nb:
            ops.append(PanelBcast(k + 1))
        ops.append(WaitOuter())
        return ops


#: Stateless policy singletons (schedules carry no per-run state).
BULK_SYNC = BulkSyncSchedule()
LOOKAHEAD = LookaheadSchedule()


def schedule_policy_for(pipelined: bool) -> SchedulePolicy:
    """Resolve the schedule-shape axis from configuration."""
    return LOOKAHEAD if pipelined else BULK_SYNC
