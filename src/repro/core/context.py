"""Shared solver context and per-rank state for the distributed variants.

A :class:`FwContext` holds everything common to one distributed run
(simulation environment, cluster, MPI world, grid, placement, cost
model, configuration); a :class:`RankState` holds one rank's view
(its communicators, its blocks, its GPU binding).  The actual rank
*programs* are schedule-IR op streams (:mod:`repro.core.schedule`)
lowered by the single executor (:mod:`repro.core.executor`); the
operation generators here (:func:`diag_update`, :func:`diag_bcast`,
:func:`panel_update_row` / ``_col``, :func:`panel_bcast`,
:func:`outer_update`) are the building blocks that lowering composes,
mirroring the paper's kernel decomposition (its §2.5.2 list).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from ..errors import ConfigurationError
from ..machine.cluster import SimCluster
from ..machine.cost import CostModel
from ..machine.gpu import CudaStream, SimGPU
from ..machine.host import HostCpu
from ..mpi.collectives import bcast_tree
from ..mpi.comm import Comm, SimMPI
from ..mpi.policy import BcastPolicy, bcast_policy_for
from ..semiring.backends import KernelBackend, get_backend
from ..semiring.closure import fw_inplace, squaring_steps
from ..semiring.path_kernels import fw_inplace_paths
from ..semiring.minplus import MIN_PLUS, Semiring
from ..sim.engine import Environment, Event
from ..sim.trace import Tracer
from .distribution import LocalBlocks
from .grid import ProcessGrid
from .placement import RankPlacement

__all__ = [
    "SolverConfig",
    "FwContext",
    "RankState",
    "Op",
    "diag_update",
    "diag_bcast",
    "panel_update_row",
    "panel_update_col",
    "panel_bcast",
    "outer_update",
]


class Op:
    """Message-tag opcodes; tag = (k << 3) | op."""

    DIAG_ROW = 0
    DIAG_COL = 1
    PANEL_ROW = 2  # row-panel blocks, broadcast down column comms
    PANEL_COL = 3  # column-panel blocks, broadcast across row comms

    @staticmethod
    def tag(k: int, op: int) -> int:
        return (k << 3) | op


@dataclass(frozen=True)
class SolverConfig:
    """Algorithmic knobs of one distributed Floyd-Warshall run."""

    block_size: int
    semiring: Semiring = MIN_PLUS
    #: Pipelined (Alg. 4) vs bulk-synchronous (Alg. 3) schedule.
    pipelined: bool = False
    #: PanelBcast algorithm: the library-style binomial tree or the
    #: bandwidth-optimal ring (§3.3).  DiagBcast always uses the tree.
    panel_bcast: Literal["tree", "ring"] = "tree"
    #: Ring relay issued asynchronously (isend) - the +Async behaviour.
    async_relay: bool = True
    #: Segments for a pipelined ring PanelBcast (1 = the paper's
    #: unsegmented ring; >1 = the HPL-style extension).
    ring_segments: int = 1
    #: DiagUpdate on the GPU via repeated squaring (§4.2) vs on the host.
    diag_on_gpu: bool = True
    #: Offload (Me-ParallelFw): distance matrix in host DRAM, outer
    #: product through ooGSrGemm (§4.3).
    offload: bool = False
    #: Number of cudaStreams for the offload pipeline (§4.4).
    n_streams: int = 3
    #: GPU tile of the offload pipeline, in *blocks* per dimension
    #: (mx = mx_blocks * block_size).
    mx_blocks: int = 2
    nx_blocks: int = 2
    #: Skip all-infinite (empty) blocks in panel broadcasts and outer
    #: products - the structured-sparsity direction of the paper's
    #: future work (its supernodal APSP citation).  Fill-in is handled
    #: naturally: emptiness is re-checked every iteration.  Requires
    #: real numerics (the data decides what is skippable).
    exploit_sparsity: bool = False
    #: Carry next-hop pointer blocks through the sweep (distributed
    #: shortest-path *generation*, the paper's first future-work item).
    #: (min,+) only; not supported by the offload schedule.
    track_paths: bool = False
    #: When False, the simulation runs "hollow": the full event
    #: structure (kernels, transfers, messages) executes with modeled
    #: costs but the real NumPy numerics are skipped.  Benchmarks use
    #: this to sweep paper-scale block counts cheaply; the result
    #: matrix is then meaningless and must not be collected.
    compute_numerics: bool = True
    #: SrGemm kernel backend name (see :mod:`repro.semiring.backends`);
    #: None resolves the process default (``REPRO_SRGEMM_BACKEND`` /
    #: ``reference``).  Every SrGemm this run performs - panel updates,
    #: outer products, path kernels, the offload pipeline - goes
    #: through the selected backend.
    kernel_backend: Optional[str] = None
    #: ABFT verification level (:mod:`repro.verify`): ``"off"`` (the
    #: default; a ``None`` context slot keeps every hook zero-cost),
    #: ``"checksum"`` (guarded kernels + localized repair), or
    #: ``"full"`` (adds the monotonicity sentinel and the certificate's
    #: residual audit).  Verification runs inside the kernel closures,
    #: so makespans are identical across modes.
    verify: str = "off"

    def __post_init__(self):
        if self.block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {self.block_size}")
        if self.n_streams < 1:
            raise ConfigurationError(f"n_streams must be >= 1, got {self.n_streams}")
        if self.mx_blocks < 1 or self.nx_blocks < 1:
            raise ConfigurationError("offload tile must be at least one block")
        if self.panel_bcast not in ("tree", "ring"):
            raise ConfigurationError(f"unknown panel_bcast {self.panel_bcast!r}")
        if self.ring_segments < 1:
            raise ConfigurationError(f"ring_segments must be >= 1, got {self.ring_segments}")
        if self.exploit_sparsity:
            if not self.compute_numerics:
                raise ConfigurationError(
                    "exploit_sparsity needs compute_numerics=True (the data "
                    "determines which blocks are skippable)"
                )
            if self.offload:
                raise ConfigurationError(
                    "exploit_sparsity is not supported by the offload schedule"
                )
        if self.track_paths:
            if self.semiring is not MIN_PLUS:
                raise ConfigurationError("track_paths requires the (min,+) semiring")
            if self.offload:
                raise ConfigurationError(
                    "track_paths is not supported by the offload schedule; "
                    "use next_hop_from_distances on the collected result instead"
                )
        if self.verify not in ("off", "checksum", "full"):
            raise ConfigurationError(
                f"verify must be 'off', 'checksum' or 'full', got {self.verify!r}"
            )
        if self.verify != "off":
            if not self.compute_numerics:
                raise ConfigurationError(
                    "verification needs compute_numerics=True (hollow runs "
                    "have no data to checksum)"
                )
            if not self.semiring.idempotent_plus:
                raise ConfigurationError(
                    "ABFT checksums require an idempotent ⊕ (comparison "
                    f"semirings); {self.semiring.name} is not"
                )


class FwContext:
    """Everything shared by the rank programs of one run."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        mpi: SimMPI,
        grid: ProcessGrid,
        placement: RankPlacement,
        config: SolverConfig,
        nb: int,
        tracer: Optional[Tracer] = None,
    ):
        if grid.size != mpi.size:
            raise ConfigurationError("grid size != MPI world size")
        self.env = env
        self.cluster = cluster
        self.mpi = mpi
        self.grid = grid
        self.placement = placement
        self.config = config
        #: PanelBcast strategy (:mod:`repro.mpi.policy`), resolved from
        #: the config once so lowering never branches on config strings.
        self.bcast_policy: BcastPolicy = bcast_policy_for(
            config.panel_bcast, async_relay=config.async_relay,
            segments=config.ring_segments,
        )
        self.nb = nb
        self.tracer = tracer
        self.cost: CostModel = cluster.cost
        #: Resolved SrGemm kernel backend for this run (resolution
        #: happens once, here, so every rank program and the offload
        #: pipeline agree on one kernel).
        self.backend: KernelBackend = get_backend(config.kernel_backend)
        #: Fault-injection runtime
        #: (:class:`~repro.faults.injector.FaultRuntime`) when the run
        #: is armed; None keeps every hook on its zero-cost path.
        self.faults = None
        #: ABFT verification runtime
        #: (:class:`~repro.verify.runtime.VerifyRuntime`) when
        #: ``config.verify != "off"``; None keeps every verification
        #: hook on its zero-cost path, mirroring ``faults``.  Set by the
        #: driver, which also swaps ``backend`` for the checksummed
        #: wrapper.
        self.verify = None
        #: Observability registry
        #: (:class:`~repro.obs.metrics.MetricsRegistry`) when the run
        #: was armed with ``metrics=True``; None keeps every
        #: instrumentation hook on its zero-cost path, mirroring
        #: ``faults`` / ``verify``.  Set by the driver, which also
        #: swaps ``backend`` for the flop-metering wrapper.
        self.obs = None
        #: Logical->physical node remap (list indexed by the
        #: placement's node id); set by the scheduler's resilience
        #: layer so a retried job lands on healthy nodes instead of the
        #: quarantined ones its placement would name.  None = identity
        #: (every unscheduled run, and all of PR 8's behaviour).
        self.node_map = None
        self.world = mpi.world()
        #: Unlocalized row/column communicators, by grid row/col index.
        self.row_comms = [Comm(mpi, grid.row_ranks(r), me=None) for r in range(grid.pr)]
        self.col_comms = [Comm(mpi, grid.col_ranks(c), me=None) for c in range(grid.pc)]

    def reconfigure(self, config: SolverConfig) -> None:
        """Swap the run configuration mid-flight (OOM degradation to
        the offload variant) and re-resolve the policies derived from
        it."""
        self.config = config
        self.bcast_policy = bcast_policy_for(
            config.panel_bcast, async_relay=config.async_relay,
            segments=config.ring_segments,
        )

    @property
    def b(self) -> int:
        return self.config.block_size

    @property
    def semiring(self) -> Semiring:
        return self.config.semiring

    def node_of(self, rank: int) -> int:
        """The rank's *physical* node: the placement's node id routed
        through ``node_map`` when the scheduler remapped the job."""
        node = self.placement.node_of(rank)
        if self.node_map is not None:
            node = self.node_map[node]
        return node

    def gpu_of(self, rank: int) -> SimGPU:
        """Bind a rank to a GPU of its node (round-robin over the
        node's GPUs, so e.g. 12 ranks on a 6-GPU node pair up 2:1 as
        the paper's runs do)."""
        node = self.cluster.nodes[self.node_of(rank)]
        local = self.placement.local_index(rank)
        return node.gpus[local % len(node.gpus)]

    def host_of(self, rank: int) -> HostCpu:
        return self.cluster.nodes[self.node_of(rank)].host


class RankState:
    """One rank's working state during a run."""

    def __init__(
        self,
        ctx: FwContext,
        me: int,
        blocks: LocalBlocks,
        nxt: Optional[LocalBlocks] = None,
    ):
        self.ctx = ctx
        self.me = me
        self.row, self.col = ctx.grid.coords(me)
        self.blocks = blocks
        #: Next-hop pointer blocks (same keys as ``blocks``) when the
        #: run tracks paths; None otherwise.
        self.nxt = nxt
        self.world = ctx.world.localize(me)
        self.row_comm = ctx.row_comms[self.row].localize(me)
        self.col_comm = ctx.col_comms[self.col].localize(me)
        self.gpu: SimGPU = ctx.gpu_of(me)
        self.stream: CudaStream = self.gpu.stream(f"r{me}.main", tracer=ctx.tracer)
        self.host: HostCpu = ctx.host_of(me)
        #: Outstanding async sends (ring relays) to drain at the end.
        self.pending: list[Event] = []
        #: bytes of HBM charged at setup, to release at teardown.
        self.hbm_charged = 0
        #: bytes of host DRAM charged at setup (offload runs).
        self.dram_charged = 0
        #: Highest outer iteration this rank has entered (maintained by
        #: the checkpoint hook on armed runs; -1 before the first).
        self.cur_k = -1

    # -- local index helpers ------------------------------------------------
    def local_rows(self, exclude: tuple[int, ...] = ()) -> list[int]:
        return [
            i
            for i in self.ctx.grid.local_block_rows(self.me, self.ctx.nb)
            if i not in exclude
        ]

    def local_cols(self, exclude: tuple[int, ...] = ()) -> list[int]:
        return [
            j
            for j in self.ctx.grid.local_block_cols(self.me, self.ctx.nb)
            if j not in exclude
        ]

    def in_row(self, k: int) -> bool:
        """Am I in process row P_r(k)?"""
        return self.row == k % self.ctx.grid.pr

    def in_col(self, k: int) -> bool:
        return self.col == k % self.ctx.grid.pc

    def owns_diag(self, k: int) -> bool:
        return self.in_row(k) and self.in_col(k)

    def drain(self):
        """Generator: wait for outstanding async sends."""
        pending, self.pending = self.pending, []
        for ev in pending:
            yield ev


# ---------------------------------------------------------------------------
# Operation building blocks (generators run inside a rank program)
# ---------------------------------------------------------------------------


def maybe(ctx: FwContext, fn):
    """Return ``fn`` unless the run is hollow (cost-only)."""
    return fn if ctx.config.compute_numerics else None


def _is_empty(ctx: FwContext, blk: np.ndarray) -> bool:
    """True when a block carries no information (all entries are the
    semiring ⊕-identity), so products with it are identities and it
    need not travel or be multiplied."""
    return bool(np.all(blk == ctx.semiring.zero))


def diag_update(state: RankState, k: int) -> Event:
    """Enqueue DiagUpdate(k) on the owner's GPU (or host) and return
    the completion event.  Caller must own block (k, k).

    GPU path: ``ceil(log2 b_virtual)`` SrGemm squarings (paper §4.2,
    Eq. 4) charged as kernel time; the physical computation runs the
    equivalent in-place Floyd-Warshall closure.
    """
    ctx = state.ctx
    blk = state.blocks[(k, k)]

    if ctx.config.track_paths:
        nblk = state.nxt[(k, k)]

        def fn():
            fw_inplace_paths(blk, nblk)

    else:

        def fn():
            fw_inplace(blk, semiring=ctx.semiring)

    if ctx.verify is not None:
        # Checksums do not distribute over the O(b³) closure; the guard
        # checks the pivot block's stored sums and monotonicity instead.
        fn = ctx.verify.wrap_closure(blk, fn)

    if ctx.config.diag_on_gpu:
        b_virt = max(2, int(round(ctx.cost.v(ctx.b))))
        duration = ctx.cost.diag_update_gpu_time(ctx.b, squaring_steps(b_virt))
        return state.stream.kernel_time(duration, f"DiagUpdate({k})", maybe(ctx, fn))
    # Host path: a plain process performing the timed host FW.
    return ctx.env.process(
        state.host.fw_diag_host(ctx.b, f"DiagUpdate({k})", maybe(ctx, fn)), name=f"r{state.me}.diag{k}"
    )


def diag_bcast(state: RankState, k: int, diag: Optional[np.ndarray]):
    """Generator: DiagBcast(k) - the owner broadcasts A(k,k) along its
    process row and its process column (binomial tree; small message on
    the critical path, §3.3).  Participants must be in P_r(k) or
    P_c(k); returns the diagonal block.
    """
    ctx = state.ctx
    grid = ctx.grid
    krow, kcol = k % grid.pr, k % grid.pc
    if diag is not None and ctx.config.track_paths:
        # Owner ships (distances, next hops) together; the panel
        # updates downstream need the diagonal's pointers.
        diag = (diag, state.nxt[(k, k)])
    got = diag
    if state.in_row(k):
        got = yield from bcast_tree(
            state.row_comm, root=kcol, payload=got, tag=Op.tag(k, Op.DIAG_ROW)
        )
    if state.in_col(k):
        got_col = yield from bcast_tree(
            state.col_comm,
            root=krow,
            payload=got if state.owns_diag(k) else None,
            tag=Op.tag(k, Op.DIAG_COL),
        )
        if got is None:
            got = got_col
    return got


def panel_update_row(state: RankState, k: int, diag: np.ndarray) -> Optional[Event]:
    """Enqueue PanelUpdate of the k-th block row on this rank:
    ``A(k,j) ← A(k,j) ⊕ A(k,k) ⊗ A(k,j)`` for all local j ≠ k, as one
    aggregated wide kernel.  Returns the completion event (None if no
    local blocks)."""
    ctx = state.ctx
    cols = state.local_cols(exclude=(k,))
    if ctx.config.exploit_sparsity:
        cols = [j for j in cols if not _is_empty(ctx, state.blocks[(k, j)])]
    if not cols:
        return None
    b = ctx.b

    if ctx.config.track_paths:
        d, d_nxt = diag

        def fn():
            for j in cols:
                blk = state.blocks[(k, j)]
                ctx.backend.srgemm_accumulate_paths(
                    blk, state.nxt[(k, j)], d, d_nxt, blk.copy()
                )

    else:

        def fn():
            for j in cols:
                # The block is both accumulator and right operand; the
                # backend owns the aliasing snapshot.
                ctx.backend.panel_row_update(state.blocks[(k, j)], diag, semiring=ctx.semiring)

    return state.stream.kernel(
        b,
        b * len(cols),
        b,
        f"PanelUpdateRow({k})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )


def panel_update_col(state: RankState, k: int, diag: np.ndarray) -> Optional[Event]:
    """Enqueue PanelUpdate of the k-th block column:
    ``A(i,k) ← A(i,k) ⊕ A(i,k) ⊗ A(k,k)`` for all local i ≠ k."""
    ctx = state.ctx
    rows = state.local_rows(exclude=(k,))
    if ctx.config.exploit_sparsity:
        rows = [i for i in rows if not _is_empty(ctx, state.blocks[(i, k)])]
    if not rows:
        return None
    b = ctx.b

    if ctx.config.track_paths:
        d = diag[0]  # right-multiplication: the panel's own hops carry over

        def fn():
            for i in rows:
                blk = state.blocks[(i, k)]
                ctx.backend.srgemm_accumulate_paths(
                    blk, state.nxt[(i, k)], blk.copy(), state.nxt[(i, k)].copy(), d
                )

    else:

        def fn():
            for i in rows:
                ctx.backend.panel_col_update(state.blocks[(i, k)], diag, semiring=ctx.semiring)

    return state.stream.kernel(
        b * len(rows),
        b,
        b,
        f"PanelUpdateCol({k})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )


def panel_bcast(state: RankState, k: int):
    """Generator: PanelBcast(k).

    Every rank participates in exactly two broadcasts (the two terms of
    the paper's Eq. 1 communication cost):

    * its *column* communicator carries the row-panel blocks
      ``{j ≡ my col : A(k, j)}`` (root: the rank in process row P_r(k));
    * its *row* communicator carries the column-panel blocks
      ``{i ≡ my row : A(i, k)}`` (root: the rank in process col P_c(k)).

    Returns ``(row_panel, col_panel)`` dicts keyed by block index.
    Ring relays (when configured) are parked on ``state.pending``.
    """
    ctx = state.ctx
    grid = ctx.grid
    krow, kcol = k % grid.pr, k % grid.pc

    sparse = ctx.config.exploit_sparsity
    row_payload = None
    if state.in_row(k):
        # Row panels multiply from the *right* in the outer product, so
        # their pointers are never consulted: distances only.
        row_payload = {
            j: state.blocks[(k, j)]
            for j in state.local_cols(exclude=(k,))
            if not (sparse and _is_empty(ctx, state.blocks[(k, j)]))
        }
    col_payload = None
    if state.in_col(k):
        if ctx.config.track_paths:
            # Column panels are the left operand: their next-hop blocks
            # ride along (the communication cost of path generation).
            col_payload = {
                i: (state.blocks[(i, k)], state.nxt[(i, k)])
                for i in state.local_rows(exclude=(k,))
                if not (sparse and _is_empty(ctx, state.blocks[(i, k)]))
            }
        else:
            col_payload = {
                i: state.blocks[(i, k)]
                for i in state.local_rows(exclude=(k,))
                if not (sparse and _is_empty(ctx, state.blocks[(i, k)]))
            }

    policy = ctx.bcast_policy
    row_panel, relay1 = yield from policy.bcast(
        state.col_comm, root=krow, payload=row_payload, tag=Op.tag(k, Op.PANEL_ROW)
    )
    col_panel, relay2 = yield from policy.bcast(
        state.row_comm, root=kcol, payload=col_payload, tag=Op.tag(k, Op.PANEL_COL)
    )
    # Asynchronous relays (ring policy) are parked until end-of-program
    # drain; synchronous strategies return None.
    for relay in (relay1, relay2):
        if relay is not None:
            state.pending.append(relay)
    return row_panel, col_panel


def outer_update(
    state: RankState,
    k: int,
    row_panel: dict[int, np.ndarray],
    col_panel: dict[int, np.ndarray],
    skip_rows: tuple[int, ...] = (),
    skip_cols: tuple[int, ...] = (),
) -> Optional[Event]:
    """Enqueue OuterUpdate(k) on this rank's local blocks:
    ``A(i,j) ← A(i,j) ⊕ A(i,k) ⊗ A(k,j)`` for local i, j ∉ {k} ∪ skip.

    Charged as one aggregated SrGemm of shape
    (b·|rows|, b·|cols|, b) - the fat local outer product one kernel
    launch performs.  Returns the completion event (None if nothing to
    do)."""
    ctx = state.ctx
    rows = state.local_rows(exclude=(k, *skip_rows))
    cols = state.local_cols(exclude=(k, *skip_cols))
    if ctx.config.exploit_sparsity:
        # A missing panel block is all-zero (⊕-identity): its products
        # contribute nothing, so the whole row/column of updates drops.
        rows = [i for i in rows if i in col_panel]
        cols = [j for j in cols if j in row_panel]
    if not rows or not cols:
        return None
    b = ctx.b

    if ctx.config.track_paths:

        def fn():
            for i in rows:
                a_ik, a_nxt = col_panel[i]
                for j in cols:
                    ctx.backend.srgemm_accumulate_paths(
                        state.blocks[(i, j)], state.nxt[(i, j)], a_ik, a_nxt, row_panel[j]
                    )

    else:

        def fn():
            for i in rows:
                a_ik = col_panel[i]
                for j in cols:
                    ctx.backend.srgemm_outer(
                        state.blocks[(i, j)], a_ik, row_panel[j], semiring=ctx.semiring
                    )

    return state.stream.kernel(
        b * len(rows),
        b * len(cols),
        b,
        f"OuterUpdate({k})",
        maybe(ctx, fn),
        cost_scale=ctx.backend.modeled_cost_scale,
    )
