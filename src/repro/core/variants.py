"""Named solver variants matching the paper's plot legends (§5.1.2)."""

from __future__ import annotations

import enum
from dataclasses import replace

from ..errors import ConfigurationError
from .context import SolverConfig

__all__ = ["Variant", "variant_config", "VARIANT_DESCRIPTIONS"]


class Variant(str, enum.Enum):
    """The five configurations evaluated in the paper, plus the
    schedule-IR-enabled sixth.

    * ``BASELINE`` - Algorithm 3: bulk-synchronous, tree broadcasts,
      launcher-default (contiguous) rank placement.
    * ``PIPELINED`` - Algorithm 4: look-ahead pipeline overlapping
      OuterUpdate(k) with PanelBcast(k+1); still tree broadcasts and
      contiguous placement.
    * ``REORDERING`` - Pipelined + optimal (K_r ≈ K_c) rank placement.
    * ``ASYNC`` - Reordering + asynchronous ring PanelBcast: the full
      Co-ParallelFw.
    * ``OFFLOAD`` - Me-ParallelFw: the baseline schedule with the
      distance matrix in host DRAM and ooGSrGemm outer products.
    * ``OFFLOAD_PIPELINED`` - Me-ParallelFw under the look-ahead
      schedule: the ooGSrGemm tile pipeline of OuterUpdate(k) runs
      while the rank participates in PanelBcast(k+1).  The paper never
      evaluates this combination (its implementation could not express
      it); the schedule IR makes it one policy pairing.
    """

    BASELINE = "baseline"
    PIPELINED = "pipelined"
    REORDERING = "reordering"
    ASYNC = "async"
    OFFLOAD = "offload"
    OFFLOAD_PIPELINED = "offload-pipelined"

    @classmethod
    def parse(cls, value: "str | Variant") -> "Variant":
        if isinstance(value, Variant):
            return value
        try:
            return cls(value.lower().replace("_", "-"))
        except ValueError:
            raise ConfigurationError(
                f"unknown variant {value!r}; choose from "
                f"{[v.value for v in cls]}"
            ) from None


VARIANT_DESCRIPTIONS = {
    Variant.BASELINE: "Algorithm 3, tree broadcasts, contiguous placement",
    Variant.PIPELINED: "Algorithm 4 look-ahead pipeline (tree broadcasts)",
    Variant.REORDERING: "Pipelined + optimal K_r≈K_c rank placement",
    Variant.ASYNC: "Reordering + asynchronous ring PanelBcast (Co-ParallelFw)",
    Variant.OFFLOAD: "Me-ParallelFw: host-resident matrix + ooGSrGemm offload",
    Variant.OFFLOAD_PIPELINED: (
        "Me-ParallelFw + Algorithm 4 look-ahead: ooGSrGemm outer product "
        "overlapped with PanelBcast(k+1)"
    ),
}


def variant_config(variant: "str | Variant", base: SolverConfig) -> SolverConfig:
    """Specialize a :class:`SolverConfig` for a named variant.

    Placement is selected separately (it is a property of the run
    setup, not the rank program); see
    :func:`repro.core.driver.placement_for_variant`.
    """
    v = Variant.parse(variant)
    if v is Variant.BASELINE:
        return replace(base, pipelined=False, panel_bcast="tree", offload=False)
    if v is Variant.PIPELINED or v is Variant.REORDERING:
        return replace(base, pipelined=True, panel_bcast="tree", offload=False)
    if v is Variant.ASYNC:
        return replace(base, pipelined=True, panel_bcast="ring", async_relay=True, offload=False)
    if v is Variant.OFFLOAD:
        return replace(base, pipelined=False, panel_bcast="tree", offload=True)
    if v is Variant.OFFLOAD_PIPELINED:
        return replace(base, pipelined=True, panel_bcast="tree", offload=True)
    raise ConfigurationError(f"unhandled variant {v}")  # pragma: no cover
