"""The 2-D logical process grid (paper §2.5.1).

MPI processes are arranged in a ``P_r x P_c`` grid; the distance matrix
is distributed block-cyclically, so block ``(i, j)`` lives on the
process at grid coordinate ``(i mod P_r, j mod P_c)``.  World ranks
number the grid row-major (rank = row * P_c + col), which is also how
typical launchers hand out consecutive ranks - the starting point for
the placement discussion in §3.4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ProcessGrid", "factor_pairs", "near_square_factors"]


def factor_pairs(p: int) -> list[tuple[int, int]]:
    """All ordered factorizations ``(a, b)`` with ``a * b == p``."""
    if p < 1:
        raise ValueError(f"p must be positive, got {p}")
    out = []
    for a in range(1, int(math.isqrt(p)) + 1):
        if p % a == 0:
            out.append((a, p // a))
            if a != p // a:
                out.append((p // a, a))
    out.sort()
    return out


def near_square_factors(p: int) -> tuple[int, int]:
    """The factorization ``(a, b)`` of ``p`` with ``a <= b`` minimizing
    ``b - a`` (the paper's P_r ≈ P_c guidance, Eq. 3)."""
    best = (1, p)
    for a, b in factor_pairs(p):
        if a <= b and (b - a) < (best[1] - best[0]):
            best = (a, b)
    return best


@dataclass(frozen=True)
class ProcessGrid:
    """A ``P_r x P_c`` process grid with block-cyclic ownership."""

    pr: int
    pc: int

    def __post_init__(self):
        if self.pr < 1 or self.pc < 1:
            raise ConfigurationError(f"grid dims must be positive: {self.pr} x {self.pc}")

    @property
    def size(self) -> int:
        return self.pr * self.pc

    # -- rank <-> coordinate ----------------------------------------------
    def coords(self, rank: int) -> tuple[int, int]:
        """Grid coordinates (row, col) of a world rank (row-major)."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside grid of size {self.size}")
        return divmod(rank, self.pc)

    def rank_of(self, row: int, col: int) -> int:
        return (row % self.pr) * self.pc + (col % self.pc)

    # -- block ownership -----------------------------------------------------
    def owner_coords(self, bi: int, bj: int) -> tuple[int, int]:
        """Grid coordinate owning block (bi, bj) under block-cyclic
        distribution."""
        return bi % self.pr, bj % self.pc

    def owner(self, bi: int, bj: int) -> int:
        r, c = self.owner_coords(bi, bj)
        return self.rank_of(r, c)

    def owns(self, rank: int, bi: int, bj: int) -> bool:
        return self.owner(bi, bj) == rank

    # -- rows / columns ---------------------------------------------------------
    def row_ranks(self, row: int) -> tuple[int, ...]:
        """World ranks of process-grid row ``row`` (ordered by column).

        This is the communicator P_r(k) of the paper for k ≡ row."""
        row %= self.pr
        return tuple(self.rank_of(row, c) for c in range(self.pc))

    def col_ranks(self, col: int) -> tuple[int, ...]:
        """World ranks of process-grid column ``col`` (ordered by row)."""
        col %= self.pc
        return tuple(self.rank_of(r, col) for r in range(self.pr))

    # -- local block index sets --------------------------------------------
    def local_block_rows(self, rank: int, nb: int) -> list[int]:
        """Block-row indices owned by ``rank`` for an nb x nb block grid."""
        row, _ = self.coords(rank)
        return list(range(row, nb, self.pr))

    def local_block_cols(self, rank: int, nb: int) -> list[int]:
        _, col = self.coords(rank)
        return list(range(col, nb, self.pc))

    def local_blocks(self, rank: int, nb: int) -> list[tuple[int, int]]:
        return [
            (i, j)
            for i in self.local_block_rows(rank, nb)
            for j in self.local_block_cols(rank, nb)
        ]

    def __str__(self) -> str:  # pragma: no cover
        return f"{self.pr}x{self.pc} grid ({self.size} ranks)"
