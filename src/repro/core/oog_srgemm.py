"""Out-of-GPU semiring matrix multiplication, ooGSrGemm (paper §4.3-4.5).

Computes ``C ← C ⊕ A ⊗ B`` where C lives in host DRAM and is far larger
than GPU memory.  C is cut into ``mx x nx`` tiles; for each tile the
pipeline runs

    SrGemm (X ← A_i ⊗ B_j)  →  d2hXfer (X to host)  →  hostUpdate (C_ij ⊕= X)

on ``s`` round-robin cudaStreams with ``s`` device buffers, so the three
stages - which use three different pieces of hardware (GPU SMs, the
NVLink copy engine, the CPU/DRAM) - overlap exactly as the paper's
Figure 2 shows.  Panel pieces A_i / B_j are transferred host-to-device
once, on first use, riding under earlier tiles' compute (§4.4).

The cost behaviour (§4.5): with 1 stream the time per tile is
``t0 + t1 + t2``; with 2 streams ``min over pairings``; with >= 3
streams ``max(t0, t1, t2)`` - reproduced by the simulation because the
engine resources serialize exactly those stages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..machine.gpu import SimGPU
from ..machine.host import HostCpu
from ..semiring.backends import get_backend
from ..semiring.minplus import MIN_PLUS, Semiring
from ..sim.engine import Environment, Event

__all__ = ["TileTask", "run_oog_pipeline", "oog_srgemm_plan", "OogStats"]


@dataclass
class TileTask:
    """One C-tile's worth of work for the offload pipeline."""

    #: Physical tile dims (rows, cols) and inner dimension.
    m: int
    n: int
    k: int
    #: Host-to-device transfers this tile needs; each entry is
    #: (dedup-key, rows, cols).  A transfer happens only on the first
    #: tile that lists its key.
    h2d: list[tuple[object, int, int]] = field(default_factory=list)
    #: Real computation X ← A_i ⊗ B_j; runs at SrGemm completion.
    compute: Optional[Callable[[], np.ndarray]] = None
    #: Real update C_ij ⊕= X; runs at hostUpdate completion.
    apply: Optional[Callable[[np.ndarray], None]] = None
    label: str = "tile"
    #: Modeled-duration multiplier for this tile's kernel (the kernel
    #: backend's ``modeled_cost_scale``).
    cost_scale: float = 1.0


@dataclass
class OogStats:
    """Aggregate accounting of one pipeline run."""

    tiles: int = 0
    flops_virtual: float = 0.0
    h2d_bytes_virtual: float = 0.0
    d2h_bytes_virtual: float = 0.0
    start: float = 0.0
    end: float = 0.0

    @property
    def elapsed(self) -> float:
        return self.end - self.start

    def flop_rate(self) -> float:
        return self.flops_virtual / self.elapsed if self.elapsed > 0 else 0.0


def run_oog_pipeline(
    env: Environment,
    gpu: SimGPU,
    host: HostCpu,
    tiles: list[TileTask],
    n_streams: int,
    label: str = "ooGSrGemm",
    tracer=None,
):
    """Generator: run the tile pipeline; returns :class:`OogStats`.

    The calling process plays the host thread of §4.4: it waits for
    streams *in the order they were initiated*, performs the
    hostUpdate, and only then reuses that stream's device buffer for
    the next tile.
    """
    if n_streams < 1:
        raise ValueError(f"need at least one stream, got {n_streams}")
    cost = gpu.cost
    stats = OogStats(start=env.now)
    if not tiles:
        stats.end = env.now
        return stats

    streams = [gpu.stream(f"{label}.s{r}", tracer=tracer) for r in range(n_streams)]
    h2d_done: dict[object, Event] = {}
    d2h_events: list[Optional[Event]] = [None] * len(tiles)

    def enqueue(t: int) -> None:
        tile = tiles[t]
        stream = streams[t % n_streams]
        deps: list[Event] = []
        for key, rows, cols in tile.h2d:
            ev = h2d_done.get(key)
            if ev is None:
                ev = stream.h2d(rows, cols, label=f"h2d:{key}")
                h2d_done[key] = ev
                stats.h2d_bytes_virtual += cost.bytes_of(rows, cols)
            deps.append(ev)
        kev = stream.kernel(
            tile.m,
            tile.n,
            tile.k,
            label=tile.label,
            fn=tile.compute,
            after=deps,
            cost_scale=tile.cost_scale,
        )
        stats.flops_virtual += 2.0 * cost.v(tile.m) * cost.v(tile.n) * cost.v(tile.k)
        # The d2h op's value is the kernel's result (the X buffer).
        d2h_events[t] = stream.d2h(
            tile.m, tile.n, label=f"d2h:{tile.label}", fn=lambda kev=kev: kev.value
        )
        stats.d2h_bytes_virtual += cost.bytes_of(tile.m, tile.n)
        stats.tiles += 1

    # Prime one tile per stream, then consume in initiation order,
    # re-arming each stream's buffer after its hostUpdate.
    for t in range(min(n_streams, len(tiles))):
        enqueue(t)
    for t in range(len(tiles)):
        x = yield d2h_events[t]
        tile = tiles[t]
        nxt = t + n_streams
        yield from host.host_update(
            tile.m,
            tile.n,
            label=f"hostUpdate:{tile.label}",
            fn=(lambda x=x, tile=tile: tile.apply(x)) if tile.apply is not None else None,
        )
        if nxt < len(tiles):
            enqueue(nxt)
    stats.end = env.now
    return stats


def oog_srgemm_plan(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    mx: int,
    nx: int,
    semiring: Semiring = MIN_PLUS,
    backend=None,
) -> list[TileTask]:
    """Tile plan for a standalone ``C ← C ⊕ A ⊗ B`` on raw arrays.

    ``A`` is split by rows into mx-chunks, ``B`` by columns into
    nx-chunks (paper §4.3); C tiles are visited row-major, so A_i is
    loaded when its first tile runs and B_j on the top tile row,
    matching the §4.4 panel-pipelining.  This is the micro-benchmark
    path behind Figures 5 and 6.  ``backend`` selects the SrGemm kernel
    backend each tile's compute runs on.
    """
    kernels = get_backend(backend)
    m, kk = a.shape
    k2, n = b.shape
    if kk != k2 or c.shape != (m, n):
        raise ValueError(f"shape mismatch: A{a.shape} B{b.shape} C{c.shape}")
    tiles: list[TileTask] = []
    for i0 in range(0, m, mx):
        i1 = min(i0 + mx, m)
        for j0 in range(0, n, nx):
            j1 = min(j0 + nx, n)
            h2d = []
            if j0 == 0:
                h2d.append((f"A[{i0}:{i1}]", i1 - i0, kk))
            if i0 == 0:
                h2d.append((f"B[{j0}:{j1}]", kk, j1 - j0))

            def compute(i0=i0, i1=i1, j0=j0, j1=j1):
                x = semiring.zeros((i1 - i0, j1 - j0), dtype=c.dtype)
                return kernels.srgemm_outer(x, a[i0:i1], b[:, j0:j1], semiring=semiring)

            def apply(x, i0=i0, i1=i1, j0=j0, j1=j1):
                semiring.plus(c[i0:i1, j0:j1], x, out=c[i0:i1, j0:j1])

            tiles.append(
                TileTask(
                    m=i1 - i0,
                    n=j1 - j0,
                    k=kk,
                    h2d=h2d,
                    compute=compute,
                    apply=apply,
                    label=f"C[{i0},{j0}]",
                    cost_scale=kernels.modeled_cost_scale,
                )
            )
    return tiles
