"""Named rank programs as policy combinations.

Every solver variant is one point in the (schedule, residency,
broadcast) policy space; the broadcast axis lives on the context
(:attr:`~repro.core.context.FwContext.bcast_policy`) because it is
consulted mid-run, while schedule and residency are fixed here at
program-build time:

===================  ==================  ==============
program              SchedulePolicy      ResidencyPolicy
===================  ==================  ==============
baseline             bulk-sync (Alg. 3)  GPU-resident
pipelined            look-ahead (Alg. 4) GPU-resident
offload              bulk-sync           host-resident
offload-pipelined    look-ahead          host-resident
===================  ==================  ==============

(The ``reordering`` and ``async`` variants reuse the pipelined program
with a different placement / broadcast policy.)  ``offload-pipelined``
is the combination the paper's implementation could not express -
Me-ParallelFw with Algorithm 4's look-ahead, overlapping the ooGSrGemm
tile pipeline with PanelBcast(k+1) - and here it is exactly the
definition below: no new schedule code, just a new pairing.
"""

from __future__ import annotations

from .context import RankState, SolverConfig
from .executor import GPU_RESIDENT, HOST_RESIDENT, execute_schedule, residency_policy_for
from .schedule import BULK_SYNC, LOOKAHEAD, schedule_policy_for

__all__ = [
    "baseline_program",
    "pipelined_program",
    "offload_program",
    "offload_pipelined_program",
    "program_for_config",
]


def baseline_program(state: RankState, start_k: int = 0):
    """Algorithm 3 (bulk-synchronous, GPU-resident) for one rank."""
    return execute_schedule(state, BULK_SYNC, GPU_RESIDENT, start_k=start_k)


def pipelined_program(state: RankState, start_k: int = 0):
    """Algorithm 4 (look-ahead, GPU-resident) for one rank."""
    return execute_schedule(state, LOOKAHEAD, GPU_RESIDENT, start_k=start_k)


def offload_program(state: RankState, start_k: int = 0):
    """Me-ParallelFw (bulk-synchronous, host-resident) for one rank."""
    return execute_schedule(state, BULK_SYNC, HOST_RESIDENT, start_k=start_k)


def offload_pipelined_program(state: RankState, start_k: int = 0):
    """Pipelined Me-ParallelFw (look-ahead, host-resident) for one rank."""
    return execute_schedule(state, LOOKAHEAD, HOST_RESIDENT, start_k=start_k)


def program_for_config(config: SolverConfig):
    """Resolve the rank program for a configuration: the schedule axis
    from ``config.pipelined``, the residency axis from
    ``config.offload``.  Returns a ``program(state, start_k=0)``
    callable with the resolved policies attached for introspection."""
    sched = schedule_policy_for(config.pipelined)
    residency = residency_policy_for(config.offload)

    def program(state: RankState, start_k: int = 0):
        return execute_schedule(state, sched, residency, start_k=start_k)

    program.schedule = sched  # type: ignore[attr-defined]
    program.residency = residency  # type: ignore[attr-defined]
    program.__name__ = f"{sched.name}x{residency.name}_program"
    return program
