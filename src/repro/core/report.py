"""Per-run performance reporting.

Computes the paper's two reporting metrics (§5.1.3):

* normalized flop rate - ``2 n³`` (virtual) flops over the simulated
  makespan, in GF/s / TF/s / PF/s;
* *effective bandwidth per node* - ``W_min / t_FW`` where ``W_min`` is
  the theoretical minimum per-node communication volume over all
  configurations for the problem size and node count (i.e. the
  near-square node grid's ``n²(1/K_r + 1/K_c)`` bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine.cost import CostModel
from ..machine.spec import MachineSpec
from ..sim.trace import Tracer
from .grid import near_square_factors
from .placement import RankPlacement

__all__ = ["PerfReport", "min_pernode_volume_bytes"]


def min_pernode_volume_bytes(n_virtual: float, n_nodes: int, itemsize: int) -> float:
    """W_min: minimum bytes any node must send for an n-vertex FW sweep
    on ``n_nodes`` nodes (paper §3.4.1 lower bound at the best node
    grid)."""
    kr, kc = near_square_factors(n_nodes)
    return n_virtual * n_virtual * itemsize * (1.0 / kr + 1.0 / kc)


@dataclass
class PerfReport:
    """Everything measured about one distributed APSP run."""

    variant: str
    n_virtual: float
    n_physical: int
    block_size: int
    dim_scale: float
    n_nodes: int
    ranks: int
    grid_pr: int
    grid_pc: int
    placement: str
    machine: str
    elapsed: float
    #: Virtual bytes that crossed node NICs / stayed intranode.
    internode_bytes: float
    intranode_bytes: float
    max_node_nic_bytes: float
    messages: int
    gpu_peak_bytes: int
    counters: dict[str, float] = field(default_factory=dict)
    #: ABFT verification certificate (:mod:`repro.verify`), present only
    #: when the run was verified (``verify != "off"``).
    verification: Optional[dict] = None
    #: Intranode placement tile (ranks of one node per grid row/col -
    #: the Q_r x Q_c of the paper's §3.4.1 NIC-sharing model).
    placement_qr: int = 0
    placement_qc: int = 0
    #: Ranks sharing one physical GPU (2 in the paper's launches); the
    #: flop term of Eq. 1 divides by physical GPUs, not ranks.
    gpus_share: float = 1.0
    #: Flat snapshot of the observability registry (metric name ->
    #: scalar), present only on ``metrics=True`` runs (the live
    #: registry is on ``ApspResult.metrics``).
    metrics: Optional[dict] = None

    # -- consistent field-name aliases (makespan / certificate) -------------
    @property
    def makespan(self) -> float:
        """Simulated end-to-end seconds (alias of ``elapsed``)."""
        return self.elapsed

    @property
    def certificate(self) -> Optional[dict]:
        """The ABFT verification certificate (alias of ``verification``)."""
        return self.verification

    # -- derived metrics ----------------------------------------------------
    @property
    def flops(self) -> float:
        """Total useful work, by the paper's 2n³ convention."""
        return 2.0 * self.n_virtual**3

    @property
    def flop_rate(self) -> float:
        return self.flops / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def petaflops(self) -> float:
        return self.flop_rate / 1e15

    def percent_of_peak(self, machine: MachineSpec) -> float:
        return 100.0 * self.flop_rate / machine.peak_flops(self.n_nodes)

    def effective_bandwidth(self) -> float:
        """W_min / t_FW in bytes/s (paper §5.1.3)."""
        itemsize = 4
        wmin = min_pernode_volume_bytes(self.n_virtual, self.n_nodes, itemsize)
        return wmin / self.elapsed if self.elapsed > 0 else 0.0

    def breakdown(self, tracer: Optional[Tracer]) -> str:
        """Per-category time breakdown from a traced run: total busy
        time per span category plus the communication/compute overlap
        (the quantity the paper's pipelining exists to maximize)."""
        if tracer is None or not tracer.spans:
            return "(no trace recorded; run with trace=True)"
        cats = sorted({s.category for s in tracer.spans})
        lines = ["category        total-busy   share-of-run"]
        for c in cats:
            t = tracer.total_time(c)
            share = t / (self.elapsed * max(self.ranks, 1)) if self.elapsed else 0.0
            lines.append(f"{c:<15s} {t:>10.4f}s   {share * 100:5.1f}% of rank-time")
        ov = tracer.overlap_time("SrGemm", "nic_xfer")
        lines.append(
            f"SrGemm ∥ NIC overlap: {ov:.4f}s "
            f"({(ov / self.elapsed * 100 if self.elapsed else 0):.1f}% of the run)"
        )
        return "\n".join(lines)

    def summary(self) -> str:
        gbs = self.effective_bandwidth() / 1e9
        lines = [
            f"variant={self.variant}  n={self.n_virtual:g} (physical {self.n_physical}, "
            f"scale {self.dim_scale:g})  b={self.block_size}",
            f"nodes={self.n_nodes}  ranks={self.ranks}  grid={self.grid_pr}x{self.grid_pc}  "
            f"placement[{self.placement}]",
            f"simulated time = {self.elapsed:.4f} s   "
            f"rate = {self.flop_rate / 1e12:.3f} TF/s ({self.petaflops:.4f} PF/s)",
            f"effective bandwidth = {gbs:.2f} GB/s/node   "
            f"NIC bytes total = {self.internode_bytes / 1e9:.2f} GB "
            f"(max node {self.max_node_nic_bytes / 1e9:.2f} GB)   "
            f"messages = {self.messages}",
            f"GPU peak HBM = {self.gpu_peak_bytes / 1e9:.2f} GB",
        ]
        cert = self.verification
        if cert is not None:
            verdict = "PASSED" if cert.get("passed") else "FAILED"
            lines.append(
                f"verification[{cert.get('mode')}] = {verdict}   "
                f"ops checked = {cert.get('ops_checked', 0)}   "
                f"sdc detected = {cert.get('sdc_detected', 0)} "
                f"(repaired {cert.get('repaired', 0)}, "
                f"escalated {cert.get('escalated', 0)})"
            )
            audit = cert.get("audit")
            if audit is not None:
                lines.append(
                    f"residual audit: {audit['triangle_violations']} violations in "
                    f"{audit['triangle_samples']} triangle samples, "
                    f"{audit['sssp_mismatches']} mismatches over "
                    f"{audit['sssp_sources']} SSSP sources"
                )
        return "\n".join(lines)

    @classmethod
    def from_run(
        cls,
        variant: str,
        n_physical: int,
        cost: CostModel,
        placement: RankPlacement,
        elapsed: float,
        mpi,
        cluster,
        tracer: Optional[Tracer] = None,
    ) -> "PerfReport":
        gpu_peak = max(
            (g.peak_allocated for node in cluster.nodes for g in node.gpus), default=0
        )
        return cls(
            variant=variant,
            n_virtual=cost.v(n_physical),
            n_physical=n_physical,
            block_size=0,  # caller fills
            dim_scale=cost.dim_scale,
            n_nodes=len(cluster),
            ranks=mpi.size,
            grid_pr=placement.grid.pr,
            grid_pc=placement.grid.pc,
            placement=placement.describe(),
            machine=cluster.machine.name,
            elapsed=elapsed,
            internode_bytes=mpi.bytes_internode,
            intranode_bytes=mpi.bytes_intranode,
            max_node_nic_bytes=cluster.max_nic_bytes(),
            messages=mpi.message_count,
            gpu_peak_bytes=gpu_peak,
            counters=dict(tracer.counters) if tracer is not None else {},
            placement_qr=placement.qr,
            placement_qc=placement.qc,
            gpus_share=max(
                1.0, placement.ranks_per_node / cluster.machine.node.gpus_per_node
            ),
        )
