"""Rank-to-node placement (paper §3.4).

All ranks of a node share its NIC, so *which* grid coordinates land on
a node determines how much panel-broadcast traffic must leave the node.
With a ``Q_r x Q_c`` intranode tile of the process grid, a node's
outgoing volume per FW sweep is ``n² (Q_r / P_r + Q_c / P_c)`` bytes
(§3.4.1), minimized when the node grid ``K_r = P_r / Q_r`` and
``K_c = P_c / Q_c`` are near-square (Eq. 2) - the paper's Figure 1
placement.  The typical launcher default packs *consecutive* ranks on
each node, i.e. a ``1 x Q`` (or ``Q x 1``) intranode tile, which is the
poorly-performing baseline in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .grid import ProcessGrid, factor_pairs

__all__ = [
    "RankPlacement",
    "tiled_placement",
    "contiguous_placement",
    "optimal_placement",
    "enumerate_placements",
]


@dataclass(frozen=True)
class RankPlacement:
    """An assignment of grid coordinates to nodes.

    Attributes
    ----------
    grid: the process grid being placed.
    qr, qc: intranode process-grid tile (Q_r x Q_c, Q = ranks/node).
    rank_to_node: world rank -> node id.
    """

    grid: ProcessGrid
    qr: int
    qc: int
    rank_to_node: tuple[int, ...] = field(repr=False)

    def __post_init__(self):
        if self.grid.pr % self.qr or self.grid.pc % self.qc:
            raise ConfigurationError(
                f"intranode tile {self.qr}x{self.qc} does not divide grid "
                f"{self.grid.pr}x{self.grid.pc}"
            )
        if len(self.rank_to_node) != self.grid.size:
            raise ConfigurationError("rank_to_node length != grid size")

    @property
    def kr(self) -> int:
        """Node-grid rows K_r = P_r / Q_r."""
        return self.grid.pr // self.qr

    @property
    def kc(self) -> int:
        """Node-grid columns K_c = P_c / Q_c."""
        return self.grid.pc // self.qc

    @property
    def ranks_per_node(self) -> int:
        return self.qr * self.qc

    @property
    def n_nodes(self) -> int:
        return self.kr * self.kc

    def node_of(self, rank: int) -> int:
        return self.rank_to_node[rank]

    def local_index(self, rank: int) -> int:
        """Position of ``rank`` among the ranks of its node (stable,
        used to bind ranks to the node's GPUs)."""
        node = self.rank_to_node[rank]
        return sum(1 for r in range(rank) if self.rank_to_node[r] == node)

    def describe(self) -> str:
        """The (P_r, P_c, K_r, K_c) tuple format of the paper's Fig. 3
        legends, extended with Q."""
        return (
            f"P={self.grid.pr}x{self.grid.pc} K={self.kr}x{self.kc} "
            f"Q={self.qr}x{self.qc}"
        )

    def ascii_diagram(self) -> str:
        """Render which node owns each grid coordinate (the paper's
        Figure 1, as text)."""
        lines = []
        width = len(str(self.n_nodes - 1)) + 1
        for r in range(self.grid.pr):
            row = [
                f"{self.rank_to_node[self.grid.rank_of(r, c)]:>{width}}"
                for c in range(self.grid.pc)
            ]
            lines.append(" ".join(row))
        return "\n".join(lines)


def tiled_placement(grid: ProcessGrid, qr: int, qc: int) -> RankPlacement:
    """Place a ``qr x qc`` tile of grid coordinates on each node (the
    paper's optimal scheme when qr ≈ qc; its Figure 1 shows 4 nodes x
    (2x3) tiles for K=4, Q=6)."""
    if grid.pr % qr or grid.pc % qc:
        raise ConfigurationError(
            f"tile {qr}x{qc} does not divide grid {grid.pr}x{grid.pc}"
        )
    kc = grid.pc // qc
    mapping = []
    for rank in range(grid.size):
        row, col = grid.coords(rank)
        node = (row // qr) * kc + (col // qc)
        mapping.append(node)
    return RankPlacement(grid, qr, qc, tuple(mapping))


def contiguous_placement(grid: ProcessGrid, ranks_per_node: int) -> RankPlacement:
    """The launcher default: consecutive world ranks share a node.

    With row-major rank numbering this is a ``1 x Q`` intranode tile
    when Q divides P_c (or degenerates to whole rows per node), i.e.
    the high-traffic configurations of Figure 3.
    """
    if grid.size % ranks_per_node:
        raise ConfigurationError(
            f"{ranks_per_node} ranks/node does not divide {grid.size} ranks"
        )
    mapping = tuple(rank // ranks_per_node for rank in range(grid.size))
    # Express as a Q tile when representable; otherwise fall back to
    # constructing the RankPlacement with the closest descriptive tile.
    if grid.pc % ranks_per_node == 0:
        qr, qc = 1, ranks_per_node
    elif ranks_per_node % grid.pc == 0:
        qr, qc = ranks_per_node // grid.pc, grid.pc
    else:
        raise ConfigurationError(
            f"contiguous packing of {ranks_per_node} ranks/node onto a "
            f"{grid.pr}x{grid.pc} grid wraps rows (non-rectangular node "
            "footprint); choose ranks_per_node dividing P_c or a multiple of it"
        )
    return RankPlacement(grid, qr, qc, mapping)


def optimal_placement(grid: ProcessGrid, ranks_per_node: int) -> RankPlacement:
    """The best square-ish tile for the given ranks/node: chooses
    Q_r ≈ Q_c among divisor pairs compatible with the grid."""
    best: RankPlacement | None = None
    best_score = None
    for qr, qc in factor_pairs(ranks_per_node):
        if grid.pr % qr or grid.pc % qc:
            continue
        p = tiled_placement(grid, qr, qc)
        # Minimize the §3.4.1 per-node volume factor Qr/Pr + Qc/Pc;
        # break ties toward a square node grid (Eq. 2).
        score = (qr / grid.pr + qc / grid.pc, abs(p.kr - p.kc))
        if best_score is None or score < best_score:
            best, best_score = p, score
    if best is None:
        raise ConfigurationError(
            f"no {ranks_per_node}-rank tile divides grid {grid.pr}x{grid.pc}"
        )
    return best


def enumerate_placements(n_ranks: int, ranks_per_node: int) -> list[RankPlacement]:
    """Every (P_r, P_c, Q_r, Q_c) combination for the given totals -
    the sweep behind the paper's Figure 3."""
    out = []
    for pr, pc in factor_pairs(n_ranks):
        grid = ProcessGrid(pr, pc)
        for qr, qc in factor_pairs(ranks_per_node):
            if pr % qr or pc % qc:
                continue
            out.append(tiled_placement(grid, qr, qc))
    return out
