"""Distributed Floyd-Warshall variants and the public APSP driver."""

from .blocked import blocked_fw, blocked_fw_inplace, blocked_fw_paths
from .context import FwContext, RankState, SolverConfig
from .distribution import (
    LocalBlocks,
    block_slice,
    collect,
    distribute,
    local_matrix_elems,
    pad_to_blocks,
)
from .driver import ApspResult, apsp, default_block_size, placement_for_variant
from .executor import (
    GpuResident,
    HostResident,
    ResidencyPolicy,
    execute_schedule,
    offload_gpu_footprint,
)
from .grid import ProcessGrid, factor_pairs, near_square_factors
from .oog_srgemm import OogStats, TileTask, oog_srgemm_plan, run_oog_pipeline
from .programs import (
    baseline_program,
    offload_pipelined_program,
    offload_program,
    pipelined_program,
    program_for_config,
)
from .schedule import (
    BulkSyncSchedule,
    LookaheadSchedule,
    SchedulePolicy,
    ScheduleOp,
)
from .placement import (
    RankPlacement,
    contiguous_placement,
    enumerate_placements,
    optimal_placement,
    tiled_placement,
)
from .report import PerfReport, min_pernode_volume_bytes
from .variants import VARIANT_DESCRIPTIONS, Variant, variant_config

__all__ = [
    "apsp",
    "ApspResult",
    "Variant",
    "variant_config",
    "VARIANT_DESCRIPTIONS",
    "SolverConfig",
    "FwContext",
    "RankState",
    "blocked_fw",
    "blocked_fw_inplace",
    "blocked_fw_paths",
    "baseline_program",
    "pipelined_program",
    "offload_program",
    "offload_pipelined_program",
    "program_for_config",
    "execute_schedule",
    "ScheduleOp",
    "SchedulePolicy",
    "BulkSyncSchedule",
    "LookaheadSchedule",
    "ResidencyPolicy",
    "GpuResident",
    "HostResident",
    "offload_gpu_footprint",
    "run_oog_pipeline",
    "oog_srgemm_plan",
    "TileTask",
    "OogStats",
    "ProcessGrid",
    "factor_pairs",
    "near_square_factors",
    "RankPlacement",
    "tiled_placement",
    "contiguous_placement",
    "optimal_placement",
    "enumerate_placements",
    "LocalBlocks",
    "distribute",
    "collect",
    "pad_to_blocks",
    "block_slice",
    "local_matrix_elems",
    "PerfReport",
    "min_pernode_volume_bytes",
    "default_block_size",
    "placement_for_variant",
]
