"""Block-cyclic distribution of the distance matrix (paper §2.5.1).

The global ``n x n`` matrix is cut into ``nb x nb`` blocks of size
``b x b``; block (i, j) lives on grid coordinate (i mod P_r, j mod P_c).
This module scatters/gathers between a global array and per-rank block
dictionaries, and pads matrices whose order is not a multiple of the
block size (padding vertices are isolated except for a zero self-loop,
so they never affect real distances).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import ConfigurationError
from ..semiring.minplus import MIN_PLUS, Semiring
from .grid import ProcessGrid

__all__ = [
    "LocalBlocks",
    "block_slice",
    "pad_to_blocks",
    "distribute",
    "collect",
    "local_matrix_elems",
]


#: Per-rank storage: block index -> b x b array.
LocalBlocks = dict[tuple[int, int], np.ndarray]


def block_slice(b: int, bi: int, bj: int) -> tuple[slice, slice]:
    """Global-array slices of block (bi, bj) for block size ``b``."""
    return slice(bi * b, (bi + 1) * b), slice(bj * b, (bj + 1) * b)


def pad_to_blocks(
    weights: np.ndarray, b: int, semiring: Semiring = MIN_PLUS
) -> tuple[np.ndarray, int]:
    """Pad a square matrix so the block size divides its order.

    Padding rows/columns are filled with the semiring zero (no edge)
    except a diagonal of semiring one (zero-length self path), which
    keeps the padded vertices disconnected from the real graph.
    Returns ``(padded, original_n)``.
    """
    n = weights.shape[0]
    if weights.ndim != 2 or weights.shape[1] != n:
        raise ConfigurationError(f"weights must be square, got {weights.shape}")
    if b < 1:
        raise ConfigurationError(f"block size must be >= 1, got {b}")
    rem = n % b
    if rem == 0:
        return weights, n
    m = n + (b - rem)
    out = semiring.zeros((m, m), dtype=weights.dtype)
    out[:n, :n] = weights
    for v in range(n, m):
        out[v, v] = semiring.one
    return out, n


def distribute(
    weights: np.ndarray, b: int, grid: ProcessGrid
) -> list[LocalBlocks]:
    """Scatter a (block-divisible) matrix into per-rank block dicts.

    Blocks are *copies*, so the distributed computation never aliases
    the caller's array.
    """
    n = weights.shape[0]
    if n % b:
        raise ConfigurationError(f"block size {b} does not divide n={n}; pad first")
    nb = n // b
    locals_: list[LocalBlocks] = [dict() for _ in range(grid.size)]
    for bi in range(nb):
        for bj in range(nb):
            owner = grid.owner(bi, bj)
            locals_[owner][(bi, bj)] = weights[block_slice(b, bi, bj)].copy()
    return locals_


def collect(
    locals_: list[LocalBlocks] | Mapping[int, LocalBlocks],
    n: int,
    b: int,
    grid: ProcessGrid,
    dtype=None,
) -> np.ndarray:
    """Gather per-rank block dicts back into a global ``n x n`` array.

    ``n`` may be the *original* (pre-padding) order; blocks beyond it
    are cropped.
    """
    if isinstance(locals_, Mapping):
        per_rank = [locals_[r] for r in range(grid.size)]
    else:
        per_rank = list(locals_)
    if len(per_rank) != grid.size:
        raise ConfigurationError(
            f"got {len(per_rank)} rank states for a grid of {grid.size}"
        )
    nb = -(-n // b)  # ceil: covers cropped final blocks
    n_pad = nb * b
    sample = next((blk for blocks in per_rank for blk in blocks.values()), None)
    if sample is None:
        raise ConfigurationError("no blocks to collect")
    out = np.empty((n_pad, n_pad), dtype=dtype or sample.dtype)
    seen = 0
    for rank, blocks in enumerate(per_rank):
        for (bi, bj), blk in blocks.items():
            if grid.owner(bi, bj) != rank:
                raise ConfigurationError(
                    f"rank {rank} holds block {(bi, bj)} owned by {grid.owner(bi, bj)}"
                )
            out[block_slice(b, bi, bj)] = blk
            seen += 1
    if seen != nb * nb:
        raise ConfigurationError(f"collected {seen} blocks, expected {nb * nb}")
    return out[:n, :n]


def local_matrix_elems(rank: int, nb: int, b: int, grid: ProcessGrid) -> int:
    """Number of matrix elements rank holds (for memory accounting)."""
    rows = len(grid.local_block_rows(rank, nb))
    cols = len(grid.local_block_cols(rank, nb))
    return rows * cols * b * b
