"""The paper's analytic performance models, implemented verbatim.

These are *predictions*, independent of the simulator; the test suite
checks that simulated runs land near them, and the tuning helpers in
:mod:`repro.perfmodel.tuning` optimize over them exactly as the paper's
§3.4/§4.5 guidance does.

Models implemented
------------------
* Eq. 1  - total ParallelFw cost
  ``T_fw = 2n³/P·t_f + 2(n/b)·t_l + t_w(n²/P_x + n²/P_y)``.
* §3.4.1 - NIC-sharing refinement
  ``T_comm = t_w(n² Q_r / P_r + n² Q_c / P_c)``.
* §4.5  - ooGSrGemm stage costs t0/t1/t2 and their composition for
  1, 2, and ≥3 streams.
* Eq. 5  - minimum block size for offload to run at kernel speed
  ``k ≥ max(t_hd / 2 t_f, 3 t_m / 2 t_f)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from ..machine.cost import CostModel

__all__ = [
    "FwCostBreakdown",
    "parallel_fw_cost",
    "refined_comm_cost",
    "OffloadStageCosts",
    "oog_stage_costs",
    "oog_pipeline_cost",
    "min_offload_block_size",
]


@dataclass(frozen=True)
class FwCostBreakdown:
    """Eq. 1's three terms, in seconds."""

    compute: float
    latency: float
    bandwidth: float

    @property
    def total(self) -> float:
        return self.compute + self.latency + self.bandwidth


def parallel_fw_cost(
    cost: CostModel,
    n: float,
    b: float,
    p_r: int,
    p_c: int,
    gpus_share: int = 1,
) -> FwCostBreakdown:
    """Eq. 1 evaluated with the machine's constants.

    ``n``/``b`` are *virtual* (paper-scale) sizes.  ``gpus_share`` is
    how many ranks share one GPU (2 in the paper's runs): the flop term
    divides by physical GPUs, not ranks.
    """
    p = p_r * p_c
    n_gpus = p / gpus_share
    t_comp = 2.0 * n**3 / n_gpus / cost.srgemm_rate(b)
    t_lat = 2.0 * (n / b) * cost.internode_latency
    bytes_row = n * n * cost.itemsize / p_r
    bytes_col = n * n * cost.itemsize / p_c
    t_bw = (bytes_row + bytes_col) * cost.t_w_internode
    return FwCostBreakdown(compute=t_comp, latency=t_lat, bandwidth=t_bw)


def refined_comm_cost(
    cost: CostModel, n: float, p_r: int, p_c: int, q_r: int, q_c: int
) -> float:
    """§3.4.1: bandwidth term with Q ranks sharing a node's NIC,
    ``t_w · n² · (Q_r / P_r + Q_c / P_c)`` seconds."""
    nbytes = n * n * cost.itemsize
    return cost.t_w_internode * nbytes * (q_r / p_r + q_c / p_c)


@dataclass(frozen=True)
class OffloadStageCosts:
    """§4.5's three stage costs for one full ooGSrGemm
    (C: m x n, inner dimension k)."""

    srgemm: float  # t0 = 2 m n k t_f
    transfer: float  # t1 = (m n + n k + m k) t_hd
    host_update: float  # t2 = 3 m n t_m

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.srgemm, self.transfer, self.host_update)


def oog_stage_costs(cost: CostModel, m: float, n: float, k: float) -> OffloadStageCosts:
    """Evaluate t0, t1, t2 for virtual operand sizes."""
    t0 = 2.0 * m * n * k / cost.srgemm_rate(k)
    t1 = (m * n + n * k + m * k) * cost.itemsize * cost.t_hd
    t2 = 3.0 * m * n * cost.itemsize * cost.t_m
    return OffloadStageCosts(t0, t1, t2)


def oog_pipeline_cost(stages: OffloadStageCosts, n_streams: int) -> float:
    """§4.5's composition of the stage costs by stream count:

    * 1 stream: ``t0 + t1 + t2`` (nothing overlaps);
    * 2 streams: best pairing, ``min over i of max(t_i, sum of others)``;
    * ≥3 streams: ``max(t0, t1, t2)`` (full overlap).
    """
    t = stages.as_tuple()
    if n_streams <= 1:
        return sum(t)
    if n_streams == 2:
        best = float("inf")
        for i, j, k in permutations(range(3)):
            best = min(best, max(t[i], t[j] + t[k]))
        return best
    return max(t)


def min_offload_block_size(cost: CostModel, link_share: int = 2) -> float:
    """Eq. 5: the smallest inner dimension (block size) at which
    SrGemm dominates both the NVLink transfer and the hostUpdate:
    ``k ≥ max(t_hd / 2 t_f, 3 t_m / 2 t_f)`` *per element*, i.e. with
    byte-costs converted through the itemsize.

    ``link_share`` is how many ranks share one GPU's NVLink (2 in the
    paper's launch configuration), which scales the effective per-rank
    t_hd.  With Summit's constants (50 GB/s NVLink per direction, 6.8
    TF/s SrGemm, float32) and link_share=2 this evaluates to ~544; the
    paper's own estimate is 624 and the empirically observed knee is
    ~768 (§5.3.1).
    """
    t_f = cost.t_f
    t_hd_elem = cost.t_hd * cost.itemsize * link_share
    t_m_elem = cost.t_m * cost.itemsize
    return max(t_hd_elem / (2.0 * t_f), 3.0 * t_m_elem / (2.0 * t_f))
