"""Analytic performance models (Eq. 1, §3.4.1, §4.5, Eq. 5) + tuning."""

from .costs import (
    FwCostBreakdown,
    OffloadStageCosts,
    min_offload_block_size,
    oog_pipeline_cost,
    oog_stage_costs,
    parallel_fw_cost,
    refined_comm_cost,
)
from .tuning import (
    DEFAULT_KERNEL_BYTE_BUDGET,
    KernelTiling,
    TuningReport,
    best_grid,
    compute_bound_threshold,
    best_node_grid,
    kernel_byte_budget,
    predict_runtime,
    recommend_block_size,
    recommend_streams,
    tune,
    tune_kernel_tiling,
)

__all__ = [
    "FwCostBreakdown",
    "OffloadStageCosts",
    "parallel_fw_cost",
    "refined_comm_cost",
    "oog_stage_costs",
    "oog_pipeline_cost",
    "min_offload_block_size",
    "best_grid",
    "best_node_grid",
    "recommend_block_size",
    "recommend_streams",
    "predict_runtime",
    "compute_bound_threshold",
    "tune",
    "TuningReport",
    "KernelTiling",
    "tune_kernel_tiling",
    "kernel_byte_budget",
    "DEFAULT_KERNEL_BYTE_BUDGET",
]
