"""Model-driven parameter tuning (the paper's §3.4.2 / §5.3 guidance).

Everything here optimizes the *analytic* models of
:mod:`repro.perfmodel.costs` - no simulation - and is what a user
would run before committing node-hours:

* :func:`best_grid` - choose P_r x P_c (Eq. 3: near-square).
* :func:`best_node_grid` - choose K_r x K_c / Q_r x Q_c (Eq. 2).
* :func:`recommend_block_size` - trade DiagUpdate overhead against
  latency and pipeline depth, with the Eq. 5 offload floor.
* :func:`recommend_streams` - smallest stream count achieving the
  full-overlap bound.
* :func:`predict_runtime` - Eq. 1 end-to-end prediction for a config.
* :func:`tune_kernel_tiling` - tile/k-chunk sizes for the SrGemm
  kernel backends under a byte budget (re-exported from
  :mod:`repro.semiring.backends.tuning`, which owns the implementation
  so the kernel layer stays dependency-free).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.grid import factor_pairs, near_square_factors
from ..machine.cost import CostModel
from ..semiring.backends.tuning import (
    DEFAULT_KERNEL_BYTE_BUDGET,
    KernelTiling,
    kernel_byte_budget,
    tune_kernel_tiling,
)
from .costs import (
    FwCostBreakdown,
    min_offload_block_size,
    oog_pipeline_cost,
    oog_stage_costs,
    parallel_fw_cost,
    refined_comm_cost,
)

__all__ = [
    "best_grid",
    "best_node_grid",
    "recommend_block_size",
    "recommend_streams",
    "predict_runtime",
    "compute_bound_threshold",
    "TuningReport",
    "tune",
    "KernelTiling",
    "tune_kernel_tiling",
    "kernel_byte_budget",
    "DEFAULT_KERNEL_BYTE_BUDGET",
]


def best_grid(n_ranks: int) -> tuple[int, int]:
    """Near-square P_r x P_c (Eq. 3 minimizes the latency term)."""
    return near_square_factors(n_ranks)


def best_node_grid(
    cost: CostModel, n: float, p_r: int, p_c: int, ranks_per_node: int
) -> tuple[int, int, float]:
    """The (Q_r, Q_c) minimizing the §3.4.1 refined communication cost;
    returns (q_r, q_c, predicted_comm_seconds)."""
    best: Optional[tuple[int, int, float]] = None
    for q_r, q_c in factor_pairs(ranks_per_node):
        if p_r % q_r or p_c % q_c:
            continue
        t = refined_comm_cost(cost, n, p_r, p_c, q_r, q_c)
        if best is None or t < best[2]:
            best = (q_r, q_c, t)
    if best is None:
        raise ValueError(
            f"no {ranks_per_node}-rank tile divides the {p_r}x{p_c} grid"
        )
    return best


def recommend_block_size(
    cost: CostModel,
    n: float,
    p_r: int,
    p_c: int,
    offload: bool = False,
    candidates: tuple[int, ...] = (128, 256, 512, 768, 1024, 2048),
    gpus_share: int = 2,
) -> int:
    """Pick b among candidates minimizing modeled total time.

    The model charges Eq. 1 plus the DiagUpdate critical-path term
    ``(n/b) · log2(b) · 2b³/rate`` that Eq. 1 drops (it matters exactly
    when b is pushed large).  For offload runs, candidates below the
    Eq. 5 floor are discarded first.
    """
    floor = min_offload_block_size(cost) if offload else 0.0
    viable = [b for b in candidates if b >= floor] or [max(candidates)]
    best_b, best_t = viable[0], float("inf")
    for b in viable:
        base = parallel_fw_cost(cost, n, b, p_r, p_c, gpus_share).total
        diag_chain = (n / b) * _diag_time(cost, b)
        t = base + diag_chain
        if t < best_t:
            best_b, best_t = b, t
    return best_b


def _diag_time(cost: CostModel, b: float) -> float:
    import math

    steps = max(1, math.ceil(math.log2(max(b - 1, 2))))
    return steps * 2.0 * b**3 / cost.srgemm_rate(b)


def recommend_streams(cost: CostModel, m: float, n: float, k: float) -> int:
    """Smallest stream count whose §4.5 pipeline cost reaches the
    3-stream bound (within 1%)."""
    stages = oog_stage_costs(cost, m, n, k)
    target = oog_pipeline_cost(stages, 3)
    for s in (1, 2, 3):
        if oog_pipeline_cost(stages, s) <= target * 1.01:
            return s
    return 3


def predict_runtime(
    cost: CostModel,
    n: float,
    b: float,
    p_r: int,
    p_c: int,
    q_r: int = 1,
    q_c: int = 1,
    gpus_share: int = 2,
    overlap: bool = True,
) -> FwCostBreakdown:
    """Eq. 1 with the §3.4.1 bandwidth refinement.

    ``overlap=True`` models a perfectly pipelined run (communication
    hidden under compute: total = max of terms + latency); ``False``
    models the bulk-synchronous baseline (sum of terms).
    """
    base = parallel_fw_cost(cost, n, b, p_r, p_c, gpus_share)
    bw = refined_comm_cost(cost, n, p_r, p_c, q_r, q_c)
    if overlap:
        total_compute = max(base.compute, bw)
        return FwCostBreakdown(compute=total_compute, latency=base.latency, bandwidth=0.0)
    return FwCostBreakdown(compute=base.compute, latency=base.latency, bandwidth=bw)


def compute_bound_threshold(
    cost: CostModel,
    n_nodes: int,
    ranks_per_node: int,
    b: float = 768.0,
    q_r: Optional[int] = None,
    q_c: Optional[int] = None,
) -> float:
    """Smallest vertex count at which the sweep turns compute-bound.

    Setting Eq. 1's compute term equal to the §3.4.1 bandwidth term and
    solving for n:

        2 n³ / (G · rate(b))  =  t_w · n² · itemsize · (Q_r/P_r + Q_c/P_c)
        n*  =  t_w · itemsize · (Q_r/P_r + Q_c/P_c) · G · rate(b) / 2

    with G the GPU count.  The paper's §5.2.2 quotes ~120k vertices for
    64 Summit nodes; this function reproduces that estimate's *logic*
    (the exact number depends on the placement and the effective
    broadcast bandwidth assumed).  Below n* communication dominates and
    the Figure 4 optimizations pay off; above it the variants converge.
    """
    n_ranks = n_nodes * ranks_per_node
    p_r, p_c = best_grid(n_ranks)
    if q_r is None or q_c is None:
        q_r, q_c, _ = best_node_grid(cost, 1.0, p_r, p_c, ranks_per_node)
    gpus = n_nodes * min(ranks_per_node, cost.machine.node.gpus_per_node)
    volume_factor = q_r / p_r + q_c / p_c
    return (
        cost.t_w_internode
        * cost.itemsize
        * volume_factor
        * gpus
        * cost.srgemm_rate(b)
        / 2.0
    )


@dataclass(frozen=True)
class TuningReport:
    """Output of :func:`tune`: a ready-to-use launch configuration."""

    p_r: int
    p_c: int
    q_r: int
    q_c: int
    block_size: int
    n_streams: int
    predicted: FwCostBreakdown

    def summary(self) -> str:
        t = self.predicted
        return (
            f"grid {self.p_r}x{self.p_c}, node tile {self.q_r}x{self.q_c}, "
            f"b={self.block_size}, streams={self.n_streams}; predicted "
            f"{t.total:.3f}s (compute {t.compute:.3f}s, latency {t.latency:.3f}s, "
            f"bandwidth {t.bandwidth:.3f}s)"
        )


def tune(
    cost: CostModel,
    n: float,
    n_nodes: int,
    ranks_per_node: int,
    offload: bool = False,
    gpus_per_node: Optional[int] = None,
) -> TuningReport:
    """One-call tuning: grid, placement, block size, stream count."""
    n_ranks = n_nodes * ranks_per_node
    p_r, p_c = best_grid(n_ranks)
    q_r, q_c, _ = best_node_grid(cost, n, p_r, p_c, ranks_per_node)
    gshare = max(1, ranks_per_node // (gpus_per_node or cost.machine.node.gpus_per_node))
    b = recommend_block_size(cost, n, p_r, p_c, offload=offload, gpus_share=gshare)
    local = n / max(p_r, p_c)
    streams = recommend_streams(cost, local, local, b) if offload else 1
    predicted = predict_runtime(cost, n, b, p_r, p_c, q_r, q_c, gshare, overlap=True)
    return TuningReport(p_r, p_c, q_r, q_c, b, streams, predicted)
