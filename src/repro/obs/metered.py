"""Flop/call-metering decorator around any SrGemm kernel backend.

Mirrors :class:`repro.verify.backend.ChecksummedBackend`: every variant
routes its numerics through ``ctx.backend``, so wrapping that one
object meters every kernel of the run - panel updates, outer products,
path kernels, the offload tile pipeline.  The wrapper preserves the
inner backend's public contract (``name``, ``compute_dtype``, ``rtol``,
``byte_budget``, and critically ``modeled_cost_scale``), so modeled
kernel durations - and therefore makespans - are bit-identical with
metering on or off.

Counted flops are *physical* (2mnk per call, from operand shapes);
the driver's finalize step scales them to virtual (paper-scale) flops
through the cost model's ``dim_scale``.  Hollow runs
(``compute_numerics=False``) never invoke kernel closures, so these
counters read zero there - ``repro profile`` always runs real numerics.

Metric families: ``kernel.srgemm`` aggregates every fused/phase
product; the phase-specialized entries additionally count under
``kernel.srgemm_diag`` / ``kernel.srgemm_panel`` /
``kernel.srgemm_outer``, so per-phase flop splits are visible when the
schedule dispatches per phase.  ``kernel.wall_seconds`` accumulates
*physical* wall-clock time inside inner kernel calls - the signal the
``profile --kernel-backend`` sweep uses to compare real backend speed
(simulated time is backend-invariant by design).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from ..semiring.backends.base import KernelBackend
from ..semiring.minplus import MIN_PLUS, Semiring
from .metrics import MetricsRegistry

__all__ = ["MeteredBackend"]


class MeteredBackend(KernelBackend):
    """Delegates every kernel to ``inner``, counting calls and 2mnk
    flops per kernel family into the run's metrics registry."""

    available = True

    def __init__(self, registry: MetricsRegistry, inner: KernelBackend):
        super().__init__(byte_budget=inner.byte_budget)
        self.registry = registry
        self.inner = inner
        # Keep the inner backend's identity: metering is transparent.
        self.name = inner.name
        self.compute_dtype = inner.compute_dtype
        self.rtol = inner.rtol
        self.modeled_cost_scale = inner.modeled_cost_scale
        registry.label("kernel.backend", inner.name)

    def _count(self, family: str, m: int, n: int, k: int) -> None:
        self.registry.counter(f"kernel.{family}.calls").inc()
        self.registry.counter(f"kernel.{family}.flops").inc(2.0 * m * n * k)
        self.registry.counter("kernel.flops").inc(2.0 * m * n * k)

    def _count_product(self, phase: Optional[str], m: int, n: int, k: int) -> None:
        """One product call: always the aggregate ``srgemm`` family,
        plus the phase family when dispatched through a phase entry."""
        self._count("srgemm", m, n, k)
        if phase is not None:
            self.registry.counter(f"kernel.{phase}.calls").inc()
            self.registry.counter(f"kernel.{phase}.flops").inc(2.0 * m * n * k)

    def _timed(self, fn, *args, **kwargs):
        """Run an inner kernel, accruing physical wall time."""
        t0 = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            self.registry.counter("kernel.wall_seconds").inc(time.perf_counter() - t0)

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        self._count_product(None, c.shape[0], c.shape[1], a.shape[1])
        return self._timed(
            self.inner.srgemm_accumulate, c, a, b, semiring=semiring, k_chunk=k_chunk
        )

    def srgemm_diag(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        self._count_product("srgemm_diag", c.shape[0], c.shape[1], a.shape[1])
        return self._timed(self.inner.srgemm_diag, c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_panel(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        self._count_product("srgemm_panel", c.shape[0], c.shape[1], a.shape[1])
        return self._timed(self.inner.srgemm_panel, c, a, b, semiring=semiring, k_chunk=k_chunk)

    def srgemm_outer(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        self._count_product("srgemm_outer", c.shape[0], c.shape[1], a.shape[1])
        return self._timed(self.inner.srgemm_outer, c, a, b, semiring=semiring, k_chunk=k_chunk)

    def panel_row_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        self._count("panel_update", panel.shape[0], panel.shape[1], diag.shape[1])
        return self._timed(self.inner.panel_row_update, panel, diag, semiring=semiring)

    def panel_col_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        self._count("panel_update", panel.shape[0], panel.shape[1], diag.shape[0])
        return self._timed(self.inner.panel_col_update, panel, diag, semiring=semiring)

    def srgemm_accumulate_paths(
        self,
        c: np.ndarray,
        c_nxt: np.ndarray,
        a: np.ndarray,
        a_nxt: np.ndarray,
        b: np.ndarray,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        self._count("srgemm_paths", c.shape[0], c.shape[1], a.shape[1])
        return self._timed(
            self.inner.srgemm_accumulate_paths, c, c_nxt, a, a_nxt, b, k_chunk=k_chunk
        )

    def describe(self) -> str:
        return f"flop-metered wrapper over: {self.inner.describe()}"
