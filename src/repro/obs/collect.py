"""Finalize a run's metrics registry from the driver's artifacts.

The live hooks (executor phase timings, transport byte counters, the
metered kernel backend, the ooG pipeline stats) feed the registry
*during* the run; this module folds in everything that only exists at
the end - the performance report's aggregates, the fault injector's
and verify runtime's counters, and the tracer's per-category busy
times - so ``--metrics-out`` serializes one complete picture.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry

__all__ = ["finalize_metrics"]


def finalize_metrics(
    registry: MetricsRegistry,
    *,
    report,
    mpi,
    cluster,
    cost,
    tracer=None,
    injector=None,
    verify=None,
    bcast_policy: Optional[str] = None,
) -> None:
    """Fold end-of-run aggregates into ``registry`` (in place)."""
    registry.gauge("run.makespan").set(report.elapsed)
    registry.gauge("run.block_size").set(report.block_size)
    registry.gauge("run.n_virtual").set(report.n_virtual)
    registry.gauge("run.ranks").set(report.ranks)
    registry.gauge("run.nodes").set(report.n_nodes)
    registry.label("run.variant", report.variant)
    registry.label("run.machine", report.machine)
    registry.label("run.placement", report.placement)
    if bcast_policy is not None:
        registry.label("comm.panel_bcast.policy", bcast_policy)

    registry.gauge("comm.messages.total").set(mpi.message_count)
    registry.gauge("comm.internode.bytes_total").set(mpi.bytes_internode)
    registry.gauge("comm.intranode.bytes_total").set(mpi.bytes_intranode)
    registry.gauge("comm.max_node_nic.bytes").set(cluster.max_nic_bytes())
    registry.gauge("gpu.peak_hbm.bytes").set(report.gpu_peak_bytes)

    # Physical kernel flops (from the metered backend) at paper scale.
    phys = registry.value("kernel.flops", 0.0)
    if phys:
        registry.gauge("kernel.flops_virtual").set(phys * cost.dim_scale**3)

    if tracer is not None:
        # Per-engine-category busy time/volume (SrGemm, h2dXfer,
        # d2hXfer, nic_xfer, intra_xfer, checkpoint, ...): the tracer
        # already accumulates `<cat>.time` / `<cat>.bytes` / `<cat>.count`.
        for name, value in tracer.counters.items():
            registry.gauge(f"span.{name}").set(value)

    if injector is not None:
        for name, value in injector.counters.items():
            registry.counter(name).inc(value)  # names are already faults.*

    if verify is not None:
        for name, value in verify.counters.items():
            registry.counter(f"verify.{name}").inc(value)
