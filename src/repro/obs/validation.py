"""Perf-model validation: fit machine constants from instrumented runs
and score the paper's analytic models against measured makespans.

The paper's quantitative claims live in three closed forms
(:mod:`repro.perfmodel.costs`):

* Eq. 1   - ``T_fw = 2n³/P·t_f + 2(n/b)·t_l + t_w(n²/P_x + n²/P_y)``;
* §3.4.1  - NIC sharing, ``T_comm = t_w(n²Q_r/P_r + n²Q_c/P_c)``;
* Eq. 5   - offload block bound ``k ≥ max(t_hd/2t_f, 3t_m/2t_f)``.

This module measures instrumented runs (tracer spans + metrics
registry), *fits* the effective constants t_f / t_l / t_w from them,
and prints predicted-vs-measured makespan with relative error per
variant - once against the machine-spec constants (the a-priori
model) and once against the fitted constants (how much of the gap is
constant calibration vs model structure).

Fitting method (documented in docs/OBSERVABILITY.md):

* ``t_f``  = total SrGemm engine-busy seconds / total virtual kernel
  flops issued (so launch overhead and the size-dependent kernel
  efficiency are folded in, like Eq. 1's effective rate);
* ``t_w``  = total NIC-occupancy seconds / total internode bytes;
* ``t_l``  = least-squares (through the origin) of the per-run
  residual ``makespan - compute - bandwidth`` against the ``2(n/b)``
  latency-round count, clamped at 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..machine.cost import CostModel
from ..perfmodel.costs import (
    min_offload_block_size,
    parallel_fw_cost,
    refined_comm_cost,
)

__all__ = [
    "VariantMeasurement",
    "FittedConstants",
    "PerfModelReport",
    "ProfileResult",
    "measure",
    "fit_constants",
    "build_report",
    "run_profile",
    "PROFILE_VARIANTS",
]

#: The variants ``repro profile`` instruments by default: the paper's
#: bulk-synchronous baseline, the pipelined schedule, and the
#: out-of-GPU-memory offload path (Me-ParallelFw).
PROFILE_VARIANTS = ("baseline", "pipelined", "offload")


@dataclass(frozen=True)
class VariantMeasurement:
    """Everything the fitters and the model rows need from one run."""

    variant: str
    makespan: float
    n_virtual: float
    b_virtual: float
    p_r: int
    p_c: int
    q_r: int
    q_c: int
    gpus_share: float
    #: Total SrGemm engine-busy seconds across all GPU engines.
    srgemm_busy: float
    #: Total virtual flops issued through the metered kernel backend.
    kernel_flops_virtual: float
    #: Total NIC-occupancy seconds across all node NICs.
    nic_busy: float
    #: Busiest single node's NIC-occupancy seconds (§3.4.1's T_comm).
    max_node_nic_busy: float
    internode_bytes: float

    @property
    def n_gpus(self) -> float:
        return self.p_r * self.p_c / self.gpus_share

    @property
    def latency_rounds(self) -> float:
        """Eq. 1's 2(n/b) critical-path message rounds."""
        return 2.0 * self.n_virtual / self.b_virtual

    @property
    def bandwidth_bytes(self) -> float:
        """Eq. 1's per-rank panel traffic, n²(1/P_r + 1/P_c) bytes
        (itemsize applied by the caller via t_w)."""
        return self.n_virtual * self.n_virtual * (1.0 / self.p_r + 1.0 / self.p_c)


def _max_actor_busy(tracer, category: str) -> float:
    actors = {s.actor for s in tracer.spans if s.category == category}
    return max((tracer.busy_time(a, [category]) for a in actors), default=0.0)


def measure(result, cost: CostModel) -> VariantMeasurement:
    """Extract a :class:`VariantMeasurement` from an instrumented
    :class:`~repro.core.driver.ApspResult` (needs ``trace`` and
    ``metrics`` both enabled - what ``repro profile`` runs)."""
    report = result.report
    tracer = result.tracer
    if tracer is None or result.metrics is None:
        raise ValueError(
            "perf-model validation needs an instrumented run: solve with "
            "trace=True and obs metrics enabled (see `repro profile`)"
        )
    flops_phys = result.metrics.value("kernel.flops", 0.0)
    return VariantMeasurement(
        variant=report.variant,
        makespan=report.elapsed,
        n_virtual=report.n_virtual,
        b_virtual=cost.v(report.block_size),
        p_r=report.grid_pr,
        p_c=report.grid_pc,
        q_r=report.placement_qr or 1,
        q_c=report.placement_qc or 1,
        gpus_share=report.gpus_share or 1.0,
        srgemm_busy=tracer.counters.get("SrGemm.time", 0.0),
        kernel_flops_virtual=flops_phys * cost.dim_scale**3,
        nic_busy=tracer.total_time("nic_xfer"),
        max_node_nic_busy=_max_actor_busy(tracer, "nic_xfer"),
        internode_bytes=report.internode_bytes,
    )


@dataclass(frozen=True)
class FittedConstants:
    """Effective machine constants extracted from measured runs, next
    to the machine-spec values they calibrate."""

    t_f: float
    t_l: float
    t_w: float
    t_f_model: float
    t_l_model: float
    t_w_model: float
    #: Which constants actually came from measurement (a fit falls back
    #: to the spec value when its signal is absent, e.g. t_w on a
    #: single-node run).
    fitted: tuple[str, ...] = ()

    def describe(self) -> str:
        def mark(name: str) -> str:
            return "fitted" if name in self.fitted else "spec"

        return (
            f"t_f={self.t_f:.3e} s/flop ({mark('t_f')}; spec {self.t_f_model:.3e})  "
            f"t_l={self.t_l:.3e} s ({mark('t_l')}; spec {self.t_l_model:.3e})  "
            f"t_w={self.t_w:.3e} s/B ({mark('t_w')}; spec {self.t_w_model:.3e})"
        )


def fit_constants(
    measurements: Sequence[VariantMeasurement], cost: CostModel
) -> FittedConstants:
    """Fit t_f / t_w / t_l as documented in the module docstring."""
    fitted: list[str] = []

    busy = sum(m.srgemm_busy for m in measurements)
    flops = sum(m.kernel_flops_virtual for m in measurements)
    if busy > 0 and flops > 0:
        t_f = busy / flops
        fitted.append("t_f")
    else:
        t_f = cost.t_f / cost.kernel_efficiency(
            max((m.b_virtual for m in measurements), default=1.0)
        )

    nic = sum(m.nic_busy for m in measurements)
    nbytes = sum(m.internode_bytes for m in measurements)
    if nic > 0 and nbytes > 0:
        t_w = nic / nbytes
        fitted.append("t_w")
    else:
        t_w = cost.t_w_internode

    # Residual least squares through the origin for the latency term.
    num = den = 0.0
    for m in measurements:
        compute = t_f * 2.0 * m.n_virtual**3 / m.n_gpus
        bandwidth = t_w * m.bandwidth_bytes * cost.itemsize
        resid = m.makespan - compute - bandwidth
        x = m.latency_rounds
        num += x * resid
        den += x * x
    if den > 0:
        t_l = max(0.0, num / den)
        fitted.append("t_l")
    else:
        t_l = cost.internode_latency

    return FittedConstants(
        t_f=t_f,
        t_l=t_l,
        t_w=t_w,
        t_f_model=cost.t_f,
        t_l_model=cost.internode_latency,
        t_w_model=cost.t_w_internode,
        fitted=tuple(fitted),
    )


@dataclass(frozen=True)
class ModelRow:
    """One predicted-vs-measured comparison."""

    model: str  # "eq1" | "eq1_fitted" | "comm" | "eq5"
    variant: str
    measured: float
    predicted: float

    @property
    def rel_err(self) -> float:
        if self.measured == 0:
            return math.inf
        return (self.predicted - self.measured) / self.measured

    def line(self) -> str:
        return (
            f"model.{self.model} variant={self.variant} "
            f"measured={self.measured:.6e} predicted={self.predicted:.6e} "
            f"rel_err={self.rel_err:+.4f}"
        )

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "variant": self.variant,
            "measured": self.measured,
            "predicted": self.predicted,
            "rel_err": self.rel_err,
        }


@dataclass(frozen=True)
class PerfModelReport:
    """The validation report ``repro profile`` prints and serializes."""

    machine: str
    constants: FittedConstants
    eq1: tuple[ModelRow, ...]
    eq1_fitted: tuple[ModelRow, ...]
    comm: tuple[ModelRow, ...]
    eq5_k_min: float
    eq5: tuple[dict, ...]  # per offload variant: b_virtual, satisfied
    notes: tuple[str, ...] = ()

    def rows(self) -> list[ModelRow]:
        return [*self.eq1, *self.eq1_fitted, *self.comm]

    def summary(self) -> str:
        lines = [
            f"perf-model validation (machine={self.machine}, "
            f"{len(self.eq1)} instrumented runs)",
            f"constants: {self.constants.describe()}",
            "",
            "Eq. 1 makespan (machine-spec constants):",
            *(r.line() for r in self.eq1),
            "",
            "Eq. 1 makespan (fitted constants):",
            *(r.line() for r in self.eq1_fitted),
        ]
        if self.comm:
            lines += [
                "",
                "§3.4.1 NIC-sharing communication (busiest node):",
                *(r.line() for r in self.comm),
            ]
        lines += ["", f"Eq. 5 offload block bound: k_min = {self.eq5_k_min:.0f}"]
        for row in self.eq5:
            verdict = "satisfied" if row["satisfied"] else "VIOLATED"
            lines.append(
                f"model.eq5 variant={row['variant']} b_virtual={row['b_virtual']:.0f} "
                f"k_min={self.eq5_k_min:.0f} {verdict}"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "constants": {
                "t_f": self.constants.t_f,
                "t_l": self.constants.t_l,
                "t_w": self.constants.t_w,
                "t_f_model": self.constants.t_f_model,
                "t_l_model": self.constants.t_l_model,
                "t_w_model": self.constants.t_w_model,
                "fitted": list(self.constants.fitted),
            },
            "eq1": [r.to_dict() for r in self.eq1],
            "eq1_fitted": [r.to_dict() for r in self.eq1_fitted],
            "comm": [r.to_dict() for r in self.comm],
            "eq5": {"k_min": self.eq5_k_min, "rows": list(self.eq5)},
            "notes": list(self.notes),
        }


def _fitted_prediction(m: VariantMeasurement, c: FittedConstants, cost: CostModel) -> float:
    return (
        c.t_f * 2.0 * m.n_virtual**3 / m.n_gpus
        + c.t_l * m.latency_rounds
        + c.t_w * m.bandwidth_bytes * cost.itemsize
    )


def build_report(
    measurements: Sequence[VariantMeasurement],
    cost: CostModel,
    machine_name: str,
) -> PerfModelReport:
    """Score the three models against a set of measurements."""
    constants = fit_constants(measurements, cost)
    eq1: list[ModelRow] = []
    eq1_fitted: list[ModelRow] = []
    comm: list[ModelRow] = []
    eq5: list[dict] = []
    notes: list[str] = []
    k_min = min_offload_block_size(cost)
    for m in measurements:
        predicted = parallel_fw_cost(
            cost, m.n_virtual, m.b_virtual, m.p_r, m.p_c, gpus_share=m.gpus_share
        ).total
        eq1.append(ModelRow("eq1", m.variant, m.makespan, predicted))
        eq1_fitted.append(
            ModelRow("eq1_fitted", m.variant, m.makespan, _fitted_prediction(m, constants, cost))
        )
        if m.max_node_nic_busy > 0:
            comm.append(
                ModelRow(
                    "comm",
                    m.variant,
                    m.max_node_nic_busy,
                    refined_comm_cost(cost, m.n_virtual, m.p_r, m.p_c, m.q_r, m.q_c),
                )
            )
        else:
            notes.append(
                f"{m.variant}: no internode traffic (single node?); §3.4.1 row skipped"
            )
        if "offload" in m.variant:
            eq5.append(
                {
                    "variant": m.variant,
                    "b_virtual": m.b_virtual,
                    "satisfied": m.b_virtual >= k_min,
                }
            )
    return PerfModelReport(
        machine=machine_name,
        constants=constants,
        eq1=tuple(eq1),
        eq1_fitted=tuple(eq1_fitted),
        comm=tuple(comm),
        eq5_k_min=k_min,
        eq5=tuple(eq5),
        notes=tuple(notes),
    )


@dataclass
class ProfileResult:
    """What :func:`run_profile` returns: the validation report plus
    the per-variant instrumented results (tracers still attached, so
    the caller can export Chrome traces)."""

    report: PerfModelReport
    results: dict = field(default_factory=dict)  # variant -> ApspResult


def run_profile(
    weights,
    *,
    variants: Sequence[str] = PROFILE_VARIANTS,
    block_size: Optional[int] = None,
    machine="summit",
    n_nodes: int = 1,
    ranks_per_node: Optional[int] = None,
    dim_scale: float = 1.0,
    kernel_backend: Optional[str] = None,
) -> ProfileResult:
    """Run one instrumented solve per variant and validate the models.

    This is the engine of the ``repro profile`` CLI subcommand; it is
    also directly usable as a library call.  ``kernel_backend`` selects
    the SrGemm backend the instrumented runs execute on (``None``
    resolves the process default); note fitted constants come from
    *simulated* busy time, which is backend-invariant by design - the
    physical per-backend speed signal is the ``kernel.wall_seconds``
    counter in each result's metrics registry.
    """
    # Imported here: repro.api imports repro.obs, so a module-level
    # import would be circular.
    from ..api import ObsSinks, SolveConfig, solve, resolve_machine

    spec = resolve_machine(machine)
    cost = CostModel(spec, dim_scale=dim_scale)
    measurements: list[VariantMeasurement] = []
    results: dict = {}
    for variant in variants:
        config = SolveConfig(
            variant=variant,
            block_size=block_size,
            machine=spec,
            n_nodes=n_nodes,
            ranks_per_node=ranks_per_node,
            dim_scale=dim_scale,
            kernel_backend=kernel_backend,
            trace=True,
            obs=ObsSinks(metrics=True),
        )
        result = solve(weights, config)
        results[variant] = result
        measurements.append(measure(result, cost))
    return ProfileResult(
        report=build_report(measurements, cost, spec.name), results=results
    )
