"""Observability layer: metrics, span export, perf-model validation.

Zero-cost when off: the driver only instantiates a
:class:`MetricsRegistry` when asked (``metrics=True`` /
``ObsSinks.enabled``), and every hook in the executor, the MPI
transport, the ooGSrGemm pipeline, the fault injector, and the verify
runtime sits behind an ``is not None`` check on an attachment slot -
the same contract as ``ctx.faults`` / ``ctx.verify``.  With metrics
*enabled* the instrumentation reads simulated clocks and operand
shapes but never creates simulation events, so makespans are identical
either way (both pinned by ``tests/test_obs.py``).

Public pieces:

* :class:`MetricsRegistry` (+ :class:`Counter` / :class:`Gauge` /
  :class:`Histogram`) - the typed registry (:mod:`repro.obs.metrics`);
* :func:`chrome_trace` / :func:`write_chrome_trace` /
  :func:`validate_chrome_trace` / :func:`text_timeline` - span export
  (:mod:`repro.obs.export`);
* :class:`MeteredBackend` - the flop-metering kernel wrapper
  (:mod:`repro.obs.metered`);
* :func:`run_profile` / :func:`build_report` - perf-model validation
  (:mod:`repro.obs.validation`; imported lazily, it pulls in the
  solver stack).
"""

from __future__ import annotations

from .export import chrome_trace, text_timeline, validate_chrome_trace, write_chrome_trace
from .metered import MeteredBackend
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MeteredBackend",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "text_timeline",
    "finalize_metrics",
    "run_profile",
    "build_report",
    "PerfModelReport",
    "FittedConstants",
    "VariantMeasurement",
    "ProfileResult",
]


def __getattr__(name):  # lazy: validation pulls in the whole solver stack
    if name in (
        "run_profile",
        "build_report",
        "PerfModelReport",
        "FittedConstants",
        "VariantMeasurement",
        "ProfileResult",
    ):
        from . import validation

        return getattr(validation, name)
    if name == "finalize_metrics":
        from .collect import finalize_metrics

        return finalize_metrics
    raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
