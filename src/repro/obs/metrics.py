"""Typed metrics registry for instrumented runs.

A :class:`MetricsRegistry` is the single collection point of the
observability layer: the executor, the MPI transport, the ooGSrGemm
pipeline, the fault injector, and the verify runtime all feed it -
but only when the driver armed the run with ``metrics=True``.  On
plain runs every attachment slot (``ctx.obs``, ``mpi.obs``) stays
``None`` and the hooks cost one ``if``, mirroring the ``ctx.faults`` /
``ctx.verify`` zero-cost contract (pinned by ``tests/test_obs.py``
against pre-instrumentation recordings).

Three metric kinds, all monotone-cheap to update:

* :class:`Counter` - an accumulating sum (bytes, messages, flops);
* :class:`Gauge` - a last-write-wins scalar (makespan, peak HBM);
* :class:`Histogram` - summary statistics of observed samples
  (count / sum / min / max / mean), used for per-phase durations.

Names are dotted paths (``comm.panel_row.bytes``,
``phase.OuterUpdate``); the catalog lives in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically accumulating sum."""

    kind = "counter"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-write-wins scalar."""

    kind = "gauge"

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Summary statistics over observed samples (no buckets: the
    consumers here want count / sum / extrema / mean, and the simulated
    time scale varies over orders of magnitude between runs)."""

    kind = "histogram"

    __slots__ = ("name", "help", "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create registry of typed metrics plus string labels.

    Metric identity is by name; asking for an existing name with a
    different kind is a programming error and raises ``TypeError``
    (silent kind confusion would corrupt the exported catalog).
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}
        #: String annotations (kernel backend name, bcast policy, ...).
        self.labels: Dict[str, str] = {}

    # -- get-or-create -------------------------------------------------------
    def _get(self, cls, name: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get(Histogram, name, help)

    def label(self, name: str, value: str) -> None:
        self.labels[name] = str(value)

    # -- queries -------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Scalar value of a counter/gauge (histograms: the sum)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.sum
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- export --------------------------------------------------------------
    def as_dict(self) -> dict:
        """Stable machine-readable snapshot (what ``--metrics-out``
        serializes)."""
        return {
            "metrics": {name: self._metrics[name].to_dict() for name in self.names()},
            "labels": dict(sorted(self.labels.items())),
        }

    def flat(self) -> dict[str, float]:
        """One scalar per metric: counters/gauges by value, histograms
        exploded into ``.count`` / ``.sum`` / ``.mean``."""
        out: dict[str, float] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[f"{name}.count"] = float(metric.count)
                out[f"{name}.sum"] = metric.sum
                out[f"{name}.mean"] = metric.mean
            else:
                out[name] = metric.value
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)
