"""Observability sink attachment shared by every public config.

:class:`ObsSinks` is the one vocabulary for "where do this run's
metrics and traces go": :class:`~repro.api.SolveConfig` carries one per
solve, :class:`~repro.serve.ServeConfig` one per query server, and the
``sched`` CLI validates its report/metrics/trace paths through the same
:func:`check_sink_path`.  Validation runs *before* the work starts, so
an unwritable path fails in milliseconds (:class:`~repro.errors.SinkError`,
CLI exit code 12) instead of after a possibly hour-long run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..errors import SinkError

__all__ = ["ObsSinks", "check_sink_path"]


def check_sink_path(path: str) -> None:
    """Raise :class:`SinkError` unless ``path`` can be written."""
    target = os.path.abspath(path)
    if os.path.isdir(target):
        raise SinkError(path, "path is a directory")
    parent = os.path.dirname(target) or "."
    if not os.path.isdir(parent):
        raise SinkError(path, f"directory {parent!r} does not exist")
    if not os.access(parent, os.W_OK):
        raise SinkError(path, f"directory {parent!r} is not writable")
    if os.path.exists(target) and not os.access(target, os.W_OK):
        raise SinkError(path, "existing file is not writable")


@dataclass(frozen=True)
class ObsSinks:
    """Observability attachment of one solve / query server (see
    :mod:`repro.obs`).

    Any non-default field arms the metrics registry; ``trace_out``
    additionally forces span tracing.  :meth:`validate` runs *before*
    the solve, so an unwritable path fails fast
    (:class:`~repro.errors.SinkError`, CLI exit code 12) instead of
    after the run.
    """

    #: Collect a :class:`~repro.obs.metrics.MetricsRegistry` on the run
    #: (lands on ``result.metrics``) even without file sinks.
    metrics: bool = False
    #: Write the metrics catalog as JSON here after the solve.
    metrics_out: Optional[str] = None
    #: Write a Chrome ``trace_event`` JSON (Perfetto-openable) here.
    trace_out: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return bool(self.metrics or self.metrics_out or self.trace_out)

    def validate(self) -> None:
        for path in (self.metrics_out, self.trace_out):
            if path is not None:
                check_sink_path(path)
