"""Span export: Chrome ``trace_event`` JSON and a plain-text timeline.

The simulator's :class:`~repro.sim.trace.Tracer` already records every
span of a traced run - per-engine kernel/transfer spans, NIC
occupancy, and the executor's task-level ``op:*`` spans.  This module
serializes them to the Chrome trace-event format (the ``"X"`` complete
events of the `trace_event spec`), so any run can be dropped into
Perfetto / ``chrome://tracing``, plus a plain-text per-actor timeline
for terminals and diffs.

Mapping: the whole run is one process; every tracer actor (``rank3``,
``node0.nic``, ``gpu0.0:SrGemm``, ...) becomes one named thread, with
simulated seconds scaled to trace microseconds.
"""

from __future__ import annotations

import json
from typing import Optional

from ..sim.trace import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "text_timeline",
]

#: Simulated seconds -> trace microseconds.
_US = 1e6


def chrome_trace(tracer: Tracer, run_name: str = "repro simulated run") -> dict:
    """Serialize a tracer to a Chrome ``trace_event`` JSON object.

    One ``"M"`` (metadata) event names the process and each actor
    thread; one ``"X"`` (complete) event per span carries ``ts``/``dur``
    in microseconds and the span category as ``cat``.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": run_name},
        }
    ]
    tids: dict[str, int] = {}
    for actor in tracer.actors():
        tid = len(tids) + 1
        tids[actor] = tid
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": actor},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.label,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": 1,
                "tid": tids[span.actor],
                "args": {"actor": span.actor},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str, run_name: str = "repro simulated run") -> None:
    with open(path, "w") as f:
        json.dump(chrome_trace(tracer, run_name), f)


def validate_chrome_trace(obj: object) -> int:
    """Schema-check a (possibly JSON-round-tripped) trace object.

    Verifies the invariants Perfetto's importer relies on and returns
    the number of ``"X"`` duration events; raises ``ValueError`` on the
    first violation.
    """
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        raise ValueError("trace must be an object with a 'traceEvents' array")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be an array")
    n_spans = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "M"):
            raise ValueError(f"traceEvents[{i}]: unsupported phase {ph!r}")
        if not isinstance(ev.get("name"), str):
            raise ValueError(f"traceEvents[{i}]: missing string 'name'")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            raise ValueError(f"traceEvents[{i}]: pid/tid must be integers")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"traceEvents[{i}]: 'ts' must be a non-negative number")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}]: 'dur' must be a non-negative number")
            n_spans += 1
    return n_spans


def text_timeline(tracer: Tracer, actor: Optional[str] = None) -> str:
    """A plain-text per-actor timeline: every span, chronological
    within its actor, one line each (the grep-able complement of the
    Chrome trace)."""
    if not tracer.spans:
        return "(empty trace)"
    actors = [actor] if actor is not None else tracer.actors()
    lines: list[str] = []
    for a in actors:
        spans = sorted(tracer.spans_by_actor(a), key=lambda s: (s.start, s.end))
        lines.append(f"== {a} ({len(spans)} spans) ==")
        for s in spans:
            lines.append(
                f"  {s.start * 1e3:12.6f}ms  +{s.duration * 1e3:10.6f}ms  "
                f"{s.category:<16s} {s.label}"
            )
    return "\n".join(lines)
