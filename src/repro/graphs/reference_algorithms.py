"""Classic shortest-path algorithms for comparison and validation.

The paper's related-work section positions Floyd-Warshall against
Johnson's algorithm (Dijkstra from every source) and Bellman-Ford;
these are full from-scratch implementations used as oracles on sparse
inputs and by the examples to reproduce the FW-vs-Johnson trade-off
discussion (paper §6: Johnson wins asymptotically on sparse graphs but
does not map to GPUs).
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..errors import NegativeCycleError
from ..semiring.minplus import INF

__all__ = [
    "dijkstra",
    "bellman_ford",
    "johnson",
    "apsp_dijkstra",
    "estimated_johnson_ops",
    "estimated_fw_ops",
]


def _adjacency(weights: np.ndarray) -> list[list[tuple[int, float]]]:
    """Dense matrix -> adjacency lists, skipping inf and self loops."""
    n = weights.shape[0]
    adj: list[list[tuple[int, float]]] = [[] for _ in range(n)]
    for u in range(n):
        row = weights[u]
        for v in np.flatnonzero(np.isfinite(row)):
            if v != u:
                adj[u].append((int(v), float(row[v])))
    return adj


def dijkstra(
    weights: np.ndarray, source: int, adj: Optional[list[list[tuple[int, float]]]] = None
) -> np.ndarray:
    """Single-source shortest paths with a binary heap.

    Requires non-negative weights (checked lazily: a negative edge pop
    raises ``ValueError``).
    """
    n = weights.shape[0]
    if not 0 <= source < n:
        raise ValueError(f"source {source} outside [0, {n})")
    if adj is None:
        adj = _adjacency(weights)
    dist = np.full(n, INF)
    dist[source] = 0.0
    done = np.zeros(n, dtype=bool)
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if done[u]:
            continue
        done[u] = True
        for v, wuv in adj[u]:
            if wuv < 0:
                raise ValueError("Dijkstra requires non-negative edge weights")
            nd = d + wuv
            if nd < dist[v]:
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def bellman_ford(weights: np.ndarray, source: int) -> np.ndarray:
    """Single-source shortest paths tolerating negative edges.

    Vectorized edge relaxation (one pass = one (min,+) matrix-vector
    product), up to n-1 rounds with early exit; a further improving
    round means a negative cycle.
    """
    n = weights.shape[0]
    dist = np.full(n, INF)
    dist[source] = 0.0
    wt = weights.T  # wt[v, u] = w(u -> v)
    for _ in range(n - 1):
        relaxed = np.min(wt + dist[None, :], axis=1)
        new = np.minimum(dist, relaxed)
        if np.array_equal(new, dist):
            return new
        dist = new
    final = np.minimum(dist, np.min(wt + dist[None, :], axis=1))
    if not np.array_equal(final, dist):
        v = int(np.flatnonzero(final < dist)[0])
        raise NegativeCycleError(v, float(final[v] - dist[v]))
    return dist


def johnson(weights: np.ndarray) -> np.ndarray:
    """Johnson's APSP: one Bellman-Ford reweighting pass + Dijkstra
    from every source.  O(mn + n² log n) with a binary heap; the
    asymptotically-better choice for sparse graphs (paper §6)."""
    n = weights.shape[0]
    # Virtual source connected to every vertex with weight 0: its
    # Bellman-Ford potentials h satisfy h[v] <= h[u] + w(u, v).
    aug = np.full((n + 1, n + 1), INF)
    aug[:n, :n] = weights
    aug[n, :n] = 0.0
    np.fill_diagonal(aug, 0.0)
    h = bellman_ford(aug, n)[:n]
    if not np.all(np.isfinite(h)):
        # Unreachable from the virtual source is impossible; guard anyway.
        h = np.where(np.isfinite(h), h, 0.0)
    reweighted = weights + h[:, None] - h[None, :]
    np.fill_diagonal(reweighted, 0.0)
    adj = _adjacency(reweighted)
    out = np.empty((n, n))
    for s in range(n):
        out[s] = dijkstra(reweighted, s, adj=adj) - h[s] + h
    return out


def apsp_dijkstra(weights: np.ndarray) -> np.ndarray:
    """APSP by running Dijkstra from every source (valid for
    non-negative weights; this is Johnson's algorithm without the
    reweighting pass)."""
    n = weights.shape[0]
    adj = _adjacency(weights)
    out = np.empty((n, n))
    for s in range(n):
        out[s] = dijkstra(weights, s, adj=adj)
    return out


def estimated_johnson_ops(n: int, m: int) -> float:
    """Rough operation count for Johnson's algorithm:
    ``mn + n² log n`` (Fibonacci-heap bound the paper quotes)."""
    import math

    return m * n + n * n * max(1.0, math.log2(max(n, 2)))


def estimated_fw_ops(n: int) -> float:
    """Floyd-Warshall operation count, ``2 n³``."""
    return 2.0 * float(n) ** 3
