"""Graph generators, IO, reference algorithms and validation oracles."""

from .generators import (
    banded_graph,
    erdos_renyi,
    from_edge_list,
    grid_road_network,
    power_law_graph,
    ring_of_cliques,
    uniform_random_dense,
)
from .io import load_edge_list, load_matrix, save_edge_list, save_matrix
from .reference_algorithms import (
    apsp_dijkstra,
    bellman_ford,
    dijkstra,
    estimated_fw_ops,
    estimated_johnson_ops,
    johnson,
)
from .validation import (
    assert_matches_oracle,
    check_apsp_invariants,
    scipy_floyd_warshall,
    validate_weights,
)

__all__ = [
    "uniform_random_dense",
    "erdos_renyi",
    "grid_road_network",
    "ring_of_cliques",
    "power_law_graph",
    "banded_graph",
    "from_edge_list",
    "save_matrix",
    "load_matrix",
    "save_edge_list",
    "load_edge_list",
    "dijkstra",
    "bellman_ford",
    "johnson",
    "apsp_dijkstra",
    "estimated_johnson_ops",
    "estimated_fw_ops",
    "scipy_floyd_warshall",
    "assert_matches_oracle",
    "check_apsp_invariants",
    "validate_weights",
]
