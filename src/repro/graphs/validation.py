"""Cross-validation of distance matrices against independent oracles.

The paper's §5.1 states "we experimentally confirmed that the output of
our revised implementations match outputs of the sequential
Floyd-Warshall baseline"; these helpers are how the test suite and the
``validate=True`` driver path make the same confirmation, plus checks
against SciPy and structural invariants that hold for any valid APSP
result.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.csgraph as csgraph

from ..errors import ValidationError

__all__ = [
    "validate_weights",
    "scipy_floyd_warshall",
    "assert_matches_oracle",
    "check_apsp_invariants",
]


def validate_weights(weights: np.ndarray) -> np.ndarray:
    """Reject weight matrices the (min,+) sweep cannot digest.

    ``NaN`` poisons every min/plus it touches and silently corrupts
    whole panels; ``-inf`` is an instant negative cycle through any
    vertex pair.  Both are input errors, caught at load/generation time
    rather than deep inside a distributed run.  ``+inf`` (no edge) is
    of course fine.  Returns ``weights`` unchanged for chaining.
    """
    if np.isnan(weights).any():
        bad = np.argwhere(np.isnan(weights))[0]
        raise ValidationError(
            f"weight matrix contains NaN (first at ({bad[0]}, {bad[1]})); "
            "NaN propagates through every (min,+) update it touches"
        )
    if np.isneginf(weights).any():
        bad = np.argwhere(np.isneginf(weights))[0]
        raise ValidationError(
            f"weight matrix contains -inf (first at ({bad[0]}, {bad[1]})); "
            "a -inf edge is an immediate negative cycle"
        )
    return weights


def scipy_floyd_warshall(weights: np.ndarray) -> np.ndarray:
    """SciPy's Floyd-Warshall as an independent oracle.

    SciPy encodes "no edge" as an absent entry of a sparse graph, so
    inf weights are translated before the call.
    """
    dense = np.where(np.isinf(weights), 0.0, weights)
    graph = csgraph.csgraph_from_dense(dense, null_value=0.0)
    return csgraph.floyd_warshall(graph, directed=True)


def assert_matches_oracle(
    dist: np.ndarray, oracle: np.ndarray, rtol: float = 1e-9, atol: float = 1e-9
) -> None:
    """Raise :class:`ValidationError` with a useful diff on mismatch."""
    if dist.shape != oracle.shape:
        raise ValidationError(f"shape mismatch: {dist.shape} vs {oracle.shape}")
    close = np.isclose(dist, oracle, rtol=rtol, atol=atol) | (
        np.isinf(dist) & np.isinf(oracle)
    )
    if not close.all():
        bad = np.argwhere(~close)
        i, j = bad[0]
        raise ValidationError(
            f"{len(bad)} mismatching entries; first at ({i}, {j}): "
            f"{dist[i, j]!r} vs oracle {oracle[i, j]!r}"
        )


def check_apsp_invariants(weights: np.ndarray, dist: np.ndarray) -> None:
    """Structural properties any APSP result must satisfy:

    1. ``dist <= weights`` elementwise (a direct edge is a path);
    2. zero diagonal (no negative cycles assumed);
    3. triangle inequality ``dist[i,j] <= dist[i,k] + dist[k,j]``;
    4. idempotence: one more relaxation sweep changes nothing.
    """
    if not np.all(dist <= weights + 1e-9):
        raise ValidationError("distance exceeds direct edge weight somewhere")
    if not np.allclose(np.diagonal(dist), 0.0):
        raise ValidationError("diagonal of APSP result is not zero")
    n = dist.shape[0]
    for k in range(n):
        via = dist[:, k, None] + dist[None, k, :]
        if not np.all(dist <= via + 1e-9):
            raise ValidationError(f"triangle inequality violated via vertex {k}")
    relaxed = dist.copy()
    for k in range(n):
        np.minimum(relaxed, relaxed[:, k, None] + relaxed[None, k, :], out=relaxed)
    if not np.allclose(np.where(np.isinf(dist), 0, dist), np.where(np.isinf(relaxed), 0, relaxed)):
        raise ValidationError("APSP result is not a fixed point of relaxation")
