"""Weight-matrix persistence: .npz matrices and text edge lists."""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from .generators import from_edge_list
from .validation import validate_weights

__all__ = ["save_matrix", "load_matrix", "save_edge_list", "load_edge_list"]

PathLike = Union[str, os.PathLike]


def save_matrix(path: PathLike, weights: np.ndarray, **metadata) -> None:
    """Save a weight matrix (and optional scalar metadata) as .npz."""
    np.savez_compressed(path, weights=weights, **metadata)


def load_matrix(path: PathLike) -> np.ndarray:
    """Load a weight matrix saved by :func:`save_matrix`.

    Raises :class:`~repro.errors.ValidationError` on NaN or -inf
    entries (corrupt or hand-edited files).
    """
    with np.load(path) as data:
        return validate_weights(np.array(data["weights"]))


def save_edge_list(path: PathLike, weights: np.ndarray, comment: str = "") -> None:
    """Write finite off-diagonal entries as ``src dst weight`` lines.

    The header records the vertex count so sparse graphs round-trip
    isolated vertices.
    """
    n = weights.shape[0]
    with open(path, "w", encoding="utf-8") as fh:
        if comment:
            for line in comment.splitlines():
                fh.write(f"# {line}\n")
        fh.write(f"# vertices {n}\n")
        src, dst = np.nonzero(np.isfinite(weights))
        for u, v in zip(src, dst):
            if u != v:
                fh.write(f"{u} {v} {float(weights[u, v])!r}\n")


def load_edge_list(path: PathLike) -> np.ndarray:
    """Read a file written by :func:`save_edge_list` back to a matrix."""
    n = None
    edges: list[tuple[int, int, float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "vertices":
                    n = int(parts[1])
                continue
            u, v, w = line.split()
            edges.append((int(u), int(v), float(w)))
    if n is None:
        n = 1 + max((max(u, v) for u, v, _ in edges), default=-1)
    return from_edge_list(n, edges)
