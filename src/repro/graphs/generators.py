"""Graph generators producing (min,+) weight matrices.

The paper's entire evaluation uses dense uniform random matrices
(§5.1.4); the other generators back the example applications (knowledge
graphs, road networks) and the test suite's edge cases.

Conventions: the returned matrix ``w`` has ``w[i, j]`` = weight of edge
i→j, ``inf`` where there is no edge, and a zero diagonal (standard APSP
initialization).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..semiring.minplus import INF

__all__ = [
    "uniform_random_dense",
    "erdos_renyi",
    "grid_road_network",
    "ring_of_cliques",
    "power_law_graph",
    "banded_graph",
    "from_edge_list",
]


def _finish(w: np.ndarray, symmetric: bool) -> np.ndarray:
    if symmetric:
        w = np.minimum(w, w.T)
    np.fill_diagonal(w, 0.0)
    return w


def uniform_random_dense(
    n: int,
    *,
    low: float = 1.0,
    high: float = 10.0,
    seed: Optional[int] = None,
    symmetric: bool = False,
    dtype=np.float64,
) -> np.ndarray:
    """A dense uniform random weight matrix - the paper's test input."""
    rng = np.random.default_rng(seed)
    w = rng.uniform(low, high, (n, n)).astype(dtype)
    return _finish(w, symmetric)


def erdos_renyi(
    n: int,
    p: float,
    *,
    low: float = 1.0,
    high: float = 10.0,
    seed: Optional[int] = None,
    symmetric: bool = False,
    dtype=np.float64,
) -> np.ndarray:
    """G(n, p) with uniform weights; missing edges are +inf."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    w = rng.uniform(low, high, (n, n)).astype(dtype)
    mask = rng.random((n, n)) >= p
    w[mask] = INF
    return _finish(w, symmetric)


def grid_road_network(
    rows: int,
    cols: int,
    *,
    seed: Optional[int] = None,
    base_cost: float = 1.0,
    jitter: float = 0.5,
    diagonal_prob: float = 0.15,
    dtype=np.float64,
) -> np.ndarray:
    """A rows x cols street grid with jittered travel times and
    occasional diagonal shortcuts - the traffic-routing workload of the
    examples.  Vertices number row-major; edges are bidirectional with
    independently drawn directional costs (one-way asymmetry)."""
    rng = np.random.default_rng(seed)
    n = rows * cols
    w = np.full((n, n), INF, dtype=dtype)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    def connect(a: int, bidx: int) -> None:
        w[a, bidx] = base_cost + rng.uniform(0, jitter)
        w[bidx, a] = base_cost + rng.uniform(0, jitter)

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                connect(vid(r, c), vid(r, c + 1))
            if r + 1 < rows:
                connect(vid(r, c), vid(r + 1, c))
            if r + 1 < rows and c + 1 < cols and rng.random() < diagonal_prob:
                connect(vid(r, c), vid(r + 1, c + 1))
    np.fill_diagonal(w, 0.0)
    return w


def ring_of_cliques(
    n_cliques: int,
    clique_size: int,
    *,
    intra: float = 1.0,
    inter: float = 5.0,
    dtype=np.float64,
) -> np.ndarray:
    """Cliques joined in a ring - a worst case for panel broadcasts in
    the distributed solver and a classic community-structure test."""
    n = n_cliques * clique_size
    w = np.full((n, n), INF, dtype=dtype)
    for c in range(n_cliques):
        lo = c * clique_size
        w[lo : lo + clique_size, lo : lo + clique_size] = intra
        nxt = ((c + 1) % n_cliques) * clique_size
        w[lo, nxt] = inter
        w[nxt, lo] = inter
    np.fill_diagonal(w, 0.0)
    return w


def power_law_graph(
    n: int,
    *,
    exponent: float = 2.3,
    mean_degree: float = 8.0,
    low: float = 1.0,
    high: float = 10.0,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> np.ndarray:
    """A Chung-Lu style power-law graph: edge (i, j) appears with
    probability ∝ d_i d_j for power-law expected degrees d.  The
    knowledge-graph-like workload of the examples (hubs + long tail)."""
    rng = np.random.default_rng(seed)
    # Expected degrees d_i ∝ (i+1)^(-1/(exponent-1)), scaled to the mean.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    d = ranks ** (-1.0 / (exponent - 1.0))
    d *= mean_degree * n / d.sum()
    s = d.sum()
    prob = np.minimum(1.0, np.outer(d, d) / s)
    mask = rng.random((n, n)) < prob
    w = np.full((n, n), INF, dtype=dtype)
    weights = rng.uniform(low, high, (n, n))
    w[mask] = weights[mask]
    return _finish(w, symmetric=False)


def banded_graph(
    n: int,
    bandwidth: int,
    *,
    low: float = 1.0,
    high: float = 4.0,
    seed: Optional[int] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Edges only between vertices within ``bandwidth`` of each other -
    long shortest paths (diameter ~ n / bandwidth), stressing the FW
    iteration chain."""
    rng = np.random.default_rng(seed)
    w = np.full((n, n), INF, dtype=dtype)
    for off in range(1, bandwidth + 1):
        vals = rng.uniform(low, high, n - off)
        idx = np.arange(n - off)
        w[idx, idx + off] = vals
        w[idx + off, idx] = rng.uniform(low, high, n - off)
    np.fill_diagonal(w, 0.0)
    return w


def from_edge_list(
    n: int,
    edges: list[tuple[int, int, float]],
    *,
    symmetric: bool = False,
    dtype=np.float64,
) -> np.ndarray:
    """Build a weight matrix from (src, dst, weight) triples; parallel
    edges keep the minimum weight."""
    from ..errors import ValidationError
    from .validation import validate_weights

    w = np.full((n, n), INF, dtype=dtype)
    for u, v, wt in edges:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) outside vertex range [0, {n})")
        if np.isnan(wt):
            # min(INF, nan) is INF, so without this check a NaN edge
            # would vanish silently instead of being rejected.
            raise ValidationError(f"edge ({u}, {v}) has NaN weight")
        w[u, v] = min(w[u, v], wt)
        if symmetric:
            w[v, u] = min(w[v, u], wt)
    np.fill_diagonal(w, 0.0)
    return validate_weights(w)
