"""Byte-budgeted LRU block cache for the query engine.

Queries touch tiles, not the whole matrix: a point query needs one
block, a k-nearest scan one block row.  The cache keeps the hottest
tiles materialized in memory under a byte budget and evicts in strict
least-recently-used order; everything it does is visible on the
``serve.cache.*`` metrics (hits / misses / evictions / resident bytes),
so cache tuning is a measurement, not a guess (docs/SERVING.md).

A tile larger than the whole budget is served pass-through: it still
counts as a miss and is handed to the caller, but is never admitted
(``serve.cache.oversize`` counts these), so one huge tile cannot flush
the working set.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["BlockCache", "DEFAULT_CACHE_BYTES"]

#: Default byte budget (64 MiB): thousands of 128 x 128 float64 tiles.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024


class BlockCache:
    """An LRU mapping of block keys to arrays under a byte budget."""

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES, metrics=None):
        if not isinstance(capacity_bytes, int) or isinstance(capacity_bytes, bool):
            raise ConfigurationError(
                f"cache capacity must be an int, got {capacity_bytes!r}"
            )
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"cache capacity must be > 0 bytes, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0
        self._metrics = metrics

    # -- core -------------------------------------------------------------
    def get(self, key: Hashable, loader: Callable[[], np.ndarray]) -> np.ndarray:
        """The cached array for ``key``, calling ``loader`` on a miss."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if self._metrics is not None:
                self._metrics.counter("serve.cache.hits").inc()
            return entry
        self.misses += 1
        if self._metrics is not None:
            self._metrics.counter("serve.cache.misses").inc()
        data = loader()
        self._admit(key, data)
        return data

    def _admit(self, key: Hashable, data: np.ndarray) -> None:
        nbytes = int(data.nbytes)
        if nbytes > self.capacity_bytes:
            self.oversize += 1
            if self._metrics is not None:
                self._metrics.counter("serve.cache.oversize").inc()
            return
        while self._bytes + nbytes > self.capacity_bytes and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= int(evicted.nbytes)
            self.evictions += 1
            if self._metrics is not None:
                self._metrics.counter("serve.cache.evictions").inc()
        self._entries[key] = data
        self._bytes += nbytes
        if self._metrics is not None:
            self._metrics.gauge("serve.cache.bytes").set(self._bytes)
            self._metrics.gauge("serve.cache.blocks").set(len(self._entries))

    def invalidate(self, key: Hashable) -> bool:
        """Drop one key (after a block rewrite); True when it was held."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self._bytes -= int(entry.nbytes)
        if self._metrics is not None:
            self._metrics.gauge("serve.cache.bytes").set(self._bytes)
            self._metrics.gauge("serve.cache.blocks").set(len(self._entries))
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        if self._metrics is not None:
            self._metrics.gauge("serve.cache.bytes").set(0)
            self._metrics.gauge("serve.cache.blocks").set(0)

    # -- introspection ----------------------------------------------------
    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "oversize": self.oversize,
            "hit_rate": self.hit_rate,
            "resident_bytes": self._bytes,
            "resident_blocks": len(self._entries),
            "capacity_bytes": self.capacity_bytes,
        }
