"""Frozen configuration of one query server: :class:`ServeConfig`.

The serving sibling of :class:`~repro.api.SolveConfig`, with the same
contract: construct once, derive variations with :meth:`replace`, and
the same **explicit argument > environment variable > built-in
default** precedence for environment-configurable knobs:

* ``ServeConfig(cache_bytes=...)`` beats ``$REPRO_SERVE_CACHE_BYTES``
  beats the 64 MiB default;
* ``ServeConfig(kernel_backend=...)`` beats ``$REPRO_SRGEMM_BACKEND``
  beats ``"reference"`` (used by the incremental patch / re-solve
  path, never by reads).

Observability attaches through the same shared
:class:`~repro.obs.sinks.ObsSinks` as ``SolveConfig`` - one validation
path, one ``SinkError`` exit code (12) - and arms the ``serve.*``
metric family (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import ConfigurationError
from ..obs.sinks import ObsSinks
from .cache import DEFAULT_CACHE_BYTES

__all__ = ["ServeConfig", "ENV_CACHE_BYTES"]

#: Environment variable sizing the block cache (bytes).
ENV_CACHE_BYTES = "REPRO_SERVE_CACHE_BYTES"


@dataclass(frozen=True)
class ServeConfig:
    """Frozen configuration of one :class:`~repro.serve.QueryServer`."""

    # -- cache ------------------------------------------------------------
    #: Block-cache byte budget; None defers to
    #: ``$REPRO_SERVE_CACHE_BYTES`` then 64 MiB.
    cache_bytes: Optional[int] = None

    # -- reads ------------------------------------------------------------
    #: Memory-map block files (out-of-core reads) instead of
    #: materializing them eagerly.
    mmap: bool = True
    #: Verify each block's CRC32 on its first load; a mismatch refuses
    #: the block (:class:`~repro.errors.ArtifactError`, exit 17).
    verify_blocks: bool = True

    # -- queries ----------------------------------------------------------
    #: Pairs answered per :meth:`~repro.serve.BatchQuery.poll` step of
    #: an async batch.
    batch_chunk: int = 4096

    # -- incremental updates / re-solve -----------------------------------
    #: SrGemm kernel backend for the patch path and scheduled
    #: re-solves; None defers to ``$REPRO_SRGEMM_BACKEND``.
    kernel_backend: Optional[str] = None

    # -- observability ----------------------------------------------------
    obs: ObsSinks = field(default_factory=ObsSinks)

    def __post_init__(self):
        if self.cache_bytes is not None:
            if isinstance(self.cache_bytes, bool) or not isinstance(self.cache_bytes, int):
                raise ConfigurationError(
                    f"cache_bytes must be an int, got {self.cache_bytes!r}"
                )
            if self.cache_bytes <= 0:
                raise ConfigurationError(
                    f"cache_bytes must be > 0, got {self.cache_bytes}"
                )
        if not isinstance(self.batch_chunk, int) or isinstance(self.batch_chunk, bool) \
                or self.batch_chunk <= 0:
            raise ConfigurationError(
                f"batch_chunk must be a positive int, got {self.batch_chunk!r}"
            )

    def replace(self, **changes) -> "ServeConfig":
        """A copy with the given fields replaced."""
        try:
            return dataclasses.replace(self, **changes)
        except TypeError as exc:
            raise ConfigurationError(f"unknown ServeConfig field: {exc}") from None

    @property
    def effective_cache_bytes(self) -> int:
        """The cache budget after applying env/default precedence (the
        engine applies the same rule when ``cache_bytes`` is None)."""
        if self.cache_bytes is not None:
            return self.cache_bytes
        return _env_cache_bytes(os.environ)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None, **fields
    ) -> "ServeConfig":
        """Build a config with the environment layer materialized.

        Precedence per knob: **explicit field > environment variable >
        default**, mirroring :meth:`repro.SolveConfig.from_env`.
        ``environ`` defaults to ``os.environ`` (injectable for tests).
        """
        from ..semiring.backends import ENV_BACKEND

        env = os.environ if environ is None else environ
        config = cls(**fields)
        if config.cache_bytes is None and env.get(ENV_CACHE_BYTES):
            config = config.replace(cache_bytes=_env_cache_bytes(env))
        if config.kernel_backend is None:
            backend = env.get(ENV_BACKEND)
            if backend:
                config = config.replace(kernel_backend=backend)
        return config


def _env_cache_bytes(env: Mapping[str, str]) -> int:
    raw = env.get(ENV_CACHE_BYTES)
    if not raw:
        return DEFAULT_CACHE_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"${ENV_CACHE_BYTES} must be an integer byte count, got {raw!r}"
        ) from None
    if value <= 0:
        raise ConfigurationError(
            f"${ENV_CACHE_BYTES} must be > 0, got {value}"
        )
    return value
