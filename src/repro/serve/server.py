"""The query server: one artifact + one cache + one public surface.

``repro.serve(artifact_or_result)`` builds a :class:`QueryServer` -
the serving sibling of ``repro.solve(...) -> ApspResult``:

* reads: :meth:`~QueryServer.distance`, :meth:`~QueryServer.batch`,
  :meth:`~QueryServer.k_nearest`, :meth:`~QueryServer.submatrix`, and
  the ``submit()``-consistent async :meth:`~QueryServer.submit_batch`;
* writes: :meth:`~QueryServer.update_edge` /
  :meth:`~QueryServer.batch_update` through the incremental patch path
  (only for artifacts saved with their graph);
* observability: ``serve.*`` metrics when the config's
  :class:`~repro.obs.sinks.ObsSinks` is armed, written to
  ``metrics_out`` on :meth:`~QueryServer.close`.

The server is a context manager; closing flushes the artifact manifest
(after incremental rewrites) and the metrics sink.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

import numpy as np

from ..errors import ConfigurationError
from .artifact import Artifact, MemoryArtifact, load_artifact
from .cache import BlockCache
from .config import ServeConfig
from .incremental import ArtifactPatcher
from .query import BatchQuery, QueryEngine

__all__ = ["QueryServer", "serve"]


class QueryServer:
    """Point/batch/k-nearest/submatrix queries over one solve artifact."""

    def __init__(self, artifact, config: Optional[ServeConfig] = None, *,
                 scheduler=None):
        if config is None:
            config = ServeConfig()
        if not isinstance(config, ServeConfig):
            raise ConfigurationError(
                f"config must be a ServeConfig, got {type(config).__name__}"
            )
        config.obs.validate()
        self.artifact = artifact
        self.config = config
        self.metrics = None
        if config.obs.enabled:
            from ..obs.metrics import MetricsRegistry

            self.metrics = MetricsRegistry()
            self.metrics.label("serve.artifact", str(artifact.path))
            self.metrics.label("serve.dtype", artifact.dtype.name)
            self.metrics.gauge("serve.n").set(artifact.n)
            self.metrics.gauge("serve.block_size").set(artifact.block_size)
        self.cache = BlockCache(config.effective_cache_bytes, metrics=self.metrics)
        self.engine = QueryEngine(
            artifact,
            self.cache,
            mmap=config.mmap,
            verify=config.verify_blocks,
            metrics=self.metrics,
        )
        self.patcher = ArtifactPatcher(
            artifact,
            self.engine,
            metrics=self.metrics,
            kernel_backend=config.kernel_backend,
            scheduler=scheduler,
        )
        self._closed = False

    # -- artifact passthroughs --------------------------------------------
    @property
    def n(self) -> int:
        return self.artifact.n

    @property
    def dtype(self) -> np.dtype:
        return self.artifact.dtype

    @property
    def block_size(self) -> int:
        return self.artifact.block_size

    @property
    def certificate(self) -> Optional[dict]:
        return self.artifact.certificate

    # -- reads ------------------------------------------------------------
    def distance(self, s: int, t: int) -> float:
        """The shortest-path distance d(s, t)."""
        self._check_open()
        return self.engine.distance(s, t)

    def batch(self, pairs) -> np.ndarray:
        """Distances for an (m, 2) batch of (source, target) pairs."""
        self._check_open()
        return self.engine.batch(pairs)

    def submit_batch(self, pairs) -> BatchQuery:
        """Async batch: returns a poll/wait/result/await handle
        (consistent with :func:`repro.submit`)."""
        self._check_open()
        return BatchQuery(self.engine, pairs, self.config.batch_chunk)

    def k_nearest(self, s: int, k: int) -> list[tuple[int, float]]:
        """The k nearest reachable vertices to ``s``; ties break by
        vertex id."""
        self._check_open()
        return self.engine.k_nearest(s, k)

    def submatrix(self, rows, cols) -> np.ndarray:
        """The dense len(rows) x len(cols) distance submatrix."""
        self._check_open()
        return self.engine.submatrix(rows, cols)

    # -- incremental updates ----------------------------------------------
    def update_edge(self, u: int, v: int, weight: float) -> bool:
        """Set edge (u, v) to ``weight``; True when the O(n²) patch
        sufficed, False when a re-solve was scheduled (see
        docs/SERVING.md on the economics)."""
        self._check_open()
        return self.patcher.update_edge(u, v, weight)

    def insert_edge(self, u: int, v: int, weight: float) -> bool:
        self._check_open()
        return self.patcher.insert_edge(u, v, weight)

    def remove_edge(self, u: int, v: int) -> bool:
        self._check_open()
        return self.patcher.remove_edge(u, v)

    def batch_update(self, updates) -> int:
        self._check_open()
        return self.patcher.batch_update(updates)

    # -- introspection ----------------------------------------------------
    def cache_stats(self) -> dict:
        return self.cache.stats()

    def stats(self) -> dict:
        """One dict of everything measurable about this server."""
        return {
            "n": self.n,
            "dtype": self.dtype.name,
            "block_size": self.block_size,
            "cache": self.cache_stats(),
            "incremental": {
                "fast_updates": self.patcher.fast_updates,
                "recomputes": self.patcher.recomputes,
                "dirty_blocks": self.patcher.dirty_blocks,
            },
        }

    def describe(self) -> str:
        return self.artifact.describe()

    # -- lifecycle --------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ConfigurationError("query server is closed")

    def close(self) -> None:
        """Flush the artifact manifest and write the metrics sink."""
        if self._closed:
            return
        self.artifact.flush()
        if self.metrics is not None and self.config.obs.metrics_out is not None:
            payload = {"serve": self.stats()}
            payload.update(self.metrics.as_dict())
            with open(self.config.obs.metrics_out, "w") as fh:
                json.dump(payload, fh, indent=2)
        self._closed = True

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve(source: Any, config: Optional[ServeConfig] = None, *,
          scheduler=None, graph=None, block_size=None, **overrides) -> QueryServer:
    """Open a :class:`QueryServer` over a solve - the public serving
    entry point (also callable as ``repro.serve(...)``).

    ``source`` may be:

    * a path to an artifact directory (:func:`repro.serve.save_artifact`
      / :meth:`~repro.core.driver.ApspResult.save`) - out-of-core,
      memory-mapped reads;
    * an :class:`~repro.serve.Artifact` already loaded;
    * an :class:`~repro.core.driver.ApspResult` or bare distance
      matrix - served from memory, no disk involved (``graph=`` /
      ``block_size=`` apply to this form).

    Keyword overrides derive the config
    (:meth:`ServeConfig.replace`)::

        server = repro.serve("runs/road-net.apsp", cache_bytes=1 << 30)
        d = server.distance(4, 2048)

    ``scheduler`` optionally names the shared
    :class:`~repro.sched.ClusterScheduler` that invalidating edge
    updates re-solve on (a private one is built on demand otherwise).
    """
    if config is None:
        config = ServeConfig()
    if not isinstance(config, ServeConfig):
        raise ConfigurationError(
            f"config must be a ServeConfig, got {type(config).__name__}"
        )
    if overrides:
        config = config.replace(**overrides)

    if isinstance(source, (Artifact, MemoryArtifact)):
        artifact = source
    elif isinstance(source, (str, Path)):
        artifact = load_artifact(source)
    elif hasattr(source, "dist") and hasattr(source, "report"):  # ApspResult
        from .artifact import _solve_header_from

        dist = source.dist
        if dist is None:
            raise ConfigurationError(
                "result holds no distance matrix (solve with collect=True)"
            )
        artifact = MemoryArtifact(
            dist,
            block_size=block_size,
            graph=graph,
            certificate=source.certificate,
            solve=_solve_header_from(source),
        )
    elif isinstance(source, np.ndarray):
        artifact = MemoryArtifact(source, block_size=block_size, graph=graph)
    else:
        raise ConfigurationError(
            "serve() wants an artifact path, an Artifact, an ApspResult, or a "
            f"distance matrix; got {type(source).__name__}"
        )
    return QueryServer(artifact, config, scheduler=scheduler)
