"""The block-cached query engine: point, batch, k-nearest, submatrix.

Every read decomposes into tiles of the artifact and goes through the
byte-budgeted :class:`~repro.serve.cache.BlockCache`, so a warm point
query is a cache hit plus one scalar index - no solve, no full-matrix
materialization.  Batches are answered tile-by-tile (pairs grouped by
the block they land in), k-nearest scans one block row, and submatrix
extraction touches exactly the tiles covering the requested rows x
columns.

:class:`BatchQuery` is the async form, ``submit()``-consistent with
:class:`~repro.sched.JobHandle`: ``poll()`` advances one configured
chunk of pairs, ``wait()`` drives to completion, ``result()`` returns
the distance vector (re-raising any failure), and the handle is
awaitable.  Progress is cooperative, single-threaded, and
deterministic - the same design as the simulated scheduler.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import QueryError

__all__ = ["QueryEngine", "BatchQuery"]

PairLike = Union[Tuple[int, int], Sequence[int]]


def _as_index_array(values, n: int, what: str) -> np.ndarray:
    """Validate a 1-D collection of vertex indices (QueryError on any
    non-integral or out-of-range entry)."""
    arr = np.asarray(values)
    if arr.size == 0:
        raise QueryError(f"{what} must name at least one vertex")
    if arr.ndim != 1:
        raise QueryError(f"{what} must be one-dimensional, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise QueryError(f"{what} must hold integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64)
    bad = (arr < 0) | (arr >= n)
    if bad.any():
        raise QueryError(
            f"{what} contains vertex {int(arr[bad][0])} outside [0, {n})"
        )
    return arr


class QueryEngine:
    """Tile-decomposed reads over one artifact through one cache."""

    def __init__(self, artifact, cache, *, mmap: bool = True,
                 verify: bool = True, metrics=None):
        self.artifact = artifact
        self.cache = cache
        self.mmap = mmap
        self.verify = verify
        self.metrics = metrics
        self.n = artifact.n
        self.block_size = artifact.block_size
        self.nb = artifact.nb

    # -- tile access ------------------------------------------------------
    def block(self, bi: int, bj: int) -> np.ndarray:
        """Tile (bi, bj) through the cache (materialized on admit, so
        the byte budget measures real resident memory, not mmap
        fictions)."""
        return self.cache.get((bi, bj), lambda: self._load(bi, bj))

    def _load(self, bi: int, bj: int) -> np.ndarray:
        data = self.artifact.load_block(bi, bj, mmap=self.mmap, verify=self.verify)
        if isinstance(data, np.memmap):
            data = np.array(data)  # lift out-of-core pages into the cache tier
            data.setflags(write=False)
        return data

    def invalidate(self, bi: int, bj: int) -> None:
        self.cache.invalidate((bi, bj))

    # -- scalar / vector reads --------------------------------------------
    def _check_vertex(self, v, what: str) -> int:
        if isinstance(v, bool) or not isinstance(v, (int, np.integer)):
            raise QueryError(f"{what} must be an integer vertex id, got {v!r}")
        v = int(v)
        if not (0 <= v < self.n):
            raise QueryError(f"{what} {v} outside vertex range [0, {self.n})")
        return v

    def distance(self, s, t) -> float:
        """d(s, t): one tile, one scalar."""
        s = self._check_vertex(s, "source")
        t = self._check_vertex(t, "target")
        b = self.block_size
        tile = self.block(s // b, t // b)
        if self.metrics is not None:
            self.metrics.counter("serve.queries.point").inc()
        return float(tile[s - (s // b) * b, t - (t // b) * b])

    def row(self, s) -> np.ndarray:
        """d(s, :) assembled from one block row."""
        s = self._check_vertex(s, "source")
        b = self.block_size
        bi, local = s // b, s % b
        return np.concatenate(
            [np.asarray(self.block(bi, bj)[local, :]) for bj in range(self.nb)]
        )

    def col(self, t) -> np.ndarray:
        """d(:, t) assembled from one block column."""
        t = self._check_vertex(t, "target")
        b = self.block_size
        bj, local = t // b, t % b
        return np.concatenate(
            [np.asarray(self.block(bi, bj)[:, local]) for bi in range(self.nb)]
        )

    def batch(self, pairs) -> np.ndarray:
        """Distances for an (m, 2) batch of (source, target) pairs,
        grouped by tile so each touched block loads once."""
        arr = np.asarray(pairs)
        if arr.ndim == 1 and arr.size == 2:
            arr = arr.reshape(1, 2)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.size == 0:
            raise QueryError(
                f"batch must be an (m, 2) array of pairs, got shape {arr.shape}"
            )
        src = _as_index_array(arr[:, 0], self.n, "batch sources")
        dst = _as_index_array(arr[:, 1], self.n, "batch targets")
        out = np.empty(len(src), dtype=self.artifact.dtype)
        self._gather(src, dst, out)
        if self.metrics is not None:
            self.metrics.counter("serve.queries.batch").inc()
            self.metrics.counter("serve.queries.batch_pairs").inc(len(src))
        return out

    def _gather(self, src: np.ndarray, dst: np.ndarray, out: np.ndarray) -> None:
        b = self.block_size
        bi, bj = src // b, dst // b
        block_id = bi * self.nb + bj
        order = np.argsort(block_id, kind="stable")
        sorted_ids = block_id[order]
        starts = np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])
        bounds = np.r_[starts, len(sorted_ids)]
        for a, z in zip(bounds[:-1], bounds[1:]):
            idx = order[a:z]
            tile = self.block(int(bi[idx[0]]), int(bj[idx[0]]))
            out[idx] = tile[src[idx] - bi[idx] * b, dst[idx] - bj[idx] * b]

    def k_nearest(self, s, k: int) -> list[tuple[int, float]]:
        """The k nearest vertices to ``s`` (excluding ``s`` itself and
        unreachable vertices), as ``(vertex, distance)`` sorted by
        distance with ties broken by vertex id - deterministic for any
        tie structure.  Returns fewer than k when fewer are reachable."""
        s = self._check_vertex(s, "source")
        if isinstance(k, bool) or not isinstance(k, (int, np.integer)) or int(k) < 1:
            raise QueryError(f"k must be a positive integer, got {k!r}")
        k = int(k)
        vals = self.row(s).astype(np.float64, copy=True)
        vals[s] = np.inf  # never "nearest" to itself
        order = np.lexsort((np.arange(self.n), vals))  # distance, then id
        out = []
        for v in order[: k]:
            if not np.isfinite(vals[v]):
                break
            out.append((int(v), float(vals[v])))
        if self.metrics is not None:
            self.metrics.counter("serve.queries.k_nearest").inc()
        return out

    def submatrix(self, rows, cols) -> np.ndarray:
        """The dense ``len(rows) x len(cols)`` distance submatrix,
        assembled from exactly the tiles covering it."""
        rows = _as_index_array(rows, self.n, "rows")
        cols = _as_index_array(cols, self.n, "cols")
        out = np.empty((len(rows), len(cols)), dtype=self.artifact.dtype)
        b = self.block_size
        row_blocks, col_blocks = rows // b, cols // b
        for bi in np.unique(row_blocks):
            ri = np.flatnonzero(row_blocks == bi)
            for bj in np.unique(col_blocks):
                cj = np.flatnonzero(col_blocks == bj)
                tile = self.block(int(bi), int(bj))
                out[np.ix_(ri, cj)] = tile[
                    np.ix_(rows[ri] - bi * b, cols[cj] - bj * b)
                ]
        if self.metrics is not None:
            self.metrics.counter("serve.queries.submatrix").inc()
        return out


class BatchQuery:
    """An asynchronously answered batch: poll / wait / result / await.

    Cooperative and deterministic: each :meth:`poll` answers up to
    ``chunk`` pairs through the engine (cache-grouped), so callers can
    interleave many in-flight batches without threads - the same
    single-driver model as :class:`~repro.sched.JobHandle`.
    """

    def __init__(self, engine: QueryEngine, pairs, chunk: int):
        arr = np.asarray(pairs)
        if arr.ndim == 1 and arr.size == 2:
            arr = arr.reshape(1, 2)
        if arr.ndim != 2 or arr.shape[1] != 2 or arr.size == 0:
            raise QueryError(
                f"batch must be an (m, 2) array of pairs, got shape {arr.shape}"
            )
        self._engine = engine
        self._src = _as_index_array(arr[:, 0], engine.n, "batch sources")
        self._dst = _as_index_array(arr[:, 1], engine.n, "batch targets")
        self._out = np.empty(len(self._src), dtype=engine.artifact.dtype)
        self._chunk = int(chunk)
        self._cursor = 0
        self._error: Optional[BaseException] = None
        self.status = "pending"

    def __len__(self) -> int:
        return len(self._src)

    @property
    def answered(self) -> int:
        return self._cursor

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed")

    def poll(self) -> str:
        """Answer up to one chunk of pairs; returns the new status."""
        if self.done:
            return self.status
        self.status = "running"
        stop = min(len(self._src), self._cursor + self._chunk)
        try:
            self._engine._gather(
                self._src[self._cursor : stop],
                self._dst[self._cursor : stop],
                self._out[self._cursor : stop],
            )
        except BaseException as exc:
            self._error = exc
            self.status = "failed"
            return self.status
        self._cursor = stop
        if self._cursor >= len(self._src):
            self.status = "done"
            if self._engine.metrics is not None:
                self._engine.metrics.counter("serve.queries.batch").inc()
                self._engine.metrics.counter("serve.queries.batch_pairs").inc(
                    len(self._src)
                )
        return self.status

    def wait(self) -> str:
        """Drive the batch to a terminal state."""
        while not self.done:
            self.poll()
        return self.status

    def result(self) -> np.ndarray:
        """The distance vector; drives the batch if needed and
        re-raises its failure."""
        self.wait()
        if self._error is not None:
            raise self._error
        return self._out

    def __await__(self):
        self.wait()
        return self.result()
        yield  # pragma: no cover - makes __await__ a generator
