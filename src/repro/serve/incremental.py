"""Incremental artifact patching: edge updates without a re-solve.

The block-at-rest form of :class:`repro.extensions.IncrementalApsp`
(the paper's knowledge-graph future-work item), with the same update
economics:

* a weight *decrease* / insertion is absorbed by one rank-1 (min,+)
  outer product - ``dist' = dist ⊕ dist[:, u] ⊗ (c ⊗ dist[v, :])`` -
  applied tile by tile, and **only dirtied tiles are rewritten**
  (content-addressing makes an unchanged tile a no-op);
* a weight *increase* / deletion first checks whether any shortest
  path actually used the edge (one read-only sweep); if none did the
  update is free, otherwise the patch is *invalid* and a full re-solve
  is scheduled through the existing
  :class:`~repro.sched.ClusterScheduler` - the artifact's own solve
  header (variant, cluster shape) configures the job.

Counters surface as ``serve.incremental.*`` metrics (fast updates,
recomputes, dirtied/rewritten tiles) so the economics are observable,
and the patcher's answers are pinned bit-exact against
:class:`~repro.extensions.IncrementalApsp` by ``tests/test_serve.py``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..errors import NegativeCycleError, QueryError
from ..semiring.minplus import INF

__all__ = ["ArtifactPatcher"]


class ArtifactPatcher:
    """Applies edge updates to an artifact through a query engine."""

    def __init__(self, artifact, engine, *, metrics=None,
                 kernel_backend: Optional[str] = None, scheduler=None,
                 scheduler_factory=None):
        self.artifact = artifact
        self.engine = engine
        self.metrics = metrics
        self.kernel_backend = kernel_backend
        self._scheduler = scheduler
        self._scheduler_factory = scheduler_factory
        self.fast_updates = 0
        self.recomputes = 0
        self.dirty_blocks = 0

    # -- public update surface --------------------------------------------
    def update_edge(self, u: int, v: int, weight: float) -> bool:
        """Set the weight of edge (u, v); True when the O(n²) tile
        patch sufficed, False when a re-solve was scheduled."""
        u = self.engine._check_vertex(u, "edge source")
        v = self.engine._check_vertex(v, "edge target")
        weight = self._check_weight(weight)
        graph = self.artifact.load_graph()
        if u == v:
            if weight < 0:
                raise NegativeCycleError(u, weight)
            self._count_fast()
            return True  # self-loops never shorten simple paths
        old = float(graph[u, v])
        graph[u, v] = weight
        if weight <= old:
            self._absorb_decrease(u, v, weight)
            self._count_fast()
            self._persist_graph(graph)
            return True
        if not self._edge_on_some_path(u, v, old):
            self._count_fast()
            self._persist_graph(graph)
            return True
        self._recompute(graph)
        return False

    def insert_edge(self, u: int, v: int, weight: float) -> bool:
        """Add (or cheapen) an edge; always the fast path."""
        graph = self.artifact.load_graph()
        u = self.engine._check_vertex(u, "edge source")
        v = self.engine._check_vertex(v, "edge target")
        return self.update_edge(u, v, min(float(weight), float(graph[u, v])))

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete an edge (set to +inf); re-solves if it carried any
        shortest path."""
        return self.update_edge(u, v, INF)

    def batch_update(self, updates: Iterable[tuple[int, int, float]]) -> int:
        """Apply many edge updates, coalescing re-solves: decreases are
        absorbed immediately, increases are staged, and at most *one*
        re-solve runs at the end.  Returns the number of updates that
        needed it (0 = everything took the fast path)."""
        graph = self.artifact.load_graph()
        expensive = 0
        staged = False
        for u, v, weight in updates:
            u = self.engine._check_vertex(u, "edge source")
            v = self.engine._check_vertex(v, "edge target")
            weight = self._check_weight(weight)
            if u == v:
                if weight < 0:
                    raise NegativeCycleError(u, weight)
                continue
            old = float(graph[u, v])
            graph[u, v] = weight
            if weight <= old:
                self._absorb_decrease(u, v, weight)
                self._count_fast()
            elif self._edge_on_some_path(u, v, old):
                staged = True
                expensive += 1
            else:
                self._count_fast()
        if staged:
            self._recompute(graph)
        else:
            self._persist_graph(graph)
        return expensive

    # -- internals --------------------------------------------------------
    def _check_weight(self, weight) -> float:
        try:
            weight = float(weight)
        except (TypeError, ValueError):
            raise QueryError(f"edge weight must be a number, got {weight!r}") from None
        if np.isnan(weight) or weight == -np.inf:
            raise QueryError(f"edge weight must not be NaN or -inf, got {weight}")
        return weight

    def _count_fast(self) -> None:
        self.fast_updates += 1
        if self.metrics is not None:
            self.metrics.counter("serve.incremental.fast_updates").inc()

    def _absorb_decrease(self, u: int, v: int, c: float) -> None:
        """dist ← dist ⊕ (dist[:, u] + c + dist[v, :]), tile by tile,
        rewriting only the tiles the cheaper edge actually changed."""
        art = self.artifact
        col_u = self.engine.col(u).astype(art.dtype, copy=True)  # pre-update snapshot
        row_v = self.engine.row(v).astype(art.dtype, copy=True)
        shifted = (np.asarray(c, dtype=art.dtype) + row_v).astype(art.dtype)
        b = art.block_size
        dirtied = 0
        for bi, bj in art.block_keys():
            si = slice(bi * b, min(art.n, (bi + 1) * b))
            sj = slice(bj * b, min(art.n, (bj + 1) * b))
            candidate = col_u[si, None] + shifted[None, sj]
            tile = self.engine.block(bi, bj)
            if not np.any(candidate < tile):
                continue
            patched = np.minimum(tile, candidate).astype(art.dtype)
            art.rewrite_block(bi, bj, patched)
            self.engine.invalidate(bi, bj)
            dirtied += 1
            if bi == bj:
                local = np.diagonal(patched)
                neg = local < 0
                if neg.any():
                    w = bi * b + int(np.flatnonzero(neg)[0])
                    art.flush()
                    raise NegativeCycleError(w, float(local[neg][0]))
        art.flush()
        self.dirty_blocks += dirtied
        if self.metrics is not None and dirtied:
            self.metrics.counter("serve.incremental.dirty_blocks").inc(dirtied)

    def _edge_on_some_path(self, u: int, v: int, old_weight: float) -> bool:
        """Did any pair's shortest distance equal a route through
        (u, v) at its old weight?  Read-only tile sweep."""
        if not np.isfinite(old_weight):
            return False
        art = self.artifact
        col_u = self.engine.col(u).astype(np.float64)
        row_v = self.engine.row(v).astype(np.float64)
        shifted = old_weight + row_v
        b = art.block_size
        for bi, bj in art.block_keys():
            si = slice(bi * b, min(art.n, (bi + 1) * b))
            sj = slice(bj * b, min(art.n, (bj + 1) * b))
            tile = np.asarray(self.engine.block(bi, bj), dtype=np.float64)
            via = col_u[si, None] + shifted[None, sj]
            if bool(np.any(np.isclose(via, tile) & np.isfinite(tile))):
                return True
        return False

    def _persist_graph(self, graph: np.ndarray) -> None:
        self.artifact.rewrite_graph(graph)

    def _recompute(self, graph: np.ndarray) -> None:
        """The patch is invalid: schedule a fresh solve of the updated
        graph through the cluster scheduler and rewrite every changed
        tile from its result."""
        dist = self._solve(graph)
        art = self.artifact
        dist = np.asarray(dist, dtype=art.dtype)
        b = art.block_size
        for bi, bj in art.block_keys():
            tile = np.ascontiguousarray(
                dist[bi * b : min(art.n, (bi + 1) * b),
                     bj * b : min(art.n, (bj + 1) * b)]
            )
            art.rewrite_block(bi, bj, tile)
            self.engine.invalidate(bi, bj)
        self._persist_graph(graph)
        art.flush()
        self.recomputes += 1
        if self.metrics is not None:
            self.metrics.counter("serve.incremental.recomputes").inc()

    def _solve(self, graph: np.ndarray) -> np.ndarray:
        from ..api import SolveConfig

        header = self.artifact.solve_header
        n = graph.shape[0]
        fields = {"collect": True}
        if header.get("variant"):
            fields["variant"] = header["variant"]
        if header.get("machine"):
            fields["machine"] = header["machine"]
        if header.get("n_nodes"):
            fields["n_nodes"] = int(header["n_nodes"])
            if header.get("ranks"):
                fields["ranks_per_node"] = max(
                    1, int(header["ranks"]) // int(header["n_nodes"])
                )
        solve_b = header.get("block_size")
        if solve_b:
            fields["block_size"] = min(int(solve_b), n)
        if self.kernel_backend is not None:
            fields["kernel_backend"] = self.kernel_backend
        config = SolveConfig(**fields)
        scheduler = self._resolve_scheduler(config)
        handle = scheduler.submit(graph, config, name="serve-resolve")
        return handle.result().dist

    def _resolve_scheduler(self, config):
        if self._scheduler is None:
            if self._scheduler_factory is not None:
                self._scheduler = self._scheduler_factory(config)
            else:
                from ..sched import ClusterScheduler

                self._scheduler = ClusterScheduler(
                    machine=config.machine, n_nodes=config.n_nodes
                )
        return self._scheduler
