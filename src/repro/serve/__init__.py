"""Serving layer: solve once, answer millions of queries.

The north-star workload is not "run one solve" but "answer distance
queries at interactive latency".  This package closes that gap:

* :mod:`~repro.serve.artifact` - persistent solve artifacts: the
  distance matrix at rest as a content-addressed block directory with
  per-block CRC32, memory-mapped out-of-core reads, and the run
  certificate / solve provenance in the manifest;
* :mod:`~repro.serve.cache` - a byte-budgeted LRU block cache
  (``serve.cache.*`` metrics);
* :mod:`~repro.serve.query` - the query engine: ``distance``,
  ``batch``, ``k_nearest``, ``submatrix``, async
  :class:`~repro.serve.query.BatchQuery`;
* :mod:`~repro.serve.incremental` - edge updates that rewrite only
  dirtied tiles, escalating to a scheduled re-solve when the patch
  would be invalid;
* :mod:`~repro.serve.config` - the frozen :class:`ServeConfig`
  (``from_env`` with explicit > env > default precedence);
* :mod:`~repro.serve.server` - :class:`QueryServer`, the public
  surface.

The package itself is callable - ``repro.serve(artifact_or_result)``
*is* the entry point::

    import repro
    result = repro.solve(w, repro.SolveConfig(variant="async"))
    result.save("runs/road.apsp", graph=w)

    server = repro.serve("runs/road.apsp", cache_bytes=1 << 28)
    d = server.distance(3, 99)
    top = server.k_nearest(3, k=10)
    handle = server.submit_batch(pairs)      # poll/wait/result/await
    server.update_edge(4, 7, 0.25)           # patches dirtied tiles only

See docs/SERVING.md for the artifact format, cache tuning, and the
incremental-update economics.
"""

from __future__ import annotations

import sys
import types

from .artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    Artifact,
    MemoryArtifact,
    load_artifact,
    save_artifact,
)
from .cache import DEFAULT_CACHE_BYTES, BlockCache
from .config import ENV_CACHE_BYTES, ServeConfig
from .incremental import ArtifactPatcher
from .query import BatchQuery, QueryEngine
from .server import QueryServer, serve

__all__ = [
    "serve",
    "QueryServer",
    "ServeConfig",
    "Artifact",
    "MemoryArtifact",
    "save_artifact",
    "load_artifact",
    "BlockCache",
    "QueryEngine",
    "BatchQuery",
    "ArtifactPatcher",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "DEFAULT_CACHE_BYTES",
    "ENV_CACHE_BYTES",
]


class _CallableServeModule(types.ModuleType):
    """Makes ``repro.serve(...)`` the function and ``repro.serve.X``
    the module, so the public verb and the implementation namespace
    share one name (the same surface the ISSUE's API sketch shows)."""

    def __call__(self, source, config=None, **kwargs):
        return serve(source, config, **kwargs)


sys.modules[__name__].__class__ = _CallableServeModule
