"""Persistent solve artifacts: a distance matrix at rest, in blocks.

An *artifact* is a directory holding one solved APSP instance so that
point queries never pay for a solve again:

``manifest.json``
    The header: format version, matrix shape/dtype/block size, the run
    certificate and solve provenance carried over from the
    :class:`~repro.core.driver.ApspResult`, and the block table - one
    ``[bi, bj, sha256, crc32, rows, cols]`` row per tile.
``blocks/<sha256>.blk``
    Raw C-contiguous bytes of one ``b x b`` tile (ragged at the edge),
    *content-addressed*: the filename is the SHA-256 of the bytes, so
    identical tiles (all-infinite regions, symmetric halves) are stored
    once and integrity is checkable offline.
``graph.npz`` (optional)
    The weight matrix the solve consumed, enabling the incremental
    update path (:mod:`repro.serve.incremental`); without it the
    artifact is read-only.

Reads are memory-mapped (``np.memmap``) so a server over a matrix much
larger than RAM touches only the pages a query needs; every block's
CRC32 is verified on its first load and a mismatch *refuses* the block
(:class:`~repro.errors.ArtifactError`, exit code 17) - the store would
rather answer nothing than answer wrong.  Round trips are bit-exact
for every dtype: blocks are raw bytes, never re-encoded.

``save_artifact`` / ``load_artifact`` are the module-level entry
points; :meth:`repro.core.driver.ApspResult.save` is the method-form
sugar.  :class:`MemoryArtifact` adapts an in-memory result to the same
interface so ``repro.serve(result)`` needs no disk at all.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional, Union

import numpy as np

from ..errors import ArtifactError, ConfigurationError

__all__ = [
    "Artifact",
    "MemoryArtifact",
    "save_artifact",
    "load_artifact",
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "MANIFEST_NAME",
]

ARTIFACT_FORMAT = "repro-apsp-artifact"
ARTIFACT_VERSION = 1
MANIFEST_NAME = "manifest.json"
BLOCKS_DIR = "blocks"
GRAPH_NAME = "graph.npz"

PathLike = Union[str, os.PathLike]


def _block_grid(n: int, b: int) -> int:
    return -(-n // b)


def _block_shape(n: int, b: int, bi: int, bj: int) -> tuple[int, int]:
    return (min(b, n - bi * b), min(b, n - bj * b))


def default_artifact_block_size(n: int) -> int:
    """A serving-oriented default tile: large enough that one query's
    block amortizes its read, small enough that a byte-budget cache
    holds many distinct tiles (~128 rows, clamped to the matrix)."""
    return max(1, min(n, 128))


class Artifact:
    """One persisted APSP solve, lazily readable block by block.

    Construct via :func:`load_artifact` / :func:`save_artifact`, not
    directly.  Blocks load as read-only arrays; pass ``mmap=False`` to
    force materialized reads (e.g. when the caller will hold many
    blocks and the OS page cache churns).
    """

    def __init__(self, path: Path, manifest: dict):
        self.path = Path(path)
        self.manifest = manifest
        self.n: int = int(manifest["n"])
        self.dtype = np.dtype(manifest["dtype"])
        self.block_size: int = int(manifest["block_size"])
        self.nb: int = int(manifest["nb"])
        #: (bi, bj) -> {"hash", "crc32", "rows", "cols"}
        self._blocks: dict[tuple[int, int], dict] = {}
        for bi, bj, digest, crc, rows, cols in manifest["blocks"]:
            self._blocks[(int(bi), int(bj))] = {
                "hash": digest,
                "crc32": int(crc),
                "rows": int(rows),
                "cols": int(cols),
            }
        #: Content hashes whose CRC already checked out in this process.
        self._verified: set[str] = set()
        self._graph_cache: Optional[np.ndarray] = None
        self._manifest_dirty = False

    # -- identity ---------------------------------------------------------
    @property
    def content_id(self) -> str:
        """SHA-256 over the ordered block hashes + shape header: two
        artifacts with the same id hold bit-identical distances."""
        h = hashlib.sha256()
        h.update(f"{self.n}:{self.dtype.str}:{self.block_size}:".encode())
        for key in sorted(self._blocks):
            h.update(self._blocks[key]["hash"].encode())
        return h.hexdigest()

    @property
    def certificate(self) -> Optional[dict]:
        return self.manifest.get("certificate")

    @property
    def solve_header(self) -> dict:
        """Provenance of the producing solve (variant, machine, ...)."""
        return dict(self.manifest.get("solve") or {})

    @property
    def has_graph(self) -> bool:
        return (self.path / GRAPH_NAME).exists()

    # -- reads ------------------------------------------------------------
    def block_keys(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._blocks))

    def block_nbytes(self, bi: int, bj: int) -> int:
        entry = self._blocks[(bi, bj)]
        return entry["rows"] * entry["cols"] * self.dtype.itemsize

    def _block_path(self, digest: str) -> Path:
        return self.path / BLOCKS_DIR / f"{digest}.blk"

    def load_block(
        self, bi: int, bj: int, *, mmap: bool = True, verify: bool = True
    ) -> np.ndarray:
        """The (bi, bj) tile as a read-only ``(rows, cols)`` array.

        The first load of each distinct content hash verifies its CRC32
        (and, on mismatch, refuses with :class:`ArtifactError`);
        subsequent loads of the same content skip the scan.
        """
        entry = self._blocks.get((bi, bj))
        if entry is None:
            raise ArtifactError(
                self.path, f"block ({bi}, {bj}) outside the {self.nb}x{self.nb} grid"
            )
        digest = entry["hash"]
        path = self._block_path(digest)
        shape = (entry["rows"], entry["cols"])
        nbytes = shape[0] * shape[1] * self.dtype.itemsize
        try:
            size = path.stat().st_size
        except OSError:
            raise ArtifactError(self.path, f"block file {path.name} is missing") from None
        if size != nbytes:
            raise ArtifactError(
                self.path,
                f"block ({bi}, {bj}) file {path.name} holds {size} bytes, "
                f"expected {nbytes}",
            )
        if mmap:
            data = np.memmap(path, dtype=self.dtype, mode="r", shape=shape)
        else:
            data = np.fromfile(path, dtype=self.dtype).reshape(shape)
            data.setflags(write=False)
        if verify and digest not in self._verified:
            crc = zlib.crc32(data.tobytes())
            if crc != entry["crc32"]:
                raise ArtifactError(
                    self.path,
                    f"block ({bi}, {bj}) failed its CRC32 integrity check "
                    f"(stored {entry['crc32']}, computed {crc}); refusing to serve it",
                )
            self._verified.add(digest)
        return data

    def dist(self) -> np.ndarray:
        """Materialize the full n x n distance matrix (tests, re-solve
        seeding; defeats the point of out-of-core serving otherwise)."""
        out = np.empty((self.n, self.n), dtype=self.dtype)
        b = self.block_size
        for (bi, bj), entry in self._blocks.items():
            out[
                bi * b : bi * b + entry["rows"], bj * b : bj * b + entry["cols"]
            ] = self.load_block(bi, bj, mmap=False)
        return out

    def load_graph(self) -> np.ndarray:
        """The weight matrix the solve consumed (mutable copy, cached)."""
        if self._graph_cache is None:
            path = self.path / GRAPH_NAME
            if not path.exists():
                raise ArtifactError(
                    self.path,
                    "artifact was saved without its graph (save with graph=w "
                    "to enable edge updates)",
                )
            with np.load(path) as data:
                graph = np.array(data["weights"])
            if graph.shape != (self.n, self.n):
                raise ArtifactError(
                    self.path,
                    f"graph payload shape {graph.shape} does not match n={self.n}",
                )
            self._graph_cache = graph
        return self._graph_cache

    # -- writes (incremental patching) ------------------------------------
    def rewrite_block(self, bi: int, bj: int, data: np.ndarray) -> None:
        """Replace tile (bi, bj) with new contents (content-addressed:
        writes one new block file, repoints the manifest row).  The
        manifest itself persists on :meth:`flush`."""
        entry = self._blocks.get((bi, bj))
        if entry is None:
            raise ArtifactError(
                self.path, f"block ({bi}, {bj}) outside the {self.nb}x{self.nb} grid"
            )
        expected = (entry["rows"], entry["cols"])
        if data.shape != expected or data.dtype != self.dtype:
            raise ArtifactError(
                self.path,
                f"rewrite of block ({bi}, {bj}) must be {expected} {self.dtype}, "
                f"got {data.shape} {data.dtype}",
            )
        payload = np.ascontiguousarray(data).tobytes()
        digest = hashlib.sha256(payload).hexdigest()
        if digest == entry["hash"]:
            return
        path = self._block_path(digest)
        if not path.exists():
            _atomic_write_bytes(path, payload)
        entry["hash"] = digest
        entry["crc32"] = zlib.crc32(payload)
        self._verified.add(digest)
        self._manifest_dirty = True

    def rewrite_graph(self, weights: np.ndarray) -> None:
        """Replace the graph payload (after edge updates)."""
        if weights.shape != (self.n, self.n):
            raise ArtifactError(
                self.path, f"graph must be ({self.n}, {self.n}), got {weights.shape}"
            )
        np.savez_compressed(self.path / GRAPH_NAME, weights=weights)
        self._graph_cache = np.array(weights)

    def flush(self) -> None:
        """Persist the manifest (atomically) and drop unreferenced
        block files left behind by rewrites."""
        if not self._manifest_dirty:
            return
        self.manifest["blocks"] = [
            [bi, bj, e["hash"], e["crc32"], e["rows"], e["cols"]]
            for (bi, bj), e in sorted(self._blocks.items())
        ]
        _atomic_write_bytes(
            self.path / MANIFEST_NAME,
            json.dumps(self.manifest, indent=2, sort_keys=True).encode(),
        )
        live = {e["hash"] for e in self._blocks.values()}
        blocks_dir = self.path / BLOCKS_DIR
        for stale in blocks_dir.glob("*.blk"):
            if stale.stem not in live:
                stale.unlink(missing_ok=True)
        self._manifest_dirty = False

    def describe(self) -> str:
        unique = len({e["hash"] for e in self._blocks.values()})
        total = sum(self.block_nbytes(bi, bj) for bi, bj in self._blocks)
        lines = [
            f"artifact {self.path}",
            f"  n={self.n} dtype={self.dtype.name} block_size={self.block_size} "
            f"grid={self.nb}x{self.nb}",
            f"  blocks: {len(self._blocks)} ({unique} unique, {total} logical bytes)",
            f"  graph payload: {'yes' if self.has_graph else 'no'}",
            f"  content id: {self.content_id[:16]}...",
        ]
        solve = self.solve_header
        if solve:
            lines.append(
                "  solved by: "
                + ", ".join(f"{k}={solve[k]}" for k in sorted(solve) if solve[k] is not None)
            )
        if self.certificate is not None:
            lines.append(f"  certificate: {self.certificate}")
        return "\n".join(lines)


class MemoryArtifact:
    """The :class:`Artifact` reading interface over an in-memory
    distance matrix, so ``repro.serve(result)`` works without disk.

    Rewrites mutate the held matrix; :meth:`flush` is a no-op (there is
    nothing at rest to persist).
    """

    path = "<memory>"

    def __init__(
        self,
        dist: np.ndarray,
        *,
        block_size: Optional[int] = None,
        graph: Optional[np.ndarray] = None,
        certificate: Optional[dict] = None,
        solve: Optional[dict] = None,
    ):
        dist = np.asarray(dist)
        if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
            raise ConfigurationError(
                f"distance matrix must be square, got {dist.shape}"
            )
        self._dist = np.array(dist, copy=True)
        self.n = dist.shape[0]
        self.dtype = self._dist.dtype
        self.block_size = int(block_size or default_artifact_block_size(self.n))
        if self.block_size < 1:
            raise ConfigurationError(f"block_size must be >= 1, got {self.block_size}")
        self.nb = _block_grid(self.n, self.block_size)
        self._graph = None if graph is None else np.array(graph, copy=True)
        self._certificate = certificate
        self._solve = dict(solve or {})

    @property
    def certificate(self) -> Optional[dict]:
        return self._certificate

    @property
    def solve_header(self) -> dict:
        return dict(self._solve)

    @property
    def has_graph(self) -> bool:
        return self._graph is not None

    @property
    def content_id(self) -> str:
        h = hashlib.sha256()
        h.update(f"{self.n}:{self.dtype.str}:{self.block_size}:".encode())
        h.update(np.ascontiguousarray(self._dist).tobytes())
        return h.hexdigest()

    def block_keys(self) -> Iterator[tuple[int, int]]:
        return ((bi, bj) for bi in range(self.nb) for bj in range(self.nb))

    def _slices(self, bi: int, bj: int) -> tuple[slice, slice]:
        b = self.block_size
        if not (0 <= bi < self.nb and 0 <= bj < self.nb):
            raise ArtifactError(
                self.path, f"block ({bi}, {bj}) outside the {self.nb}x{self.nb} grid"
            )
        return (
            slice(bi * b, min(self.n, (bi + 1) * b)),
            slice(bj * b, min(self.n, (bj + 1) * b)),
        )

    def block_nbytes(self, bi: int, bj: int) -> int:
        rows, cols = _block_shape(self.n, self.block_size, bi, bj)
        return rows * cols * self.dtype.itemsize

    def load_block(self, bi: int, bj: int, *, mmap: bool = True, verify: bool = True) -> np.ndarray:
        si, sj = self._slices(bi, bj)
        view = self._dist[si, sj]
        view.setflags(write=False)
        return view

    def dist(self) -> np.ndarray:
        return np.array(self._dist, copy=True)

    def load_graph(self) -> np.ndarray:
        if self._graph is None:
            raise ArtifactError(
                self.path,
                "in-memory artifact has no graph (serve with graph=w to "
                "enable edge updates)",
            )
        return self._graph

    def rewrite_block(self, bi: int, bj: int, data: np.ndarray) -> None:
        si, sj = self._slices(bi, bj)
        if data.shape != self._dist[si, sj].shape or data.dtype != self.dtype:
            raise ArtifactError(
                self.path,
                f"rewrite of block ({bi}, {bj}) must be "
                f"{self._dist[si, sj].shape} {self.dtype}, got {data.shape} {data.dtype}",
            )
        self._dist[si, sj] = data

    def rewrite_graph(self, weights: np.ndarray) -> None:
        if weights.shape != (self.n, self.n):
            raise ArtifactError(
                self.path, f"graph must be ({self.n}, {self.n}), got {weights.shape}"
            )
        self._graph = np.array(weights, copy=True)

    def flush(self) -> None:
        pass

    def describe(self) -> str:
        return (
            f"in-memory artifact: n={self.n} dtype={self.dtype.name} "
            f"block_size={self.block_size} grid={self.nb}x{self.nb} "
            f"graph={'yes' if self.has_graph else 'no'}"
        )


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
    os.replace(tmp, path)


def _solve_header_from(result) -> dict:
    report = getattr(result, "report", None)
    if report is None:
        return {}
    return {
        "variant": report.variant,
        "machine": report.machine,
        "n_nodes": report.n_nodes,
        "ranks": report.ranks,
        "block_size": report.block_size,
        "makespan": report.makespan,
    }


def save_artifact(
    source: Any,
    path: PathLike,
    *,
    block_size: Optional[int] = None,
    graph: Optional[np.ndarray] = None,
    certificate: Optional[dict] = None,
    solve: Optional[dict] = None,
    overwrite: bool = False,
) -> Artifact:
    """Persist a solve as a block artifact directory; returns the
    loaded :class:`Artifact`.

    ``source`` is an :class:`~repro.core.driver.ApspResult` (its
    certificate and run provenance ride along automatically) or a bare
    distance matrix.  ``graph`` optionally stores the weight matrix so
    the artifact supports edge updates.  An existing *artifact*
    directory is replaced only with ``overwrite=True``; any other
    existing path is refused.
    """
    dist = getattr(source, "dist", source)
    if dist is None:
        raise ArtifactError(
            path, "result holds no distance matrix (solve with collect=True)"
        )
    dist = np.asarray(dist)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise ArtifactError(path, f"distance matrix must be square, got {dist.shape}")
    if certificate is None:
        certificate = getattr(source, "certificate", None)
    if solve is None:
        solve = _solve_header_from(source)
    n = dist.shape[0]
    b = int(block_size or default_artifact_block_size(n))
    if b < 1:
        raise ArtifactError(path, f"block_size must be >= 1, got {b}")
    if graph is not None:
        graph = np.asarray(graph)
        if graph.shape != (n, n):
            raise ArtifactError(
                path, f"graph must match the distance matrix ({n}, {n}), got {graph.shape}"
            )

    target = Path(path)
    if target.exists():
        if not overwrite:
            raise ArtifactError(path, "path exists (pass overwrite=True to replace)")
        if not (target / MANIFEST_NAME).exists():
            raise ArtifactError(
                path, "refusing to overwrite: existing path is not an artifact"
            )
        import shutil

        shutil.rmtree(target)
    blocks_dir = target / BLOCKS_DIR
    blocks_dir.mkdir(parents=True, exist_ok=True)

    nb = _block_grid(n, b)
    rows_table = []
    for bi in range(nb):
        for bj in range(nb):
            tile = np.ascontiguousarray(
                dist[bi * b : min(n, (bi + 1) * b), bj * b : min(n, (bj + 1) * b)]
            )
            payload = tile.tobytes()
            digest = hashlib.sha256(payload).hexdigest()
            block_path = blocks_dir / f"{digest}.blk"
            if not block_path.exists():
                _atomic_write_bytes(block_path, payload)
            rows_table.append(
                [bi, bj, digest, zlib.crc32(payload), tile.shape[0], tile.shape[1]]
            )

    if graph is not None:
        np.savez_compressed(target / GRAPH_NAME, weights=graph)

    manifest = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "n": n,
        "dtype": dist.dtype.name,
        "block_size": b,
        "nb": nb,
        "certificate": certificate,
        "solve": solve or {},
        "blocks": rows_table,
    }
    _atomic_write_bytes(
        target / MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True).encode()
    )
    return Artifact(target, manifest)


def load_artifact(path: PathLike) -> Artifact:
    """Open an artifact directory, validating its manifest (not its
    blocks: those verify CRC lazily on first read)."""
    target = Path(path)
    manifest_path = target / MANIFEST_NAME
    if not target.is_dir() or not manifest_path.exists():
        raise ArtifactError(path, "not an artifact directory (no manifest.json)")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactError(path, f"unreadable manifest: {exc}") from None
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(path, f"not a {ARTIFACT_FORMAT} manifest")
    if manifest.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            path,
            f"unsupported artifact version {manifest.get('version')!r} "
            f"(this build reads version {ARTIFACT_VERSION})",
        )
    for key in ("n", "dtype", "block_size", "nb", "blocks"):
        if key not in manifest:
            raise ArtifactError(path, f"manifest is missing {key!r}")
    try:
        np.dtype(manifest["dtype"])
    except TypeError:
        raise ArtifactError(path, f"unknown dtype {manifest['dtype']!r}") from None
    artifact = Artifact(target, manifest)
    n, b, nb = artifact.n, artifact.block_size, artifact.nb
    if nb != _block_grid(n, b):
        raise ArtifactError(path, f"manifest nb={nb} inconsistent with n={n}, b={b}")
    expected = {(bi, bj) for bi in range(nb) for bj in range(nb)}
    have = set(artifact._blocks)
    if have != expected:
        missing = sorted(expected - have)[:4]
        extra = sorted(have - expected)[:4]
        raise ArtifactError(
            path, f"block table incomplete (missing {missing}, unexpected {extra})"
        )
    for (bi, bj), entry in artifact._blocks.items():
        if (entry["rows"], entry["cols"]) != _block_shape(n, b, bi, bj):
            raise ArtifactError(
                path,
                f"block ({bi}, {bj}) shape {(entry['rows'], entry['cols'])} "
                f"inconsistent with n={n}, b={b}",
            )
    return artifact
