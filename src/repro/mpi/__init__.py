"""Simulated MPI runtime over the discrete-event cluster model."""

from .collectives import barrier, bcast_ring, bcast_ring_segmented, bcast_tree, gather
from .comm import ANY_SOURCE, ANY_TAG, Comm, Message, SimMPI, virtual_nbytes

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "Message",
    "SimMPI",
    "virtual_nbytes",
    "barrier",
    "bcast_ring",
    "bcast_ring_segmented",
    "bcast_tree",
    "gather",
]
