"""Collective operations built from point-to-point messages.

Two broadcast algorithms, matching the paper's §3.3:

* :func:`bcast_tree` - binomial tree, latency-optimal (``log2 P``
  rounds).  Used for DiagBcast, whose message is small and on the
  critical path.
* :func:`bcast_ring` - ring relay, bandwidth-optimal (each process
  receives and forwards the message exactly once).  Used for
  PanelBcast by the ``+Async`` variant.  The relay is issued
  *asynchronously*: a process returns from the collective as soon as
  its own copy has arrived and the forward has been enqueued, which is
  precisely what lets ``P_r(k+1)`` start the look-ahead update before
  the broadcast completes, and lets successive broadcasts overlap
  across iterations.

Both are real message-passing programs, so their latency/bandwidth
behaviour *emerges* from the NIC model instead of being assumed.
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import CommTimeoutError, ConfigurationError
from ..sim.engine import Event
from .comm import Comm, payload_checksum

__all__ = [
    "bcast_tree",
    "bcast_ring",
    "bcast_ring_segmented",
    "barrier",
    "gather",
    "recv_with_retry",
    "BARRIER_TAG",
    "GATHER_TAG",
]

#: Internal control tags.  Negative by construction so they can never
#: collide with user tags, which :func:`_check_user_tag` keeps >= 0.
BARRIER_TAG = -7
GATHER_TAG = -9


def _check_user_tag(tag: int) -> None:
    if tag < 0:
        raise ConfigurationError(
            f"user tags must be non-negative (got {tag}); negative tags are "
            "reserved for internal collectives (barrier/gather)"
        )


def recv_with_retry(comm: Comm, src: int, tag: int):
    """Generator: a receive hardened against the fault injector.

    On unarmed runs this is exactly ``comm.recv`` (one extra ``is
    None`` check).  Armed, it layers the reliability protocol on top:

    * a receive deadline (``plan.recv_timeout``) with bounded retries
      and exponential backoff - each timeout re-requests the lost
      message from the injector's retained pristine copy;
    * checksum verification - a payload whose CRC32 does not match its
      envelope is discarded and re-requested the same way.

    Raises :class:`~repro.errors.CommTimeoutError` once the retry
    budget is spent (the peer is then presumed dead; the driver's
    recovery loop takes over).
    """
    injector = comm.mpi.injector
    if injector is None:
        payload = yield from comm.recv(src=src, tag=tag)
        return payload
    plan = injector.plan
    timeout = plan.recv_timeout
    src_world = comm.world_ranks[src]
    retries = 0
    while True:
        try:
            msg = yield from comm.recv_message(src=src, tag=tag, timeout=timeout)
        except CommTimeoutError:
            if retries >= plan.max_retries:
                raise CommTimeoutError(
                    f"rank {comm.rank} gave up on recv(src={src}, tag={tag}) "
                    f"after {retries} retries",
                    rank=comm.rank,
                    src=src,
                    tag=tag,
                    retries=retries,
                ) from None
            retries += 1
            injector.count("faults.retries")
            yield from injector.request_retransmit(comm.me_world, src_world, tag)
            if timeout is not None:
                timeout *= plan.backoff
            continue
        if msg.checksum is not None and payload_checksum(msg.payload) != msg.checksum:
            injector.count("faults.checksum_mismatches")
            injector.mark_undelivered(comm.me_world, msg.src, msg.seq)
            if retries >= plan.max_retries:
                raise CommTimeoutError(
                    f"rank {comm.rank} got {retries + 1} corrupted copies of "
                    f"(src={src}, tag={tag})",
                    rank=comm.rank,
                    src=src,
                    tag=tag,
                    retries=retries,
                )
            retries += 1
            injector.count("faults.retries")
            yield from injector.request_retransmit(comm.me_world, src_world, tag)
            continue
        return msg.payload


def _binomial_children(rel: int, size: int) -> list[int]:
    """Children of relative rank ``rel`` in a binomial broadcast tree,
    furthest-first (the classic MPICH schedule)."""
    if rel == 0:
        low = 1
        while low < size:
            low <<= 1
    else:
        low = rel & -rel
    children = []
    mask = low >> 1
    while mask:
        child = rel | mask
        if child < size and child != rel:
            children.append(child)
        mask >>= 1
    return children


def _binomial_parent(rel: int) -> int:
    return rel & (rel - 1)  # clear lowest set bit


def bcast_tree(comm: Comm, root: int, payload: Any = None, tag: int = 0, nbytes: Optional[float] = None):
    """Generator: binomial-tree broadcast; returns the payload on every
    member.  Non-root callers must pass ``payload=None``.

    Sends are *blocking*, so an interior node is held until its whole
    forwarding fan-out has drained through its NIC - the synchronizing
    behaviour the paper attributes to the library broadcast.
    """
    _check_user_tag(tag)
    size, me = comm.size, comm.rank
    rel = (me - root) % size
    if rel != 0:
        parent = (_binomial_parent(rel) + root) % size
        payload = yield from recv_with_retry(comm, parent, tag)
    for child in _binomial_children(rel, size):
        yield from comm.send((child + root) % size, payload, tag=tag, nbytes=nbytes)
    return payload


def bcast_ring(
    comm: Comm,
    root: int,
    payload: Any = None,
    tag: int = 0,
    nbytes: Optional[float] = None,
    async_relay: bool = True,
):
    """Generator: ring broadcast; returns ``(payload, relay_event)``.

    The message travels root -> root+1 -> ... -> root-1.  With
    ``async_relay`` (default) each process enqueues its forward with
    ``isend`` and returns immediately, so computation proceeds while
    the NIC relays; ``relay_event`` fires when this process's forward
    has left the node (roots/last member get an already-fired event).
    With ``async_relay=False`` the relay is blocking, which makes the
    collective behave like a store-and-forward chain (useful as an
    ablation).
    """
    _check_user_tag(tag)
    size, me = comm.size, comm.rank
    rel = (me - root) % size
    if rel != 0:
        payload = yield from recv_with_retry(comm, (me - 1) % size, tag)
    done: Event
    if rel != size - 1 and size > 1:
        nxt = (me + 1) % size
        if async_relay:
            done = comm.isend(nxt, payload, tag=tag, nbytes=nbytes)
        else:
            yield from comm.send(nxt, payload, tag=tag, nbytes=nbytes)
            done = comm.env.event()
            done.succeed()
    else:
        done = comm.env.event()
        done.succeed()
    return payload, done


def bcast_ring_segmented(
    comm: Comm,
    root: int,
    payload: Any = None,
    tag: int = 0,
    segments: int = 4,
    nbytes: Optional[float] = None,
):
    """Generator: pipelined (segmented) ring broadcast, HPL-style.

    The message is cut into ``segments`` chunks relayed independently,
    so the ring's end-to-end makespan drops from ``(P-1)·B`` toward
    ``(P-1+S)·B/S`` - large-message latency close to the bandwidth
    bound, at the cost of S times the per-message setup.  This is the
    natural extension of the paper's §3.3 ring (its broadcast is
    unsegmented); ``benchmarks/bench_ablation_ring_segments.py``
    quantifies the trade.

    Returns ``(payload, relay_event)`` like :func:`bcast_ring`; the
    relay event fires when all of this member's forwards are enqueued
    complete.  Payloads must be picklable structures of arrays or
    ``None``; chunking is by top-level item for dicts/lists and by rows
    for a single array.
    """
    _check_user_tag(tag)
    size, me = comm.size, comm.rank
    if segments < 1:
        raise ValueError(f"segments must be >= 1, got {segments}")
    if segments == 1 or size == 1:
        result = yield from bcast_ring(comm, root, payload, tag=tag, nbytes=nbytes)
        return result
    rel = (me - root) % size
    base_tag = tag << 4  # sub-tags per segment; keep caller tags distinct

    def split(p: Any) -> list[Any]:
        import numpy as np

        if isinstance(p, dict):
            keys = list(p.keys())
            if not keys:
                return [p]
            step = -(-len(keys) // segments)
            return [
                {k: p[k] for k in keys[i : i + step]} for i in range(0, len(keys), step)
            ]
        if isinstance(p, np.ndarray) and p.ndim >= 1 and p.shape[0] >= segments:
            return list(np.array_split(p, segments, axis=0))
        if isinstance(p, (list, tuple)) and len(p) >= segments:
            step = -(-len(p) // segments)
            return [p[i : i + step] for i in range(0, len(p), step)]
        return [p]  # not splittable; degenerate to one segment

    def join(chunks: list[Any]) -> Any:
        import numpy as np

        if all(isinstance(c, dict) for c in chunks):
            out: dict = {}
            for c in chunks:
                out.update(c)
            return out
        if all(isinstance(c, np.ndarray) for c in chunks):
            return np.concatenate(chunks, axis=0)
        if len(chunks) == 1:
            return chunks[0]
        joined: list = []
        for c in chunks:
            joined.extend(c)
        return joined

    relays: list[Event] = []
    if rel == 0:
        # The protocol always carries exactly `segments` messages;
        # short splits are padded with None so every member's receive
        # loop is uniform.
        chunks = split(payload)
        chunks += [None] * (segments - len(chunks))
        for i, chunk in enumerate(chunks):
            relays.append(comm.isend((me + 1) % size, chunk, tag=base_tag + i))
        got = payload
    else:
        received = []
        # Receive segments in order; forward each the moment it lands
        # (the pipelining that cuts the ring's makespan).
        for i in range(segments):
            chunk = yield from recv_with_retry(comm, (me - 1) % size, base_tag + i)
            received.append(chunk)
            if rel != size - 1:
                relays.append(comm.isend((me + 1) % size, chunk, tag=base_tag + i))
        real = [c for c in received if c is not None]
        got = join(real) if real else None
    done: Event
    if relays:
        done = comm.env.all_of(relays)
    else:
        done = comm.env.event()
        done.succeed()
    return got, done


def barrier(comm: Comm, tag: int = BARRIER_TAG):
    """Generator: dissemination barrier (``ceil(log2 P)`` rounds of
    tiny messages)."""
    size, me = comm.size, comm.rank
    if size == 1:
        return
    dist = 1
    round_no = 0
    while dist < size:
        dst = (me + dist) % size
        src = (me - dist) % size
        t = (tag, round_no)
        send_ev = comm.isend(dst, None, tag=hash(t) & 0x7FFFFFFF)
        yield from comm.recv(src=src, tag=hash(t) & 0x7FFFFFFF)
        yield send_ev
        dist <<= 1
        round_no += 1


def gather(comm: Comm, root: int, payload: Any, tag: int = GATHER_TAG):
    """Generator: gather every member's payload at ``root``; returns the
    list (ordered by local rank) at the root, ``None`` elsewhere."""
    size, me = comm.size, comm.rank
    if me == root:
        out: list[Any] = [None] * size
        out[root] = payload
        for _ in range(size - 1):
            msg = yield from comm.recv_message(tag=tag)
            local_src = comm.world_ranks.index(msg.src)
            out[local_src] = msg.payload
        return out
    yield from comm.send(root, payload, tag=tag)
    return None
