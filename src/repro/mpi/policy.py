"""Broadcast strategy as a policy object (paper §3.3).

The paper evaluates two one-to-all strategies for the panel
broadcasts - the library-style binomial tree and the bandwidth-optimal
(optionally asynchronous, optionally segmented) ring - and the solver
variants differ only in which one they pick.  :class:`BcastPolicy`
puts that choice behind a single interface so the schedule IR
(:mod:`repro.core.schedule`) composes it freely with the other policy
axes instead of branching on config strings at every call site.

A policy's :meth:`~BcastPolicy.bcast` is a generator (it runs inside a
rank program) returning ``(payload, relay_event)``; ``relay_event`` is
``None`` for synchronous strategies and an outstanding-send event for
asynchronous relays, which the caller parks until its end-of-program
drain.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.engine import Event
from .collectives import bcast_ring, bcast_ring_segmented, bcast_tree
from .comm import Comm

__all__ = ["BcastPolicy", "TreeBcast", "RingBcast", "bcast_policy_for"]


class BcastPolicy:
    """Strategy for one one-to-all broadcast inside the sweep."""

    name: str = "abstract"

    def bcast(
        self,
        comm: Comm,
        root: int,
        payload: Any = None,
        tag: int = 0,
        nbytes: Optional[float] = None,
    ):
        """Generator: broadcast ``payload`` from ``root`` over ``comm``;
        returns ``(payload, relay_event_or_None)`` on every member."""
        raise NotImplementedError


class TreeBcast(BcastPolicy):
    """Binomial tree: latency-optimal, blocking sends (the library
    behaviour the paper's baseline uses)."""

    name = "tree"

    def bcast(self, comm, root, payload=None, tag=0, nbytes=None):
        got = yield from bcast_tree(comm, root=root, payload=payload, tag=tag, nbytes=nbytes)
        return got, None


class RingBcast(BcastPolicy):
    """Ring relay: bandwidth-optimal; with ``async_relay`` the forward
    is an isend and the member returns as soon as its own copy landed
    (the ``+Async`` behaviour); ``segments > 1`` pipelines the relay
    HPL-style."""

    name = "ring"

    def __init__(self, async_relay: bool = True, segments: int = 1):
        if segments < 1:
            raise ConfigurationError(f"ring segments must be >= 1, got {segments}")
        self.async_relay = async_relay
        self.segments = segments

    def bcast(self, comm, root, payload=None, tag=0, nbytes=None):
        relay: Event
        if self.segments > 1:
            got, relay = yield from bcast_ring_segmented(
                comm, root=root, payload=payload, tag=tag,
                segments=self.segments, nbytes=nbytes,
            )
        else:
            got, relay = yield from bcast_ring(
                comm, root=root, payload=payload, tag=tag,
                nbytes=nbytes, async_relay=self.async_relay,
            )
        return got, relay


def bcast_policy_for(
    name: str, async_relay: bool = True, segments: int = 1
) -> BcastPolicy:
    """Resolve a panel-broadcast policy from configuration fields."""
    if name == "tree":
        return TreeBcast()
    if name == "ring":
        return RingBcast(async_relay=async_relay, segments=segments)
    raise ConfigurationError(f"unknown panel_bcast {name!r}")
