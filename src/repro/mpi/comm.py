"""Simulated MPI: ranks, mailboxes, communicators, point-to-point.

Rank *programs* are Python generators running on the
:class:`~repro.sim.engine.Environment`; they talk through an MPI-like
API whose costs are charged by the :class:`~repro.machine.cluster.SimCluster`
(NIC occupancy, intranode channel, latency).  Payloads are real NumPy
arrays, so the distributed algorithms compute real answers.

Semantics (close to eager-mode MPI over a bandwidth-serialized NIC):

* ``send`` blocks the caller for its share of NIC occupancy (messages
  from one node serialize on that node's NIC), then the message is
  delivered ``latency`` later; the receiver's ``recv`` matches on
  (source, tag) like MPI envelopes.
* ``isend`` does the same in a spawned child process and returns an
  event, enabling the sender to overlap (used by the ring broadcast's
  relay and by the pipelined schedule).
* Array payloads are copied at send time (eager buffering) so a sender
  mutating its block in a later iteration can never corrupt a message
  in flight - the exact hazard the pipelined/asynchronous schedules
  would otherwise create.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from ..errors import CommTimeoutError, ConfigurationError
from ..machine.cluster import SimCluster
from ..sim.engine import Environment, Event
from ..sim.resources import FilterStore
from ..sim.trace import Tracer

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Message",
    "SimMPI",
    "Comm",
    "virtual_nbytes",
    "payload_checksum",
]

#: Wildcards for :meth:`Comm.recv` matching.
ANY_SOURCE = -1
ANY_TAG = -1

#: Message classes by tag opcode (tag = (k << 3) | op, see
#: :class:`repro.core.context.Op`); negative tags are the fault
#: layer's control traffic (re-requests, retransmits).
_TAG_CLASS = {0: "diag_row", 1: "diag_col", 2: "panel_row", 3: "panel_col"}


@dataclass(frozen=True)
class Message:
    """An MPI envelope + payload, as stored in a rank's mailbox."""

    src: int  # world rank of the sender
    tag: int
    payload: Any
    nbytes: float  # virtual bytes, for accounting
    sent_at: float
    delivered_at: float
    #: Per-(src, dst) sequence number for duplicate suppression; -1 on
    #: unarmed runs (no fault injector).
    seq: int = -1
    #: CRC32 over the payload's array bytes; None on unarmed runs.
    checksum: Optional[int] = None


def _copy_payload(payload: Any) -> Any:
    """Deep-copy the ndarray leaves of a payload (eager buffering)."""
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, (list, tuple)):
        return type(payload)(_copy_payload(p) for p in payload)
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


def payload_checksum(payload: Any) -> int:
    """CRC32 over a payload's structure and ndarray bytes.

    Armed sends stamp this on the envelope; the retry wrapper in
    :mod:`repro.mpi.collectives` recomputes it on receipt, so injected
    bit-flips are detected and the pristine copy re-requested."""
    crc = 0

    def walk(p: Any) -> None:
        nonlocal crc
        if isinstance(p, np.ndarray):
            crc = zlib.crc32(np.ascontiguousarray(p).tobytes(), crc)
        elif isinstance(p, (list, tuple)):
            for x in p:
                walk(x)
        elif isinstance(p, dict):
            for key, x in p.items():
                crc = zlib.crc32(repr(key).encode(), crc)
                walk(x)
        else:
            crc = zlib.crc32(repr(p).encode(), crc)

    walk(payload)
    return crc


class SimMPI:
    """The world: mailboxes plus the rank -> node mapping."""

    def __init__(
        self,
        env: Environment,
        cluster: SimCluster,
        rank_to_node: Sequence[int],
        tracer: Optional[Tracer] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.rank_to_node = list(rank_to_node)
        self.tracer = tracer
        for node in self.rank_to_node:
            if not 0 <= node < len(cluster):
                raise ConfigurationError(f"rank mapped to nonexistent node {node}")
        self.size = len(self.rank_to_node)
        self._mailboxes = [FilterStore(env, name=f"mbox{r}") for r in range(self.size)]
        #: Total virtual bytes sent, by (intra, inter) node.
        self.bytes_internode = 0.0
        self.bytes_intranode = 0.0
        self.message_count = 0
        #: Armed by the driver with a
        #: :class:`~repro.faults.injector.FaultInjector`; None (the
        #: default) keeps the transport on its zero-overhead path.
        self.injector = None
        #: Armed by the driver with a
        #: :class:`~repro.obs.metrics.MetricsRegistry`; None (the
        #: default) keeps the transport on its zero-overhead path.
        #: When set, every message is counted into per-class
        #: (``diag_row`` / ``panel_col`` / ...) and per-scope
        #: (``intranode`` / ``internode``) byte and message counters.
        self.obs = None

    def virtual_nbytes(self, payload: Any) -> float:
        return virtual_nbytes(payload, self.cluster.cost)

    def node_of(self, world_rank: int) -> int:
        return self.rank_to_node[world_rank]

    def world(self) -> "Comm":
        """COMM_WORLD as seen from no particular rank; use
        :meth:`Comm.localize` per rank program."""
        return Comm(self, tuple(range(self.size)), me=None)

    # -- transport ---------------------------------------------------------
    def _send(self, src: int, dst: int, payload: Any, tag: int, nbytes: Optional[float]):
        """Generator: the actual transport (runs in sender context)."""
        if nbytes is None:
            nbytes = self.virtual_nbytes(payload)
        sent_at = self.env.now
        src_node, dst_node = self.rank_to_node[src], self.rank_to_node[dst]
        buffered = _copy_payload(payload)
        injector = self.injector
        seq = -1
        checksum = None
        if injector is not None:
            seq = injector.next_seq(src, dst)
            checksum = payload_checksum(buffered)
        yield from self.cluster.transfer(
            src_node,
            dst_node,
            nbytes,
            label=f"r{src}->r{dst} t{tag}",
            injector=injector,
        )
        if src_node == dst_node:
            self.bytes_intranode += nbytes
        else:
            self.bytes_internode += nbytes
        self.message_count += 1
        obs = self.obs
        if obs is not None:
            cls = _TAG_CLASS.get(tag & 7, "other") if tag >= 0 else "control"
            scope = "intranode" if src_node == dst_node else "internode"
            obs.counter(f"comm.{cls}.bytes").inc(nbytes)
            obs.counter(f"comm.{cls}.messages").inc()
            obs.counter(f"comm.{scope}.bytes").inc(nbytes)
            obs.counter(f"comm.{scope}.messages").inc()
        msg = Message(src, tag, buffered, nbytes, sent_at, self.env.now, seq, checksum)
        if injector is None:
            self._mailboxes[dst].put(msg)
        else:
            injector.process_send(self, dst, msg)


class Comm:
    """An ordered group of world ranks, localized to one member.

    ``rank``/``size`` and all src/dst arguments are *communicator-local*
    indices, exactly like MPI communicators.  Sub-communicators (a
    process row or column of the 2-D grid) are just other ``Comm``
    instances over the same :class:`SimMPI`.
    """

    def __init__(self, mpi: SimMPI, world_ranks: tuple[int, ...], me: Optional[int]):
        if len(set(world_ranks)) != len(world_ranks):
            raise ConfigurationError(f"duplicate ranks in communicator: {world_ranks}")
        self.mpi = mpi
        self.world_ranks = world_ranks
        #: This member's world rank (None for an unlocalized handle).
        self.me_world = me
        self._index = {w: i for i, w in enumerate(world_ranks)}

    # -- shape -----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.world_ranks)

    @property
    def rank(self) -> int:
        """My communicator-local rank."""
        if self.me_world is None:
            raise ConfigurationError("communicator not localized to a rank")
        return self._index[self.me_world]

    @property
    def env(self) -> Environment:
        return self.mpi.env

    def localize(self, world_rank: int) -> "Comm":
        """The same group, seen from ``world_rank`` (must be a member)."""
        if world_rank not in self._index:
            raise ConfigurationError(f"rank {world_rank} not in communicator {self.world_ranks}")
        return Comm(self.mpi, self.world_ranks, me=world_rank)

    def subgroup(self, local_ranks: Sequence[int]) -> "Comm":
        """A new (unlocalized) communicator from local indices."""
        return Comm(self.mpi, tuple(self.world_ranks[i] for i in local_ranks), me=None)

    def to_world(self, local: int) -> int:
        return self.world_ranks[local]

    # -- point to point -----------------------------------------------------
    def send(self, dst: int, payload: Any, tag: int = 0, nbytes: Optional[float] = None):
        """Generator: blocking send to communicator-local ``dst``."""
        yield from self.mpi._send(
            self.me_world, self.world_ranks[dst], payload, tag, nbytes
        )

    def isend(self, dst: int, payload: Any, tag: int = 0, nbytes: Optional[float] = None) -> Event:
        """Non-blocking send; returns the completion event."""
        return self.env.process(
            self.send(dst, payload, tag, nbytes),
            name=f"isend r{self.me_world}->l{dst} t{tag}",
        )

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: Optional[float] = None):
        """Generator: blocking receive; returns the payload.

        ``src`` is communicator-local (or :data:`ANY_SOURCE`); matching
        is FIFO among messages that satisfy (src, tag).  With a
        ``timeout`` (simulated seconds) the receive raises
        :class:`~repro.errors.CommTimeoutError` if nothing matched
        within the deadline - the detection primitive for lost
        messages and dead peers.
        """
        msg = yield from self.recv_message(src, tag, timeout=timeout)
        return msg.payload

    def recv_message(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG, timeout: Optional[float] = None
    ):
        """Like :meth:`recv` but returns the full :class:`Message`."""
        me = self.me_world
        if me is None:
            raise ConfigurationError("recv on unlocalized communicator")
        want_src_world = None if src == ANY_SOURCE else self.world_ranks[src]
        member_worlds = set(self.world_ranks)

        def match(msg: Message) -> bool:
            if want_src_world is not None and msg.src != want_src_world:
                return False
            if want_src_world is None and msg.src not in member_worlds:
                return False
            if tag != ANY_TAG and msg.tag != tag:
                return False
            return True

        mailbox = self.mpi._mailboxes[me]
        get_ev = mailbox.get(match)
        if timeout is None:
            msg = yield get_ev
            return msg
        deadline = self.env.timeout(timeout)
        yield self.env.any_of([get_ev, deadline])
        if get_ev.triggered:
            return get_ev.value
        # Withdraw the pending getter so a late arrival is not consumed
        # by an abandoned receive (it stays queued for the retry).
        mailbox.cancel(get_ev)
        raise CommTimeoutError(
            f"rank {self.rank} recv(src={src}, tag={tag}) timed out after {timeout:g}s",
            rank=self.rank,
            src=src,
            tag=tag,
        )


def virtual_nbytes(payload: Any, cost) -> float:
    """Virtual wire size of a payload (ndarray leaves scaled by the
    cost model's ``dim_scale``; everything else counts a header's worth)."""
    if isinstance(payload, np.ndarray):
        if payload.ndim == 2:
            return cost.bytes_of(payload.shape[0], payload.shape[1])
        # 1-D and 0-D payloads scale linearly (vectors) / not at all.
        if payload.ndim == 1:
            return cost.v(payload.shape[0]) * cost.itemsize
        return float(payload.size * cost.itemsize)
    if isinstance(payload, (list, tuple)):
        return sum(virtual_nbytes(p, cost) for p in payload) or 8.0
    if isinstance(payload, dict):
        return sum(virtual_nbytes(p, cost) for p in payload.values()) or 8.0
    return 8.0
