"""Exception hierarchy for the :mod:`repro` package.

Each class maps to a stable CLI exit code (:func:`exit_code_for`, also
used by the scenario fuzzer's outcome classifier) so scripts, the CI
matrices, and the fuzz corpus can tell *why* a run failed:

=========================  ====
class                      code
=========================  ====
ReproError (other)            1
ConfigurationError            2
ValidationError               3
NegativeCycleError            4
GpuOutOfMemory                5
BackendUnavailableError       6
CommTimeoutError              7
RankFailure                   8
CheckpointError               9
SilentCorruptionError        10
VerificationError            11
SinkError                    12
FaultPlanError               13
InternalError                14
AdmissionError               15
DeadlineExceeded             16
ArtifactError                17
QueryError                   18
=========================  ====

:class:`InternalError` is the catch-all for *unexpected* exceptions
escaping :func:`repro.solve` - anything that is not already a
:class:`ReproError` is a bug, and the wrapper dumps the offending
:class:`~repro.api.SolveConfig` as replayable scenario JSON so the
failure can be reproduced with one call (the fuzzer and real users
share this path).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "BackendUnavailableError",
    "GpuOutOfMemory",
    "NegativeCycleError",
    "ValidationError",
    "CommTimeoutError",
    "RankFailure",
    "CheckpointError",
    "SilentCorruptionError",
    "VerificationError",
    "SinkError",
    "FaultPlanError",
    "InternalError",
    "AdmissionError",
    "DeadlineExceeded",
    "ArtifactError",
    "QueryError",
    "exit_code_for",
]


class ReproError(Exception):
    """Base class for all package-specific errors."""


class ConfigurationError(ReproError, ValueError):
    """Invalid solver / machine / grid configuration."""


class BackendUnavailableError(ConfigurationError):
    """A registered SrGemm kernel backend cannot be used because its
    soft dependency is missing (e.g. the ``compiled`` backend without
    numba installed)."""

    def __init__(self, name: str, reason: str):
        self.backend = name
        self.reason = reason
        super().__init__(f"SrGemm backend {name!r} is unavailable: {reason}")


class GpuOutOfMemory(ReproError, MemoryError):
    """A simulated GPU allocation exceeded the device's HBM capacity.

    The non-offload Floyd-Warshall variants raise this when the local
    distance matrix does not fit on the device - the "Beyond GPU
    Memory" boundary in the paper's Figure 7.  The offload variant
    (``Me-ParallelFw``) exists precisely to avoid it.
    """

    def __init__(self, requested: int, free: int, capacity: int, device: str = "gpu"):
        self.requested = requested
        self.free = free
        self.capacity = capacity
        self.device = device
        super().__init__(
            f"{device}: allocation of {requested} bytes exceeds free HBM "
            f"({free} of {capacity} bytes available); use the offload "
            "variant (Me-ParallelFw) for out-of-GPU-memory problems"
        )


class NegativeCycleError(ReproError, ValueError):
    """The input graph contains a negative-weight cycle.

    Floyd-Warshall's invariant (Dist[i,j] is the shortest path using
    intermediates v_1..v_k) only holds without negative cycles; we
    detect them by a negative diagonal entry.
    """

    def __init__(self, vertex: int, value: float):
        self.vertex = vertex
        self.value = value
        super().__init__(
            f"negative-weight cycle through vertex {vertex} (Dist[{vertex},{vertex}] = {value})"
        )


class ValidationError(ReproError, AssertionError):
    """A computed result failed verification against the oracle."""


class CommTimeoutError(ReproError, TimeoutError):
    """A simulated receive exceeded its timeout.

    Raised by :meth:`repro.mpi.comm.Comm.recv` when a deadline is set
    and no matching message arrives - the detection primitive for lost
    messages and dead peers.  ``retries`` counts how many re-request
    rounds were already attempted when the retry wrapper gives up.
    """

    def __init__(
        self,
        message: str,
        rank: "int | None" = None,
        src: "int | None" = None,
        tag: "int | None" = None,
        retries: int = 0,
    ):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.retries = retries
        super().__init__(message)


class RankFailure(ReproError, RuntimeError):
    """A simulated MPI rank died mid-solve (injected crash or abort).

    Recoverable when checkpoint/restart is armed; otherwise it
    propagates out of the driver after the restart budget is spent.
    """

    def __init__(self, message: str, rank: "int | None" = None, at: "float | None" = None):
        self.rank = rank
        self.at = at
        super().__init__(message)


class CheckpointError(ReproError, RuntimeError):
    """The checkpoint/restart machinery could not recover a run
    (no consistent checkpoint exists, the restart budget is
    exhausted, or a snapshot failed its CRC32 integrity check)."""


class SilentCorruptionError(ReproError, RuntimeError):
    """The ABFT layer detected silent data corruption it could not
    repair in place (see :mod:`repro.verify`).

    Raised at the next op boundary of the detecting rank program.  On
    fault-armed runs the recovery loop treats it like a rank failure
    and restarts from the newest uncorrupted consistent checkpoint;
    without one it propagates out of the driver.
    """

    def __init__(
        self,
        message: str,
        rank: "int | None" = None,
        block: "tuple[int, int] | None" = None,
        op: "str | None" = None,
    ):
        self.rank = rank
        self.block = block
        self.op = op
        super().__init__(message)


class VerificationError(ValidationError):
    """The run's verification certificate failed: the completed result
    did not pass the residual audit (sampled triangle-inequality /
    reference-SSSP checks), so it must not be served."""


class SinkError(ConfigurationError):
    """An observability output sink (``--metrics-out`` /
    ``--trace-out``) is unusable - the path's directory is missing, or
    the target is not writable.  Raised *before* the solve starts, so a
    bad flag fails in milliseconds instead of throwing a traceback
    after a possibly hour-long run."""

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"cannot write to sink {path!r}: {reason}")


class FaultPlanError(ConfigurationError):
    """A fault plan (CLI spec string, JSON document, or programmatic
    dataclass) is malformed: an unknown fault kind or key, a value of
    the wrong type, or a value outside its legal range.

    Raised eagerly at parse/construction time so a typo'd field can
    never silently disarm a chaos experiment - the plan either means
    exactly what it says or the run refuses to start."""


class InternalError(ReproError):
    """An *unexpected* exception escaped the solver - i.e. a bug, not a
    modeled failure.  The wrapper in :func:`repro.solve` attaches the
    offending configuration as replayable scenario JSON
    (``scenario_json``) so the exact run can be reproduced (``repro-apsp
    fuzz replay`` accepts the same document), and chains the original
    exception as ``__cause__``."""

    def __init__(self, original: BaseException, scenario_json: "str | None" = None):
        self.original_type = type(original).__name__
        self.scenario_json = scenario_json
        message = (
            f"unexpected {self.original_type} escaped the solver: {original}"
        )
        if scenario_json is not None:
            message += f"\nreplayable scenario: {scenario_json}"
        super().__init__(message)


class AdmissionError(ReproError):
    """The cluster scheduler refused a job at admission control: its
    memory demand can never fit the fleet, or the perf model predicts
    it would blow the configured makespan limit.  Carries the
    human-readable refusal ``reason``."""

    def __init__(self, job_name: str, reason: str):
        self.job_name = job_name
        self.reason = reason
        super().__init__(f"job {job_name!r} rejected at admission: {reason}")


class DeadlineExceeded(ReproError, TimeoutError):
    """A scheduled job blew its per-job deadline (simulated-time SLO)
    and was killed by the fleet's resilience layer.  Deadline kills are
    terminal: the job is never retried, whatever its retry policy says
    - retrying work that already missed its SLO only burns fleet
    capacity other tenants could use."""

    def __init__(self, job_name: str, deadline: float):
        self.job_name = job_name
        self.deadline = deadline
        super().__init__(
            f"job {job_name!r} exceeded its {deadline:.6g}s deadline and was killed"
        )


class ArtifactError(ReproError, OSError):
    """A persistent solve artifact (see :mod:`repro.serve`) is unusable:
    the directory or its manifest is missing or malformed, the format
    version is unsupported, or a block failed its CRC32 integrity check
    on load.  A corrupt artifact is *refused*, never served - the block
    store would rather answer nothing than answer wrong."""

    def __init__(self, path: str, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"artifact {str(path)!r} unusable: {reason}")


class QueryError(ReproError, ValueError):
    """A distance query against a :class:`~repro.serve.QueryServer` is
    invalid: a vertex outside ``[0, n)``, a non-positive ``k``,
    malformed pair batches, or an operation the artifact cannot support
    (e.g. ``update_edge`` on an artifact saved without its graph)."""


#: (class, code) pairs ordered most-specific first - several classes
#: subclass others, so order is significant for the isinstance scan.
_EXIT_CODE_TABLE: "tuple[tuple[type, int], ...]" = (
    (BackendUnavailableError, 6),  # before its base ConfigurationError
    (SinkError, 12),  # before its base ConfigurationError
    (FaultPlanError, 13),  # before its base ConfigurationError
    (ConfigurationError, 2),
    (VerificationError, 11),  # before its base ValidationError
    (ValidationError, 3),
    (NegativeCycleError, 4),
    (GpuOutOfMemory, 5),
    (CommTimeoutError, 7),
    (RankFailure, 8),
    (CheckpointError, 9),
    (SilentCorruptionError, 10),
    (InternalError, 14),
    (AdmissionError, 15),
    (DeadlineExceeded, 16),
    (ArtifactError, 17),
    (QueryError, 18),
)


def exit_code_for(exc: BaseException) -> int:
    """Distinct, stable exit code per failure class (the table in the
    module docstring) so scripts, the CI matrices, and the fuzzer's
    outcome classifier can tell *why* a run failed."""
    for cls, code in _EXIT_CODE_TABLE:
        if isinstance(exc, cls):
            return code
    return 1  # any other ReproError
