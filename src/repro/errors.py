"""Exception hierarchy for the :mod:`repro` package.

Each class maps to a stable CLI exit code (``repro.cli._exit_code_for``)
so scripts and the CI matrices can tell *why* a run failed:

=========================  ====
class                      code
=========================  ====
ReproError (other)            1
ConfigurationError            2
ValidationError               3
NegativeCycleError            4
GpuOutOfMemory                5
BackendUnavailableError       6
CommTimeoutError              7
RankFailure                   8
CheckpointError               9
SilentCorruptionError        10
VerificationError            11
SinkError                    12
=========================  ====
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "BackendUnavailableError",
    "GpuOutOfMemory",
    "NegativeCycleError",
    "ValidationError",
    "CommTimeoutError",
    "RankFailure",
    "CheckpointError",
    "SilentCorruptionError",
    "VerificationError",
    "SinkError",
]


class ReproError(Exception):
    """Base class for all package-specific errors."""


class ConfigurationError(ReproError, ValueError):
    """Invalid solver / machine / grid configuration."""


class BackendUnavailableError(ConfigurationError):
    """A registered SrGemm kernel backend cannot be used because its
    soft dependency is missing (e.g. the ``compiled`` backend without
    numba installed)."""

    def __init__(self, name: str, reason: str):
        self.backend = name
        self.reason = reason
        super().__init__(f"SrGemm backend {name!r} is unavailable: {reason}")


class GpuOutOfMemory(ReproError, MemoryError):
    """A simulated GPU allocation exceeded the device's HBM capacity.

    The non-offload Floyd-Warshall variants raise this when the local
    distance matrix does not fit on the device - the "Beyond GPU
    Memory" boundary in the paper's Figure 7.  The offload variant
    (``Me-ParallelFw``) exists precisely to avoid it.
    """

    def __init__(self, requested: int, free: int, capacity: int, device: str = "gpu"):
        self.requested = requested
        self.free = free
        self.capacity = capacity
        self.device = device
        super().__init__(
            f"{device}: allocation of {requested} bytes exceeds free HBM "
            f"({free} of {capacity} bytes available); use the offload "
            "variant (Me-ParallelFw) for out-of-GPU-memory problems"
        )


class NegativeCycleError(ReproError, ValueError):
    """The input graph contains a negative-weight cycle.

    Floyd-Warshall's invariant (Dist[i,j] is the shortest path using
    intermediates v_1..v_k) only holds without negative cycles; we
    detect them by a negative diagonal entry.
    """

    def __init__(self, vertex: int, value: float):
        self.vertex = vertex
        self.value = value
        super().__init__(
            f"negative-weight cycle through vertex {vertex} (Dist[{vertex},{vertex}] = {value})"
        )


class ValidationError(ReproError, AssertionError):
    """A computed result failed verification against the oracle."""


class CommTimeoutError(ReproError, TimeoutError):
    """A simulated receive exceeded its timeout.

    Raised by :meth:`repro.mpi.comm.Comm.recv` when a deadline is set
    and no matching message arrives - the detection primitive for lost
    messages and dead peers.  ``retries`` counts how many re-request
    rounds were already attempted when the retry wrapper gives up.
    """

    def __init__(
        self,
        message: str,
        rank: "int | None" = None,
        src: "int | None" = None,
        tag: "int | None" = None,
        retries: int = 0,
    ):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.retries = retries
        super().__init__(message)


class RankFailure(ReproError, RuntimeError):
    """A simulated MPI rank died mid-solve (injected crash or abort).

    Recoverable when checkpoint/restart is armed; otherwise it
    propagates out of the driver after the restart budget is spent.
    """

    def __init__(self, message: str, rank: "int | None" = None, at: "float | None" = None):
        self.rank = rank
        self.at = at
        super().__init__(message)


class CheckpointError(ReproError, RuntimeError):
    """The checkpoint/restart machinery could not recover a run
    (no consistent checkpoint exists, the restart budget is
    exhausted, or a snapshot failed its CRC32 integrity check)."""


class SilentCorruptionError(ReproError, RuntimeError):
    """The ABFT layer detected silent data corruption it could not
    repair in place (see :mod:`repro.verify`).

    Raised at the next op boundary of the detecting rank program.  On
    fault-armed runs the recovery loop treats it like a rank failure
    and restarts from the newest uncorrupted consistent checkpoint;
    without one it propagates out of the driver.
    """

    def __init__(
        self,
        message: str,
        rank: "int | None" = None,
        block: "tuple[int, int] | None" = None,
        op: "str | None" = None,
    ):
        self.rank = rank
        self.block = block
        self.op = op
        super().__init__(message)


class VerificationError(ValidationError):
    """The run's verification certificate failed: the completed result
    did not pass the residual audit (sampled triangle-inequality /
    reference-SSSP checks), so it must not be served."""


class SinkError(ConfigurationError):
    """An observability output sink (``--metrics-out`` /
    ``--trace-out``) is unusable - the path's directory is missing, or
    the target is not writable.  Raised *before* the solve starts, so a
    bad flag fails in milliseconds instead of throwing a traceback
    after a possibly hour-long run."""

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"cannot write to sink {path!r}: {reason}")
