"""The public library entry point: ``repro.solve(graph, SolveConfig())``.

After the kernel-backend, fault-injection, schedule-IR, and ABFT
layers, the solver grew ~25 keyword arguments plus two environment
variables.  This module gathers them into one frozen
:class:`SolveConfig` (construct once, ``replace()`` to vary, pass
around freely) and one :func:`solve` call, and makes the config the
single attachment point for observability sinks (:class:`ObsSinks`).

Precedence for environment-configurable knobs is **explicit argument >
environment variable > built-in default**:

* ``SolveConfig(kernel_backend=...)`` beats ``$REPRO_SRGEMM_BACKEND``
  beats ``"reference"``;
* ``SolveConfig(fault_plan=...)`` beats ``$REPRO_FAULT_PLAN`` beats
  no plan.

:meth:`SolveConfig.from_env` materializes the environment layer into
the config, so the run's provenance is inspectable instead of implied
(the lower layers apply the same precedence either way; each rule is
pinned by ``tests/test_solve_api.py``).

Typical use::

    import repro
    from repro.graphs import uniform_random_dense

    w = uniform_random_dense(256, seed=0)
    cfg = repro.SolveConfig(variant="async", block_size=32, n_nodes=4,
                            ranks_per_node=4)
    result = repro.solve(w, cfg)
    print(result.makespan, result.report.summary())

The legacy ``repro.apsp(...)`` keyword API keeps working behind a
``DeprecationWarning``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

from .errors import ConfigurationError, InternalError, ReproError
from .obs.sinks import ObsSinks, check_sink_path

__all__ = [
    "ObsSinks",
    "SolveConfig",
    "solve",
    "serve",
    "submit",
    "resolve_machine",
    "config_to_jsonable",
]

# Back-compat alias: ObsSinks and its path validation now live in
# repro.obs.sinks, shared with ServeConfig (repro/serve/config.py) and
# the sched CLI instead of duplicated per config class.
_check_sink_path = check_sink_path


@dataclass(frozen=True)
class SolveConfig:
    """Frozen configuration of one distributed APSP solve.

    Field-for-field the vocabulary of the engine
    (:func:`repro.core.driver.apsp`), minus the sprawl: construct one,
    derive variations with :meth:`replace`, and hand it to
    :func:`solve`.
    """

    # -- algorithm ----------------------------------------------------------
    variant: str = "async"
    block_size: Optional[int] = None
    track_paths: bool = False
    exploit_sparsity: bool = False
    #: SrGemm kernel backend name; None defers to
    #: ``$REPRO_SRGEMM_BACKEND`` then ``"reference"`` (see
    #: :meth:`from_env` for materializing that precedence).
    kernel_backend: Optional[str] = None

    # -- cluster shape ------------------------------------------------------
    machine: Any = "summit"  # preset name or MachineSpec
    n_nodes: int = 1
    ranks_per_node: Optional[int] = None
    #: Process grid as ``(pr, pc)``; None picks the near-square grid.
    grid: Optional[tuple[int, int]] = None
    dim_scale: float = 1.0
    stragglers: Optional[Mapping[int, float]] = None

    # -- schedule details ---------------------------------------------------
    diag_on_gpu: bool = True
    n_streams: int = 3
    ring_segments: int = 1
    mx_blocks: int = 2
    nx_blocks: int = 2

    # -- fault tolerance ----------------------------------------------------
    #: A :class:`~repro.faults.FaultPlan`, CLI-style spec string(s), or
    #: None, which defers to ``$REPRO_FAULT_PLAN``.
    fault_plan: Any = None
    checkpoint_interval: Optional[int] = None
    recv_timeout: Optional[float] = None
    fault_seed: int = 0

    # -- verification / validation ------------------------------------------
    verify: str = "off"
    validate: bool = False
    check_negative_cycles: bool = True

    # -- outputs ------------------------------------------------------------
    collect: bool = True
    compute_numerics: bool = True
    trace: bool = False
    obs: ObsSinks = field(default_factory=ObsSinks)

    def replace(self, **changes) -> "SolveConfig":
        """A copy with the given fields replaced (the frozen-dataclass
        idiom for deriving variations)."""
        try:
            return dataclasses.replace(self, **changes)
        except TypeError as exc:
            raise ConfigurationError(f"unknown SolveConfig field: {exc}") from None

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None, **fields
    ) -> "SolveConfig":
        """Build a config with the environment layer materialized.

        Precedence per knob: **explicit field > environment variable >
        default** - an explicit ``kernel_backend`` / ``fault_plan``
        always wins; the environment only fills fields left at their
        ``None`` default.

        ``environ`` defaults to ``os.environ`` (injectable for tests).
        """
        from .faults.plan import FAULT_PLAN_ENV, FaultPlan
        from .semiring.backends import ENV_BACKEND

        env = os.environ if environ is None else environ
        config = cls(**fields)
        if config.kernel_backend is None:
            backend = env.get(ENV_BACKEND)
            if backend:
                config = config.replace(kernel_backend=backend)
        if config.fault_plan is None:
            plan_json = env.get(FAULT_PLAN_ENV)
            if plan_json:
                config = config.replace(fault_plan=FaultPlan.from_json(plan_json))
        return config


def config_to_jsonable(config: SolveConfig) -> dict:
    """Serialize a :class:`SolveConfig` to a plain JSON-able dict.

    This is the replay vocabulary shared by the scenario fuzzer
    (:mod:`repro.fuzz`) and the :class:`~repro.errors.InternalError`
    crash dump: a :class:`~repro.machine.spec.MachineSpec` collapses to
    its preset name, a :class:`~repro.faults.FaultPlan` to its JSON
    document, and ``ObsSinks`` to its field dict, so the result feeds
    straight back into :meth:`SolveConfig.replace` /
    ``repro-apsp fuzz replay``.
    """
    from .faults.plan import FaultPlan
    from .machine.spec import MachineSpec

    out: dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name == "machine" and isinstance(value, MachineSpec):
            value = value.name
        elif f.name == "fault_plan" and isinstance(value, FaultPlan):
            value = json.loads(value.to_json())
        elif f.name == "fault_plan" and isinstance(value, (tuple, list)):
            value = list(value)
        elif f.name == "obs":
            value = dataclasses.asdict(value)
        elif f.name == "stragglers" and value is not None:
            value = {str(k): v for k, v in dict(value).items()}
        elif f.name == "grid" and value is not None:
            value = list(value)
        out[f.name] = value
    return out


def resolve_machine(machine: Any):
    """Resolve a machine preset name (or pass a
    :class:`~repro.machine.spec.MachineSpec` through)."""
    from .machine import MACHINES
    from .machine.spec import MachineSpec

    if isinstance(machine, MachineSpec):
        return machine
    if isinstance(machine, str):
        try:
            return MACHINES[machine]
        except KeyError:
            raise ConfigurationError(
                f"unknown machine preset {machine!r}; known: {sorted(MACHINES)}"
            ) from None
    raise ConfigurationError(
        f"machine must be a preset name or MachineSpec, got {type(machine).__name__}"
    )


def solve(graph, config: Optional[SolveConfig] = None, **overrides):
    """Solve all-pairs shortest paths: the public one-call entry point.

    ``graph`` is a square weight matrix (``+inf`` = missing edge);
    ``config`` a :class:`SolveConfig` (default-constructed when
    omitted).  Keyword overrides are applied on top via
    :meth:`SolveConfig.replace`, so quick calls stay one-liners::

        result = repro.solve(w, variant="offload", block_size=64)

    Returns an :class:`~repro.core.driver.ApspResult` (``dist``,
    ``report``, ``makespan``, ``certificate``, ``faults``,
    ``metrics``).  Observability sinks are validated *before* the
    solve (:class:`~repro.errors.SinkError` on unusable paths) and
    written after it.
    """
    if config is None:
        config = SolveConfig()
    if not isinstance(config, SolveConfig):
        raise ConfigurationError(
            f"config must be a SolveConfig, got {type(config).__name__}"
        )
    if overrides:
        config = config.replace(**overrides)
    # Fail on unusable sinks in milliseconds, not after the solve.
    config.obs.validate()

    from .core.driver import apsp as _engine
    from .core.grid import ProcessGrid

    grid = None
    if config.grid is not None:
        pr, pc = config.grid
        grid = ProcessGrid(pr, pc)

    # Anything that escapes the engine without being a ReproError is a
    # bug, not a modeled failure: wrap it in InternalError (distinct
    # exit code 14) carrying the offending config as replayable
    # scenario JSON.  The fuzzer and real users share this path.
    try:
        result = _solve_engine(_engine, graph, config, grid)
    except ReproError:
        raise
    except Exception as exc:
        raise InternalError(exc, scenario_json=json.dumps(config_to_jsonable(config))) from exc
    return result


def _solve_engine(_engine, graph, config: SolveConfig, grid):
    result = _engine(
        graph,
        variant=config.variant,
        block_size=config.block_size,
        machine=resolve_machine(config.machine),
        n_nodes=config.n_nodes,
        ranks_per_node=config.ranks_per_node,
        grid=grid,
        dim_scale=config.dim_scale,
        diag_on_gpu=config.diag_on_gpu,
        n_streams=config.n_streams,
        ring_segments=config.ring_segments,
        mx_blocks=config.mx_blocks,
        nx_blocks=config.nx_blocks,
        collect_result=config.collect,
        validate=config.validate,
        trace=config.trace or config.obs.trace_out is not None,
        check_negative_cycles=config.check_negative_cycles,
        compute_numerics=config.compute_numerics,
        stragglers=dict(config.stragglers) if config.stragglers else None,
        track_paths=config.track_paths,
        exploit_sparsity=config.exploit_sparsity,
        kernel_backend=config.kernel_backend,
        fault_plan=config.fault_plan,
        checkpoint_interval=config.checkpoint_interval,
        recv_timeout=config.recv_timeout,
        fault_seed=config.fault_seed,
        verify=config.verify,
        metrics=config.obs.enabled,
    )

    if config.obs.metrics_out is not None:
        payload = {"run": _run_header(result.report)}
        payload.update(result.metrics.as_dict())
        with open(config.obs.metrics_out, "w") as f:
            json.dump(payload, f, indent=2)
    if config.obs.trace_out is not None:
        from .obs.export import write_chrome_trace

        write_chrome_trace(
            result.tracer,
            config.obs.trace_out,
            run_name=f"repro {result.report.variant} "
            f"n={result.report.n_virtual:g} b={result.report.block_size}",
        )
    return result


def serve(source, config=None, **kwargs):
    """Open a :class:`~repro.serve.QueryServer` over a solved instance -
    the serving sibling of :func:`solve` (see :mod:`repro.serve`).

    ``source`` is an artifact path / :class:`~repro.serve.Artifact`
    (persisted via :meth:`~repro.core.driver.ApspResult.save`), an
    :class:`~repro.core.driver.ApspResult`, or a distance matrix;
    ``config`` a :class:`~repro.serve.ServeConfig` with keyword
    overrides on top::

        server = repro.serve(result, cache_bytes=1 << 28)
        d = server.distance(0, 42)
    """
    from .serve.server import serve as _serve

    return _serve(source, config, **kwargs)


def submit(graph, config: Optional[SolveConfig] = None, *, scheduler=None,
           name: Optional[str] = None, priority: int = 0, weight: float = 1.0,
           arrival: float = 0.0, retry=None, deadline: Optional[float] = None,
           **overrides):
    """Submit a job to a shared cluster; returns a
    :class:`~repro.sched.JobHandle` instead of blocking on the result.

    The job-oriented sibling of :func:`solve`: where ``solve`` builds a
    private machine, runs one APSP, and returns its
    :class:`~repro.core.driver.ApspResult`, ``submit`` enqueues the same
    work on a :class:`~repro.sched.ClusterScheduler` - by default a
    fresh one sized from the config (the degenerate one-job schedule,
    bit-exact and makespan-exact against ``solve``), or an explicit
    shared ``scheduler=`` to run against other tenants' jobs::

        sched = repro.sched.ClusterScheduler(n_nodes=4)
        h1 = repro.submit(w1, cfg, scheduler=sched, priority=1)
        h2 = repro.submit(w2, cfg, scheduler=sched)
        dist = h1.result()            # drives both jobs to completion

    ``priority`` buys a larger fair share of contended GPU streams and
    NIC bandwidth (2x per level), ``weight`` subdivides within a
    priority level, and ``arrival`` delays the job's (simulated)
    arrival at the cluster.  See docs/SCHEDULING.md.

    ``retry`` (a :class:`~repro.sched.RetryPolicy` or its dict form)
    and ``deadline`` (a simulated-seconds SLO from arrival) require a
    resilience-armed scheduler - ``ClusterScheduler(resilience=True)``
    or a :class:`~repro.sched.ResiliencePolicy`; see docs/RESILIENCE.md.
    """
    if config is None:
        config = SolveConfig()
    if not isinstance(config, SolveConfig):
        raise ConfigurationError(
            f"config must be a SolveConfig, got {type(config).__name__}"
        )
    if overrides:
        config = config.replace(**overrides)

    if scheduler is None:
        from .sched import ClusterScheduler

        scheduler = ClusterScheduler(
            machine=config.machine,
            n_nodes=config.n_nodes,
            dim_scale=config.dim_scale,
            trace=config.trace or config.obs.trace_out is not None,
            resilience=True if (retry is not None or deadline is not None) else None,
        )
    return scheduler.submit(
        graph, config, name=name, priority=priority, weight=weight,
        arrival=arrival, retry=retry, deadline=deadline,
    )


def _run_header(report) -> dict:
    return {
        "variant": report.variant,
        "n_virtual": report.n_virtual,
        "block_size": report.block_size,
        "n_nodes": report.n_nodes,
        "ranks": report.ranks,
        "grid": [report.grid_pr, report.grid_pc],
        "machine": report.machine,
        "makespan": report.makespan,
    }


# Re-exported for callers that only import repro.api.
Sequence, Union  # noqa: B018 - silence unused-import linters minimally
