"""repro: scalable all-pairs shortest paths for huge graphs on (simulated) multi-GPU clusters.

A from-scratch Python reproduction of Sao et al., "Scalable All-pairs
Shortest Paths for Huge Graphs on Multi-GPU Clusters" (HPDC '21).

Public API highlights
---------------------
- :func:`repro.solve` + :class:`repro.SolveConfig` - the library entry
  point (see README "Library usage" and :mod:`repro.api`).
- :mod:`repro.obs` - zero-cost-when-off observability: metrics,
  Chrome-trace export, perf-model validation.
- :mod:`repro.semiring` - tropical algebra + SrGemm kernels.
- :mod:`repro.core` - blocked / baseline / pipelined / offload Floyd-Warshall.
- :mod:`repro.machine` - Summit-like machine model.
- :mod:`repro.perfmodel` - the paper's analytic performance models.

The original keyword entry point :func:`repro.apsp` still works but is
deprecated in favor of :func:`repro.solve`.
"""

from .errors import (
    ArtifactError,
    CheckpointError,
    CommTimeoutError,
    ConfigurationError,
    GpuOutOfMemory,
    NegativeCycleError,
    QueryError,
    RankFailure,
    ReproError,
    SilentCorruptionError,
    SinkError,
    ValidationError,
    VerificationError,
)

__version__ = "1.0.0"

__all__ = [
    # the public entry point
    "solve",
    "submit",
    "SolveConfig",
    "ObsSinks",
    "ApspResult",
    "Variant",
    "FaultPlan",
    # the serving surface (repro.serve is callable AND a namespace)
    "serve",
    "ServeConfig",
    "QueryServer",
    "save_artifact",
    "load_artifact",
    # legacy entry point (deprecated)
    "apsp",
    # errors
    "ArtifactError",
    "CheckpointError",
    "CommTimeoutError",
    "ConfigurationError",
    "GpuOutOfMemory",
    "NegativeCycleError",
    "QueryError",
    "RankFailure",
    "ReproError",
    "SilentCorruptionError",
    "SinkError",
    "ValidationError",
    "VerificationError",
    "__version__",
]


def _deprecated_apsp(*args, **kwargs):
    """The pre-1.1 keyword entry point, now a shim over the engine."""
    import warnings

    warnings.warn(
        "repro.apsp() is deprecated; use repro.solve(graph, repro.SolveConfig(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from .core import apsp as _engine

    return _engine(*args, **kwargs)


def __getattr__(name):  # lazy imports keep `import repro` light
    if name in ("solve", "submit", "SolveConfig", "ObsSinks", "resolve_machine"):
        from . import api

        return getattr(api, name)
    if name == "serve":
        # The serve package's module object is callable, so
        # `repro.serve(result)` and `repro.serve.QueryServer` both work.
        import importlib

        return importlib.import_module(".serve", __name__)
    if name in ("ServeConfig", "QueryServer", "save_artifact", "load_artifact"):
        import importlib

        return getattr(importlib.import_module(".serve", __name__), name)
    if name == "apsp":
        return _deprecated_apsp
    if name in ("ApspResult", "Variant"):
        from . import core

        return getattr(core, name)
    if name == "FaultPlan":
        from .faults import FaultPlan

        return FaultPlan
    if name in ("semiring", "core", "machine", "mpi", "sim", "graphs", "perfmodel", "extensions", "analysis", "faults", "api", "obs", "verify", "sched"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
