"""repro: scalable all-pairs shortest paths for huge graphs on (simulated) multi-GPU clusters.

A from-scratch Python reproduction of Sao et al., "Scalable All-pairs
Shortest Paths for Huge Graphs on Multi-GPU Clusters" (HPDC '21).

Public API highlights
---------------------
- :func:`repro.apsp` - one-call APSP over any variant on a simulated cluster.
- :mod:`repro.semiring` - tropical algebra + SrGemm kernels.
- :mod:`repro.core` - blocked / baseline / pipelined / offload Floyd-Warshall.
- :mod:`repro.machine` - Summit-like machine model.
- :mod:`repro.perfmodel` - the paper's analytic performance models.
"""

from .errors import (
    CheckpointError,
    CommTimeoutError,
    ConfigurationError,
    GpuOutOfMemory,
    NegativeCycleError,
    RankFailure,
    ReproError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "CheckpointError",
    "CommTimeoutError",
    "ConfigurationError",
    "GpuOutOfMemory",
    "NegativeCycleError",
    "RankFailure",
    "ReproError",
    "ValidationError",
    "__version__",
]


def __getattr__(name):  # lazy imports keep `import repro` light
    if name in ("apsp", "ApspResult", "Variant"):
        from . import core

        return getattr(core, name)
    if name == "FaultPlan":
        from .faults import FaultPlan

        return FaultPlan
    if name in ("semiring", "core", "machine", "mpi", "sim", "graphs", "perfmodel", "extensions", "analysis", "faults"):
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
