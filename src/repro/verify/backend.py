"""Checksummed decorator around any registered SrGemm kernel backend.

Every schedule-IR variant, the ooG tile pipeline, and the lookahead
kernels all route their numerics through ``ctx.backend`` — so wrapping
that one object gives the whole solve checksummed kernels with no
per-variant code.  The wrapper mirrors the inner backend's public
contract (``name``, ``compute_dtype``, ``rtol``, and critically
``modeled_cost_scale``) so modeled kernel times, and therefore
makespans, are bit-identical with verification on or off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..semiring.backends.base import KernelBackend
from ..semiring.minplus import MIN_PLUS, Semiring
from .runtime import VerifyRuntime

__all__ = ["ChecksummedBackend"]


class ChecksummedBackend(KernelBackend):
    """Delegates every kernel to ``runtime.inner`` inside a guarded
    predict → run → re-checksum → repair cycle (see
    :class:`~repro.verify.runtime.VerifyRuntime`)."""

    available = True

    def __init__(self, runtime: VerifyRuntime):
        inner = runtime.inner
        super().__init__(byte_budget=inner.byte_budget)
        self.runtime = runtime
        self.inner = inner
        self.name = f"checksummed({inner.name})"
        self.compute_dtype = inner.compute_dtype
        self.rtol = inner.rtol
        self.modeled_cost_scale = inner.modeled_cost_scale

    def srgemm_accumulate(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        return self.runtime.accumulate(c, a, b, semiring, k_chunk=k_chunk)

    # Phase-specialized entries: same guarded cycle, inner phase kernel.
    def srgemm_diag(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        return self.runtime.accumulate(c, a, b, semiring, k_chunk=k_chunk, entry="srgemm_diag")

    def srgemm_panel(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        return self.runtime.accumulate(c, a, b, semiring, k_chunk=k_chunk, entry="srgemm_panel")

    def srgemm_outer(
        self,
        c: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
        semiring: Semiring = MIN_PLUS,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        return self.runtime.accumulate(c, a, b, semiring, k_chunk=k_chunk, entry="srgemm_outer")

    def panel_row_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        return self.runtime.panel_update(panel, diag, "row", semiring)

    def panel_col_update(
        self, panel: np.ndarray, diag: np.ndarray, semiring: Semiring = MIN_PLUS
    ) -> np.ndarray:
        return self.runtime.panel_update(panel, diag, "col", semiring)

    def srgemm_accumulate_paths(
        self,
        c: np.ndarray,
        c_nxt: np.ndarray,
        a: np.ndarray,
        a_nxt: np.ndarray,
        b: np.ndarray,
        k_chunk: Optional[int] = None,
    ) -> np.ndarray:
        return self.runtime.accumulate_paths(c, c_nxt, a, a_nxt, b, k_chunk=k_chunk)

    def describe(self) -> str:
        return f"ABFT-checksummed wrapper over: {self.inner.describe()}"
