"""Tropical checksum algebra for algorithm-based fault tolerance.

For the comparison-``⊕`` semirings in :mod:`repro.semiring.minplus`
(``⊕`` idempotent selection, ``⊗`` monotone in each argument),
``⊕``-reductions distribute over the SrGemm outer product *exactly*,
bit for bit, in IEEE arithmetic:

    rowsum(C ⊕ A⊗B)[i] = rowsum(C)[i] ⊕ (⊕_k  A[i,k] ⊗ rowsum(B)[k])
    colsum(C ⊕ A⊗B)[j] = colsum(C)[j] ⊕ (⊕_k  colsum(A)[k] ⊗ B[k,j])

``⊕`` never rounds (it selects one of its operands) and ``⊗`` by a
constant is monotone under round-to-nearest, so the ``⊕``-minimiser of
``a ⊗ B[k, :]`` is literally ``a ⊗ (⊕_j B[k, j])`` — the same float,
not an approximation.  A predicted checksum that disagrees with the
recomputed one is therefore *proof* of corruption, never rounding
noise, and comparisons can use exact equality.

Backends with a reduced-precision compute path (``tiled-f32``) cast
the operands — never ``C`` — before forming product terms, then
accumulate at full width.  Predictions replicate that pipeline via the
``compute_dtype`` argument: operands are cast exactly as the backend
casts them, reduced at compute width, and only then ``⊕``-combined
with the full-width pre-checksums (the f32→f64 upcast is exact).

Detection limit: a min-checksum only sees a row/column's *extremal*
entry.  An upward flip of a non-extremal entry leaves every checksum
unchanged; that gap is covered probabilistically by the monotonicity
sentinel in :mod:`repro.verify.runtime` (distances never increase
across FW iterations) and, at the end of the run, by the certificate's
sampled residual audit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..semiring.minplus import Semiring

__all__ = [
    "block_checksums",
    "checksums_match",
    "predicted_accumulate",
    "predicted_merge",
]

Checksums = Tuple[np.ndarray, np.ndarray]


def block_checksums(blk: np.ndarray, semiring: Semiring) -> Checksums:
    """``(row, col)`` ``⊕``-checksums of a block: ``row[i] = ⊕_j blk[i,j]``
    and ``col[j] = ⊕_i blk[i,j]``."""
    return (
        semiring.plus_reduce(blk, axis=1),
        semiring.plus_reduce(blk, axis=0),
    )


def checksums_match(expected: Checksums, actual: Checksums) -> bool:
    """Exact (bitwise-value) comparison; any disagreement is corruption,
    never rounding (see module docs).  Weights are validated NaN-free at
    load, so ``array_equal``'s NaN semantics never trigger."""
    return np.array_equal(expected[0], actual[0]) and np.array_equal(expected[1], actual[1])


def _cast(arr: np.ndarray, compute_dtype: Optional[np.dtype]) -> np.ndarray:
    # Mirror of TiledBackend._cast: only float operands are narrowed.
    if compute_dtype is None:
        return arr
    dt = np.dtype(compute_dtype)
    if arr.dtype.kind == "f" and arr.dtype != dt:
        return arr.astype(dt)
    return arr


def predicted_accumulate(
    pre: Checksums,
    a: np.ndarray,
    b: np.ndarray,
    semiring: Semiring,
    compute_dtype: Optional[np.dtype] = None,
) -> Checksums:
    """Checksums of ``C ⊕ A ⊗ B`` given ``C``'s pre-op checksums, without
    forming the product: O(mk + kn + max(mk, kn)) instead of O(mnk)."""
    pre_row, pre_col = pre
    if a.shape[1] == 0:
        return pre_row.copy(), pre_col.copy()
    a_c = _cast(a, compute_dtype)
    b_c = _cast(b, compute_dtype)
    r_b = semiring.plus_reduce(b_c, axis=1)  # (k,)
    prod_row = semiring.plus_reduce(semiring.times(a_c, r_b[None, :]), axis=1)  # (m,)
    c_a = semiring.plus_reduce(a_c, axis=0)  # (k,)
    prod_col = semiring.plus_reduce(semiring.times(c_a[:, None], b_c), axis=0)  # (n,)
    return semiring.plus(pre_row, prod_row), semiring.plus(pre_col, prod_col)


def predicted_merge(pre: Checksums, x: np.ndarray, semiring: Semiring) -> Checksums:
    """Checksums of ``C ⊕ X`` for an elementwise merge (the ooGSrGemm
    apply step): reductions distribute over elementwise ``⊕``."""
    x_row, x_col = block_checksums(x, semiring)
    return semiring.plus(pre[0], x_row), semiring.plus(pre[1], x_col)
