"""Algorithm-based fault tolerance (ABFT) for the tropical solver.

Three cooperating pieces (see docs/FAULTS.md for the math and the
escalation ladder):

- :mod:`repro.verify.checksums` — exact ``⊕``-checksum algebra for
  SrGemm ops on comparison-``⊕`` semirings;
- :mod:`repro.verify.runtime` — per-run verification state: tracked
  blocks, guarded kernels, localized repair, the monotonicity
  sentinel, deferred escalation, and the verification certificate;
- :mod:`repro.verify.backend` — the :class:`ChecksummedBackend`
  decorator that gives all schedule-IR variants checksummed kernels
  through the single ``ctx.backend`` seam.
"""

from .backend import ChecksummedBackend
from .checksums import block_checksums, checksums_match, predicted_accumulate, predicted_merge
from .runtime import VERIFY_MODES, VerifyRuntime

__all__ = [
    "VERIFY_MODES",
    "VerifyRuntime",
    "ChecksummedBackend",
    "block_checksums",
    "checksums_match",
    "predicted_accumulate",
    "predicted_merge",
]
