"""ABFT verification runtime.

One :class:`VerifyRuntime` is shared by every simulated rank of a run
(blocks are rank-private, so guards never contend).  It tracks each
resident distance block's row/col ``⊕``-checksums, validates every
checksummed kernel call, repairs flagged tiles in place from their
operands via the reference backend, and — when repair is impossible —
*defers* escalation: the runtime records a pending
:class:`~repro.errors.SilentCorruptionError` and the executor raises it
at the next op boundary of the detecting rank program.  Raising inside
a kernel closure would fail the owning stream's Process event, and the
simulation engine aborts the whole run on any unwaited failed event —
bypassing the driver's supervisor.  At an op boundary the error flows
through the normal recovery path (restart from the newest uncorrupted
checkpoint), exactly like a rank crash.

Verification runs synchronously inside the kernel/host closures that
already model the numerics, so it adds **zero simulated time**: the
makespan of a run is bit-identical across ``--verify`` modes (the
physical wall-clock overhead is what
``benchmarks/bench_ablation_verify_overhead.py`` measures).  Repair
likewise charges no modeled time — a known modeling limitation
documented in docs/FAULTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import SilentCorruptionError
from ..semiring.backends import get_backend
from ..semiring.minplus import MIN_PLUS, Semiring
from .checksums import (
    Checksums,
    block_checksums,
    checksums_match,
    predicted_accumulate,
    predicted_merge,
)

__all__ = ["VerifyRuntime", "VERIFY_MODES"]

#: Valid values of ``SolverConfig.verify`` / the CLI ``--verify`` knob.
VERIFY_MODES = ("off", "checksum", "full")


@dataclass
class _Guard:
    """Verification state of one tracked (resident) distance block."""

    rank: int
    key: Tuple[int, int]
    arr: np.ndarray
    row: np.ndarray
    col: np.ndarray
    sent_pos: np.ndarray  # sampled flat indices for the sentinel
    sent_vals: np.ndarray  # last sentinel readings at those positions


class VerifyRuntime:
    """Checksummed-kernel bookkeeping, sentinel, repair, certificate."""

    def __init__(
        self,
        mode: str,
        inner,
        semiring: Semiring = MIN_PLUS,
        seed: int = 0,
        sentinel_samples: int = 4,
        audit_triples: int = 256,
        audit_sources: int = 2,
    ):
        if mode not in ("checksum", "full"):
            raise ValueError(f"verify mode must be 'checksum' or 'full', got {mode!r}")
        self.mode = mode
        self.inner = inner
        self.semiring = semiring
        self.seed = abs(int(seed))
        self.sentinel_samples = int(sentinel_samples)
        self.audit_triples = int(audit_triples)
        self.audit_sources = int(audit_sources)
        self.reference = get_backend("reference")
        self.counters: Dict[str, int] = {}
        self._tiles: Dict[int, _Guard] = {}
        self._rank_ids: Dict[int, List[int]] = {}
        self._transient: Dict[int, Checksums] = {}
        self._escalate: Optional[SilentCorruptionError] = None

    # -- lifecycle -----------------------------------------------------------
    def begin_epoch(self) -> None:
        """Reset per-epoch state before a (re)start; counters persist so
        the certificate reflects the whole run."""
        self._escalate = None
        self._transient.clear()

    def register_rank(self, rank: int, blocks: Dict[Tuple[int, int], np.ndarray]) -> None:
        """(Re)register a rank's resident blocks: record their current
        checksums and seed the sentinel baselines.  Called at every rank
        program build, so restarts re-anchor on the restored arrays."""
        for old_id in self._rank_ids.pop(rank, []):
            self._tiles.pop(old_id, None)
        ids: List[int] = []
        for key in sorted(blocks):
            arr = blocks[key]
            row, col = block_checksums(arr, self.semiring)
            rng = np.random.default_rng([self.seed, rank, key[0], key[1]])
            pos = rng.integers(arr.size, size=min(self.sentinel_samples, arr.size))
            guard = _Guard(rank, key, arr, row, col, pos, arr.flat[pos].copy())
            self._tiles[id(arr)] = guard
            ids.append(id(arr))
        self._rank_ids[rank] = ids
        self.counters["blocks_tracked"] = len(self._tiles)

    def raise_pending(self) -> None:
        """Raise (and clear) any deferred escalation.  Called by the
        executor between ops, where the engine's failure propagation
        reaches the driver's supervisor instead of aborting the run."""
        if self._escalate is not None:
            exc, self._escalate = self._escalate, None
            raise exc

    # -- internal helpers ----------------------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def _flag(
        self,
        message: str,
        guard: Optional[_Guard] = None,
        op: Optional[str] = None,
    ) -> None:
        self._count("escalated")
        if self._escalate is None:
            self._escalate = SilentCorruptionError(
                message,
                rank=guard.rank if guard else None,
                block=guard.key if guard else None,
                op=op,
            )

    def _precheck(self, guard: Optional[_Guard], actual: Checksums, op: str) -> None:
        """Compare a tracked block's stored checksums against its current
        contents.  A mismatch means the block was corrupted *at rest*
        since its last checksummed op — its true value is gone, so the
        only remedy is escalation.  Stored sums are resynced so one
        upset does not cascade into a detection per subsequent op."""
        if guard is None:
            return
        if not checksums_match((guard.row, guard.col), actual):
            self._count("sdc_detected")
            self._flag(
                f"resident corruption in block {guard.key} of rank {guard.rank} "
                f"(stored checksums diverge before {op})",
                guard,
                op,
            )
            guard.row, guard.col = actual

    # -- guarded kernels (called from ChecksummedBackend) --------------------
    def accumulate(
        self, c, a, b, semiring: Semiring, k_chunk=None, entry: str = "srgemm_accumulate"
    ) -> np.ndarray:
        """Guarded fused/phase product.  ``entry`` names the inner
        backend method to invoke (``srgemm_accumulate`` or one of the
        phase-specialized ``srgemm_diag``/``srgemm_panel``/
        ``srgemm_outer``), so phase specialization survives the verify
        wrapper; the checksum algebra is entry-invariant, and repair
        always goes through the reference fused kernel (exact
        equivalent for comparison-⊕ semirings)."""
        guard = self._tiles.get(id(c))
        pre = block_checksums(c, semiring)
        self._precheck(guard, pre, entry)
        c_pre = c.copy()
        predicted = predicted_accumulate(pre, a, b, semiring, self.inner.compute_dtype)
        getattr(self.inner, entry)(c, a, b, semiring=semiring, k_chunk=k_chunk)
        self._count("ops_checked")
        actual = block_checksums(c, semiring)
        if not checksums_match(predicted, actual):
            self._count("sdc_detected")
            actual = self._repair_accumulate(guard, c, c_pre, pre, a, b, semiring)
        if guard is not None:
            guard.row, guard.col = actual
        else:
            self._transient[id(c)] = actual
        return c

    def _repair_accumulate(self, guard, c, c_pre, pre, a, b, semiring) -> Checksums:
        """Localized repair: rebuild the flagged tile from its operands
        with the reference backend, then re-verify against a full-width
        prediction (the reference never narrows, so the reduced-precision
        prediction no longer applies)."""
        np.copyto(c, c_pre)
        self.reference.srgemm_accumulate(c, a, b, semiring=semiring)
        predicted = predicted_accumulate(pre, a, b, semiring, None)
        actual = block_checksums(c, semiring)
        if checksums_match(predicted, actual):
            self._count("repaired")
        else:
            self._flag(
                "post-op checksum mismatch persisted after reference repair "
                "(operands themselves are suspect)",
                guard,
                "srgemm_accumulate",
            )
        return actual

    def accumulate_paths(self, c, c_nxt, a, a_nxt, b, k_chunk=None) -> np.ndarray:
        # Path kernels always run at operand width (base-class contract),
        # so predictions skip the compute-dtype cast.  Next-hop blocks are
        # not checksummed — see the detection-limits note in docs/FAULTS.md.
        semiring = MIN_PLUS
        guard = self._tiles.get(id(c))
        pre = block_checksums(c, semiring)
        self._precheck(guard, pre, "srgemm_accumulate_paths")
        c_pre = c.copy()
        nxt_pre = c_nxt.copy()
        predicted = predicted_accumulate(pre, a, b, semiring, None)
        self.inner.srgemm_accumulate_paths(c, c_nxt, a, a_nxt, b, k_chunk=k_chunk)
        self._count("ops_checked")
        actual = block_checksums(c, semiring)
        if not checksums_match(predicted, actual):
            self._count("sdc_detected")
            np.copyto(c, c_pre)
            np.copyto(c_nxt, nxt_pre)
            self.reference.srgemm_accumulate_paths(c, c_nxt, a, a_nxt, b)
            actual = block_checksums(c, semiring)
            if checksums_match(predicted, actual):
                self._count("repaired")
            else:
                self._flag(
                    "path-kernel checksum mismatch persisted after reference repair",
                    guard,
                    "srgemm_accumulate_paths",
                )
        if guard is not None:
            guard.row, guard.col = actual
        return c

    def panel_update(self, panel, diag, axis: str, semiring: Semiring) -> np.ndarray:
        """Guarded in-place panel update (``axis`` is ``"row"`` or
        ``"col"``).  The pre-op snapshot doubles as the alias-free
        operand for both the prediction and the repair."""
        guard = self._tiles.get(id(panel))
        pre = block_checksums(panel, semiring)
        self._precheck(guard, pre, f"panel_{axis}_update")
        p_pre = panel.copy()
        if axis == "row":
            operands = (diag, p_pre)
            self.inner.panel_row_update(panel, diag, semiring=semiring)
        else:
            operands = (p_pre, diag)
            self.inner.panel_col_update(panel, diag, semiring=semiring)
        self._count("ops_checked")
        predicted = predicted_accumulate(pre, *operands, semiring, self.inner.compute_dtype)
        actual = block_checksums(panel, semiring)
        if not checksums_match(predicted, actual):
            self._count("sdc_detected")
            actual = self._repair_accumulate(guard, panel, p_pre, pre, *operands, semiring)
        if guard is not None:
            guard.row, guard.col = actual
        return panel

    def wrap_closure(self, blk: np.ndarray, fn: Callable[[], None]) -> Callable[[], None]:
        """Guard a DiagUpdate closure (FW on the pivot block).  Checksums
        do not distribute over the O(b³) closure, so the invariant checked
        is monotonicity: the closure may only improve distances, i.e. the
        pre-image must be absorbed elementwise (``new ⊕ old == new``)."""
        semiring = self.semiring

        def wrapped():
            guard = self._tiles.get(id(blk))
            self._precheck(guard, block_checksums(blk, semiring), "diag_update")
            pre = blk.copy()
            fn()
            self._count("ops_checked")
            if not np.array_equal(semiring.plus(blk, pre), blk):
                self._count("sdc_detected")
                self._flag(
                    "diagonal closure violated monotonicity (distance increased)",
                    guard,
                    "diag_update",
                )
            if guard is not None:
                guard.row, guard.col = block_checksums(blk, semiring)

        return wrapped

    # -- ooGSrGemm staging ---------------------------------------------------
    def verify_staged(self, x: np.ndarray, recompute: Optional[Callable] = None) -> np.ndarray:
        """Validate a staged ooG product tile against the checksums taken
        when it was computed (corruption window: d2h transfer + host
        residence).  A flagged tile is repaired by re-running its retained
        compute closure; the recomputed tile is itself checksummed."""
        recorded = self._transient.pop(id(x), None)
        if recorded is None:
            return x
        if checksums_match(recorded, block_checksums(x, self.semiring)):
            return x
        self._count("sdc_detected")
        if recompute is None:
            self._flag("staged ooG tile corrupted and no compute closure retained")
            return x
        x2 = recompute()
        self._transient.pop(id(x2), None)  # verified inside the guarded compute
        self._count("repaired")
        return x2

    def guarded_merge(self, blk: np.ndarray, xs: np.ndarray) -> None:
        """Guarded ooG apply step ``blk ← blk ⊕ xs`` (``xs`` was verified
        by :meth:`verify_staged`)."""
        semiring = self.semiring
        guard = self._tiles.get(id(blk))
        pre = block_checksums(blk, semiring)
        self._precheck(guard, pre, "oog_merge")
        blk_pre = blk.copy()
        predicted = predicted_merge(pre, xs, semiring)
        semiring.plus(blk, xs, out=blk)
        self._count("ops_checked")
        actual = block_checksums(blk, semiring)
        if not checksums_match(predicted, actual):
            self._count("sdc_detected")
            # The merge is a deterministic elementwise host op: re-merge
            # from the snapshot and re-verify.
            np.copyto(blk, blk_pre)
            semiring.plus(blk, xs, out=blk)
            actual = block_checksums(blk, semiring)
            if checksums_match(predicted, actual):
                self._count("repaired")
            else:
                self._flag("ooG merge checksum mismatch persisted", guard, "oog_merge")
        if guard is not None:
            guard.row, guard.col = actual

    # -- monotonicity sentinel -----------------------------------------------
    def sentinel_check(self, rank: int, k: int) -> None:
        """Sampled per-iteration check that no distance increased across
        ``k`` — the complement of the min-checksums, which an upward flip
        of a non-extremal entry can mask.  Runs in ``full`` mode only."""
        if self.mode != "full":
            return
        semiring = self.semiring
        for arr_id in self._rank_ids.get(rank, ()):
            guard = self._tiles.get(arr_id)
            if guard is None:
                continue
            vals = guard.arr.flat[guard.sent_pos]
            self._count("sentinel_samples", len(vals))
            # Monotone ⟺ old readings absorbed: new ⊕ old == new.
            ok = semiring.plus(vals, guard.sent_vals) == vals
            bad = int(np.count_nonzero(~ok))
            if bad:
                self._count("sdc_detected")
                self._count("sentinel_violations", bad)
                self._flag(
                    f"monotonicity sentinel: {bad} sampled distance(s) increased "
                    f"in block {guard.key} of rank {rank} at k={k}",
                    guard,
                    "sentinel",
                )
            guard.sent_vals = vals.copy()

    # -- certificate ---------------------------------------------------------
    def build_certificate(
        self,
        dist: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> dict:
        """Assemble the run's verification certificate.  In ``full`` mode
        with a collected (min,+) result, append a residual audit: a
        seeded sampled triangle-inequality check plus per-source
        comparison against Bellman-Ford from
        :mod:`repro.graphs.reference_algorithms`."""
        cert = {
            "mode": self.mode,
            "blocks_tracked": self.counters.get("blocks_tracked", 0),
            "ops_checked": self.counters.get("ops_checked", 0),
            "sentinel_samples": self.counters.get("sentinel_samples", 0),
            "sdc_detected": self.counters.get("sdc_detected", 0),
            "repaired": self.counters.get("repaired", 0),
            "escalated": self.counters.get("escalated", 0),
            "sentinel_violations": self.counters.get("sentinel_violations", 0),
        }
        audit_ok = True
        if dist is not None and weights is not None and self.semiring is MIN_PLUS:
            cert["audit"] = audit = self._residual_audit(dist, weights)
            audit_ok = audit["triangle_violations"] == 0 and audit["sssp_mismatches"] == 0
        cert["passed"] = bool(audit_ok)
        return cert

    def _residual_audit(self, dist: np.ndarray, weights: np.ndarray) -> dict:
        from ..graphs.reference_algorithms import bellman_ford

        n = dist.shape[0]
        rng = np.random.default_rng([self.seed, 0xAB_F7])
        # Exact candidates can differ from relaxation-ordered path sums
        # by association, so the audit uses a tolerance scaled to the
        # backend's contract instead of the checksums' exact equality.
        tol = max(1e-9, 10.0 * float(getattr(self.inner, "rtol", 0.0)))
        n_triples = min(self.audit_triples, n * n)
        i = rng.integers(n, size=n_triples)
        k = rng.integers(n, size=n_triples)
        j = rng.integers(n, size=n_triples)
        cand = dist[i, k] + dist[k, j]
        with np.errstate(invalid="ignore"):
            slack = dist[i, j] - cand
        finite = np.isfinite(cand)
        viol = int(np.count_nonzero(slack[finite] > tol * (1.0 + np.abs(cand[finite]))))
        sources = rng.choice(n, size=min(self.audit_sources, n), replace=False)
        mismatches = 0
        for s in sources:
            ref = bellman_ford(weights, int(s))
            if not np.allclose(dist[s], ref, rtol=tol, atol=tol):
                mismatches += 1
        return {
            "triangle_samples": int(n_triples),
            "triangle_violations": viol,
            "sssp_sources": int(len(sources)),
            "sssp_mismatches": int(mismatches),
        }
