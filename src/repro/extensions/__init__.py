"""Extensions implementing the paper's stated future work:
distributed shortest-path generation and incremental Floyd-Warshall."""

from .incremental import IncrementalApsp
from .paths import (
    NO_HOP,
    floyd_warshall_with_paths,
    next_hop_from_distances,
    path_length,
    reconstruct_path,
)

__all__ = [
    "IncrementalApsp",
    "floyd_warshall_with_paths",
    "next_hop_from_distances",
    "reconstruct_path",
    "path_length",
    "NO_HOP",
]
